// Transform robustness example: measures, for each of the paper's five
// transformation families, the distortion severity sigma of the descriptor
// (via the simulated perfect detector of Section IV-C) and whether the full
// CBCD system still detects the transformed copy. This is the calibration
// workflow a deployment would run to pick the distortion-model sigma.
//
// Build & run:  ./build/examples/transform_robustness

#include <cstdio>

#include "cbcd/detector.h"
#include "core/database.h"
#include "core/distortion_model.h"
#include "core/index.h"
#include "core/synthetic_db.h"
#include "fingerprint/distortion.h"
#include "fingerprint/extractor.h"
#include "media/synthetic.h"
#include "media/transforms.h"
#include "util/rng.h"
#include "util/table.h"

using namespace s3vcd;

int main() {
  media::SyntheticVideoConfig config;
  config.width = 96;
  config.height = 80;
  config.num_frames = 200;
  config.seed = 5;
  const media::VideoSequence video = media::GenerateSyntheticVideo(config);
  const fp::FingerprintExtractor extractor;

  // Reference database: this video plus distractors.
  core::DatabaseBuilder builder;
  const auto reference_fps = extractor.Extract(video);
  builder.AddVideo(0, reference_fps);
  std::vector<fp::Fingerprint> pool;
  for (const auto& lf : reference_fps) {
    pool.push_back(lf.descriptor);
  }
  Rng rng(17);
  core::AppendDistractors(&builder, pool, 80000, core::DistractorOptions{},
                          &rng);
  const core::S3Index index(builder.Build());

  struct Case {
    const char* label;
    media::TransformChain chain;
  };
  const Case cases[] = {
      {"resize 0.75", media::TransformChain::Resize(0.75)},
      {"resize 1.30", media::TransformChain::Resize(1.30)},
      {"vertical shift 20%", media::TransformChain::VerticalShift(20)},
      {"gamma 0.40", media::TransformChain::Gamma(0.40)},
      {"gamma 2.50", media::TransformChain::Gamma(2.50)},
      {"contrast 2.5", media::TransformChain::Contrast(2.5)},
      {"noise 10", media::TransformChain::Noise(10)},
      {"noise 30", media::TransformChain::Noise(30)},
      {"mpeg re-encode q=2", media::TransformChain::MpegQuantize(2)},
      {"mpeg re-encode q=8", media::TransformChain::MpegQuantize(8)},
      {"logo overlay 25%", media::TransformChain::LogoOverlay(0.25)},
      {"picture-in-picture 0.8", media::TransformChain::PictureInPicture(0.8)},
  };

  Table table({"transformation", "sigma", "detected", "nsim", "offset"});
  for (const Case& c : cases) {
    // 1. Severity: distortion sigma under the simulated perfect detector.
    fp::PerfectDetectorOptions perfect;
    const auto samples =
        fp::CollectDistortionSamples(video, c.chain, perfect, &rng);
    const double sigma = fp::ComputeDistortionStats(samples).sigma;

    // 2. Detection with a model scaled to that severity (floored so very
    //    light transforms still get a workable search region).
    const core::GaussianDistortionModel model(std::max(6.0, sigma));
    cbcd::DetectorOptions options;
    options.query.filter.alpha = 0.85;
    options.query.filter.depth = 12;
    options.vote.use_spatial_coherence = true;
    options.nsim_threshold = 8;
    const cbcd::CopyDetector detector(&index, &model, options);
    const media::VideoSequence transformed = c.chain.Apply(video, &rng);
    const auto detections =
        detector.DetectClip(extractor.Extract(transformed));

    bool detected = false;
    int nsim = 0;
    double offset = 0;
    for (const auto& d : detections) {
      if (d.id == 0) {
        detected = true;
        nsim = d.nsim;
        offset = d.offset;
        break;
      }
    }
    table.AddRow()
        .Add(c.label)
        .Add(sigma, 3)
        .Add(detected ? "yes" : "NO")
        .Add(static_cast<int64_t>(nsim))
        .Add(offset, 3);
  }
  table.Print("transform_robustness");
  std::printf(
      "sigma is the paper's severity criterion: larger sigma means the\n"
      "copy's fingerprints moved further from the originals\n");
  return 0;
}
