// Quickstart: the whole S3VCD pipeline in one page.
//
//  1. Generate two reference "videos" (synthetic TV-like clips).
//  2. Extract their local fingerprints and build the S3 index.
//  3. Distort one of them (resize + noise) as a pirated copy would be.
//  4. Run the copy detector: statistical queries + temporal voting.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "cbcd/detector.h"
#include "core/database.h"
#include "core/distortion_model.h"
#include "core/index.h"
#include "fingerprint/extractor.h"
#include "media/synthetic.h"
#include "media/transforms.h"
#include "util/rng.h"

using namespace s3vcd;

int main() {
  // 1. Two reference clips of 8 seconds (the real system would decode
  //    MPEG; we synthesize deterministic TV-like content instead).
  media::SyntheticVideoConfig config;
  config.width = 96;
  config.height = 80;
  config.num_frames = 200;
  config.seed = 1;
  const media::VideoSequence news = media::GenerateSyntheticVideo(config);
  config.seed = 2;
  const media::VideoSequence sports = media::GenerateSyntheticVideo(config);

  // 2. Ingest them into the reference database under ids 0 and 1.
  const fp::FingerprintExtractor extractor;
  core::DatabaseBuilder builder;
  cbcd::IngestReferenceVideo(&builder, extractor, /*id=*/0, news);
  cbcd::IngestReferenceVideo(&builder, extractor, /*id=*/1, sports);
  const core::S3Index index(builder.Build());
  std::printf("reference database: %zu local fingerprints\n",
              index.database().size());

  // 3. A pirated copy of the sports clip: resized and noisy.
  Rng rng(42);
  media::TransformChain piracy = media::TransformChain::Resize(0.9);
  piracy.Then(media::TransformType::kNoise, 6.0);
  const media::VideoSequence candidate = piracy.Apply(sports, &rng);
  std::printf("candidate clip: %s\n", piracy.ToString().c_str());

  // 4. Detect. The distortion model is a zero-mean Gaussian per component;
  //    sigma would normally be estimated with the simulated perfect
  //    detector (see the transform_robustness example).
  const core::GaussianDistortionModel model(/*sigma=*/15.0);
  cbcd::DetectorOptions options;
  options.query.filter.alpha = 0.85;  // statistical query expectation
  options.query.filter.depth = 12;    // Hilbert partition depth p
  options.vote.use_spatial_coherence = true;
  options.nsim_threshold = 10;
  const cbcd::CopyDetector detector(&index, &model, options);

  cbcd::DetectionStats stats;
  const auto detections =
      detector.DetectClip(extractor.Extract(candidate), &stats);

  std::printf("%zu candidate fingerprints searched in %.1f ms total\n",
              static_cast<size_t>(stats.queries),
              stats.search_seconds * 1e3);
  if (detections.empty()) {
    std::printf("no copy detected\n");
    return 1;
  }
  for (const auto& d : detections) {
    std::printf(
        "detected copy of reference id %u (offset %+.0f frames, nsim %d)\n",
        d.id, d.offset, d.nsim);
  }
  return 0;
}
