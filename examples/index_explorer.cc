// Index explorer: the search layer on its own, without the video pipeline.
// Shows how statistical queries trade quality for time against exact range
// queries and the sequential scan; demonstrates saving the database to a
// file and batch-searching it with the pseudo-disk strategy.
//
// Build & run:  ./build/examples/index_explorer

#include <cstdio>

#include "core/database.h"
#include "core/distortion_model.h"
#include "core/index.h"
#include "core/pseudo_disk.h"
#include "core/synthetic_db.h"
#include "core/tuner.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/table.h"

using namespace s3vcd;

int main() {
  // A clustered synthetic database of 300k fingerprints.
  Rng rng(3);
  core::DatabaseBuilder builder;
  std::vector<fp::Fingerprint> centers;
  for (int c = 0; c < 80; ++c) {
    centers.push_back(core::UniformRandomFingerprint(&rng));
  }
  for (int i = 0; i < 300000; ++i) {
    builder.Add(core::DistortFingerprint(
                    centers[static_cast<size_t>(rng.UniformInt(0, 79))],
                    25.0, &rng),
                static_cast<uint32_t>(i % 200), static_cast<uint32_t>(i));
  }
  const core::S3Index index(builder.Build());
  std::printf("database: %zu fingerprints, %.1f MiB in memory\n",
              index.database().size(),
              index.database().MemoryBytes() / 1048576.0);

  // Distorted queries around known database points.
  const double sigma = 18.0;
  const core::GaussianDistortionModel model(sigma);
  std::vector<fp::Fingerprint> queries;
  for (int i = 0; i < 200; ++i) {
    const auto& rec = index.database().record(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(index.database().size()) - 1)));
    queries.push_back(core::DistortFingerprint(rec.descriptor, sigma, &rng));
  }

  // Learn the best partition depth (Section IV-A).
  const auto tuned = core::TuneDepth(
      index, model, {queries.begin(), queries.begin() + 30}, 0.8,
      core::DefaultDepthCandidates(index.database().size(), 160));
  std::printf("tuned partition depth p_min = %d\n", tuned.best_depth);

  // Compare the three search strategies at equal expectation.
  const ChiNormDistribution chi(fp::kDims, sigma);
  Table table({"strategy", "avg_ms", "avg_results", "records_scanned"});
  {
    core::QueryOptions options;
    options.filter.alpha = 0.8;
    options.filter.depth = tuned.best_depth;
    double ms = 0;
    double results = 0;
    double scanned = 0;
    for (const auto& q : queries) {
      const auto r = index.StatisticalQuery(q, model, options);
      ms += (r.stats.filter_seconds + r.stats.refine_seconds) * 1e3;
      results += r.matches.size();
      scanned += r.stats.records_scanned;
    }
    table.AddRow()
        .Add("statistical (alpha=0.8)")
        .Add(ms / queries.size(), 3)
        .Add(results / queries.size(), 4)
        .Add(scanned / queries.size(), 4);
  }
  {
    const double epsilon = chi.Quantile(0.8);
    double ms = 0;
    double results = 0;
    double scanned = 0;
    for (const auto& q : queries) {
      const auto r = index.RangeQuery(q, epsilon, tuned.best_depth);
      ms += (r.stats.filter_seconds + r.stats.refine_seconds) * 1e3;
      results += r.matches.size();
      scanned += r.stats.records_scanned;
    }
    table.AddRow()
        .Add("exact range (same expectation)")
        .Add(ms / queries.size(), 3)
        .Add(results / queries.size(), 4)
        .Add(scanned / queries.size(), 4);
  }
  {
    const double epsilon = chi.Quantile(0.8);
    double ms = 0;
    double results = 0;
    for (int i = 0; i < 20; ++i) {
      const auto r = index.SequentialScan(queries[i], epsilon);
      ms += r.stats.refine_seconds * 1e3;
      results += r.matches.size();
    }
    table.AddRow()
        .Add("sequential scan")
        .Add(ms / 20, 3)
        .Add(results / 20, 4)
        .Add(static_cast<double>(index.database().size()), 4);
  }
  table.Print("index_explorer");

  // Persist and batch-search through the pseudo-disk strategy.
  const std::string path = "/tmp/s3vcd_example.s3db";
  if (!index.database().SaveToFile(path).ok()) {
    std::printf("failed to save database\n");
    return 1;
  }
  core::PseudoDiskOptions disk_options;
  disk_options.section_depth = 3;
  disk_options.query_depth = 14;
  disk_options.alpha = 0.8;
  auto searcher = core::PseudoDiskSearcher::Open(path, disk_options);
  if (!searcher.ok()) {
    std::printf("pseudo-disk open failed: %s\n",
                searcher.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<core::Match>> results;
  core::PseudoDiskBatchStats stats;
  if (!searcher->SearchBatch(queries, model, &results, &stats).ok()) {
    std::printf("pseudo-disk batch failed\n");
    return 1;
  }
  std::printf(
      "pseudo-disk batch of %zu queries: %.2f ms/query total "
      "(filter %.2f + load %.2f + refine %.2f), %llu sections loaded\n",
      queries.size(), stats.AverageTotalMillis(),
      stats.filter_seconds * 1e3 / queries.size(),
      stats.load_seconds * 1e3 / queries.size(),
      stats.refine_seconds * 1e3 / queries.size(),
      static_cast<unsigned long long>(stats.sections_loaded));
  std::remove(path.c_str());
  return 0;
}
