// TV monitoring example (paper Section V-D): a StreamMonitor watches a
// continuous stream and reports copies as voting windows complete, the way
// the INA system continuously monitors a TV channel against its archive.
//
// Build & run:  ./build/examples/tv_monitoring

#include <cstdio>

#include "cbcd/detector.h"
#include "core/database.h"
#include "core/distortion_model.h"
#include "core/index.h"
#include "core/synthetic_db.h"
#include "fingerprint/extractor.h"
#include "media/synthetic.h"
#include "media/transforms.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace s3vcd;

namespace {

media::VideoSequence Clip(uint64_t seed, int frames) {
  media::SyntheticVideoConfig config;
  config.width = 96;
  config.height = 80;
  config.num_frames = frames;
  config.seed = seed;
  return media::GenerateSyntheticVideo(config);
}

}  // namespace

int main() {
  // Reference archive: 5 clips plus resampled distractor fingerprints to
  // make the index non-trivial.
  const fp::FingerprintExtractor extractor;
  core::DatabaseBuilder builder;
  std::vector<media::VideoSequence> archive;
  std::vector<fp::Fingerprint> pool;
  for (uint32_t id = 0; id < 5; ++id) {
    archive.push_back(Clip(100 + id, 200));
    const auto fps = extractor.Extract(archive.back());
    builder.AddVideo(id, fps);
    for (const auto& lf : fps) {
      pool.push_back(lf.descriptor);
    }
  }
  Rng rng(7);
  core::AppendDistractors(&builder, pool, 100000, core::DistractorOptions{},
                          &rng);
  const core::S3Index index(builder.Build());
  std::printf("archive: %zu fingerprints indexed\n",
              index.database().size());

  // The "broadcast": filler, then a contrast-boosted rerun of clip 3, more
  // filler, then an exact rerun of clip 1.
  media::VideoSequence stream;
  stream.fps = 25.0;
  auto append = [&stream](const media::VideoSequence& part) {
    stream.frames.insert(stream.frames.end(), part.frames.begin(),
                         part.frames.end());
  };
  append(Clip(901, 150));
  append(media::TransformChain::Contrast(1.5).Apply(archive[3], &rng));
  append(Clip(902, 120));
  append(archive[1]);
  append(Clip(903, 100));
  std::printf("stream: %.1f seconds of video\n",
              stream.duration_seconds());

  const core::GaussianDistortionModel model(15.0);
  cbcd::DetectorOptions options;
  options.query.filter.alpha = 0.8;
  options.query.filter.depth = 12;
  options.vote.use_spatial_coherence = true;
  options.nsim_threshold = 8;
  const cbcd::CopyDetector detector(&index, &model, options);
  cbcd::StreamMonitor::Options monitor_options;
  monitor_options.window_keyframes = 14;
  monitor_options.window_overlap = 5;
  cbcd::StreamMonitor monitor(&detector, monitor_options);

  // Feed key-frames as they "arrive".
  Stopwatch watch;
  const auto stream_fps = extractor.Extract(stream);
  cbcd::DetectionStats stats;
  size_t i = 0;
  while (i < stream_fps.size()) {
    std::vector<fp::LocalFingerprint> keyframe;
    const uint32_t tc = stream_fps[i].time_code;
    while (i < stream_fps.size() && stream_fps[i].time_code == tc) {
      keyframe.push_back(stream_fps[i]);
      ++i;
    }
    for (const auto& d : monitor.PushKeyFrame(keyframe, &stats)) {
      std::printf(
          "[stream t=%5.1fs] COPY: reference id %u starts at stream frame "
          "%+.0f (nsim %d)\n",
          tc / stream.fps, d.id, d.offset, d.nsim);
    }
  }
  for (const auto& d : monitor.Flush(&stats)) {
    std::printf("[stream end   ] COPY: reference id %u at %+.0f (nsim %d)\n",
                d.id, d.offset, d.nsim);
  }
  const double elapsed = watch.ElapsedSeconds();
  std::printf("monitored %.1f s of video in %.1f s => %.2fx real time\n",
              stream.duration_seconds(), elapsed,
              stream.duration_seconds() / elapsed);
  return 0;
}
