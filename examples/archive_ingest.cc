// Archive ingestion example: the paper's index is deliberately static, but
// a TV archive grows every day. DynamicIndex layers a write buffer over
// the static S3 structure so freshly ingested programmes are searchable
// immediately, with periodic compaction folding them into the sorted file.
//
// Build & run:  ./build/examples/archive_ingest

#include <cstdio>

#include "cbcd/detector.h"
#include "core/database.h"
#include "core/distortion_model.h"
#include "core/dynamic_index.h"
#include "core/synthetic_db.h"
#include "fingerprint/extractor.h"
#include "media/synthetic.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace s3vcd;

namespace {

media::VideoSequence Programme(uint64_t seed) {
  media::SyntheticVideoConfig config;
  config.width = 96;
  config.height = 80;
  config.num_frames = 200;
  config.seed = seed;
  return media::GenerateSyntheticVideo(config);
}

// Counts how many fingerprints of `fps` retrieve their exact descriptor.
int CountRetrieved(const core::DynamicIndex& index,
                   const std::vector<fp::LocalFingerprint>& fps,
                   const core::DistortionModel& model) {
  core::QueryOptions options;
  options.filter.alpha = 0.9;
  options.filter.depth = 14;
  int hits = 0;
  for (const auto& lf : fps) {
    const auto result = index.StatisticalQuery(lf.descriptor, model, options);
    for (const auto& m : result.matches) {
      if (m.distance == 0.0f) {
        ++hits;
        break;
      }
    }
  }
  return hits;
}

}  // namespace

int main() {
  // Day 0: the existing archive (3 programmes + distractor bulk).
  const fp::FingerprintExtractor extractor;
  core::DatabaseBuilder builder;
  std::vector<fp::Fingerprint> pool;
  for (uint32_t id = 0; id < 3; ++id) {
    const auto fps = extractor.Extract(Programme(42 + id));
    builder.AddVideo(id, fps);
    for (const auto& lf : fps) {
      pool.push_back(lf.descriptor);
    }
  }
  Rng rng(7);
  core::AppendDistractors(&builder, pool, 150000, core::DistractorOptions{},
                          &rng);
  core::DynamicIndex archive{core::S3Index(builder.Build())};
  std::printf("day 0 archive: %zu fingerprints (static)\n",
              archive.total_size());

  const core::GaussianDistortionModel model(12.0);

  // Day 1: a new programme arrives and must be searchable immediately.
  const media::VideoSequence fresh = Programme(1000);
  const auto fresh_fps = extractor.Extract(fresh);
  std::printf("before ingest: %d/%zu of the new programme's fingerprints "
              "retrieved\n",
              CountRetrieved(archive, fresh_fps, model), fresh_fps.size());

  Stopwatch watch;
  for (const auto& lf : fresh_fps) {
    archive.Insert(lf.descriptor, /*id=*/100, lf.time_code, lf.x, lf.y);
  }
  std::printf("ingested %zu fingerprints in %.2f ms (buffered: %zu)\n",
              fresh_fps.size(), watch.ElapsedMillis(),
              archive.pending_inserts());
  std::printf("after ingest:  %d/%zu retrieved (no rebuild yet)\n",
              CountRetrieved(archive, fresh_fps, model), fresh_fps.size());

  // Nightly compaction folds the buffer into the sorted structure.
  watch.Reset();
  archive.Compact();
  std::printf("compacted into the static index in %.0f ms; buffered: %zu\n",
              watch.ElapsedMillis(), archive.pending_inserts());
  std::printf("after compact: %d/%zu retrieved\n",
              CountRetrieved(archive, fresh_fps, model), fresh_fps.size());
  return 0;
}
