// Ablation of the distortion model (the paper's Section VI suggestion that
// richer statistical modeling "should probably improve the efficiency and
// the precision"): the isotropic single-sigma model of Section IV-C versus
// the per-component Gaussian extension, evaluated on genuinely anisotropic
// distortion measured from a real transformation of the media stack.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "fingerprint/distortion.h"
#include "util/table.h"
#include "util/timer.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("ablation_model",
              "isotropic sigma vs per-component sigma distortion model");
  const int kClips = static_cast<int>(Scaled(8));
  const uint64_t kDbSize = Scaled(200000);

  // Measure the true per-component distortion of a mixed transformation.
  media::TransformChain chain = media::TransformChain::Resize(0.85);
  chain.Then(media::TransformType::kNoise, 5.0);
  Rng rng(668);
  std::vector<fp::DistortionSample> samples;
  core::DatabaseBuilder builder;
  std::vector<fp::Fingerprint> pool;
  const fp::FingerprintExtractor extractor;
  for (int c = 0; c < kClips; ++c) {
    const media::VideoSequence video =
        media::GenerateSyntheticVideo(ClipConfig(13100 + c));
    const auto s = fp::CollectDistortionSamples(
        video, chain, fp::PerfectDetectorOptions{}, &rng);
    samples.insert(samples.end(), s.begin(), s.end());
    builder.AddVideo(static_cast<uint32_t>(c), extractor.Extract(video));
    for (const auto& sample : s) {
      pool.push_back(sample.reference);
    }
  }
  const fp::DistortionStats stats = fp::ComputeDistortionStats(samples);
  double sigma_min = 1e9;
  double sigma_max = 0;
  std::array<double, fp::kDims> sigmas{};
  for (int j = 0; j < fp::kDims; ++j) {
    sigmas[j] = std::max(1.0, stats.component_sigma[j]);
    sigma_min = std::min(sigma_min, sigmas[j]);
    sigma_max = std::max(sigma_max, sigmas[j]);
  }
  std::printf(
      "measured per-component sigma range: [%.1f, %.1f], mean %.1f "
      "(%zu samples)\n",
      sigma_min, sigma_max, stats.sigma, samples.size());

  if (builder.size() < kDbSize) {
    core::AppendDistractors(&builder, pool, kDbSize - builder.size(),
                            core::DistractorOptions{}, &rng);
  }
  const core::S3Index index(builder.Build());

  const core::GaussianDistortionModel isotropic(stats.sigma);
  const core::PerComponentGaussianModel per_component(sigmas);

  Table table({"model", "alpha_pct", "retrieval_rate_pct", "avg_ms",
               "avg_blocks", "avg_results"});
  for (double alpha : {0.7, 0.85, 0.95}) {
    struct ModelCase {
      const char* name;
      const core::DistortionModel* model;
    };
    const ModelCase cases[] = {{"isotropic", &isotropic},
                               {"per_component", &per_component}};
    for (const auto& c : cases) {
      core::QueryOptions options;
      options.filter.alpha = alpha;
      options.filter.depth = 14;
      int hits = 0;
      uint64_t blocks = 0;
      uint64_t results = 0;
      Stopwatch watch;
      for (const auto& s : samples) {
        const core::QueryResult r =
            index.StatisticalQuery(s.distorted, *c.model, options);
        blocks += r.stats.blocks_selected;
        results += r.matches.size();
        const double target = fp::Distance(s.distorted, s.reference);
        for (const auto& m : r.matches) {
          if (std::abs(m.distance - target) < 1e-3) {
            ++hits;
            break;
          }
        }
      }
      table.AddRow()
          .Add(c.name)
          .Add(100 * alpha, 3)
          .Add(100.0 * hits / samples.size(), 4)
          .Add(watch.ElapsedMillis() / samples.size(), 4)
          .Add(static_cast<double>(blocks) / samples.size(), 4)
          .Add(static_cast<double>(results) / samples.size(), 4);
    }
  }
  table.Print("ablation_model");
  std::printf(
      "expected shape: at equal alpha the per-component model reaches the\n"
      "same or better retrieval while selecting its mass where the real\n"
      "distortion lives (fewer wasted results on stiff components)\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
