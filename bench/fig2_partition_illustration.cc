// Reproduces Figure 2 of the paper: the space partition induced by the
// Hilbert curve for D = 2, K = 4 at depths p = 3, 4, 5 — "a set of 2^p
// hyper-rectangular blocks of same volume and shape but of different
// orientations". Rendered as ASCII (each cell labelled by its block id)
// and verified programmatically.

#include <cstdio>
#include <functional>
#include <set>
#include <vector>

#include "hilbert/block_tree.h"
#include "hilbert/hilbert_curve.h"

namespace s3vcd::bench {
namespace {

int Main() {
  std::printf(
      "==============================================================\n"
      "fig2_partition_illustration — Hilbert p-blocks, D=2 K=4\n"
      "==============================================================\n");
  const hilbert::HilbertCurve curve(2, 4);
  const hilbert::BlockTree tree(curve);

  for (int depth : {3, 4, 5}) {
    std::vector<hilbert::BlockTree::Node> blocks;
    std::function<void(const hilbert::BlockTree::Node&)> descend =
        [&](const hilbert::BlockTree::Node& node) {
          if (node.depth == depth) {
            blocks.push_back(node);
            return;
          }
          hilbert::BlockTree::Node c0;
          hilbert::BlockTree::Node c1;
          tree.Split(node, &c0, &c1);
          descend(c0);
          descend(c1);
        };
    descend(tree.Root());

    // Render: cell (x, y) labelled by the index of its block along the
    // curve (base-36 so depth 5's 32 blocks stay one character).
    std::printf("\np = %d: 2^%d = %zu blocks\n", depth, depth,
                blocks.size());
    const int size = static_cast<int>(curve.grid_size());
    for (int y = size - 1; y >= 0; --y) {
      std::printf("  ");
      for (int x = 0; x < size; ++x) {
        int label = -1;
        for (size_t b = 0; b < blocks.size(); ++b) {
          if (static_cast<uint32_t>(x) >= blocks[b].lo[0] &&
              static_cast<uint32_t>(x) < blocks[b].hi[0] &&
              static_cast<uint32_t>(y) >= blocks[b].lo[1] &&
              static_cast<uint32_t>(y) < blocks[b].hi[1]) {
            label = static_cast<int>(b);
            break;
          }
        }
        std::printf("%c",
                    label < 10 ? static_cast<char>('0' + label)
                               : static_cast<char>('a' + label - 10));
      }
      std::printf("\n");
    }

    // Verify the figure's caption: same volume and shape (up to
    // orientation), pairwise disjoint, covering.
    uint64_t volume = 0;
    std::multiset<std::pair<uint32_t, uint32_t>> shapes;
    uint64_t total = 0;
    for (const auto& b : blocks) {
      const uint32_t w = b.hi[0] - b.lo[0];
      const uint32_t h = b.hi[1] - b.lo[1];
      volume = w * h;
      shapes.insert({std::min(w, h), std::max(w, h)});
      total += w * h;
    }
    const bool same_shape =
        shapes.count(*shapes.begin()) == shapes.size();
    std::printf(
      "  volume per block = %llu cells; same shape up to orientation: %s; "
      "union covers grid: %s\n",
      static_cast<unsigned long long>(volume), same_shape ? "yes" : "NO",
      total == curve.grid_size() * curve.grid_size() ? "yes" : "NO");
  }
  std::printf(
      "\npaper Figure 2: equal-volume hyper-rectangles whose orientation\n"
      "varies with the local curve direction\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
