// Reproduces Figure 8 of the paper: detection-rate abacuses of the full
// video CBCD system versus the strength of each of the five transformation
// families, for several database sizes (alpha fixed at 80%), plus the
// accompanying table of average single-fingerprint search times per DB
// size. The paper's headline: the DB size barely affects the detection
// rate, because the statistical query guarantees the same expectation at
// any size and the voting stage absorbs the extra false fingerprints.

#include <cstdio>

#include "bench_common.h"
#include "util/math.h"
#include "util/table.h"
#include "util/timer.h"

namespace s3vcd::bench {
namespace {

// Calibrates the decision threshold for one index so that unrelated clips
// produce no detection (the paper tunes it for < 1 false alarm per hour).
int CalibrateThreshold(const core::S3Index& index,
                       const core::DistortionModel& model,
                       const fp::FingerprintExtractor& extractor,
                       const cbcd::DetectorOptions& base_options) {
  cbcd::DetectorOptions probe = base_options;
  probe.nsim_threshold = 0;
  const cbcd::CopyDetector detector(&index, &model, probe);
  int max_spurious = 0;
  for (int u = 0; u < 4; ++u) {
    const auto fps = extractor.Extract(
        media::GenerateSyntheticVideo(ClipConfig(987000 + u)));
    const auto detections = detector.DetectClip(fps);
    if (!detections.empty()) {
      max_spurious = std::max(max_spurious, detections[0].nsim);
    }
  }
  return max_spurious + std::max(2, max_spurious / 4);
}

int Main() {
  PrintHeader("fig8_dbsize_abacus",
              "CBCD detection rate vs transformation strength per DB size");
  const int kNumVideos = 12;
  const int kClipsPerPoint = static_cast<int>(Scaled(6));
  const double kAlpha = 0.80;
  const double kSigma = 20.0;
  std::vector<uint64_t> db_sizes = {Scaled(25000), Scaled(100000),
                                    Scaled(400000), Scaled(1200000)};

  Corpus corpus = BuildCorpus(kNumVideos, 1, 4100);
  const core::GaussianDistortionModel model(kSigma);
  Rng rng(558);

  // Pre-extract every transformed candidate once; reuse across DB sizes.
  struct CandidateSet {
    std::string family;
    double parameter;
    // One entry per candidate clip: (expected id, fingerprints).
    std::vector<std::pair<uint32_t, std::vector<fp::LocalFingerprint>>>
        clips;
  };
  std::vector<CandidateSet> candidates;
  const auto sweeps = PaperTransformSweeps();
  for (const auto& sweep : sweeps) {
    for (double parameter : sweep.parameters) {
      CandidateSet set;
      set.family = sweep.family;
      set.parameter = parameter;
      const media::TransformChain chain = sweep.MakeChain(parameter);
      for (int c = 0; c < kClipsPerPoint; ++c) {
        const uint32_t vid = static_cast<uint32_t>(c % kNumVideos);
        const media::VideoSequence transformed =
            chain.Apply(corpus.videos[vid], &rng);
        set.clips.emplace_back(vid, corpus.extractor.Extract(transformed));
      }
      candidates.push_back(std::move(set));
    }
  }
  std::printf("prepared %zu (family, parameter) candidate sets\n",
              candidates.size());

  Table rates({"family", "parameter", "db_size", "video_hours",
               "detection_rate_pct", "threshold_nsim"});
  Table times({"db_size", "video_hours", "fingerprints",
               "avg_search_ms_per_fingerprint"});
  for (uint64_t size : db_sizes) {
    const auto index = RebuildIndexWithSize(corpus, size, size);
    cbcd::DetectorOptions options;
    options.query.filter.alpha = kAlpha;
    // Partition depth follows the DB size, as the paper's response-time
    // tuner would pick (p ~ log2 of the record count).
    options.query.filter.depth =
        std::max(12, Log2Exact(NextPowerOfTwo(size)) - 3);
    const int threshold =
        CalibrateThreshold(*index, model, corpus.extractor, options);
    options.nsim_threshold = threshold;
    const cbcd::CopyDetector detector(index.get(), &model, options);

    cbcd::DetectionStats stats;
    for (const auto& set : candidates) {
      int detected = 0;
      for (const auto& [vid, fps] : set.clips) {
        const auto detections = detector.DetectClip(fps, &stats);
        if (ClipDetected(detections, vid, 0.0)) {
          ++detected;
        }
      }
      rates.AddRow()
          .Add(set.family)
          .Add(set.parameter, 4)
          .Add(size)
          .Add(FingerprintsToHours(size), 3)
          .Add(100.0 * detected / set.clips.size(), 4)
          .Add(static_cast<int64_t>(threshold));
    }
    times.AddRow()
        .Add(size)
        .Add(FingerprintsToHours(size), 3)
        .Add(static_cast<uint64_t>(index->database().size()))
        .Add(stats.queries == 0
                 ? 0.0
                 : stats.search_seconds * 1e3 / stats.queries,
             4);
  }
  rates.Print("fig8_rates");
  times.Print("fig8_times");
  std::printf(
      "paper: rate vs strength falls off at severe transformations but is\n"
      "almost independent of the DB size; search time grows sub-linearly\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
