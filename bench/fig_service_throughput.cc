// Throughput figure for the sharded batch query service (src/service/):
// sweeps shard count x batch size through the full QueryService, decomposes
// per-query scan time into per-shard tasks (the scaling signal: the ratio
// sum/max of per-shard scan times is the speedup sharding makes available
// to the per-(query, shard) fan-out of BatchStatisticalQuery — a
// wall-clock-independent measure, since CI boxes may expose one core),
// then sweeps queue depth under a deliberately overloaded producer to
// demonstrate the admission-control contract (bounded queue,
// reject-with-kUnavailable). The # METRICS block emitted at exit carries
// the cumulative service.* counters, including service.admission_rejects.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/synthetic_db.h"
#include "service/query_service.h"
#include "service/sharded_searcher.h"
#include "util/table.h"
#include "util/timer.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("fig_service_throughput",
              "sharded batch service: throughput and per-shard scan "
              "decomposition vs shards/batch, admission rejects vs queue "
              "depth");
  const uint64_t kDbSize = Scaled(150000);
  const double kSigma = 14.0;
  Corpus corpus = BuildCorpus(6, kDbSize, 9300);
  const core::GaussianDistortionModel model(kSigma);
  Rng rng(477);

  // A fixed pool of distorted self-queries. Sweeps draw from it
  // round-robin (restarting per configuration), so once a configuration
  // cycles through the pool the selection cache sees repeats.
  std::vector<fp::Fingerprint> pool;
  for (int i = 0; i < 32; ++i) {
    const size_t idx = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(corpus.db().size()) - 1));
    pool.push_back(core::DistortFingerprint(
        corpus.db().record(idx).descriptor, kSigma, &rng));
  }
  size_t next_query = 0;
  auto make_batch = [&](size_t batch_size) {
    std::vector<fp::Fingerprint> batch;
    batch.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      batch.push_back(pool[next_query++ % pool.size()]);
    }
    return batch;
  };

  core::QueryOptions query_options;
  query_options.filter.alpha = 0.8;
  query_options.filter.depth = 12;

  service::QueryServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.threads_per_batch = 4;
  service_options.query = query_options;

  // --- Sweep 1: shard count x batch size through the QueryService, queue
  // never overflows. Wall-clock throughput scales with shards when the
  // host grants enough cores to the worker pools. ---
  const size_t kBatchesPerConfig = static_cast<size_t>(Scaled(12));
  Table scaling({"shards", "batch", "queries", "wall_ms", "queries_per_sec",
                 "cache_hit_rate", "avg_execute_ms"});
  for (int shards : {1, 2, 4, 8}) {
    service::ShardedSearcherOptions shard_options;
    shard_options.num_shards = shards;
    shard_options.policy = service::ShardingPolicy::kRefIdHash;
    auto searcher = service::ShardedSearcher::Build(CopyDatabase(corpus),
                                                    shard_options);
    if (!searcher.ok()) {
      std::printf("FATAL: %s\n", searcher.status().ToString().c_str());
      return 1;
    }
    for (size_t batch_size : {size_t{4}, size_t{32}}) {
      service_options.max_queue_depth = 64;
      service::QueryService service(&*searcher, &model, service_options);
      next_query = 0;
      std::vector<service::BatchTicket> tickets;
      Stopwatch wall;
      for (size_t b = 0; b < kBatchesPerConfig; ++b) {
        auto ticket = service.Submit(make_batch(batch_size));
        if (!ticket.ok()) {
          std::printf("FATAL: %s\n", ticket.status().ToString().c_str());
          return 1;
        }
        tickets.push_back(*ticket);
      }
      size_t queries = 0;
      double execute_ms = 0;
      for (const service::BatchTicket& ticket : tickets) {
        const service::BatchResult& result = ticket->Wait();
        queries += result.queries_executed;
        execute_ms += result.execute_ms;
      }
      const double wall_ms = wall.ElapsedSeconds() * 1e3;
      scaling.AddRow()
          .Add(static_cast<int64_t>(shards))
          .Add(static_cast<uint64_t>(batch_size))
          .Add(static_cast<uint64_t>(queries))
          .Add(wall_ms, 4)
          .Add(static_cast<uint64_t>(queries / (wall_ms / 1e3)))
          .Add(service.cache()->HitRate(), 3)
          .Add(execute_ms / static_cast<double>(tickets.size()), 3);
    }
  }
  scaling.Print("service_shard_scaling");

  // --- Sweep 2: per-shard scan decomposition, shards x policy. For each
  // query: one shared selection (the invariant of docs/query_service.md),
  // then each shard's refinement scan timed separately. sum(t_k) is the
  // serial cost, max(t_k) the critical path under per-shard fan-out;
  // their ratio is the parallel speedup shard count makes available. ---
  Table decomposition({"shards", "policy", "scan_cpu_ms_per_q",
                       "scan_critical_ms_per_q", "parallel_speedup"});
  for (const auto policy : {service::ShardingPolicy::kHilbertRange,
                            service::ShardingPolicy::kRefIdHash}) {
    for (int shards : {1, 2, 4, 8}) {
      service::ShardedSearcherOptions shard_options;
      shard_options.num_shards = shards;
      shard_options.policy = policy;
      auto searcher = service::ShardedSearcher::Build(CopyDatabase(corpus),
                                                      shard_options);
      if (!searcher.ok()) {
        std::printf("FATAL: %s\n", searcher.status().ToString().c_str());
        return 1;
      }
      // ShardedSearcher::Build defaults to the block-structured "dynamic"
      // backend, so the shared-selection decomposition always applies here.
      const core::BlockFilter& filter = *searcher->shard(0).selection_filter();
      double cpu_seconds = 0;
      double critical_seconds = 0;
      for (const fp::Fingerprint& query : pool) {
        const core::BlockSelection selection =
            filter.SelectStatistical(query, model, query_options.filter);
        double worst = 0;
        for (int k = 0; k < shards; ++k) {
          Stopwatch scan;
          core::QueryResult partial;
          searcher->shard(k).ScanSelection(query, selection,
                                           query_options.refinement,
                                           query_options.radius, &model,
                                           &partial);
          const double t = scan.ElapsedSeconds();
          cpu_seconds += t;
          worst = std::max(worst, t);
        }
        critical_seconds += worst;
      }
      const double per_q = 1e3 / static_cast<double>(pool.size());
      decomposition.AddRow()
          .Add(static_cast<int64_t>(shards))
          .Add(policy == service::ShardingPolicy::kHilbertRange ? "range"
                                                                : "hash")
          .Add(cpu_seconds * per_q, 4)
          .Add(critical_seconds * per_q, 4)
          .Add(cpu_seconds / critical_seconds, 3);
    }
  }
  decomposition.Print("service_scan_decomposition");

  // --- Sweep 3: queue depth under overload. Workers start paused so the
  // producer outruns them by construction: exactly `depth` submissions are
  // admitted and the rest bounce with kUnavailable. Resume then drains. ---
  service::ShardedSearcherOptions shard_options;
  shard_options.num_shards = 4;
  auto searcher = service::ShardedSearcher::Build(CopyDatabase(corpus),
                                                  shard_options);
  if (!searcher.ok()) {
    std::printf("FATAL: %s\n", searcher.status().ToString().c_str());
    return 1;
  }
  Table admission({"queue_depth", "offered", "accepted", "rejected",
                   "drain_ms"});
  for (size_t depth : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    service_options.max_queue_depth = depth;
    service_options.start_paused = true;
    service::QueryService service(&*searcher, &model, service_options);
    const size_t offered = 2 * depth + 4;
    size_t rejected = 0;
    std::vector<service::BatchTicket> tickets;
    for (size_t b = 0; b < offered; ++b) {
      auto ticket = service.Submit(make_batch(16));
      if (ticket.ok()) {
        tickets.push_back(*ticket);
      } else if (ticket.status().code() == StatusCode::kUnavailable) {
        ++rejected;  // backpressure: a real producer would retry later
      } else {
        std::printf("FATAL: %s\n", ticket.status().ToString().c_str());
        return 1;
      }
    }
    Stopwatch drain;
    service.Resume();
    for (const service::BatchTicket& ticket : tickets) {
      ticket->Wait();
    }
    admission.AddRow()
        .Add(static_cast<uint64_t>(depth))
        .Add(static_cast<uint64_t>(offered))
        .Add(static_cast<uint64_t>(tickets.size()))
        .Add(static_cast<uint64_t>(rejected))
        .Add(drain.ElapsedSeconds() * 1e3, 4);
    service_options.start_paused = false;
  }
  admission.Print("service_admission_control");

  std::printf(
      "takeaway: hash sharding balances scan work so sum/max -> K (the\n"
      "speedup the per-shard fan-out can realize given cores); range\n"
      "sharding concentrates each query on few shards. The bounded queue\n"
      "converts overload into kUnavailable rejects, not unbounded latency\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
