// Reproduces Figure 9 of the paper: detection-rate abacuses of the full
// video CBCD system versus the strength of each transformation family, for
// several values of the query expectation alpha (DB size fixed), plus the
// table of average single-fingerprint search times per alpha. The paper's
// headline: lowering alpha from 95% to 70% leaves the detection rate
// almost invariant while the search gets ~4x faster -- trading quality for
// time is highly profitable when a voting strategy follows the search.

#include <cstdio>

#include "bench_common.h"
#include "util/math.h"
#include "util/table.h"
#include "util/timer.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("fig9_alpha_abacus",
              "CBCD detection rate vs transformation strength per alpha");
  const int kNumVideos = 12;
  const int kClipsPerPoint = static_cast<int>(Scaled(6));
  const double kSigma = 20.0;
  const uint64_t kDbSize = Scaled(400000);
  const std::vector<double> kAlphas = {0.95, 0.90, 0.80, 0.70, 0.50};
  // p ~ log2 of the DB size, as the paper's tuner would pick.
  const int kDepth =
      std::max(12, Log2Exact(NextPowerOfTwo(kDbSize)) - 3);

  Corpus corpus = BuildCorpus(kNumVideos, kDbSize, 4100);
  const core::S3Index& index = *corpus.index;
  const core::GaussianDistortionModel model(kSigma);
  Rng rng(559);

  // Pre-extract the transformed candidates once; reuse across alphas.
  struct CandidateSet {
    std::string family;
    double parameter;
    std::vector<std::pair<uint32_t, std::vector<fp::LocalFingerprint>>>
        clips;
  };
  std::vector<CandidateSet> candidates;
  for (const auto& sweep : PaperTransformSweeps()) {
    for (double parameter : sweep.parameters) {
      CandidateSet set;
      set.family = sweep.family;
      set.parameter = parameter;
      const media::TransformChain chain = sweep.MakeChain(parameter);
      for (int c = 0; c < kClipsPerPoint; ++c) {
        const uint32_t vid = static_cast<uint32_t>(c % kNumVideos);
        const media::VideoSequence transformed =
            chain.Apply(corpus.videos[vid], &rng);
        set.clips.emplace_back(vid, corpus.extractor.Extract(transformed));
      }
      candidates.push_back(std::move(set));
    }
  }
  std::printf("prepared %zu (family, parameter) candidate sets\n",
              candidates.size());

  // Calibrate the decision threshold once (at the largest alpha) so every
  // alpha faces the same decision rule, as in the paper.
  int threshold = 0;
  {
    cbcd::DetectorOptions probe;
    probe.query.filter.alpha = kAlphas.front();
    probe.query.filter.depth = kDepth;
    probe.nsim_threshold = 0;
    const cbcd::CopyDetector detector(&index, &model, probe);
    for (int u = 0; u < 4; ++u) {
      const auto fps = corpus.extractor.Extract(
          media::GenerateSyntheticVideo(ClipConfig(986000 + u)));
      const auto detections = detector.DetectClip(fps);
      if (!detections.empty()) {
        threshold = std::max(threshold, detections[0].nsim);
      }
    }
    threshold += std::max(2, threshold / 4);
  }
  std::printf("calibrated nsim threshold = %d\n", threshold);

  Table rates({"family", "parameter", "alpha_pct", "detection_rate_pct"});
  Table times({"alpha_pct", "avg_search_ms_per_fingerprint"});
  for (double alpha : kAlphas) {
    cbcd::DetectorOptions options;
    options.query.filter.alpha = alpha;
    options.query.filter.depth = kDepth;
    options.nsim_threshold = threshold;
    const cbcd::CopyDetector detector(&index, &model, options);

    cbcd::DetectionStats stats;
    for (const auto& set : candidates) {
      int detected = 0;
      for (const auto& [vid, fps] : set.clips) {
        const auto detections = detector.DetectClip(fps, &stats);
        if (ClipDetected(detections, vid, 0.0)) {
          ++detected;
        }
      }
      rates.AddRow()
          .Add(set.family)
          .Add(set.parameter, 4)
          .Add(100 * alpha, 3)
          .Add(100.0 * detected / set.clips.size(), 4);
    }
    times.AddRow()
        .Add(100 * alpha, 3)
        .Add(stats.queries == 0
                 ? 0.0
                 : stats.search_seconds * 1e3 / stats.queries,
             4);
  }
  rates.Print("fig9_rates");
  times.Print("fig9_times");
  std::printf(
      "paper: detection rate nearly invariant from alpha=95%% down to 70%%\n"
      "while the search is ~4x faster; it degrades only around 50%%\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
