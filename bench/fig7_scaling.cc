// Reproduces Figure 7 of the paper: average search time (ms) versus the
// database size, for the S3 statistical method (alpha = 80%, sigma = 20)
// and the sequential scan baseline (epsilon matched for equal expectation,
// the paper's 93.6 at sigma = 20). Both axes are meant to be read in log
// scale: the sequential scan is linear in the DB size while the S3 curve
// is sub-linear, so the gain grows with the size (the paper reaches 2500x
// at 1.5e9 fingerprints; we sweep a laptop-scale range).

#include <cstdio>

#include "bench_common.h"
#include "core/tuner.h"
#include "util/math.h"
#include "util/table.h"
#include "util/timer.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("fig7_scaling",
              "average search time vs DB size: S3 vs sequential scan");
  const double kAlpha = 0.80;
  const double kSigma = 20.0;
  const int kStatQueries = static_cast<int>(Scaled(300));
  const int kScanQueries = static_cast<int>(Scaled(12));

  const ChiNormDistribution chi(fp::kDims, kSigma);
  const double epsilon = chi.Quantile(kAlpha);
  std::printf("epsilon for equal expectation = %.1f (paper used 93.6)\n",
              epsilon);

  // One shared pool of real fingerprints; the index is rebuilt per size.
  Corpus corpus = BuildCorpus(6, 1, 3100);
  const core::GaussianDistortionModel model(kSigma);
  Rng rng(557);

  std::vector<uint64_t> sizes;
  for (int e = 13; e <= 21; ++e) {
    sizes.push_back(Scaled(uint64_t{1} << e));
  }

  Table table({"db_size", "video_hours", "s3_ms", "scan_ms", "gain",
               "depth_p", "s3_scanned_records"});
  for (uint64_t size : sizes) {
    const auto index = RebuildIndexWithSize(corpus, size, size);
    // Depth tuned per size as in Section IV-A (coarse ladder, few queries).
    std::vector<fp::Fingerprint> tune_queries;
    for (int i = 0; i < 20; ++i) {
      const size_t idx = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(index->database().size()) - 1));
      tune_queries.push_back(core::DistortFingerprint(
          index->database().record(idx).descriptor, kSigma, &rng));
    }
    const core::DepthTuningResult tuned = core::TuneDepth(
        *index, model, tune_queries, kAlpha,
        core::DefaultDepthCandidates(index->database().size(), 160));

    std::vector<fp::Fingerprint> queries;
    for (int i = 0; i < kStatQueries; ++i) {
      const size_t idx = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(index->database().size()) - 1));
      queries.push_back(core::DistortFingerprint(
          index->database().record(idx).descriptor, kSigma, &rng));
    }

    core::QueryOptions stat;
    stat.filter.alpha = kAlpha;
    stat.filter.depth = tuned.best_depth;
    // Timed loop runs through the backend-agnostic interface (depth tuning
    // above is S3-specific and stays concrete).
    const core::Searcher& searcher = *index;
    Stopwatch watch;
    uint64_t scanned = 0;
    for (const auto& q : queries) {
      const core::QueryResult r = searcher.StatQuery(q, model, stat);
      scanned += r.stats.records_scanned;
    }
    const double s3_ms = watch.ElapsedMillis() / queries.size();

    watch.Reset();
    for (int i = 0; i < kScanQueries; ++i) {
      const core::QueryResult r = index->SequentialScan(queries[i], epsilon);
      (void)r;
    }
    const double scan_ms = watch.ElapsedMillis() / kScanQueries;

    table.AddRow()
        .Add(size)
        .Add(FingerprintsToHours(size), 3)
        .Add(s3_ms, 4)
        .Add(scan_ms, 4)
        .Add(scan_ms / (s3_ms > 0 ? s3_ms : 1e-9), 4)
        .Add(tuned.best_depth)
        .Add(static_cast<double>(scanned) / queries.size(), 4);
  }
  table.Print("fig7");
  std::printf(
      "paper: scan time linear in DB size, S3 sub-linear; the gain grows\n"
      "with the size (2500x at 1.5e9 fingerprints on their hardware)\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
