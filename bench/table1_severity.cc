// Reproduces Table I of the paper: retrieval rate R for transformations of
// decreasing severity sigma, with the statistical query tuned for the most
// severe transformation (alpha = 85%, sigma = sigma_max). The paper's
// claim: the rate for the reference transformation is ~alpha and increases
// as the severity decreases, so tuning for the worst case bounds all
// lighter transformations.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "fingerprint/distortion.h"
#include "util/table.h"

namespace s3vcd::bench {
namespace {

struct Case {
  std::string label;
  media::TransformChain chain;
  double delta_pix;
};

int Main() {
  PrintHeader("table1_severity",
              "retrieval rate for transformations of decreasing severity");
  const int kClips = static_cast<int>(Scaled(8));
  const uint64_t kDbSize = Scaled(150000);
  const double kAlpha = 0.85;

  // The paper's Table I rows (wscale/wgamma/wnoise with delta_pix).
  // The 1-pixel imprecision of the paper's 352x288 frames corresponds to
  // ~0.3 pixels at our 96x80 frame size (see DESIGN.md substitutions).
  constexpr double kDpix = 0.3;
  std::vector<Case> cases;
  cases.push_back({"wscale=0.84 dpix~1(0.3 scaled)",
                   media::TransformChain::Resize(0.84), kDpix});
  cases.push_back({"wscale=1.26 dpix~1(0.3 scaled)",
                   media::TransformChain::Resize(1.26), kDpix});
  cases.push_back({"wscale=0.91 dpix~1(0.3 scaled)",
                   media::TransformChain::Resize(0.91), kDpix});
  cases.push_back({"wscale=0.98 dpix~1(0.3 scaled)",
                   media::TransformChain::Resize(0.98), kDpix});
  cases.push_back({"wgamma=2.08 dpix~1(0.3 scaled)",
                   media::TransformChain::Gamma(2.08), kDpix});
  cases.push_back({"wgamma=0.82 dpix~1(0.3 scaled)",
                   media::TransformChain::Gamma(0.82), kDpix});
  cases.push_back({"wnoise=10.0 dpix=0",
                   media::TransformChain::Noise(10.0), 0.0});

  // Shared clips and reference database.
  Rng rng(777);
  std::vector<media::VideoSequence> videos;
  core::DatabaseBuilder builder;
  std::vector<fp::Fingerprint> pool;
  const fp::FingerprintExtractor extractor;
  for (int c = 0; c < kClips; ++c) {
    videos.push_back(media::GenerateSyntheticVideo(ClipConfig(1400 + c)));
    const auto fps = extractor.Extract(videos.back());
    builder.AddVideo(static_cast<uint32_t>(c), fps);
    for (const auto& lf : fps) {
      pool.push_back(lf.descriptor);
    }
  }
  if (builder.size() < kDbSize) {
    core::AppendDistractors(&builder, pool, kDbSize - builder.size(),
                            core::DistractorOptions{}, &rng);
  }
  const core::S3Index index(builder.Build());

  // Pass 1: estimate the severity sigma of every transformation.
  struct Measured {
    std::string label;
    double sigma;
    std::vector<fp::DistortionSample> samples;
  };
  std::vector<Measured> measured;
  for (const Case& c : cases) {
    fp::PerfectDetectorOptions options;
    options.delta_pix = c.delta_pix;
    std::vector<fp::DistortionSample> samples;
    for (const auto& video : videos) {
      const auto s =
          fp::CollectDistortionSamples(video, c.chain, options, &rng);
      samples.insert(samples.end(), s.begin(), s.end());
    }
    const double sigma = fp::ComputeDistortionStats(samples).sigma;
    measured.push_back({c.label, sigma, std::move(samples)});
  }
  double sigma_max = 0;
  for (const auto& m : measured) {
    sigma_max = std::max(sigma_max, m.sigma);
  }
  std::printf("reference severity sigma_max = %.2f (paper: 23.43)\n",
              sigma_max);

  // Pass 2: retrieval rate with the model fixed at sigma_max, alpha = 85%.
  const core::GaussianDistortionModel model(sigma_max);
  core::QueryOptions query;
  query.filter.alpha = kAlpha;
  query.filter.depth = 14;
  Table table({"transformation", "sigma", "retrieval_rate_pct"});
  for (const auto& m : measured) {
    int retrieved = 0;
    for (const auto& s : m.samples) {
      const core::QueryResult result =
          index.StatisticalQuery(s.distorted, model, query);
      const double target = fp::Distance(s.distorted, s.reference);
      for (const auto& match : result.matches) {
        if (std::abs(match.distance - target) < 1e-3) {
          ++retrieved;
          break;
        }
      }
    }
    const double rate =
        m.samples.empty() ? 0 : 100.0 * retrieved / m.samples.size();
    table.AddRow().Add(m.label).Add(m.sigma, 4).Add(rate, 4);
  }
  table.Print("table1");
  std::printf(
      "paper Table I: R=80.74%% for the most severe transformation and\n"
      "increasing R as sigma decreases (up to 99.79%%)\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
