// Ablation bench (DESIGN.md): design choices of the S3 filtering step.
//  1. Best-first B_alpha (exact minimal set) vs the paper's threshold
//     iteration on eq. (4).
//  2. Index-table range resolution vs pure binary search.
//  3. Partition depth p sensitivity around the tuned optimum, i.e. the
//     T(p) = Tf(p) + Tr(p) trade-off of Section IV-A.

#include <cstdio>

#include "bench_common.h"
#include "core/tuner.h"
#include "util/table.h"
#include "util/timer.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("ablation_filter", "filter algorithm / index table / depth");
  const uint64_t kDbSize = Scaled(400000);
  const int kQueries = static_cast<int>(Scaled(200));
  const double kSigma = 18.0;
  const double kAlpha = 0.8;

  Corpus corpus = BuildCorpus(6, kDbSize, 6100);
  const core::S3Index& index = *corpus.index;
  const core::GaussianDistortionModel model(kSigma);
  Rng rng(661);

  std::vector<fp::Fingerprint> queries;
  for (int i = 0; i < kQueries; ++i) {
    const size_t idx = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(index.database().size()) - 1));
    queries.push_back(core::DistortFingerprint(
        index.database().record(idx).descriptor, kSigma, &rng));
  }

  // 1. Filter algorithm.
  {
    Table table({"algorithm", "avg_ms", "avg_blocks", "avg_mass",
                 "avg_nodes_visited"});
    for (auto algorithm : {core::FilterAlgorithm::kBestFirst,
                           core::FilterAlgorithm::kThresholdSearch}) {
      core::FilterOptions options;
      options.alpha = kAlpha;
      options.depth = 14;
      options.algorithm = algorithm;
      Stopwatch watch;
      double mass = 0;
      uint64_t blocks = 0;
      uint64_t nodes = 0;
      for (const auto& q : queries) {
        const core::BlockSelection sel =
            index.filter().SelectStatistical(q, model, options);
        mass += sel.probability_mass;
        blocks += sel.num_blocks;
        nodes += sel.nodes_visited;
      }
      table.AddRow()
          .Add(algorithm == core::FilterAlgorithm::kBestFirst
                   ? "best_first"
                   : "threshold_search")
          .Add(watch.ElapsedMillis() / kQueries, 4)
          .Add(static_cast<double>(blocks) / kQueries, 4)
          .Add(mass / kQueries, 4)
          .Add(static_cast<double>(nodes) / kQueries, 4);
    }
    table.Print("ablation_filter_algorithm");
  }

  // 2. Index table vs binary search.
  {
    Table table({"range_resolution", "avg_query_ms"});
    core::QueryOptions options;
    options.filter.alpha = kAlpha;
    options.filter.depth = 14;
    {
      Stopwatch watch;
      for (const auto& q : queries) {
        (void)index.StatisticalQuery(q, model, options);
      }
      table.AddRow().Add("index_table_depth_14").Add(
          watch.ElapsedMillis() / kQueries, 4);
    }
    {
      core::S3IndexOptions no_table;
      no_table.index_table_depth = 0;
      core::DatabaseBuilder builder;
      for (size_t v = 0; v < corpus.video_fps.size(); ++v) {
        builder.AddVideo(static_cast<uint32_t>(v), corpus.video_fps[v]);
      }
      Rng pad_rng(kDbSize ^ 0xd15eedULL);
      core::AppendDistractors(&builder, corpus.pool,
                              kDbSize - builder.size(),
                              core::DistractorOptions{}, &pad_rng);
      const core::S3Index binary_only(builder.Build(), no_table);
      Stopwatch watch;
      for (const auto& q : queries) {
        (void)binary_only.StatisticalQuery(q, model, options);
      }
      table.AddRow().Add("binary_search_only").Add(
          watch.ElapsedMillis() / kQueries, 4);
    }
    table.Print("ablation_range_resolution");
  }

  // 3. Depth sensitivity: the T(p) curve of Section IV-A.
  {
    std::vector<int> depths;
    for (int p = 6; p <= 26; p += 2) {
      depths.push_back(p);
    }
    const core::DepthTuningResult tuned =
        core::TuneDepth(index, model, queries, kAlpha, depths);
    Table table({"depth_p", "avg_total_ms"});
    for (const auto& [p, ms] : tuned.profile) {
      table.AddRow().Add(static_cast<int64_t>(p)).Add(ms, 4);
    }
    table.Print("ablation_depth_profile");
    std::printf("tuned p_min = %d (paper: single-minimum T(p) curve)\n",
                tuned.best_depth);
  }
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
