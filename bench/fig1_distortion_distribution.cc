// Reproduces Figure 1 of the paper: the distribution of the distance
// between a referenced fingerprint and its distorted version after resizing
// a video sequence (wscale = 0.8), compared with two probabilistic models:
// an independent zero-mean normal distribution (close to reality) and a
// uniform spherical distribution (the implicit model of a volume-based
// error measure, far from reality in high dimension).

#include <cstdio>

#include "bench_common.h"
#include "fingerprint/distortion.h"
#include "util/histogram.h"
#include "util/math.h"
#include "util/table.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("fig1_distortion_distribution",
              "pdf of ||Delta S|| after resize wscale=0.8: real vs models");
  const int kClips = static_cast<int>(Scaled(12));
  const media::TransformChain chain = media::TransformChain::Resize(0.8);
  fp::PerfectDetectorOptions options;  // exact mapped positions
  Rng rng(20050101);

  std::vector<fp::DistortionSample> samples;
  for (int c = 0; c < kClips; ++c) {
    const media::VideoSequence video =
        media::GenerateSyntheticVideo(ClipConfig(500 + c));
    const auto clip_samples =
        fp::CollectDistortionSamples(video, chain, options, &rng);
    samples.insert(samples.end(), clip_samples.begin(), clip_samples.end());
  }
  std::printf("collected %zu (reference, distorted) pairs from %d clips\n",
              samples.size(), kClips);

  // Empirical distance distribution and the fitted sigma.
  const fp::DistortionStats stats = fp::ComputeDistortionStats(samples);
  Histogram hist(0, 400, 80);
  for (const auto& s : samples) {
    hist.Add(fp::Distance(s.reference, s.distorted));
  }
  std::printf("fitted per-component sigma (severity) = %.2f\n", stats.sigma);
  std::printf("mean distance = %.2f, sd = %.2f\n", hist.Mean(),
              hist.StdDev());

  // Model curves: the chi distribution induced by the independent normal
  // model, and the uniform-ball radial density matched to contain the same
  // mass (radius at the 99th percentile of the data, as a volume model
  // would use).
  const ChiNormDistribution normal_model(fp::kDims, stats.sigma);
  const double ball_radius = hist.Quantile(0.99);

  Table table({"distance", "real_pdf", "normal_model_pdf",
               "uniform_sphere_pdf"});
  for (int i = 0; i < hist.num_bins(); ++i) {
    const double r = hist.bin_center(i);
    table.AddRow()
        .Add(r, 4)
        .Add(hist.Density(i), 4)
        .Add(normal_model.Pdf(r), 4)
        .Add(UniformBallRadiusPdf(r, fp::kDims, ball_radius), 4);
  }
  table.Print("fig1");

  // The paper's qualitative claim: the normal model is much closer to the
  // real distribution than the uniform one. Quantify via L1 distance
  // between the empirical density and each model.
  double l1_normal = 0;
  double l1_uniform = 0;
  for (int i = 0; i < hist.num_bins(); ++i) {
    const double r = hist.bin_center(i);
    l1_normal += std::abs(hist.Density(i) - normal_model.Pdf(r)) *
                 hist.bin_width();
    l1_uniform += std::abs(hist.Density(i) -
                           UniformBallRadiusPdf(r, fp::kDims, ball_radius)) *
                  hist.bin_width();
  }
  std::printf("L1(real, normal model)  = %.3f\n", l1_normal);
  std::printf("L1(real, uniform model) = %.3f\n", l1_uniform);
  std::printf("normal model is %.1fx closer (paper: visibly closer)\n",
              l1_uniform / (l1_normal > 0 ? l1_normal : 1e-9));
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
