// Ablation of the paper's Section IV design choice: indexing along a
// Hilbert curve rather than the simpler Z-order (Morton) interleaving.
// Both partitions produce hyper-rectangular blocks and admit the same
// statistical filtering rules; the difference is the curve's locality:
// Hilbert keeps the selected region in fewer, longer sections of the
// sorted file, which is exactly what bounds "the number and the dispersion
// of these sections reducing the number of memory accesses" (Section IV).

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "hilbert/zorder.h"
#include "util/table.h"
#include "util/timer.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("ablation_curve_clustering",
              "Hilbert vs Z-order: fragmentation of the selected region");
  const uint64_t kDbSize = Scaled(400000);
  const int kQueries = static_cast<int>(Scaled(150));
  const double kSigma = 18.0;

  Corpus corpus = BuildCorpus(6, kDbSize, 10100);
  const core::S3Index& index = *corpus.index;
  const hilbert::ZOrderCurve zcurve(fp::kDims, 8);
  const core::ZOrderBlockFilter zfilter(zcurve);
  const core::GaussianDistortionModel model(kSigma);
  Rng rng(665);

  // A Z-order-sorted copy of the same records, to count scanned records.
  std::vector<BitKey> zkeys;
  zkeys.reserve(index.database().size());
  uint32_t coords[fp::kDims];
  for (size_t i = 0; i < index.database().size(); ++i) {
    const auto& d = index.database().record(i).descriptor;
    for (int j = 0; j < fp::kDims; ++j) {
      coords[j] = d[j];
    }
    zkeys.push_back(zcurve.Encode(coords));
  }
  std::sort(zkeys.begin(), zkeys.end());
  auto z_records_in = [&](const BitKey& begin, const BitKey& end) {
    const auto lo = std::lower_bound(zkeys.begin(), zkeys.end(), begin);
    const auto hi = std::lower_bound(zkeys.begin(), zkeys.end(), end);
    return static_cast<uint64_t>(hi - lo);
  };

  std::vector<fp::Fingerprint> queries;
  for (int i = 0; i < kQueries; ++i) {
    const size_t idx = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(index.database().size()) - 1));
    queries.push_back(core::DistortFingerprint(
        index.database().record(idx).descriptor, kSigma, &rng));
  }

  Table table({"alpha_pct", "depth_p", "curve", "avg_blocks", "avg_ranges",
               "avg_records_scanned"});
  for (double alpha : {0.5, 0.8, 0.95}) {
    for (int depth : {12, 16, 20}) {
      core::FilterOptions options;
      options.alpha = alpha;
      options.depth = depth;
      double h_blocks = 0;
      double h_ranges = 0;
      double h_scanned = 0;
      double z_blocks = 0;
      double z_ranges = 0;
      double z_scanned = 0;
      for (const auto& q : queries) {
        const core::BlockSelection hs =
            index.filter().SelectStatistical(q, model, options);
        h_blocks += static_cast<double>(hs.num_blocks);
        h_ranges += static_cast<double>(hs.ranges.size());
        for (const auto& [begin, end] : hs.ranges) {
          const auto [first, last] = index.ResolveRange(begin, end);
          h_scanned += static_cast<double>(last - first);
        }
        const core::BlockSelection zs =
            zfilter.SelectStatistical(q, model, options);
        z_blocks += static_cast<double>(zs.num_blocks);
        z_ranges += static_cast<double>(zs.ranges.size());
        for (const auto& [begin, end] : zs.ranges) {
          z_scanned += static_cast<double>(z_records_in(begin, end));
        }
      }
      table.AddRow()
          .Add(100 * alpha, 3)
          .Add(static_cast<int64_t>(depth))
          .Add("hilbert")
          .Add(h_blocks / kQueries, 4)
          .Add(h_ranges / kQueries, 4)
          .Add(h_scanned / kQueries, 4);
      table.AddRow()
          .Add(100 * alpha, 3)
          .Add(static_cast<int64_t>(depth))
          .Add("zorder")
          .Add(z_blocks / kQueries, 4)
          .Add(z_ranges / kQueries, 4)
          .Add(z_scanned / kQueries, 4);
    }
  }
  table.Print("ablation_curve_clustering");
  std::printf(
      "finding: at D=20 and practical depths (each axis split at most\n"
      "once) Hilbert and Z-order fragment almost identically -- the classic\n"
      "Hilbert locality advantage lives in low dimension (see the 2-D test\n"
      "in zorder_test). The paper's operational reasons for Hilbert remain\n"
      "(no Lawder state diagrams, O(1) memory, spherical queries possible).\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
