// Reproduces the paper's Section II argument for why k-NN semantics are
// wrong for copy detection: "in a large TV archives database, several
// video clips can be duplicated 600 times, whereas other video clips are
// unique" — so any fixed k truncates the evidence exactly where it
// matters. We plant M duplicates of the same content under distinct ids
// and measure how many of them each search paradigm surfaces per query,
// and how many of the M ids the full voting pipeline can confirm.

#include <cstdio>
#include <functional>
#include <set>

#include "bench_common.h"
#include "core/knn.h"
#include "util/table.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("ablation_knn_vote",
              "duplicated content: statistical query vs k-NN evidence");
  const uint64_t kDbSize = Scaled(200000);
  const double kSigma = 12.0;
  const double kAlpha = 0.85;
  Rng rng(664);

  // One source clip whose fingerprints are planted M times (ids 0..M-1),
  // then distractor padding. This emulates M rebroadcasts of the same
  // footage archived under different programme ids.
  const media::VideoSequence source =
      media::GenerateSyntheticVideo(ClipConfig(9100));
  const fp::FingerprintExtractor extractor;
  const auto source_fps = extractor.Extract(source);
  std::vector<fp::Fingerprint> pool;
  for (const auto& lf : source_fps) {
    pool.push_back(lf.descriptor);
  }

  Table table({"duplicates_M", "paradigm", "avg_relevant_per_query",
               "mean_nsim_planted", "ids_confirmed_by_vote"});
  for (int duplicates : {1, 4, 16, 64}) {
    core::DatabaseBuilder builder;
    for (int m = 0; m < duplicates; ++m) {
      builder.AddVideo(static_cast<uint32_t>(m), source_fps);
    }
    Rng pad_rng(9200 + duplicates);
    core::AppendDistractors(&builder, pool, kDbSize - builder.size(),
                            core::DistractorOptions{}, &pad_rng);
    const core::S3Index index(builder.Build());
    const core::GaussianDistortionModel model(kSigma);

    // The candidate: a mildly transformed copy of the source.
    const media::VideoSequence candidate =
        media::TransformChain::Gamma(1.2).Apply(source, &rng);
    const auto candidate_fps = extractor.Extract(candidate);

    struct Paradigm {
      const char* name;
      std::function<core::QueryResult(const fp::Fingerprint&)> run;
    };
    core::QueryOptions stat;
    stat.filter.alpha = kAlpha;
    stat.filter.depth = 14;
    core::KnnOptions knn10;
    knn10.k = 10;
    knn10.depth = 14;
    const Paradigm paradigms[] = {
        {"statistical(a=0.85)",
         [&](const fp::Fingerprint& q) {
           return index.StatisticalQuery(q, model, stat);
         }},
        {"knn(k=10)",
         [&](const fp::Fingerprint& q) {
           return core::KnnQuery(index, q, knn10);
         }},
    };
    for (const Paradigm& paradigm : paradigms) {
      // Per-query: how many of the M planted ids appear in the result?
      double relevant = 0;
      std::vector<cbcd::CandidateEntry> entries;
      for (const auto& lf : candidate_fps) {
        const core::QueryResult r = paradigm.run(lf.descriptor);
        std::set<uint32_t> ids;
        for (const auto& m : r.matches) {
          if (m.id < static_cast<uint32_t>(duplicates)) {
            ids.insert(m.id);
          }
        }
        relevant += static_cast<double>(ids.size());
        cbcd::CandidateEntry entry;
        entry.candidate_time_code = lf.time_code;
        entry.x = lf.x;
        entry.y = lf.y;
        entry.matches = r.matches;
        entries.push_back(std::move(entry));
      }
      // Voting: how strongly does each planted id vote, and how many reach
      // a confident decision (a third of the candidate fingerprints, the
      // kind of threshold a 10 s clip detector uses)?
      cbcd::VoteOptions vote_options;
      const auto votes = cbcd::ComputeVotes(entries, vote_options);
      const int threshold = static_cast<int>(candidate_fps.size() / 3);
      int confirmed = 0;
      double nsim_total = 0;
      for (const auto& vote : votes) {
        if (vote.id < static_cast<uint32_t>(duplicates)) {
          nsim_total += vote.nsim;
          if (vote.nsim >= threshold) {
            ++confirmed;
          }
        }
      }
      table.AddRow()
          .Add(static_cast<int64_t>(duplicates))
          .Add(paradigm.name)
          .Add(relevant / candidate_fps.size(), 4)
          .Add(nsim_total / duplicates, 4)
          .Add(static_cast<int64_t>(confirmed));
    }
  }
  table.Print("ablation_knn_vote");
  std::printf(
      "expected shape (paper Section II): the statistical query surfaces\n"
      "all M duplicated ids; k-NN saturates at k and starves the vote as\n"
      "M grows past it\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
