// Google-benchmark micro benchmarks of the core building blocks: Hilbert
// encode/decode at the paper's D=20 K=8 configuration, block filtering,
// query execution, index construction, and the observability primitives
// (counter increments and trace spans) whose overhead budgets are quoted
// in docs/observability.md.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <array>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/descriptor_codec.h"
#include "core/distortion_model.h"
#include "core/filter.h"
#include "core/index.h"
#include "core/scan_kernel.h"
#include "core/synthetic_db.h"
#include "fingerprint/fingerprint.h"
#include "hilbert/hilbert_curve.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/segment_format.h"
#include "util/rng.h"

namespace s3vcd {
namespace {

void BM_HilbertEncode(benchmark::State& state) {
  const hilbert::HilbertCurve curve(20, 8);
  Rng rng(1);
  uint32_t coords[20];
  for (auto& c : coords) {
    c = static_cast<uint32_t>(rng.UniformInt(0, 255));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.Encode(coords));
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_HilbertDecode(benchmark::State& state) {
  const hilbert::HilbertCurve curve(20, 8);
  Rng rng(2);
  uint32_t coords[20];
  for (auto& c : coords) {
    c = static_cast<uint32_t>(rng.UniformInt(0, 255));
  }
  const BitKey key = curve.Encode(coords);
  for (auto _ : state) {
    curve.Decode(key, coords);
    benchmark::DoNotOptimize(coords[0]);
  }
}
BENCHMARK(BM_HilbertDecode);

void BM_SquaredDistance(benchmark::State& state) {
  Rng rng(3);
  const fp::Fingerprint a = core::UniformRandomFingerprint(&rng);
  const fp::Fingerprint b = core::UniformRandomFingerprint(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp::SquaredDistance(a, b));
  }
}
BENCHMARK(BM_SquaredDistance);

void BM_StatisticalFilter(benchmark::State& state) {
  const hilbert::HilbertCurve curve(20, 8);
  const core::BlockFilter filter(curve);
  const core::GaussianDistortionModel model(20.0);
  Rng rng(4);
  const fp::Fingerprint q = core::UniformRandomFingerprint(&rng);
  core::FilterOptions options;
  options.alpha = 0.8;
  options.depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.SelectStatistical(q, model, options));
  }
}
BENCHMARK(BM_StatisticalFilter)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

core::S3Index* SharedIndex() {
  static core::S3Index* index = [] {
    Rng rng(5);
    core::DatabaseBuilder builder;
    std::vector<fp::Fingerprint> centers;
    for (int c = 0; c < 64; ++c) {
      centers.push_back(core::UniformRandomFingerprint(&rng));
    }
    for (int i = 0; i < 200000; ++i) {
      builder.Add(core::DistortFingerprint(
                      centers[static_cast<size_t>(rng.UniformInt(0, 63))],
                      25.0, &rng),
                  static_cast<uint32_t>(i % 100),
                  static_cast<uint32_t>(i));
    }
    return new core::S3Index(builder.Build());
  }();
  return index;
}

// Selection engines head to head: the per-axis boundary-table engine vs
// the retained per-node reference, across partition depths, on realistic
// clustered queries drawn from the shared 200k-record corpus. The labels
// ("stat:table:d12", "stat:reference:d12") feed tools/run_benchmarks.sh,
// which turns the timings into BENCH_filter.json.
void BM_SelectStatistical(benchmark::State& state) {
  core::S3Index* index = SharedIndex();
  const core::BlockFilter& filter = index->filter();
  const core::GaussianDistortionModel model(18.0);
  Rng rng(12);
  std::vector<fp::Fingerprint> queries;
  for (int q = 0; q < 64; ++q) {
    const auto& rec = index->database().record(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(index->database().size()) - 1)));
    queries.push_back(core::DistortFingerprint(rec.descriptor, 18.0, &rng));
  }
  core::FilterOptions options;
  options.alpha = 0.8;
  options.depth = static_cast<int>(state.range(0));
  const bool table = state.range(1) == 0;
  options.engine = table ? core::SelectionEngine::kBoundaryTable
                         : core::SelectionEngine::kReference;
  core::SelectionScratch scratch;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.SelectStatistical(
        queries[i++ % queries.size()], model, options, &scratch));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string("stat:") + (table ? "table" : "reference") +
                 ":d" + std::to_string(options.depth));
}
BENCHMARK(BM_SelectStatistical)
    ->ArgsProduct({{8, 12, 16, 20}, {0, 1}});

// Geometric selection under the shared squared-distance boundary tables;
// labels ("range:d12") land in BENCH_filter.json alongside the
// statistical rows.
void BM_SelectRange(benchmark::State& state) {
  core::S3Index* index = SharedIndex();
  const core::BlockFilter& filter = index->filter();
  Rng rng(13);
  std::vector<fp::Fingerprint> queries;
  for (int q = 0; q < 64; ++q) {
    const auto& rec = index->database().record(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(index->database().size()) - 1)));
    queries.push_back(core::DistortFingerprint(rec.descriptor, 18.0, &rng));
  }
  const int depth = static_cast<int>(state.range(0));
  core::SelectionScratch scratch;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        filter.SelectRange(queries[i++ % queries.size()], /*epsilon=*/90.0,
                           depth, /*max_blocks=*/1 << 20,
                           /*max_nodes=*/1 << 18, &scratch));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("range:d" + std::to_string(depth));
}
BENCHMARK(BM_SelectRange)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_StatisticalQuery(benchmark::State& state) {
  core::S3Index* index = SharedIndex();
  const core::GaussianDistortionModel model(18.0);
  Rng rng(6);
  core::QueryOptions options;
  options.filter.alpha = static_cast<double>(state.range(0)) / 100.0;
  options.filter.depth = 14;
  size_t i = 0;
  std::vector<fp::Fingerprint> queries;
  for (int q = 0; q < 64; ++q) {
    const auto& rec = index->database().record(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(index->database().size()) - 1)));
    queries.push_back(core::DistortFingerprint(rec.descriptor, 18.0, &rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index->StatisticalQuery(queries[i++ % queries.size()], model,
                                options));
  }
}
BENCHMARK(BM_StatisticalQuery)->Arg(50)->Arg(80)->Arg(95);

// Refinement throughput of each scan kernel over the shared 200k-record
// corpus (a full seqscan sweep in kRadiusFilter mode, the hot path of
// every backend's phase-2 refinement). Arg = ScanKernelKind; variants the
// CPU cannot run are skipped. tools/run_benchmarks.sh turns the reported
// items_per_second into BENCH_scan.json.
void BM_RefineScan(benchmark::State& state) {
  const auto kind = static_cast<core::ScanKernelKind>(state.range(0));
  if (!core::ScanKernelAvailable(kind)) {
    state.SkipWithError("kernel unavailable on this CPU");
    return;
  }
  core::S3Index* index = SharedIndex();
  const core::DescriptorBlock& block = index->database().block();
  Rng rng(9);
  const fp::Fingerprint q = core::UniformRandomFingerprint(&rng);
  const core::RefineSpec spec(core::RefinementMode::kRadiusFilter,
                              /*radius=*/90.0, /*model=*/nullptr);
  const core::ScanKernelKind previous = core::SetScanKernelForTest(kind);
  for (auto _ : state) {
    core::QueryResult result;
    core::ScanRecords(q, block, 0, block.size(), spec, &result);
    benchmark::DoNotOptimize(result.stats.records_scanned);
  }
  core::SetScanKernelForTest(previous);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(block.size()));
  state.SetLabel(core::ScanKernelName(kind));
}
BENCHMARK(BM_RefineScan)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Fused decode+distance refinement over a quantized copy of the shared
// corpus: the same kRadiusFilter sweep as BM_RefineScan, but the
// descriptors are stored through a quantized codec (lvq8 = 20 B/rec,
// lvq4 = 10 B/rec) and the kernels decode inside the distance loop.
// Range(0) = DescriptorCodecKind, range(1) = ScanKernelKind. The
// bytes_per_record and recall counters (recall of the exact match set
// under the codec's inflated radius — 1.0 by the superset guarantee)
// land in BENCH_scan.json next to the exact rows, which is where the
// "2x fewer descriptor bytes at recall >= 0.99" claim is published.
void BM_CodedRefineScan(benchmark::State& state) {
  const auto codec_kind =
      static_cast<core::DescriptorCodecKind>(state.range(0));
  const auto kind = static_cast<core::ScanKernelKind>(state.range(1));
  if (!core::ScanKernelAvailable(kind)) {
    state.SkipWithError("kernel unavailable on this CPU");
    return;
  }
  core::S3Index* index = SharedIndex();
  const core::DescriptorBlock& block = index->database().block();
  const core::CodedDescriptorBlock coded =
      core::CodedDescriptorBlock::Encode(codec_kind, block);
  Rng rng(9);  // same query stream as BM_RefineScan, for comparability
  const fp::Fingerprint q = core::UniformRandomFingerprint(&rng);
  const core::RefineSpec spec(core::RefinementMode::kRadiusFilter,
                              /*radius=*/90.0, /*model=*/nullptr);
  core::QueryResult exact;
  core::ScanRecords(q, block, 0, block.size(), spec, &exact);
  const core::ScanKernelKind previous = core::SetScanKernelForTest(kind);
  core::QueryResult coded_result;
  for (auto _ : state) {
    core::QueryResult result;
    core::ScanRecords(q, coded.View(), 0, coded.size(), spec, &result);
    benchmark::DoNotOptimize(result.stats.records_scanned);
    coded_result = std::move(result);
  }
  core::SetScanKernelForTest(previous);
  size_t recovered = 0;
  for (const auto& m : exact.matches) {
    for (const auto& c : coded_result.matches) {
      if (c.id == m.id && c.time_code == m.time_code) {
        ++recovered;
        break;
      }
    }
  }
  state.counters["bytes_per_record"] =
      static_cast<double>(coded.codec().code_bytes());
  state.counters["recall"] =
      exact.matches.empty()
          ? 1.0
          : static_cast<double>(recovered) / exact.matches.size();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(coded.size()));
  state.SetLabel(std::string("coded:") + coded.codec().name() + ":" +
                 core::ScanKernelName(kind));
}
BENCHMARK(BM_CodedRefineScan)->ArgsProduct({{1, 2}, {0, 2, 3}});

// The same refinement sweep served straight off an on-disk segment (the
// segment backend's phase-2 path): the shared corpus is written once as a
// .s3seg file and the kernels run over its mapped (or resident) columns
// through the DescriptorView. Labels ("segment:mmap", "segment:resident")
// feed tools/run_benchmarks.sh, which emits BENCH_store.json; comparing
// against BM_RefineScan's in-memory rows shows what serving from the
// store costs.
// range(0) selects mmap vs resident serving; range(1) selects the
// descriptor codec the segment file is written with (quantized segments
// exercise the fused decode kernels straight off the store and shrink the
// mapped descriptor column — lvq4 halves it).
void BM_SegmentScan(benchmark::State& state) {
  const auto codec_kind =
      static_cast<core::DescriptorCodecKind>(state.range(1));
  static auto* const segment_paths = new std::map<int, std::string>();
  std::string& segment_path = (*segment_paths)[static_cast<int>(codec_kind)];
  if (segment_path.empty()) {
    core::S3Index* index = SharedIndex();
    const core::FingerprintDatabase& db = index->database();
    std::vector<BitKey> keys;
    keys.reserve(db.size());
    for (size_t i = 0; i < db.size(); ++i) {
      keys.push_back(db.key(i));
    }
    std::string path =
        (std::filesystem::temp_directory_path() /
         ("s3vcd_bench_segment_" + std::to_string(::getpid()) + "_" +
          core::DescriptorCodecName(codec_kind) + ".s3seg"))
            .string();
    store::SegmentWriteOptions write_options;
    write_options.sync = false;
    write_options.codec = codec_kind;
    const Status status = store::WriteSegmentFile(
        path, /*segment_id=*/1, db.order(), db.block(), keys, write_options);
    if (status.ok()) {
      segment_path = path;
    }
  }
  if (segment_path.empty()) {
    state.SkipWithError("failed to write benchmark segment");
    return;
  }
  store::SegmentReadOptions read_options;
  read_options.use_mmap = state.range(0) != 0;
  auto reader = store::SegmentReader::Open(segment_path, read_options);
  if (!reader.ok()) {
    state.SkipWithError(reader.status().ToString().c_str());
    return;
  }
  Rng rng(10);
  const fp::Fingerprint q = core::UniformRandomFingerprint(&rng);
  const core::RefineSpec spec(core::RefinementMode::kRadiusFilter,
                              /*radius=*/90.0, /*model=*/nullptr);
  const core::DescriptorView view = (*reader)->View();
  for (auto _ : state) {
    core::QueryResult result;
    core::ScanRecords(q, view, 0, view.size(), spec, &result);
    benchmark::DoNotOptimize(result.stats.records_scanned);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(view.size()));
  state.counters["bytes_per_record"] =
      static_cast<double>((*reader)->descriptor_code_bytes());
  // Exact legs keep the historical two-part label; quantized legs append
  // the codec so run_benchmarks.sh can key the rows.
  std::string label = std::string("segment:") +
                      ((*reader)->mapped() ? "mmap" : "resident");
  if (codec_kind != core::DescriptorCodecKind::kExactU8) {
    label += std::string(":") + core::DescriptorCodecName(codec_kind);
  }
  state.SetLabel(label);
}
BENCHMARK(BM_SegmentScan)->ArgsProduct({{0, 1}, {0, 1, 2}});

// The graph-traversal distance path head to head: one GatherScorer::Score
// call over K gathered candidate indices (the beam search's per-hop batch)
// vs the naive loop that scores the same K records one at a time through
// SquaredDistanceU32 (decoding each record first on quantized views).
// Both legs walk the same precomputed random index sets over the shared
// 200k-record corpus, so the cache behaviour of a gather is represented.
// range(0) = DescriptorCodecKind, range(1) = ScanKernelKind for the
// batched leg or -1 for the looped reference. Labels
// ("gather:<codec>:batched:<kernel>" / "gather:<codec>:looped") feed
// tools/run_benchmarks.sh, which folds them into BENCH_scan.json —
// acceptance for the vamana backend requires batched to beat looped.
void BM_BatchedDistance(benchmark::State& state) {
  constexpr size_t kGatherK = 32;
  const auto codec_kind =
      static_cast<core::DescriptorCodecKind>(state.range(0));
  const bool batched = state.range(1) >= 0;
  const auto kind = static_cast<core::ScanKernelKind>(
      batched ? state.range(1) : 0);
  if (batched && !core::ScanKernelAvailable(kind)) {
    state.SkipWithError("kernel unavailable on this CPU");
    return;
  }
  core::S3Index* index = SharedIndex();
  const core::DescriptorBlock& block = index->database().block();
  core::CodedDescriptorBlock coded;
  core::DescriptorView view = block.View();
  if (codec_kind != core::DescriptorCodecKind::kExactU8) {
    coded = core::CodedDescriptorBlock::Encode(codec_kind, block);
    view = coded.View();
  }
  Rng rng(14);
  const fp::Fingerprint q = core::UniformRandomFingerprint(&rng);
  // 64 random index sets of K records each, cycled per iteration so the
  // gathers keep missing cache the way a real beam expansion does.
  std::vector<std::array<uint32_t, kGatherK>> id_sets(64);
  for (auto& ids : id_sets) {
    for (auto& id : ids) {
      id = static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int64_t>(view.count) - 1));
    }
  }
  uint32_t out[kGatherK];
  size_t i = 0;
  if (batched) {
    const core::ScanKernelKind previous = core::SetScanKernelForTest(kind);
    const core::GatherScorer scorer(q, view);
    for (auto _ : state) {
      scorer.Score(id_sets[i++ % id_sets.size()].data(), kGatherK, out);
      benchmark::DoNotOptimize(out[0]);
    }
    core::SetScanKernelForTest(previous);
  } else if (view.codec != nullptr && !view.codec->is_exact()) {
    uint8_t decoded[fp::kDims];
    for (auto _ : state) {
      const auto& ids = id_sets[i++ % id_sets.size()];
      for (size_t j = 0; j < kGatherK; ++j) {
        core::DecodeDescriptor(*view.codec, view.descriptor(ids[j]), decoded);
        out[j] = core::SquaredDistanceU32(q.data(), decoded);
      }
      benchmark::DoNotOptimize(out[0]);
    }
  } else {
    for (auto _ : state) {
      const auto& ids = id_sets[i++ % id_sets.size()];
      for (size_t j = 0; j < kGatherK; ++j) {
        out[j] = core::SquaredDistanceU32(q.data(), view.descriptor(ids[j]));
      }
      benchmark::DoNotOptimize(out[0]);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kGatherK));
  std::string label = std::string("gather:") +
                      core::DescriptorCodecName(codec_kind) + ":";
  label += batched ? std::string("batched:") + core::ScanKernelName(kind)
                   : "looped";
  state.SetLabel(label);
}
BENCHMARK(BM_BatchedDistance)->ArgsProduct({{0, 1, 2}, {-1, 0, 1, 2, 3}});

void BM_SequentialScan(benchmark::State& state) {
  core::S3Index* index = SharedIndex();
  Rng rng(7);
  const fp::Fingerprint q = core::UniformRandomFingerprint(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->SequentialScan(q, 90.0));
  }
}
BENCHMARK(BM_SequentialScan);

void BM_IndexBuild(benchmark::State& state) {
  Rng rng(8);
  std::vector<fp::Fingerprint> points;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    points.push_back(core::UniformRandomFingerprint(&rng));
  }
  for (auto _ : state) {
    core::DatabaseBuilder builder;
    for (int i = 0; i < n; ++i) {
      builder.Add(points[i], 0, static_cast<uint32_t>(i));
    }
    benchmark::DoNotOptimize(builder.Build());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IndexBuild)->Arg(10000)->Arg(100000);

// --- Observability primitives ------------------------------------------
// These are the costs quoted in docs/observability.md: an uncontended
// counter increment, the same increment from many threads (the sharding is
// what keeps this flat), a histogram record, a gauge set, and a trace span
// in both the disabled (one relaxed load) and enabled (two clock reads +
// one short lock) states.

void BM_ObsCounterIncrement(benchmark::State& state) {
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Increment();
  }
  if (state.thread_index() == 0) {
    counter->Reset();
  }
}
BENCHMARK(BM_ObsCounterIncrement);
BENCHMARK(BM_ObsCounterIncrement)->Threads(4)->Threads(8);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("bench.histogram_us");
  double v = 0.5;
  for (auto _ : state) {
    histogram->Record(v);
    v = v < 1e6 ? v * 1.1 : 0.5;  // walk the buckets
  }
  if (state.thread_index() == 0) {
    histogram->Reset();
  }
}
BENCHMARK(BM_ObsHistogramRecord);
BENCHMARK(BM_ObsHistogramRecord)->Threads(4);

void BM_ObsGaugeSet(benchmark::State& state) {
  obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge("bench.gauge");
  int64_t v = 0;
  for (auto _ : state) {
    gauge->Set(v++);
  }
  if (state.thread_index() == 0) {
    gauge->Reset();
  }
}
BENCHMARK(BM_ObsGaugeSet);

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::TraceRecorder::Global().Disable();
  for (auto _ : state) {
    S3VCD_TRACE_SPAN("bench.span_disabled");
  }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  if (state.thread_index() == 0) {
    // Small ring: the benchmark records millions of spans and only the
    // ring-wrap path is representative of steady state.
    obs::TraceRecorder::Global().Enable(/*capacity_per_thread=*/1024);
  }
  for (auto _ : state) {
    S3VCD_TRACE_SPAN("bench.span_enabled");
  }
  if (state.thread_index() == 0) {
    obs::TraceRecorder::Global().Disable();
    obs::TraceRecorder::Global().Clear();
  }
}
BENCHMARK(BM_ObsSpanEnabled);

}  // namespace
}  // namespace s3vcd

BENCHMARK_MAIN();
