// Ablation bench for the pseudo-disk strategy of Section IV-B: average
// per-query response time T_tot = T + T_load / N_sig (eq. 5) as a function
// of the batch size N_sig and the number of curve sections 2^r. The
// paper's point: batching amortizes the DB loading time so the additional
// linear component becomes negligible.

#include <cstdio>

#include "bench_common.h"
#include "core/pseudo_disk.h"
#include "util/table.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("ablation_pseudo_disk",
              "pseudo-disk batching: T_tot = T + T_load / N_sig");
  const uint64_t kDbSize = Scaled(400000);
  const double kSigma = 18.0;
  Corpus corpus = BuildCorpus(6, kDbSize, 7100);
  const std::string path = "/tmp/s3vcd_pseudo_disk_bench.s3db";
  if (!corpus.index->database().SaveToFile(path).ok()) {
    std::printf("FATAL: cannot write %s\n", path.c_str());
    return 1;
  }
  const core::GaussianDistortionModel model(kSigma);
  Rng rng(662);

  std::vector<fp::Fingerprint> all_queries;
  for (int i = 0; i < 512; ++i) {
    const size_t idx = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(corpus.index->database().size()) - 1));
    all_queries.push_back(core::DistortFingerprint(
        corpus.index->database().record(idx).descriptor, kSigma, &rng));
  }

  Table table({"sections_2r", "batch_Nsig", "avg_total_ms", "filter_ms",
               "load_ms_amortized", "refine_ms", "sections_loaded"});
  for (int r : {0, 2, 4}) {
    core::PseudoDiskOptions options;
    options.section_depth = r;
    options.query_depth = 14;
    options.alpha = 0.8;
    auto searcher = core::PseudoDiskSearcher::Open(path, options);
    if (!searcher.ok()) {
      std::printf("FATAL: %s\n", searcher.status().ToString().c_str());
      return 1;
    }
    for (size_t batch : {size_t{8}, size_t{64}, size_t{512}}) {
      const std::vector<fp::Fingerprint> queries(
          all_queries.begin(), all_queries.begin() + batch);
      std::vector<std::vector<core::Match>> results;
      core::PseudoDiskBatchStats stats;
      if (!searcher->SearchBatch(queries, model, &results, &stats).ok()) {
        std::printf("FATAL: batch failed\n");
        return 1;
      }
      table.AddRow()
          .Add(static_cast<int64_t>(1 << r))
          .Add(static_cast<uint64_t>(batch))
          .Add(stats.AverageTotalMillis(), 4)
          .Add(stats.filter_seconds * 1e3 / batch, 4)
          .Add(stats.load_seconds * 1e3 / batch, 4)
          .Add(stats.refine_seconds * 1e3 / batch, 4)
          .Add(stats.sections_loaded);
    }
  }
  table.Print("ablation_pseudo_disk");
  std::remove(path.c_str());
  std::printf(
      "paper: the amortized loading term T_load/N_sig vanishes for large\n"
      "batches, keeping the total response time sub-linear in the DB size\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
