// Equal-recall comparison of the vamana graph backend against the exact
// S3 range query: on the same 200k-record clustered corpus and the same
// distorted query stream, the beam width is swept upward until the graph
// search matches each target recall (0.95 / 0.99 / 1.0) of the exact
// eps=90 match set, and each operating point is reported with its recall,
// per-query latency and throughput next to the exact baseline's — the
// honest form of an ANN claim (a fast graph at recall 0.6 is not a
// result). Runs once per descriptor codec (exact 20 B/rec and lvq4
// 10 B/rec, the quantized store through the fused gather kernels).
//
// tools/run_benchmarks.sh invokes this with --out BENCH_ann.json; the
// host ISA / selected-kernel attribution rides in through the
// S3VCD_BENCH_HOST_ISA / S3VCD_BENCH_SELECTED_KERNEL environment
// variables the script exports.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "core/database.h"
#include "core/descriptor_codec.h"
#include "core/index.h"
#include "core/scan_kernel.h"
#include "core/synthetic_db.h"
#include "core/vamana.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace s3vcd::bench {
namespace {

constexpr double kEpsilon = 90.0;
constexpr int kS3Depth = 12;
constexpr double kQuerySigma = 18.0;

// The swept beam widths, ascending; the sweep stops early once recall
// hits 1.0 (wider beams only get slower).
constexpr int kBeams[] = {4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512};
constexpr double kRecallTargets[] = {0.95, 0.99, 1.0};

struct SweepRow {
  int beam = 0;
  double recall = 0;
  double mean_latency_us = 0;
  double qps = 0;
  double mean_nodes_visited = 0;
  double mean_records_scanned = 0;
};

struct CodecRun {
  std::string codec;
  double build_seconds = 0;
  double bytes_per_record = 0;
  uint64_t graph_bytes = 0;
  std::vector<SweepRow> sweep;
};

uint64_t TruthKey(uint32_t id, uint32_t time_code) {
  return (static_cast<uint64_t>(id) << 32) | time_code;
}

std::string JsonEscapeList(const std::string& space_separated) {
  // "a b c" -> "\"a\", \"b\", \"c\"" (empty input -> empty output).
  std::string out;
  size_t start = 0;
  while (start < space_separated.size()) {
    const size_t end = space_separated.find(' ', start);
    const std::string token = space_separated.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    if (!token.empty()) {
      if (!out.empty()) out += ", ";
      out += "\"" + token + "\"";
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

int Main(int argc, char** argv) {
  uint64_t num_records = Scaled(200000);
  int num_queries = 256;
  int graph_degree = 32;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = value();
    } else if (arg == "--records") {
      num_records = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--queries") {
      num_queries = std::atoi(value());
    } else if (arg == "--graph-degree") {
      graph_degree = std::atoi(value());
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (known: --out --records --queries "
                   "--graph-degree)\n",
                   arg.c_str());
      return 2;
    }
  }

  PrintHeader("ann_equal_recall",
              "vamana graph search vs exact S3 range query at equal recall");

  // The clustered corpus of the micro benchmarks (64 Gaussian clusters,
  // sigma 25), so the BENCH_ann numbers are comparable with BENCH_scan's
  // sweep throughput over the same distribution.
  Rng rng(5);
  std::vector<fp::Fingerprint> centers;
  for (int c = 0; c < 64; ++c) {
    centers.push_back(core::UniformRandomFingerprint(&rng));
  }
  std::vector<core::FingerprintRecord> records(num_records);
  for (uint64_t i = 0; i < num_records; ++i) {
    records[i].descriptor = core::DistortFingerprint(
        centers[static_cast<size_t>(rng.UniformInt(0, 63))], 25.0, &rng);
    records[i].id = static_cast<uint32_t>(i % 100);
    records[i].time_code = static_cast<uint32_t>(i);
  }

  core::DatabaseBuilder builder;
  for (const auto& r : records) {
    builder.Add(r.descriptor, r.id, r.time_code);
  }
  Stopwatch watch;
  const core::S3Index s3(builder.Build());
  std::printf("corpus: %llu records, S3 index built in %.1f ms\n",
              static_cast<unsigned long long>(num_records),
              watch.ElapsedMillis());

  Rng query_rng(12);
  std::vector<fp::Fingerprint> queries;
  for (int q = 0; q < num_queries; ++q) {
    const auto& rec = s3.database().record(static_cast<size_t>(
        query_rng.UniformInt(0, static_cast<int64_t>(num_records) - 1)));
    queries.push_back(
        core::DistortFingerprint(rec.descriptor, kQuerySigma, &query_rng));
  }

  // Exact ground truth and the exact baseline's latency come from the
  // same timed S3 run (the geometric range filter misses nothing inside
  // the ball, so its match set is the truth set).
  std::vector<std::unordered_set<uint64_t>> truth(queries.size());
  uint64_t truth_pairs = 0;
  watch.Reset();
  for (size_t q = 0; q < queries.size(); ++q) {
    const core::QueryResult r = s3.RangeQuery(queries[q], kEpsilon, kS3Depth);
    for (const auto& m : r.matches) {
      truth[q].insert(TruthKey(m.id, m.time_code));
    }
    truth_pairs += truth[q].size();
  }
  const double s3_total_ms = watch.ElapsedMillis();
  const double s3_latency_us = s3_total_ms * 1e3 / queries.size();
  std::printf(
      "exact baseline (s3 range, eps=%.0f, depth=%d): %.1f us/query, "
      "%.0f truth pairs over %zu queries\n",
      kEpsilon, kS3Depth, s3_latency_us, static_cast<double>(truth_pairs),
      queries.size());
  if (truth_pairs == 0) {
    std::fprintf(stderr, "no truth pairs — corpus/query mismatch\n");
    return 1;
  }

  const char* codecs[] = {"exact", "lvq4"};
  std::vector<CodecRun> runs;
  for (const char* codec_name : codecs) {
    CodecRun run;
    run.codec = codec_name;
    core::VamanaOptions options;
    options.graph_degree = graph_degree;
    if (!core::DescriptorCodecFromName(codec_name, &options.codec)) {
      std::fprintf(stderr, "unknown codec %s\n", codec_name);
      return 1;
    }
    watch.Reset();
    const core::VamanaIndex vamana(records, options);
    run.build_seconds = watch.ElapsedMillis() / 1e3;
    run.bytes_per_record =
        static_cast<double>(core::DescriptorCodeBytes(options.codec));
    run.graph_bytes =
        static_cast<uint64_t>(vamana.degree_bound()) * num_records * 4;
    std::printf("vamana[%s]: degree %u built in %.2f s (%.1f MiB total)\n",
                codec_name, vamana.degree_bound(), run.build_seconds,
                vamana.ApproxBytes() / 1048576.0);

    for (const int beam : kBeams) {
      SweepRow row;
      row.beam = beam;
      uint64_t recovered = 0;
      uint64_t nodes = 0;
      uint64_t scanned = 0;
      watch.Reset();
      for (size_t q = 0; q < queries.size(); ++q) {
        const core::QueryResult r =
            vamana.RangeQueryWithBeam(queries[q], kEpsilon, beam);
        for (const auto& m : r.matches) {
          recovered += truth[q].count(TruthKey(m.id, m.time_code));
        }
        nodes += r.stats.nodes_visited;
        scanned += r.stats.records_scanned;
      }
      const double total_ms = watch.ElapsedMillis();
      row.recall = static_cast<double>(recovered) / truth_pairs;
      row.mean_latency_us = total_ms * 1e3 / queries.size();
      row.qps = queries.size() / (total_ms / 1e3);
      row.mean_nodes_visited = static_cast<double>(nodes) / queries.size();
      row.mean_records_scanned =
          static_cast<double>(scanned) / queries.size();
      run.sweep.push_back(row);
      if (row.recall >= 1.0) break;  // wider beams only get slower
    }
    runs.push_back(std::move(run));
  }

  // Operating points: the first (narrowest) swept beam meeting each
  // target recall — the number an equal-recall comparison is allowed to
  // quote.
  Table table({"codec", "target", "beam", "recall", "latency_us", "qps",
               "speedup_vs_s3"});
  for (const auto& run : runs) {
    for (const double target : kRecallTargets) {
      const SweepRow* point = nullptr;
      for (const auto& row : run.sweep) {
        if (row.recall >= target) {
          point = &row;
          break;
        }
      }
      if (point == nullptr) {
        table.AddRow().Add(run.codec).Add(target, 2).Add("-").Add("-").Add(
            "-").Add("-").Add("-");
        continue;
      }
      table.AddRow()
          .Add(run.codec)
          .Add(target, 2)
          .Add(point->beam)
          .Add(point->recall, 4)
          .Add(point->mean_latency_us, 1)
          .Add(point->qps, 0)
          .Add(s3_latency_us / point->mean_latency_us, 2);
    }
  }
  table.Print("ann_equal_recall");

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "failed to open %s\n", out_path.c_str());
      return 1;
    }
    const char* isa = std::getenv("S3VCD_BENCH_HOST_ISA");
    const char* kernel = std::getenv("S3VCD_BENCH_SELECTED_KERNEL");
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"ann_equal_recall\",\n");
    std::fprintf(
        f,
        "  \"description\": \"vamana graph search vs exact S3 range query "
        "(eps=%.0f, depth=%d) on a %llu-record clustered corpus, %zu "
        "distorted queries (sigma %.0f); beam width swept until the graph "
        "matches each target recall of the exact match set; latency is "
        "mean per query, single-threaded\",\n",
        kEpsilon, kS3Depth, static_cast<unsigned long long>(num_records),
        queries.size(), kQuerySigma);
    std::fprintf(f, "  \"records\": %llu,\n",
                 static_cast<unsigned long long>(num_records));
    std::fprintf(f, "  \"queries\": %zu,\n", queries.size());
    std::fprintf(f, "  \"epsilon\": %.1f,\n", kEpsilon);
    std::fprintf(f, "  \"graph_degree\": %d,\n", graph_degree);
    std::fprintf(f, "  \"truth_pairs\": %llu,\n",
                 static_cast<unsigned long long>(truth_pairs));
    std::fprintf(f, "  \"host\": {\n");
    std::fprintf(f, "    \"isa_flags\": [%s],\n",
                 JsonEscapeList(isa == nullptr ? "" : isa).c_str());
    std::fprintf(f, "    \"selected_scan_kernel\": \"%s\",\n",
                 kernel == nullptr ? "unknown" : kernel);
    std::fprintf(f, "    \"active_gather_kernel\": \"%s\"\n",
                 core::ScanKernelName(core::ActiveScanKernel()));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"exact_baseline\": {\n");
    std::fprintf(f, "    \"backend\": \"s3\",\n");
    std::fprintf(f, "    \"mean_latency_us\": %.3f\n", s3_latency_us);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"codecs\": {\n");
    for (size_t c = 0; c < runs.size(); ++c) {
      const CodecRun& run = runs[c];
      std::fprintf(f, "    \"%s\": {\n", run.codec.c_str());
      std::fprintf(f, "      \"bytes_per_record\": %.1f,\n",
                   run.bytes_per_record);
      std::fprintf(f, "      \"build_seconds\": %.3f,\n", run.build_seconds);
      std::fprintf(f, "      \"graph_bytes\": %llu,\n",
                   static_cast<unsigned long long>(run.graph_bytes));
      std::fprintf(f, "      \"sweep\": [\n");
      for (size_t i = 0; i < run.sweep.size(); ++i) {
        const SweepRow& row = run.sweep[i];
        std::fprintf(f,
                     "        {\"beam\": %d, \"recall\": %.4f, "
                     "\"mean_latency_us\": %.3f, \"qps\": %.1f, "
                     "\"mean_nodes_visited\": %.1f, "
                     "\"mean_records_scanned\": %.1f}%s\n",
                     row.beam, row.recall, row.mean_latency_us, row.qps,
                     row.mean_nodes_visited, row.mean_records_scanned,
                     i + 1 < run.sweep.size() ? "," : "");
      }
      std::fprintf(f, "      ],\n");
      std::fprintf(f, "      \"operating_points\": [\n");
      bool first = true;
      for (const double target : kRecallTargets) {
        const SweepRow* point = nullptr;
        for (const auto& row : run.sweep) {
          if (row.recall >= target) {
            point = &row;
            break;
          }
        }
        if (!first) std::fprintf(f, ",\n");
        first = false;
        if (point == nullptr) {
          std::fprintf(f,
                       "        {\"target_recall\": %.2f, \"met\": false}",
                       target);
        } else {
          std::fprintf(
              f,
              "        {\"target_recall\": %.2f, \"met\": true, "
              "\"beam\": %d, \"recall\": %.4f, \"mean_latency_us\": %.3f, "
              "\"qps\": %.1f, \"speedup_vs_exact\": %.2f}",
              target, point->beam, point->recall, point->mean_latency_us,
              point->qps, s3_latency_us / point->mean_latency_us);
        }
      }
      std::fprintf(f, "\n      ]\n");
      std::fprintf(f, "    }%s\n", c + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main(int argc, char** argv) { return s3vcd::bench::Main(argc, argv); }
