// Reproduces the paper's operating-point calibration (Section V-C): "this
// threshold is set so that in average less than 1 false alarm occurs per
// hour when the system is continuously monitoring a TV channel". We stream
// unrelated synthetic video against the reference index, record the nsim of
// every (spurious) vote, and report the false-alarm rate per hour as a
// function of the decision threshold, alongside the detection rate of
// genuinely transformed copies at the same thresholds.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/table.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("false_alarm_calibration",
              "false alarms per monitored hour vs nsim threshold");
  const int kNumVideos = 10;
  const uint64_t kDbSize = Scaled(300000);
  const double kMonitorMinutes = 4.0 * ScaleFactor();

  Corpus corpus = BuildCorpus(kNumVideos, kDbSize, 12100);
  const core::GaussianDistortionModel model(15.0);
  Rng rng(667);

  cbcd::DetectorOptions options;
  options.query.filter.alpha = 0.85;
  options.query.filter.depth = 16;
  options.nsim_threshold = 0;  // collect raw votes; threshold applied below
  const cbcd::CopyDetector detector(corpus.index.get(), &model, options);

  // Phase 1: monitor unrelated video, windowed like the TV monitor, and
  // collect every spurious vote's nsim.
  std::vector<int> spurious_nsim;
  const int kWindowFrames = 250;  // 10 s windows
  const int windows = static_cast<int>(kMonitorMinutes * 60.0 * 25.0 /
                                       kWindowFrames);
  double monitored_seconds = 0;
  for (int w = 0; w < windows; ++w) {
    const auto fps = corpus.extractor.Extract(
        media::GenerateSyntheticVideo(ClipConfig(770000 + w,
                                                 kWindowFrames)));
    monitored_seconds += kWindowFrames / 25.0;
    for (const auto& d : detector.DetectClip(fps)) {
      spurious_nsim.push_back(d.nsim);
    }
  }
  std::printf("monitored %.1f min of unrelated video: %zu spurious votes\n",
              monitored_seconds / 60.0, spurious_nsim.size());

  // Phase 2: detection rate of transformed copies at the same thresholds.
  struct CopyRun {
    uint32_t id;
    std::vector<cbcd::Detection> detections;
  };
  std::vector<CopyRun> copies;
  const int kCopies = static_cast<int>(Scaled(8));
  for (int c = 0; c < kCopies; ++c) {
    const uint32_t vid = static_cast<uint32_t>(c % kNumVideos);
    media::TransformChain chain = (c % 2 == 0)
                                      ? media::TransformChain::Noise(6.0)
                                      : media::TransformChain::Gamma(1.4);
    const auto fps =
        corpus.extractor.Extract(chain.Apply(corpus.videos[vid], &rng));
    copies.push_back({vid, detector.DetectClip(fps)});
  }

  Table table({"nsim_threshold", "false_alarms_per_hour",
               "copy_detection_rate_pct"});
  for (int threshold : {2, 5, 10, 20, 40, 80, 160}) {
    int alarms = 0;
    for (int nsim : spurious_nsim) {
      if (nsim >= threshold) {
        ++alarms;
      }
    }
    int detected = 0;
    for (const auto& run : copies) {
      for (const auto& d : run.detections) {
        if (d.id == run.id && d.nsim >= threshold &&
            std::abs(d.offset) <= 2.0) {
          ++detected;
          break;
        }
      }
    }
    table.AddRow()
        .Add(static_cast<int64_t>(threshold))
        .Add(alarms * 3600.0 / monitored_seconds, 4)
        .Add(100.0 * detected / copies.size(), 4);
  }
  table.Print("false_alarm_calibration");
  std::printf(
      "operating point: pick the smallest threshold with < 1 false alarm\n"
      "per hour (the paper's criterion) and read off the detection rate\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
