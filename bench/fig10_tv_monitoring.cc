// Reproduces the TV monitoring experiment of Section V-D (Figure 10 shows
// example detections): a continuous synthetic "TV stream" containing
// embedded copies of referenced clips -- some transformed, some captured in
// degraded conditions -- is monitored by the full CBCD system. The paper
// reports robust detections at 2x real-time speed with a 20,000-hour
// reference DB; we report precision/recall over the embedded segments and
// the speed relative to the 25 fps real-time rate.

#include <cstdio>

#include "bench_common.h"
#include "util/math.h"
#include "util/table.h"
#include "util/timer.h"

namespace s3vcd::bench {
namespace {

struct StreamSegment {
  std::string label;
  int reference_id;  // -1 for unrelated filler
  int start_frame;
  int num_frames;
};

int Main() {
  PrintHeader("fig10_tv_monitoring",
              "continuous monitoring of a synthetic TV stream");
  const int kNumVideos = 8;
  const uint64_t kDbSize = Scaled(400000);
  Corpus corpus = BuildCorpus(kNumVideos, kDbSize, 5100);
  const core::GaussianDistortionModel model(15.0);
  Rng rng(560);

  // Assemble the stream: filler / copy / filler / transformed copies...
  media::VideoSequence stream;
  stream.fps = 25.0;
  std::vector<StreamSegment> segments;
  auto append = [&](const std::string& label, int reference_id,
                    const media::VideoSequence& clip) {
    segments.push_back({label, reference_id,
                        static_cast<int>(stream.frames.size()),
                        clip.num_frames()});
    stream.frames.insert(stream.frames.end(), clip.frames.begin(),
                         clip.frames.end());
  };
  auto filler = [&](uint64_t seed, int frames) {
    append("filler", -1,
           media::GenerateSyntheticVideo(ClipConfig(700000 + seed, frames)));
  };

  filler(1, 150);
  append("copy id0 (exact)", 0, corpus.videos[0]);
  filler(2, 120);
  {
    media::TransformChain chain = media::TransformChain::Contrast(1.5);
    append("copy id1 (contrast 1.5)", 1,
           chain.Apply(corpus.videos[1], &rng));
  }
  filler(3, 130);
  {
    // A black-and-white-style capture: gamma + noise (cf. Figure 10's
    // black-and-white candidate sequences).
    media::TransformChain chain = media::TransformChain::Gamma(1.3);
    chain.Then(media::TransformType::kNoise, 8.0);
    append("copy id2 (gamma 1.3 + noise 8)", 2,
           chain.Apply(corpus.videos[2], &rng));
  }
  filler(4, 120);
  {
    media::TransformChain chain = media::TransformChain::VerticalShift(10);
    append("copy id3 (shift 10%)", 3, chain.Apply(corpus.videos[3], &rng));
  }
  filler(5, 150);
  std::printf("stream: %d frames (%.1f s), %zu segments, DB %zu fps\n",
              stream.num_frames(), stream.duration_seconds(),
              segments.size(), corpus.index->database().size());

  // Monitor the stream.
  cbcd::DetectorOptions options;
  options.query.filter.alpha = 0.80;
  options.query.filter.depth =
      std::max(12, Log2Exact(NextPowerOfTwo(corpus.index->database().size())) - 3);
  options.vote.use_spatial_coherence = true;  // short refs: see DESIGN.md
  options.nsim_threshold = 8;
  const cbcd::CopyDetector detector(corpus.index.get(), &model, options);
  cbcd::StreamMonitor::Options monitor_options;
  monitor_options.window_keyframes = 16;
  monitor_options.window_overlap = 6;
  cbcd::StreamMonitor monitor(&detector, monitor_options);

  Stopwatch watch;
  const auto stream_fps = corpus.extractor.Extract(stream);
  const double extract_seconds = watch.ElapsedSeconds();

  watch.Reset();
  struct Report {
    uint32_t id;
    double offset;
    int nsim;
    uint32_t around_tc;
  };
  std::vector<Report> reports;
  cbcd::DetectionStats stats;
  size_t i = 0;
  while (i < stream_fps.size()) {
    std::vector<fp::LocalFingerprint> keyframe;
    const uint32_t tc = stream_fps[i].time_code;
    while (i < stream_fps.size() && stream_fps[i].time_code == tc) {
      keyframe.push_back(stream_fps[i]);
      ++i;
    }
    for (const auto& d : monitor.PushKeyFrame(keyframe, &stats)) {
      reports.push_back({d.id, d.offset, d.nsim, tc});
    }
  }
  for (const auto& d : monitor.Flush(&stats)) {
    reports.push_back({d.id, d.offset, d.nsim,
                       static_cast<uint32_t>(stream.num_frames())});
  }
  const double search_seconds = watch.ElapsedSeconds();

  // Score the reports against the embedded segments.
  int true_positives = 0;
  int false_positives = 0;
  std::vector<bool> segment_found(segments.size(), false);
  for (const auto& r : reports) {
    bool matched = false;
    for (size_t s = 0; s < segments.size(); ++s) {
      const auto& seg = segments[s];
      if (seg.reference_id == static_cast<int>(r.id) &&
          std::abs(r.offset - seg.start_frame) <= 4.0) {
        segment_found[s] = true;
        matched = true;
      }
    }
    if (matched) {
      ++true_positives;
    } else {
      ++false_positives;
    }
  }
  int copies = 0;
  int copies_found = 0;
  Table table({"segment", "frames", "detected"});
  for (size_t s = 0; s < segments.size(); ++s) {
    const auto& seg = segments[s];
    if (seg.reference_id < 0) {
      continue;
    }
    ++copies;
    copies_found += segment_found[s] ? 1 : 0;
    table.AddRow()
        .Add(seg.label)
        .Add(static_cast<int64_t>(seg.num_frames))
        .Add(segment_found[s] ? "yes" : "NO");
  }
  table.Print("fig10_segments");

  const double stream_seconds = stream.duration_seconds();
  const double total_seconds = extract_seconds + search_seconds;
  std::printf("reports: %d true, %d false\n", true_positives,
              false_positives);
  std::printf("segment recall: %d/%d\n", copies_found, copies);
  std::printf(
      "processing: extract %.1fs + search/vote %.1fs = %.1fs for %.1fs of "
      "video => %.2fx real time\n",
      extract_seconds, search_seconds, total_seconds, stream_seconds,
      stream_seconds / total_seconds);
  std::printf("paper: continuous monitoring at ~2x real time\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
