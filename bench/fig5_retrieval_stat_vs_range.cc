// Reproduces Figure 5 of the paper: retrieval rate (%) versus the query
// expectation alpha for the statistical query and for the exact spherical
// epsilon-range query of equal expectation (epsilon chosen from the chi
// distribution of ||Delta S||). Protocol of Section V-A: queries are
// Q = S + Delta S with i.i.d. zero-mean normal distortion, sigma_Q = 18.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "util/math.h"
#include "util/table.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("fig5_retrieval_stat_vs_range",
              "retrieval rate vs alpha: statistical vs eps-range query");
  const uint64_t kDbSize = Scaled(400000);
  const int kQueries = static_cast<int>(Scaled(600));
  const double kSigmaQ = 18.0;
  const int kDepth = 14;

  Corpus corpus = BuildCorpus(6, kDbSize, 2100);
  const core::Searcher& searcher = corpus.searcher();
  const core::FingerprintDatabase& db = corpus.db();
  Rng rng(555);

  // Pick random real fingerprints S from the database and build distorted
  // queries Q = S + Delta S.
  std::vector<fp::Fingerprint> targets;
  std::vector<fp::Fingerprint> queries;
  for (int i = 0; i < kQueries; ++i) {
    const size_t idx = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(db.size()) - 1));
    targets.push_back(db.record(idx).descriptor);
    queries.push_back(core::DistortFingerprint(targets.back(), kSigmaQ,
                                               &rng));
  }

  const core::GaussianDistortionModel model(kSigmaQ);
  const ChiNormDistribution chi(fp::kDims, kSigmaQ);

  Table table({"alpha_pct", "statistical_rate_pct", "range_rate_pct",
               "epsilon"});
  for (double alpha :
       {0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99}) {
    const double epsilon = chi.Quantile(alpha);
    core::QueryOptions stat;
    stat.filter.alpha = alpha;
    stat.filter.depth = kDepth;

    int stat_hits = 0;
    int range_hits = 0;
    for (int i = 0; i < kQueries; ++i) {
      const double target_dist = fp::Distance(queries[i], targets[i]);
      const core::QueryResult s =
          searcher.StatQuery(queries[i], model, stat);
      for (const auto& m : s.matches) {
        if (std::abs(m.distance - target_dist) < 1e-3) {
          ++stat_hits;
          break;
        }
      }
      // For the exact range query the answer is analytic: the target is
      // retrieved iff its distance is within epsilon (the index raced
      // through the same exact semantics in fig6's timing runs).
      if (target_dist <= epsilon) {
        ++range_hits;
      }
    }
    table.AddRow()
        .Add(100 * alpha, 3)
        .Add(100.0 * stat_hits / kQueries, 4)
        .Add(100.0 * range_hits / kQueries, 4)
        .Add(epsilon, 4);
  }
  table.Print("fig5");
  std::printf(
      "paper: both curves track alpha closely; the geometric constraint\n"
      "of the exact range query does not improve the retrieval rate\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
