// Reproduces Figure 3 of the paper: observed retrieval rate R of the S3
// technique versus the query expectation alpha, validating the independent
// zero-mean normal distortion model. The transformation is the paper's
// combination: resize (0.8) + gamma modification + noise addition + a
// simulated 1-pixel imprecision of the interest point detector. The paper
// validates the model with |R - alpha| <= 7%.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "fingerprint/distortion.h"
#include "util/table.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("fig3_model_validation",
              "retrieval rate R vs statistical query expectation alpha");
  const int kClips = static_cast<int>(Scaled(10));
  const uint64_t kDbSize = Scaled(200000);

  media::TransformChain chain = media::TransformChain::Resize(0.8);
  chain.Then(media::TransformType::kGamma, 1.4);
  chain.Then(media::TransformType::kNoise, 6.0);
  fp::PerfectDetectorOptions options;
  // The paper's 1-pixel imprecision at 352x288; our frames are 96x80, so
  // the equivalent relative imprecision is ~0.3 pixels (see DESIGN.md).
  options.delta_pix = 0.3;
  Rng rng(333);

  // Collect (reference, distorted) pairs and build the reference database
  // from the same videos, padded with distractors.
  std::vector<fp::DistortionSample> samples;
  core::DatabaseBuilder builder;
  std::vector<fp::Fingerprint> pool;
  const fp::FingerprintExtractor extractor(options.extractor);
  for (int c = 0; c < kClips; ++c) {
    const media::VideoSequence video =
        media::GenerateSyntheticVideo(ClipConfig(900 + c));
    const auto clip_samples =
        fp::CollectDistortionSamples(video, chain, options, &rng);
    samples.insert(samples.end(), clip_samples.begin(), clip_samples.end());
    builder.AddVideo(static_cast<uint32_t>(c), extractor.Extract(video));
    for (const auto& s : clip_samples) {
      pool.push_back(s.reference);
    }
  }
  const fp::DistortionStats stats = fp::ComputeDistortionStats(samples);
  if (builder.size() < kDbSize) {
    core::AppendDistractors(&builder, pool, kDbSize - builder.size(),
                            core::DistractorOptions{}, &rng);
  }
  const core::S3Index index(builder.Build());
  const core::GaussianDistortionModel model(stats.sigma);
  std::printf("samples=%zu  estimated sigma=%.2f  db=%zu fingerprints\n",
              samples.size(), stats.sigma, index.database().size());

  Table table({"alpha_pct", "retrieval_rate_pct", "error_pct",
               "avg_time_ms", "avg_blocks"});
  for (double alpha : {0.40, 0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95,
                       0.99}) {
    core::QueryOptions query;
    query.filter.alpha = alpha;
    query.filter.depth = 14;
    int retrieved = 0;
    double total_ms = 0;
    uint64_t total_blocks = 0;
    for (const auto& s : samples) {
      const core::QueryResult result =
          index.StatisticalQuery(s.distorted, model, query);
      total_ms += (result.stats.filter_seconds +
                   result.stats.refine_seconds) * 1e3;
      total_blocks += result.stats.blocks_selected;
      const double target = fp::Distance(s.distorted, s.reference);
      for (const auto& m : result.matches) {
        if (std::abs(m.distance - target) < 1e-3) {
          ++retrieved;
          break;
        }
      }
    }
    const double rate = 100.0 * retrieved / samples.size();
    table.AddRow()
        .Add(100 * alpha, 3)
        .Add(rate, 4)
        .Add(rate - 100 * alpha, 3)
        .Add(total_ms / samples.size(), 3)
        .Add(static_cast<double>(total_blocks) / samples.size(), 4);
  }
  table.Print("fig3");
  std::printf("paper: R tracks alpha with error <= 7%% (model validated)\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
