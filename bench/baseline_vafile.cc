// Baseline comparison beyond the paper's own tables: the VA-file (Weber &
// Blott), which the paper cites ([11]) as the improved sequential method
// that can beat all tree structures in high dimension. We compare, at
// equal expectation, the S3 statistical query, the S3 exact range query,
// the VA-file range query, the VA-file k-NN, and the plain sequential
// scan — on time and on exact-vector accesses.

#include <cstdio>

#include "bench_common.h"
#include "core/knn.h"
#include "core/lsh.h"
#include "core/vafile.h"
#include "util/math.h"
#include "util/table.h"
#include "util/timer.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("baseline_vafile",
              "S3 vs VA-file vs sequential scan at equal expectation");
  const uint64_t kDbSize = Scaled(400000);
  const int kQueries = static_cast<int>(Scaled(200));
  const double kSigma = 18.0;
  const double kAlpha = 0.8;

  Corpus corpus = BuildCorpus(6, kDbSize, 8100);
  const core::S3Index& index = *corpus.index;
  const core::GaussianDistortionModel model(kSigma);
  const ChiNormDistribution chi(fp::kDims, kSigma);
  const double epsilon = chi.Quantile(kAlpha);
  Rng rng(663);

  // VA-file over the same records.
  core::VAFileOptions va_options;
  va_options.bits_per_dim = 4;
  Stopwatch build_watch;
  const core::VAFile va(index.database().records(), va_options);
  std::printf("VA-file built in %.1f ms (%d bits/dim, %.1f MiB approx)\n",
              build_watch.ElapsedMillis(), va.bits_per_dim(),
              va.ApproximationBits() / 8.0 / 1048576.0);

  // LSH baseline (p-stable, Datar et al. 2004) tuned for the target eps.
  core::LshOptions lsh_options;
  lsh_options.num_tables = 10;
  lsh_options.hashes_per_table = 5;
  lsh_options.bucket_width = 1.5 * epsilon;
  build_watch.Reset();
  const core::LshIndex lsh(index.database().records(), lsh_options);
  std::printf("LSH built in %.1f ms (%d tables x %d hashes)\n",
              build_watch.ElapsedMillis(), lsh_options.num_tables,
              lsh_options.hashes_per_table);

  std::vector<fp::Fingerprint> queries;
  for (int i = 0; i < kQueries; ++i) {
    const size_t idx = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(index.database().size()) - 1));
    queries.push_back(core::DistortFingerprint(
        index.database().record(idx).descriptor, kSigma, &rng));
  }

  Table table({"method", "avg_ms", "avg_vector_accesses", "avg_results"});
  auto add_row = [&](const char* name, auto&& run) {
    Stopwatch watch;
    uint64_t accesses = 0;
    uint64_t results = 0;
    for (const auto& q : queries) {
      const core::QueryResult r = run(q);
      accesses += r.stats.records_scanned;
      results += r.matches.size();
    }
    table.AddRow()
        .Add(name)
        .Add(watch.ElapsedMillis() / kQueries, 4)
        .Add(static_cast<double>(accesses) / kQueries, 4)
        .Add(static_cast<double>(results) / kQueries, 4);
  };

  core::QueryOptions stat;
  stat.filter.alpha = kAlpha;
  stat.filter.depth = 16;
  add_row("s3_statistical(a=0.8)", [&](const fp::Fingerprint& q) {
    return index.StatisticalQuery(q, model, stat);
  });
  add_row("s3_range(eps=chi(0.8))", [&](const fp::Fingerprint& q) {
    return index.RangeQuery(q, epsilon, 16);
  });
  add_row("vafile_range(eps)", [&](const fp::Fingerprint& q) {
    return va.RangeQuery(q, epsilon);
  });
  add_row("vafile_knn(k=20)", [&](const fp::Fingerprint& q) {
    return va.KnnQuery(q, 20);
  });
  add_row("lsh_range(eps, approx)", [&](const fp::Fingerprint& q) {
    return lsh.RangeQuery(q, epsilon);
  });
  core::KnnOptions knn_options;
  knn_options.k = 20;
  knn_options.depth = 16;
  add_row("s3_knn(k=20)", [&](const fp::Fingerprint& q) {
    return core::KnnQuery(index, q, knn_options);
  });
  add_row("sequential_scan(eps)", [&](const fp::Fingerprint& q) {
    return index.SequentialScan(q, epsilon);
  });
  table.Print("baseline_vafile");
  std::printf(
      "expected shape: the VA-file prunes most exact accesses but still\n"
      "touches every approximation; the S3 statistical filter touches only\n"
      "the curve sections of its region\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
