// Baseline comparison beyond the paper's own tables: the VA-file (Weber &
// Blott), which the paper cites ([11]) as the improved sequential method
// that can beat all tree structures in high dimension. We compare, at
// equal expectation, the S3 statistical query, the S3 exact range query,
// the VA-file range query, the VA-file k-NN, the p-stable LSH range query,
// and the plain sequential scan — on time and on exact-vector accesses.
// All range/statistical rows run through the backend-agnostic Searcher
// registry; one # METRICS block per row carries a backend= annotation so
// downstream parsers can key counters by backend.

#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"
#include "core/knn.h"
#include "core/vafile.h"
#include "obs/metrics.h"
#include "util/math.h"
#include "util/table.h"
#include "util/timer.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("baseline_vafile",
              "S3 vs VA-file vs LSH vs sequential scan at equal expectation");
  SetMetricsAnnotation("backend=all");
  const uint64_t kDbSize = Scaled(400000);
  const int kQueries = static_cast<int>(Scaled(200));
  const double kSigma = 18.0;
  const double kAlpha = 0.8;

  Corpus corpus = BuildCorpus(6, kDbSize, 8100);
  const core::GaussianDistortionModel model(kSigma);
  const ChiNormDistribution chi(fp::kDims, kSigma);
  const double epsilon = chi.Quantile(kAlpha);
  Rng rng(663);

  // VA-file and LSH backends over copies of the same records, built
  // through the registry (same construction path as the service/tool).
  core::SearcherConfig va_config;
  va_config.vafile_bits_per_dim = 4;
  Stopwatch build_watch;
  const std::unique_ptr<core::Searcher> va =
      MakeBackend(corpus, "vafile", va_config);
  std::printf("VA-file built in %.1f ms (%d bits/dim, %.1f MiB total)\n",
              build_watch.ElapsedMillis(), va_config.vafile_bits_per_dim,
              va->ApproxBytes() / 1048576.0);

  // LSH baseline (p-stable, Datar et al. 2004) tuned for the target eps.
  core::SearcherConfig lsh_config;
  lsh_config.lsh_num_tables = 10;
  lsh_config.lsh_hashes_per_table = 5;
  lsh_config.lsh_bucket_width = 1.5 * epsilon;
  build_watch.Reset();
  const std::unique_ptr<core::Searcher> lsh =
      MakeBackend(corpus, "lsh", lsh_config);
  std::printf("LSH built in %.1f ms (%d tables x %d hashes)\n",
              build_watch.ElapsedMillis(), lsh_config.lsh_num_tables,
              lsh_config.lsh_hashes_per_table);

  const std::unique_ptr<core::Searcher> seqscan =
      MakeBackend(corpus, "seqscan");

  std::vector<fp::Fingerprint> queries;
  for (int i = 0; i < kQueries; ++i) {
    const size_t idx = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(corpus.db().size()) - 1));
    queries.push_back(core::DistortFingerprint(
        corpus.db().record(idx).descriptor, kSigma, &rng));
  }

  Table table({"method", "backend", "avg_ms", "avg_vector_accesses",
               "avg_results"});
  // Each row runs with a freshly reset metrics registry and emits its own
  // annotated # METRICS block, so the per-backend index.* counters are
  // separable from the combined run.
  auto add_row = [&](const char* name, const char* backend, auto&& run) {
    obs::MetricsRegistry::Global().Reset();
    Stopwatch watch;
    uint64_t accesses = 0;
    uint64_t results = 0;
    for (const auto& q : queries) {
      const core::QueryResult r = run(q);
      accesses += r.stats.records_scanned;
      results += r.matches.size();
    }
    table.AddRow()
        .Add(name)
        .Add(backend)
        .Add(watch.ElapsedMillis() / kQueries, 4)
        .Add(static_cast<double>(accesses) / kQueries, 4)
        .Add(static_cast<double>(results) / kQueries, 4);
    EmitMetricsBlock(std::string("baseline_vafile.") + name,
                     std::string("backend=") + backend);
  };

  core::QueryOptions stat;
  stat.filter.alpha = kAlpha;
  stat.filter.depth = 16;
  const core::Searcher& s3 = corpus.searcher();
  add_row("s3_statistical(a=0.8)", "s3", [&](const fp::Fingerprint& q) {
    return s3.StatQuery(q, model, stat);
  });
  add_row("s3_range(eps=chi(0.8))", "s3", [&](const fp::Fingerprint& q) {
    return s3.RangeQuery(q, epsilon, 16);
  });
  add_row("vafile_range(eps)", "vafile", [&](const fp::Fingerprint& q) {
    return va->RangeQuery(q, epsilon, 0);
  });
  // k-NN rows exercise concrete-only API (no Searcher equivalent — the
  // paper argues k-NN semantics are wrong for copy detection).
  const auto* va_concrete = dynamic_cast<const core::VAFile*>(va.get());
  add_row("vafile_knn(k=20)", "vafile", [&](const fp::Fingerprint& q) {
    return va_concrete->KnnQuery(q, 20);
  });
  add_row("lsh_range(eps, approx)", "lsh", [&](const fp::Fingerprint& q) {
    return lsh->RangeQuery(q, epsilon, 0);
  });
  core::KnnOptions knn_options;
  knn_options.k = 20;
  knn_options.depth = 16;
  add_row("s3_knn(k=20)", "s3", [&](const fp::Fingerprint& q) {
    return core::KnnQuery(*corpus.index, q, knn_options);
  });
  add_row("sequential_scan(eps)", "seqscan", [&](const fp::Fingerprint& q) {
    return seqscan->RangeQuery(q, epsilon, 0);
  });
  table.Print("baseline_vafile");
  std::printf(
      "expected shape: the VA-file prunes most exact accesses but still\n"
      "touches every approximation; the S3 statistical filter touches only\n"
      "the curve sections of its region\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
