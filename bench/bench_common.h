#ifndef S3VCD_BENCH_BENCH_COMMON_H_
#define S3VCD_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cbcd/detector.h"
#include "core/database.h"
#include "core/distortion_model.h"
#include "core/index.h"
#include "core/searcher.h"
#include "core/synthetic_db.h"
#include "fingerprint/extractor.h"
#include "media/synthetic.h"
#include "media/transforms.h"
#include "util/rng.h"

namespace s3vcd::bench {

/// Experiment-wide scale multiplier, read from the environment variable
/// S3VCD_SCALE (default 1.0). Raise it to run closer to paper scale.
double ScaleFactor();

/// Scaled count helper: max(1, round(base * ScaleFactor())).
uint64_t Scaled(uint64_t base);

/// The synthetic video geometry used by all experiments (a scaled-down
/// stand-in for the paper's 352x288 MPEG1 clips; see DESIGN.md).
media::SyntheticVideoConfig ClipConfig(uint64_t seed, int num_frames = 250);

/// The paper reports DB sizes in hours of video at ~50,000 local
/// fingerprints per hour; we reuse that conversion when printing.
double FingerprintsToHours(uint64_t fingerprints);

/// A reference corpus: `num_videos` synthetic clips ingested under ids
/// [0, num_videos), padded with resampled distractors up to `total_size`
/// fingerprints, plus the extracted fingerprints kept per video.
struct Corpus {
  std::vector<media::VideoSequence> videos;
  std::vector<std::vector<fp::LocalFingerprint>> video_fps;
  std::vector<fp::Fingerprint> pool;  ///< all real descriptors (resampling)
  std::unique_ptr<core::S3Index> index;
  fp::FingerprintExtractor extractor;

  /// The corpus index through the backend-agnostic interface; benches that
  /// do not need S3-specific API should query through this.
  const core::Searcher& searcher() const { return *index; }
  /// The reference records of the corpus.
  const core::FingerprintDatabase& db() const { return index->database(); }
};

Corpus BuildCorpus(int num_videos, uint64_t total_size, uint64_t seed,
                   int clip_frames = 250);

/// Re-pads an existing corpus into a new index of a different total size
/// (reuses the extracted real fingerprints; much cheaper than regenerating
/// the videos).
std::unique_ptr<core::S3Index> RebuildIndexWithSize(const Corpus& corpus,
                                                    uint64_t total_size,
                                                    uint64_t seed);

/// Copies the corpus reference records into a standalone database (backend
/// constructors consume their database; the corpus keeps its own).
core::FingerprintDatabase CopyDatabase(const Corpus& corpus);

/// Constructs a registry backend ("s3", "vafile", "lsh", "seqscan", ...)
/// over a copy of the corpus database. Aborts on an unknown name — bench
/// backends are spelled in source, not user input.
std::unique_ptr<core::Searcher> MakeBackend(
    const Corpus& corpus, const std::string& name,
    const core::SearcherConfig& config = {});

/// The five transformation families of the paper's Figure 4, with a sweep
/// of strength values per family (subsets of the paper's abacus x-axes).
struct TransformSweep {
  std::string family;               ///< "shift", "scale", "gamma", ...
  std::vector<double> parameters;   ///< swept strengths
  media::TransformChain MakeChain(double parameter) const;
};
std::vector<TransformSweep> PaperTransformSweeps();

/// Good-detection criterion of Section V-C, evaluated per candidate clip:
/// some detection carries the right id with a temporal offset within
/// `frame_tolerance` of the true offset.
bool ClipDetected(const std::vector<cbcd::Detection>& detections,
                  uint32_t expected_id, double expected_offset,
                  double frame_tolerance = 2.0);

/// Prints a standard header line for a bench binary. Also zeroes the
/// global metrics registry and arranges (via atexit) for EmitMetricsBlock
/// to run when the binary exits, so every bench emits a machine-readable
/// metrics block with no per-binary changes.
void PrintHeader(const std::string& name, const std::string& description);

/// Prints the structured metrics block for this run:
///   # METRICS <name> [annotation]
///   { ...one MetricsSnapshot JSON object... }
///   # END METRICS
/// Called automatically at exit after PrintHeader; callable directly to
/// bracket a narrower region. A non-empty annotation (e.g. "backend=s3")
/// is appended to the header line so downstream parsers can key blocks by
/// backend.
void EmitMetricsBlock(const std::string& name,
                      const std::string& annotation = "");

/// Sets the annotation of the metrics block emitted at exit (the blocks
/// emitted directly via EmitMetricsBlock pass their own).
void SetMetricsAnnotation(const std::string& annotation);

}  // namespace s3vcd::bench

#endif  // S3VCD_BENCH_BENCH_COMMON_H_
