#include "bench_common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "util/logging.h"

namespace s3vcd::bench {

double ScaleFactor() {
  const char* env = std::getenv("S3VCD_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

uint64_t Scaled(uint64_t base) {
  const double v = std::round(static_cast<double>(base) * ScaleFactor());
  return v < 1 ? 1 : static_cast<uint64_t>(v);
}

media::SyntheticVideoConfig ClipConfig(uint64_t seed, int num_frames) {
  media::SyntheticVideoConfig config;
  config.width = 96;
  config.height = 80;
  config.num_frames = num_frames;
  config.seed = seed;
  return config;
}

double FingerprintsToHours(uint64_t fingerprints) {
  // Paper Section V: about 50,000 local fingerprints per hour of video.
  return static_cast<double>(fingerprints) / 50000.0;
}

Corpus BuildCorpus(int num_videos, uint64_t total_size, uint64_t seed,
                   int clip_frames) {
  Corpus corpus;
  core::DatabaseBuilder builder;
  for (int v = 0; v < num_videos; ++v) {
    corpus.videos.push_back(
        media::GenerateSyntheticVideo(ClipConfig(seed + v, clip_frames)));
    corpus.video_fps.push_back(
        corpus.extractor.Extract(corpus.videos.back()));
    builder.AddVideo(static_cast<uint32_t>(v), corpus.video_fps.back());
    for (const auto& lf : corpus.video_fps.back()) {
      corpus.pool.push_back(lf.descriptor);
    }
  }
  S3VCD_CHECK(!corpus.pool.empty());
  if (builder.size() < total_size) {
    Rng rng(seed ^ 0x5eedULL);
    core::AppendDistractors(&builder, corpus.pool,
                            total_size - builder.size(),
                            core::DistractorOptions{}, &rng);
  }
  corpus.index = std::make_unique<core::S3Index>(builder.Build());
  return corpus;
}

std::unique_ptr<core::S3Index> RebuildIndexWithSize(const Corpus& corpus,
                                                    uint64_t total_size,
                                                    uint64_t seed) {
  core::DatabaseBuilder builder;
  for (size_t v = 0; v < corpus.video_fps.size(); ++v) {
    builder.AddVideo(static_cast<uint32_t>(v), corpus.video_fps[v]);
  }
  if (builder.size() < total_size) {
    Rng rng(seed ^ 0xd15eedULL);
    core::AppendDistractors(&builder, corpus.pool,
                            total_size - builder.size(),
                            core::DistractorOptions{}, &rng);
  }
  return std::make_unique<core::S3Index>(builder.Build());
}

core::FingerprintDatabase CopyDatabase(const Corpus& corpus) {
  const core::FingerprintDatabase& db = corpus.db();
  core::DatabaseBuilder builder(db.order());
  for (size_t i = 0; i < db.size(); ++i) {
    const core::FingerprintRecord& r = db.record(i);
    builder.Add(r.descriptor, r.id, r.time_code, r.x, r.y);
  }
  return builder.Build();
}

std::unique_ptr<core::Searcher> MakeBackend(const Corpus& corpus,
                                            const std::string& name,
                                            const core::SearcherConfig& config) {
  Result<std::unique_ptr<core::Searcher>> backend =
      core::SearcherRegistry::Global().Create(name, CopyDatabase(corpus),
                                              config);
  S3VCD_CHECK(backend.ok());
  return std::move(*backend);
}

media::TransformChain TransformSweep::MakeChain(double parameter) const {
  if (family == "shift") {
    return media::TransformChain::VerticalShift(parameter);
  }
  if (family == "scale") {
    return media::TransformChain::Resize(parameter);
  }
  if (family == "gamma") {
    return media::TransformChain::Gamma(parameter);
  }
  if (family == "contrast") {
    return media::TransformChain::Contrast(parameter);
  }
  if (family == "noise") {
    return media::TransformChain::Noise(parameter);
  }
  return media::TransformChain::Identity();
}

std::vector<TransformSweep> PaperTransformSweeps() {
  // Subsets of the x-axes of the paper's Figures 8 and 9 abacuses.
  return {
      {"shift", {5, 15, 25, 35}},
      {"scale", {0.7, 0.85, 1.0, 1.2, 1.4}},
      {"gamma", {0.5, 0.8, 1.2, 1.8, 2.4}},
      {"contrast", {0.5, 0.8, 1.2, 2.0, 2.8}},
      {"noise", {5, 15, 25, 35}},
  };
}

bool ClipDetected(const std::vector<cbcd::Detection>& detections,
                  uint32_t expected_id, double expected_offset,
                  double frame_tolerance) {
  for (const auto& d : detections) {
    if (d.id == expected_id &&
        std::abs(d.offset - expected_offset) <= frame_tolerance) {
      return true;
    }
  }
  return false;
}

namespace {

// Name registered by PrintHeader, emitted by the atexit hook.
std::string* MetricsBlockName() {
  static std::string* name = new std::string();
  return name;
}

// Annotation of the at-exit block (SetMetricsAnnotation).
std::string* MetricsBlockAnnotation() {
  static std::string* annotation = new std::string();
  return annotation;
}

void EmitMetricsBlockAtExit() {
  EmitMetricsBlock(*MetricsBlockName(), *MetricsBlockAnnotation());
}

}  // namespace

void EmitMetricsBlock(const std::string& name,
                      const std::string& annotation) {
  const std::string json = obs::MetricsRegistry::Global().Snapshot().ToJson();
  // Every block carries the refine-kernel and descriptor-codec choice so
  // perf numbers are attributable to the scalar/SSE2/AVX2/AVX-512 path and
  // the descriptor encoding that produced them. Benches that sweep codecs
  // put "codec=<name>" in their own annotation; "codec=exact" is the
  // default for everything else.
  std::string full = annotation;
  if (!full.empty()) {
    full += ' ';
  }
  full += "scan_kernel=";
  full += core::ActiveScanKernelName();
  if (annotation.find("codec=") == std::string::npos) {
    full += " codec=exact";
  }
  std::printf("# METRICS %s %s\n%s\n# END METRICS\n", name.c_str(),
              full.c_str(), json.c_str());
  std::fflush(stdout);
}

void SetMetricsAnnotation(const std::string& annotation) {
  *MetricsBlockAnnotation() = annotation;
}

void PrintHeader(const std::string& name, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", name.c_str(), description.c_str());
  std::printf("scale factor S3VCD_SCALE=%.2f\n", ScaleFactor());
  std::printf("==============================================================\n");
  std::fflush(stdout);
  // Bracket the run: metrics recorded before the header (static init,
  // corpus warm-up in main's callers) are not part of the experiment.
  const bool first_call = MetricsBlockName()->empty();
  *MetricsBlockName() = name;
  obs::MetricsRegistry::Global().Reset();
  if (first_call) {
    std::atexit(EmitMetricsBlockAtExit);
  }
}

}  // namespace s3vcd::bench
