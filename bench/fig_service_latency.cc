// Latency figure for the query service under a calibrated load ramp
// (src/service/loadgen.*): a closed-loop run first measures sustainable
// capacity, then open-loop phases at 0.5x/1x/2x/4x of that rate drive the
// service through its overload knee. Per phase we report offered vs
// goodput, reject and deadline-miss rates, exact e2e percentiles
// (coordinated-omission safe: latency is measured from the *scheduled*
// arrival) and the mean per-stage breakdown (queue / selection / refine /
// other). The expected shape: below the knee goodput tracks offered and
// p99 stays near the service time; past it goodput flattens, rejects
// absorb the excess and queue wait dominates the latency of what is
// admitted. The # METRICS block at exit carries the cumulative
// service.stage_* histograms behind the same data.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/synthetic_db.h"
#include "service/loadgen.h"
#include "service/query_service.h"
#include "service/sharded_searcher.h"
#include "util/table.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("fig_service_latency",
              "query service latency under a calibrated open-loop ramp: "
              "offered vs goodput, e2e percentiles and per-stage "
              "breakdown across the overload knee");
  const uint64_t kDbSize = Scaled(150000);
  const double kSigma = 14.0;
  Corpus corpus = BuildCorpus(6, kDbSize, 9301);
  const core::GaussianDistortionModel model(kSigma);
  Rng rng(478);

  std::vector<fp::Fingerprint> pool;
  for (int i = 0; i < 128; ++i) {
    const size_t idx = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(corpus.db().size()) - 1));
    pool.push_back(core::DistortFingerprint(
        corpus.db().record(idx).descriptor, kSigma, &rng));
  }

  service::ShardedSearcherOptions shard_options;
  shard_options.num_shards = 4;
  shard_options.policy = service::ShardingPolicy::kHilbertRange;
  auto searcher = service::ShardedSearcher::Build(CopyDatabase(corpus),
                                                  shard_options);
  if (!searcher.ok()) {
    std::printf("FATAL: %s\n", searcher.status().ToString().c_str());
    return 1;
  }

  service::QueryServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.threads_per_batch = 1;
  service_options.max_queue_depth = 32;
  service_options.query.filter.alpha = 0.8;
  service_options.query.filter.depth = 12;
  service_options.slow_batch_threshold_ms = 0;  // adaptive rolling p99
  service::QueryService service(&*searcher, &model, service_options);

  service::LoadGenOptions load;
  load.mode = service::LoadMode::kOpenLoop;
  load.jitter = service::ArrivalJitter::kPoisson;
  load.base_qps = 0;  // calibrate from closed-loop goodput
  load.base_clients = 4;
  load.ramp = {0.5, 1.0, 2.0, 4.0};
  // Phase length scales with S3VCD_SCALE so CI stays fast while a full
  // run integrates long enough for stable p99.9.
  load.phase_seconds = 0.25 * static_cast<double>(Scaled(8));
  load.calibrate_seconds = 0.25 * static_cast<double>(Scaled(4));
  load.mix.stat_single = 0.6;
  load.mix.range_single = 0.2;
  load.mix.stat_batch = 0.2;
  load.batch_size = 8;
  load.seed = 478;

  const service::LoadGenReport report =
      service::RunLoadGen(service, pool, model, load);
  service.Shutdown();

  Table ramp({"mult", "target_qps", "offered_qps", "goodput_qps",
              "reject_rate", "p50_ms", "p95_ms", "p99_ms", "p999_ms"});
  Table stages({"mult", "queue_ms", "execute_ms", "selection_ms",
                "refine_ms", "other_ms"});
  for (const service::PhaseReport& p : report.phases) {
    if (p.calibration) {
      std::printf("calibration: %.1f batches/s goodput with %d clients "
                  "(p99 %.3f ms)\n",
                  p.goodput_qps, p.clients, p.e2e.p99_ms);
      continue;
    }
    ramp.AddRow()
        .Add(p.multiplier, 2)
        .Add(p.target_qps, 4)
        .Add(p.offered_qps, 4)
        .Add(p.goodput_qps, 4)
        .Add(p.reject_rate, 3)
        .Add(p.e2e.p50_ms, 4)
        .Add(p.e2e.p95_ms, 4)
        .Add(p.e2e.p99_ms, 4)
        .Add(p.e2e.p999_ms, 4);
    stages.AddRow()
        .Add(p.multiplier, 2)
        .Add(p.stages.queue_ms, 4)
        .Add(p.stages.execute_ms, 4)
        .Add(p.stages.selection_ms, 4)
        .Add(p.stages.refine_ms, 4)
        .Add(p.stages.other_ms, 4);
  }
  ramp.Print("service_latency_ramp");
  stages.Print("service_stage_breakdown");

  const service::SlowBatchLog* slow_log = service.slow_log();
  std::printf("slow-batch log: %llu exemplars captured (adaptive p99 "
              "threshold now %.3f ms)\n",
              static_cast<unsigned long long>(
                  slow_log != nullptr ? slow_log->captured() : 0),
              slow_log != nullptr ? slow_log->CurrentThresholdMs() : 0.0);
  std::printf(
      "takeaway: goodput tracks offered load up to the calibrated rate,\n"
      "then flattens at the knee while rejects absorb the excess; queue\n"
      "wait, not execute, is what inflates tail latency past saturation\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
