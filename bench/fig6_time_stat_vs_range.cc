// Reproduces Figure 6 of the paper: average search time (ms) versus the
// query expectation alpha, for the statistical query and the exact
// spherical epsilon-range query of equal expectation. The paper reports the
// statistical query 17x to 132x faster, because the hypersphere intersects
// a huge number of bounding regions in dimension 20 while the statistical
// region adapts to the blocks.

#include <cstdio>

#include "bench_common.h"
#include "util/math.h"
#include "util/table.h"
#include "util/timer.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("fig6_time_stat_vs_range",
              "average search time vs alpha: statistical vs eps-range");
  // The whole sweep runs on the corpus's block-structured backend.
  SetMetricsAnnotation("backend=s3");
  const uint64_t kDbSize = Scaled(400000);
  const int kStatQueries = static_cast<int>(Scaled(400));
  const int kRangeQueries = static_cast<int>(Scaled(60));
  const double kSigmaQ = 18.0;
  const int kDepth = 14;

  Corpus corpus = BuildCorpus(6, kDbSize, 2100);
  const core::Searcher& searcher = corpus.searcher();
  const core::FingerprintDatabase& db = corpus.db();
  Rng rng(556);

  std::vector<fp::Fingerprint> queries;
  for (int i = 0; i < kStatQueries; ++i) {
    const size_t idx = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(db.size()) - 1));
    queries.push_back(core::DistortFingerprint(
        db.record(idx).descriptor, kSigmaQ, &rng));
  }

  const core::GaussianDistortionModel model(kSigmaQ);
  const ChiNormDistribution chi(fp::kDims, kSigmaQ);

  Table table({"alpha_pct", "statistical_ms", "range_ms", "speedup",
               "stat_blocks", "range_blocks"});
  for (double alpha : {0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95}) {
    const double epsilon = chi.Quantile(alpha);
    core::QueryOptions stat;
    stat.filter.alpha = alpha;
    stat.filter.depth = kDepth;

    Stopwatch watch;
    uint64_t stat_blocks = 0;
    for (const auto& q : queries) {
      const core::QueryResult r = searcher.StatQuery(q, model, stat);
      stat_blocks += r.stats.blocks_selected;
    }
    const double stat_ms = watch.ElapsedMillis() / queries.size();

    watch.Reset();
    uint64_t range_blocks = 0;
    for (int i = 0; i < kRangeQueries; ++i) {
      const core::QueryResult r =
          searcher.RangeQuery(queries[i], epsilon, kDepth);
      range_blocks += r.stats.blocks_selected;
    }
    const double range_ms = watch.ElapsedMillis() / kRangeQueries;

    table.AddRow()
        .Add(100 * alpha, 3)
        .Add(stat_ms, 4)
        .Add(range_ms, 4)
        .Add(range_ms / (stat_ms > 0 ? stat_ms : 1e-9), 3)
        .Add(static_cast<double>(stat_blocks) / queries.size(), 4)
        .Add(static_cast<double>(range_blocks) / kRangeQueries, 4);
  }
  table.Print("fig6");
  std::printf(
      "paper: statistical query 17x-132x faster than the exact range\n"
      "query at equal expectation (Pentium IV absolute times differ)\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
