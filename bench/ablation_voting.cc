// Ablation of the voting stage variants: the paper's plain temporal vote
// (eq. 2), the spatial-coherence extension it proposes as future work
// (Section VI), the IRLS continuous-offset refinement, and the effect of
// the Hough acceleration. Measured: detection rate on transformed copies,
// top spurious nsim on unrelated clips (the false-alarm margin), and the
// voting time per clip.

#include <cstdio>

#include "bench_common.h"
#include "util/table.h"
#include "util/timer.h"

namespace s3vcd::bench {
namespace {

int Main() {
  PrintHeader("ablation_voting",
              "voting variants: margin between copies and unrelated clips");
  const int kNumVideos = 10;
  const uint64_t kDbSize = Scaled(300000);
  const int kCopyClips = static_cast<int>(Scaled(10));
  const int kUnrelatedClips = static_cast<int>(Scaled(8));

  Corpus corpus = BuildCorpus(kNumVideos, kDbSize, 11100);
  const core::GaussianDistortionModel model(15.0);
  Rng rng(666);

  // Candidate sets: transformed copies and unrelated clips.
  struct Candidate {
    int expected_id;  // -1 for unrelated
    std::vector<fp::LocalFingerprint> fps;
  };
  std::vector<Candidate> candidates;
  for (int c = 0; c < kCopyClips; ++c) {
    const int vid = c % kNumVideos;
    media::TransformChain chain =
        (c % 3 == 0)   ? media::TransformChain::Gamma(1.3)
        : (c % 3 == 1) ? media::TransformChain::Noise(6.0)
                       : media::TransformChain::Contrast(1.4);
    candidates.push_back(
        {vid, corpus.extractor.Extract(chain.Apply(corpus.videos[vid],
                                                   &rng))});
  }
  for (int u = 0; u < kUnrelatedClips; ++u) {
    candidates.push_back(
        {-1, corpus.extractor.Extract(
                 media::GenerateSyntheticVideo(ClipConfig(880000 + u)))});
  }

  struct Variant {
    const char* name;
    cbcd::VoteOptions options;
  };
  std::vector<Variant> variants;
  {
    Variant plain{"plain_temporal", {}};
    variants.push_back(plain);
    Variant spatial{"plus_spatial", {}};
    spatial.options.use_spatial_coherence = true;
    variants.push_back(spatial);
    Variant irls{"plus_irls", {}};
    irls.options.refine_offset = true;
    variants.push_back(irls);
    Variant exhaustive{"no_hough(exhaustive)", {}};
    exhaustive.options.hough_threshold = 1u << 30;
    variants.push_back(exhaustive);
  }

  Table table({"variant", "copy_detect_rate_pct", "mean_copy_nsim",
               "max_spurious_nsim", "vote_ms_per_clip"});
  for (const Variant& variant : variants) {
    cbcd::DetectorOptions options;
    options.query.filter.alpha = 0.85;
    options.query.filter.depth = 16;
    options.vote = variant.options;
    options.nsim_threshold = 0;  // examine raw votes
    const cbcd::CopyDetector detector(corpus.index.get(), &model, options);

    int detected = 0;
    double copy_nsim = 0;
    int max_spurious = 0;
    cbcd::DetectionStats stats;
    for (const Candidate& cand : candidates) {
      const auto detections = detector.DetectClip(cand.fps, &stats);
      if (cand.expected_id >= 0) {
        for (const auto& d : detections) {
          if (d.id == static_cast<uint32_t>(cand.expected_id) &&
              std::abs(d.offset) <= 2.0) {
            copy_nsim += d.nsim;
            ++detected;
            break;
          }
        }
      } else if (!detections.empty()) {
        max_spurious = std::max(max_spurious, detections[0].nsim);
      }
    }
    table.AddRow()
        .Add(variant.name)
        .Add(100.0 * detected / kCopyClips, 4)
        .Add(copy_nsim / std::max(1, detected), 4)
        .Add(static_cast<int64_t>(max_spurious))
        .Add(stats.vote_seconds * 1e3 / candidates.size(), 4);
  }
  table.Print("ablation_voting");
  std::printf(
      "expected shape: the spatial extension slashes the spurious nsim\n"
      "(bigger decision margin) at equal detection rate; IRLS refines the\n"
      "offset without changing the margin; Hough matches exhaustive\n"
      "results at a fraction of the voting time on large result sets\n");
  return 0;
}

}  // namespace
}  // namespace s3vcd::bench

int main() { return s3vcd::bench::Main(); }
