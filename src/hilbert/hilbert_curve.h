#ifndef S3VCD_HILBERT_HILBERT_CURVE_H_
#define S3VCD_HILBERT_HILBERT_CURVE_H_

#include <cstdint>

#include "util/bitkey.h"

namespace s3vcd::hilbert {

/// Maximum number of dimensions supported (digit must fit in a uint32).
inline constexpr int kMaxDims = 32;
/// Maximum bits per coordinate; dims * order must also fit in BitKey::kBits.
inline constexpr int kMaxOrder = 32;

namespace internal {

/// Binary reflected Gray code.
inline uint32_t GrayCode(uint32_t i) { return i ^ (i >> 1); }

/// Inverse Gray code for values with fewer than 32 significant bits.
inline uint32_t GrayCodeInverse(uint32_t g) {
  uint32_t i = g;
  for (int shift = 1; shift < 32; shift <<= 1) {
    i ^= i >> shift;
  }
  return i;
}

/// Number of trailing set bits of i (the inter-subcube direction g(i) of
/// Hamilton's formulation of the Butz algorithm).
inline int TrailingSetBits(uint32_t i) {
  return i == ~uint32_t{0} ? 32 : __builtin_ctz(~i);
}

/// Rotate the low `n` bits of x right by r (r in [0, n)).
inline uint32_t RotateRight(uint32_t x, int r, int n) {
  if (r == 0) {
    return x;
  }
  const uint32_t mask = n == 32 ? ~uint32_t{0} : ((uint32_t{1} << n) - 1);
  x &= mask;
  return ((x >> r) | (x << (n - r))) & mask;
}

/// Rotate the low `n` bits of x left by r (r in [0, n)).
inline uint32_t RotateLeft(uint32_t x, int r, int n) {
  if (r == 0) {
    return x;
  }
  const uint32_t mask = n == 32 ? ~uint32_t{0} : ((uint32_t{1} << n) - 1);
  x &= mask;
  return ((x << r) | (x >> (n - r))) & mask;
}

/// Entry point e(w) of sub-hypercube w (in curve order) for a D-dim level.
inline uint32_t EntryPoint(uint32_t w) {
  if (w == 0) {
    return 0;
  }
  return GrayCode((w - 1) & ~uint32_t{1});
}

/// Intra sub-hypercube direction d(w) for a D-dim level, in [0, dims).
inline int IntraDirection(uint32_t w, int dims) {
  if (w == 0) {
    return 0;
  }
  const int g =
      (w & 1) ? TrailingSetBits(w) : TrailingSetBits(w - 1);
  return g % dims;
}

}  // namespace internal

/// A D-dimensional, order-K Hilbert space-filling curve: a bijection between
/// grid points in [0, 2^K)^D and derived keys in [0, 2^(K*D)) such that
/// consecutive keys map to grid neighbors (the clustering property exploited
/// by the S3 index, Section IV of the paper).
///
/// The implementation follows the Butz algorithm in Hamilton's entry-point /
/// direction formulation: each of the K levels consumes one D-bit digit,
/// transformed by a rotation-and-reflection state machine. Unlike Lawder's
/// state-diagram approach it needs O(1) memory regardless of D, which is
/// what makes the paper's D = 20 practical.
///
/// Thread-safe: the class is immutable after construction.
class HilbertCurve {
 public:
  /// `dims` in [1, 32]; `order` in [1, 32]; dims * order <= BitKey::kBits.
  HilbertCurve(int dims, int order);

  int dims() const { return dims_; }
  int order() const { return order_; }
  /// Total key length in bits: dims * order.
  int key_bits() const { return dims_ * order_; }
  /// Grid cells per side: 2^order.
  uint32_t grid_size() const { return uint32_t{1} << order_; }

  /// Maps a grid point (coords[j] in [0, 2^order)) to its curve position.
  BitKey Encode(const uint32_t* coords) const;

  /// Maps a curve position back to its grid point; inverse of Encode.
  void Decode(const BitKey& key, uint32_t* coords) const;

 private:
  int dims_;
  int order_;
};

}  // namespace s3vcd::hilbert

#endif  // S3VCD_HILBERT_HILBERT_CURVE_H_
