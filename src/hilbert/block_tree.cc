#include "hilbert/block_tree.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace s3vcd::hilbert {

using internal::EntryPoint;
using internal::GrayCode;
using internal::IntraDirection;
using internal::RotateLeft;

namespace {

// One increment per Split keeps the whole-tree traversal volume visible
// (filters also report nodes_visited per query; this counter aggregates
// across every traversal in the process, including tuning sweeps).
obs::Counter* const g_splits =
    obs::MetricsRegistry::Global().GetCounter("hilbert.block_tree.splits");

}  // namespace

BlockTree::Node BlockTree::Root() const {
  Node root;
  const int dims = curve_->dims();
  const uint32_t size = curve_->grid_size();
  for (int j = 0; j < dims; ++j) {
    root.lo[j] = 0;
    root.hi[j] = size;
  }
  return root;
}

void BlockTree::Split(const Node& node, Node* child0, Node* child1) const {
  const int dims = curve_->dims();
  const int order = curve_->order();
  S3VCD_DCHECK(node.depth < max_depth());
  g_splits->Increment();

  for (int b = 0; b < 2; ++b) {
    Node* child = (b == 0) ? child0 : child1;
    // Slim copy: only the `dims` active box axes (the arrays are kMaxDims
    // wide, so `*child = node` would also move the dead tail) plus the
    // curve state. Matters because the selection filters split directly
    // into pooled arena slots, millions of times per second.
    for (int j = 0; j < dims; ++j) {
      child->lo[j] = node.lo[j];
      child->hi[j] = node.hi[j];
    }
    child->e = node.e;
    child->d = node.d;
    child->level = node.level;
    child->depth = node.depth + 1;
    child->prefix = node.prefix << 1;
    if (b == 1) {
      child->prefix.set_bit(0, true);
    }
    child->digit_prefix = (node.digit_prefix << 1) | static_cast<uint32_t>(b);
    child->s = node.s + 1;

    // Fixing one more index MSB of the level's digit pins one more Gray bit:
    // with s bits of the digit fixed, Gray bits at positions >= D - s are
    // determined (gc bit_k = i_k ^ i_{k+1}, both fixed for k >= D - s).
    const int gray_bit = dims - child->s;
    const uint32_t representative = child->digit_prefix
                                    << (dims - child->s);
    const uint32_t gray_value = (GrayCode(representative) >> gray_bit) & 1u;

    // The level transform l = rotl(gc(w), d+1) ^ e sends Gray bit k to
    // coordinate axis (k + d + 1) mod D, flipped by the reflection e.
    const int axis = (gray_bit + node.d + 1) % dims;
    const uint32_t coord_bit = gray_value ^ ((node.e >> axis) & 1u);

    // Halve the box along `axis`: the level-q coordinate bit selects which
    // half of the 2^(order - level) wide extent survives.
    const uint32_t half = uint32_t{1} << (order - 1 - node.level);
    S3VCD_DCHECK(child->hi[axis] - child->lo[axis] == 2 * half);
    if (coord_bit != 0) {
      child->lo[axis] += half;
    } else {
      child->hi[axis] -= half;
    }
    child->split_axis = axis;

    if (child->s == dims) {
      // Digit complete: advance the state machine to the next level.
      const uint32_t w = child->digit_prefix;
      child->e = node.e ^
                 RotateLeft(EntryPoint(w), (node.d + 1) % dims, dims);
      child->d = (node.d + IntraDirection(w, dims) + 1) % dims;
      child->level = node.level + 1;
      child->digit_prefix = 0;
      child->s = 0;
    }
  }
}

}  // namespace s3vcd::hilbert
