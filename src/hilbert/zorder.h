#ifndef S3VCD_HILBERT_ZORDER_H_
#define S3VCD_HILBERT_ZORDER_H_

#include <cstdint>

#include "hilbert/block_tree.h"
#include "hilbert/hilbert_curve.h"
#include "util/bitkey.h"

namespace s3vcd::hilbert {

/// Z-order (Morton) space-filling curve: plain bit interleaving, the
/// simpler alternative the Hilbert curve is usually compared against.
/// Provided to ablate the paper's choice of Hilbert ordering (Section IV):
/// Morton blocks are also hyper-rectangles, but consecutive curve positions
/// are not always grid neighbors, so a query region fragments into more
/// disjoint curve sections (see bench/ablation_curve_clustering).
class ZOrderCurve {
 public:
  /// Same domain contract as HilbertCurve: dims in [1, 32], order in
  /// [1, 32], dims * order <= BitKey::kBits.
  ZOrderCurve(int dims, int order);

  int dims() const { return dims_; }
  int order() const { return order_; }
  int key_bits() const { return dims_ * order_; }
  uint32_t grid_size() const { return uint32_t{1} << order_; }

  /// Interleaves coordinate bits MSB-first: level K-1 of dims 0..D-1, then
  /// level K-2, ... so that depth-p prefixes halve one axis at a time in
  /// round-robin order.
  BitKey Encode(const uint32_t* coords) const;
  void Decode(const BitKey& key, uint32_t* coords) const;

 private:
  int dims_;
  int order_;
};

/// The binary partition tree of the Z-order curve, API-compatible with
/// BlockTree (same Node type; the Hilbert state fields stay unused).
class ZOrderTree {
 public:
  using Node = BlockTree::Node;

  explicit ZOrderTree(const ZOrderCurve& curve) : curve_(&curve) {}

  Node Root() const;
  void Split(const Node& node, Node* child0, Node* child1) const;

  const ZOrderCurve& curve() const { return *curve_; }
  int max_depth() const { return curve_->key_bits(); }

 private:
  const ZOrderCurve* curve_;
};

}  // namespace s3vcd::hilbert

#endif  // S3VCD_HILBERT_ZORDER_H_
