#ifndef S3VCD_HILBERT_BLOCK_TREE_H_
#define S3VCD_HILBERT_BLOCK_TREE_H_

#include <array>
#include <cstdint>

#include "hilbert/hilbert_curve.h"
#include "util/bitkey.h"

namespace s3vcd::hilbert {

/// The regular partition of the Hilbert curve into 2^p intervals induces a
/// partition of the grid into 2^p axis-aligned hyper-rectangular "p-blocks"
/// of equal volume (paper Section IV-A, Figure 2). BlockTree exposes this
/// partition as an implicit binary tree: the root covers the whole grid and
/// every split halves a node's curve interval — which, geometrically, halves
/// its bounding box along exactly one axis determined by the curve's
/// rotation state.
///
/// Search filters (statistical or geometric) descend this tree, pruning by a
/// monotone bound (block probability or min distance), and emit the
/// surviving depth-p blocks; each block's curve prefix then addresses a
/// contiguous fingerprint range in the Hilbert-sorted database.
class BlockTree {
 public:
  /// A node of the partition tree: a curve interval of 2^(K*D - depth) cells
  /// together with its exact bounding box.
  struct Node {
    /// Hilbert key prefix (depth bits, low-aligned): the node covers keys in
    /// [prefix << (KD - depth), (prefix + 1) << (KD - depth)).
    BitKey prefix;
    /// Number of prefix bits fixed so far (p).
    int depth = 0;

    /// Bounding box, inclusive lo / exclusive hi, in grid cells.
    std::array<uint32_t, kMaxDims> lo{};
    std::array<uint32_t, kMaxDims> hi{};
    /// Axis halved by the split that created this node; -1 for the root.
    int split_axis = -1;

    // --- Curve state machine (internal to the descent) ---
    uint32_t e = 0;          ///< reflection state of the current level
    int d = 0;               ///< rotation state of the current level
    int level = 0;           ///< completed levels (q)
    uint32_t digit_prefix = 0;  ///< s index bits fixed within current digit
    int s = 0;               ///< number of digit bits fixed, in [0, D)

    /// First key covered by this node (prefix << (KD - depth)).
    BitKey RangeBegin(int key_bits) const {
      return prefix << (key_bits - depth);
    }
    /// One past the last key covered.
    BitKey RangeEnd(int key_bits) const {
      BitKey p = prefix;
      p.Increment();
      return p << (key_bits - depth);
    }
  };

  /// The tree is a view over `curve`; the curve must outlive it.
  explicit BlockTree(const HilbertCurve& curve) : curve_(&curve) {}

  /// Root node: the full grid, depth 0.
  Node Root() const;

  /// Splits `node` into its two curve-order halves. `child0` precedes
  /// `child1` on the curve. Requires node.depth < dims * order.
  void Split(const Node& node, Node* child0, Node* child1) const;

  const HilbertCurve& curve() const { return *curve_; }
  /// Maximum depth: dims * order (blocks become single cells).
  int max_depth() const { return curve_->key_bits(); }

 private:
  const HilbertCurve* curve_;
};

}  // namespace s3vcd::hilbert

#endif  // S3VCD_HILBERT_BLOCK_TREE_H_
