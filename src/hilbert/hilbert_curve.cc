#include "hilbert/hilbert_curve.h"

#include "util/logging.h"

namespace s3vcd::hilbert {

using internal::EntryPoint;
using internal::GrayCode;
using internal::GrayCodeInverse;
using internal::IntraDirection;
using internal::RotateLeft;
using internal::RotateRight;

HilbertCurve::HilbertCurve(int dims, int order) : dims_(dims), order_(order) {
  S3VCD_CHECK(dims >= 1 && dims <= kMaxDims);
  S3VCD_CHECK(order >= 1 && order <= kMaxOrder);
  S3VCD_CHECK(dims * order <= BitKey::kBits);
}

BitKey HilbertCurve::Encode(const uint32_t* coords) const {
  BitKey h;
  uint32_t e = 0;
  int d = 0;
  for (int i = order_ - 1; i >= 0; --i) {
    // Gather bit i of every coordinate into the level's cell label.
    uint32_t l = 0;
    for (int j = 0; j < dims_; ++j) {
      S3VCD_DCHECK(coords[j] < grid_size());
      l |= ((coords[j] >> i) & 1u) << j;
    }
    // T_{e,d}: undo the level's reflection and rotation.
    l = RotateRight(l ^ e, (d + 1) % dims_, dims_);
    const uint32_t w = GrayCodeInverse(l);
    h.AppendBits(w, dims_);
    // Advance the state machine to the chosen sub-hypercube.
    e = e ^ RotateLeft(EntryPoint(w), (d + 1) % dims_, dims_);
    d = (d + IntraDirection(w, dims_) + 1) % dims_;
  }
  return h;
}

void HilbertCurve::Decode(const BitKey& key, uint32_t* coords) const {
  for (int j = 0; j < dims_; ++j) {
    coords[j] = 0;
  }
  uint32_t e = 0;
  int d = 0;
  for (int i = order_ - 1; i >= 0; --i) {
    const auto w = static_cast<uint32_t>(key.ExtractBits(i * dims_, dims_));
    // T^{-1}_{e,d}: apply the level's rotation and reflection to the Gray
    // label of the digit.
    uint32_t l = RotateLeft(GrayCode(w), (d + 1) % dims_, dims_) ^ e;
    for (int j = 0; j < dims_; ++j) {
      coords[j] |= ((l >> j) & 1u) << i;
    }
    e = e ^ RotateLeft(EntryPoint(w), (d + 1) % dims_, dims_);
    d = (d + IntraDirection(w, dims_) + 1) % dims_;
  }
}

}  // namespace s3vcd::hilbert
