#include "hilbert/zorder.h"

#include "util/logging.h"

namespace s3vcd::hilbert {

ZOrderCurve::ZOrderCurve(int dims, int order) : dims_(dims), order_(order) {
  S3VCD_CHECK(dims >= 1 && dims <= kMaxDims);
  S3VCD_CHECK(order >= 1 && order <= kMaxOrder);
  S3VCD_CHECK(dims * order <= BitKey::kBits);
}

BitKey ZOrderCurve::Encode(const uint32_t* coords) const {
  BitKey key;
  for (int level = order_ - 1; level >= 0; --level) {
    for (int j = 0; j < dims_; ++j) {
      S3VCD_DCHECK(coords[j] < grid_size());
      key.AppendBits((coords[j] >> level) & 1u, 1);
    }
  }
  return key;
}

void ZOrderCurve::Decode(const BitKey& key, uint32_t* coords) const {
  for (int j = 0; j < dims_; ++j) {
    coords[j] = 0;
  }
  int pos = key_bits();
  for (int level = order_ - 1; level >= 0; --level) {
    for (int j = 0; j < dims_; ++j) {
      --pos;
      coords[j] |= static_cast<uint32_t>(key.bit(pos)) << level;
    }
  }
}

ZOrderTree::Node ZOrderTree::Root() const {
  Node root;
  const int dims = curve_->dims();
  const uint32_t size = curve_->grid_size();
  for (int j = 0; j < dims; ++j) {
    root.lo[j] = 0;
    root.hi[j] = size;
  }
  return root;
}

void ZOrderTree::Split(const Node& node, Node* child0, Node* child1) const {
  const int dims = curve_->dims();
  const int order = curve_->order();
  S3VCD_DCHECK(node.depth < max_depth());
  const int axis = node.depth % dims;
  const int level = node.depth / dims;
  const uint32_t half = uint32_t{1} << (order - 1 - level);
  for (int b = 0; b < 2; ++b) {
    Node* child = (b == 0) ? child0 : child1;
    // Slim copy, mirroring BlockTree::Split: only the `dims` active box
    // axes. The Hilbert state fields (e/d/level/digit_prefix/s) are unused
    // by the Z-order descent and are deliberately left untouched.
    for (int j = 0; j < dims; ++j) {
      child->lo[j] = node.lo[j];
      child->hi[j] = node.hi[j];
    }
    child->depth = node.depth + 1;
    child->prefix = node.prefix << 1;
    if (b == 1) {
      child->prefix.set_bit(0, true);
    }
    S3VCD_DCHECK(child->hi[axis] - child->lo[axis] == 2 * half);
    if (b == 1) {
      child->lo[axis] += half;
    } else {
      child->hi[axis] -= half;
    }
    child->split_axis = axis;
  }
}

}  // namespace s3vcd::hilbert
