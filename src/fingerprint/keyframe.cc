#include "fingerprint/keyframe.h"

#include <algorithm>
#include <cmath>

#include "media/filters.h"

namespace s3vcd::fp {

std::vector<double> IntensityOfMotion(const media::VideoSequence& video) {
  std::vector<double> motion(video.frames.size(), 0.0);
  for (size_t i = 1; i < video.frames.size(); ++i) {
    motion[i] = video.frames[i].MeanAbsDifference(video.frames[i - 1]);
  }
  if (motion.size() > 1) {
    motion[0] = motion[1];  // avoid a spurious extremum at the start
  }
  return motion;
}

std::vector<int> FindExtrema(const std::vector<double>& signal) {
  std::vector<int> extrema;
  const int n = static_cast<int>(signal.size());
  int i = 1;
  while (i < n - 1) {
    if (signal[i] == signal[i + 1]) {
      // Plateau: find its end and compare the borders.
      int j = i;
      while (j < n - 1 && signal[j + 1] == signal[i]) {
        ++j;
      }
      if (j < n - 1) {
        const bool rising_in = signal[i] > signal[i - 1];
        const bool falling_out = signal[j + 1] < signal[i];
        if (rising_in == falling_out) {  // max plateau or min plateau
          extrema.push_back((i + j) / 2);
        }
      }
      i = j + 1;
      continue;
    }
    const bool is_max = signal[i] > signal[i - 1] && signal[i] > signal[i + 1];
    const bool is_min = signal[i] < signal[i - 1] && signal[i] < signal[i + 1];
    if (is_max || is_min) {
      extrema.push_back(i);
    }
    ++i;
  }
  return extrema;
}

std::vector<int> DetectKeyFrames(const media::VideoSequence& video,
                                 const KeyFrameOptions& options) {
  if (video.frames.size() < 3) {
    return video.frames.empty() ? std::vector<int>{} : std::vector<int>{0};
  }
  const std::vector<double> motion = IntensityOfMotion(video);
  const std::vector<double> smoothed =
      media::GaussianSmooth1D(motion, options.smoothing_sigma);
  std::vector<int> extrema = FindExtrema(smoothed);

  // Enforce the minimum gap, keeping the extremum with the larger smoothed
  // curvature (more salient).
  std::vector<int> out;
  for (int e : extrema) {
    if (!out.empty() && e - out.back() < options.min_gap) {
      auto salience = [&](int idx) {
        const int lo = std::max(0, idx - 1);
        const int hi = std::min(static_cast<int>(smoothed.size()) - 1,
                                idx + 1);
        return std::abs(2 * smoothed[idx] - smoothed[lo] - smoothed[hi]);
      };
      if (salience(e) > salience(out.back())) {
        out.back() = e;
      }
      continue;
    }
    out.push_back(e);
  }
  return out;
}

}  // namespace s3vcd::fp
