#include "fingerprint/descriptor.h"

#include <cmath>

#include "media/sampling.h"

namespace s3vcd::fp {

DerivativeStack::DerivativeStack(const media::Frame& frame, double sigma)
    : derivatives_(media::ComputeDerivatives(frame, sigma)) {}

void DerivativeStack::SampleJet(double x, double y, double* jet5) const {
  jet5[0] = media::BilinearSample(derivatives_.ix, x, y);
  jet5[1] = media::BilinearSample(derivatives_.iy, x, y);
  jet5[2] = media::BilinearSample(derivatives_.ixy, x, y);
  jet5[3] = media::BilinearSample(derivatives_.ixx, x, y);
  jet5[4] = media::BilinearSample(derivatives_.iyy, x, y);
}

std::vector<SupportPosition> SupportPositions(double x, double y,
                                              const DescriptorOptions& opt) {
  const double d = opt.spatial_offset;
  const int dt = opt.temporal_offset;
  return {
      {x - d, y - d, -dt},
      {x + d, y + d, -dt},
      {x + d, y - d, +dt},
      {x - d, y + d, +dt},
  };
}

Fingerprint ComputeDescriptor(const DerivativeStack& before,
                              const DerivativeStack& after, double x,
                              double y, const DescriptorOptions& options) {
  Fingerprint fp;
  const auto positions = SupportPositions(x, y, options);
  constexpr double kDegenerateNorm = 1e-6;
  for (int i = 0; i < kNumPositions; ++i) {
    const SupportPosition& pos = positions[i];
    double jet[kSubDims];
    const DerivativeStack& stack = pos.frame_offset < 0 ? before : after;
    stack.SampleJet(pos.x, pos.y, jet);
    double norm_sq = 0;
    for (double v : jet) {
      norm_sq += v * v;
    }
    const double norm = std::sqrt(norm_sq);
    for (int j = 0; j < kSubDims; ++j) {
      const double normalized = norm > kDegenerateNorm ? jet[j] / norm : 0.0;
      fp[i * kSubDims + j] = QuantizeComponent(normalized);
    }
  }
  return fp;
}

}  // namespace s3vcd::fp
