#include "fingerprint/extractor.h"

#include <algorithm>

#include "util/logging.h"

namespace s3vcd::fp {

namespace {

// Clamped frame index access for the temporal descriptor support.
int ClampFrame(int idx, int num_frames) {
  return std::clamp(idx, 0, num_frames - 1);
}

}  // namespace

std::vector<LocalFingerprint> FingerprintExtractor::Extract(
    const media::VideoSequence& video) const {
  std::vector<LocalFingerprint> out;
  if (video.frames.empty()) {
    return out;
  }
  const std::vector<int> key_frames =
      DetectKeyFrames(video, options_.keyframe);
  const int n = video.num_frames();
  const int dt = options_.descriptor.temporal_offset;
  for (int t : key_frames) {
    const DerivativeStack before(video.frames[ClampFrame(t - dt, n)],
                                 options_.descriptor.derivative_sigma);
    const DerivativeStack after(video.frames[ClampFrame(t + dt, n)],
                                options_.descriptor.derivative_sigma);
    const std::vector<InterestPoint> points =
        DetectInterestPoints(video.frames[t], options_.harris);
    for (const InterestPoint& p : points) {
      LocalFingerprint lf;
      lf.descriptor =
          ComputeDescriptor(before, after, p.x, p.y, options_.descriptor);
      lf.x = p.x;
      lf.y = p.y;
      lf.time_code = static_cast<uint32_t>(t);
      out.push_back(lf);
    }
  }
  return out;
}

FingerprintExtractor::PositionedResult
FingerprintExtractor::ExtractAtPositions(
    const media::VideoSequence& video, int key_frame,
    const std::vector<std::pair<double, double>>& positions) const {
  PositionedResult result;
  S3VCD_CHECK(key_frame >= 0 && key_frame < video.num_frames());
  const int n = video.num_frames();
  const int dt = options_.descriptor.temporal_offset;
  const DerivativeStack before(video.frames[ClampFrame(key_frame - dt, n)],
                               options_.descriptor.derivative_sigma);
  const DerivativeStack after(video.frames[ClampFrame(key_frame + dt, n)],
                              options_.descriptor.derivative_sigma);
  const double margin = BorderMargin();
  const double w = video.width();
  const double h = video.height();
  result.kept.reserve(positions.size());
  for (const auto& [x, y] : positions) {
    if (x < margin || y < margin || x >= w - margin || y >= h - margin) {
      result.kept.push_back(false);
      continue;
    }
    LocalFingerprint lf;
    lf.descriptor = ComputeDescriptor(before, after, x, y,
                                      options_.descriptor);
    lf.x = static_cast<float>(x);
    lf.y = static_cast<float>(y);
    lf.time_code = static_cast<uint32_t>(key_frame);
    result.fingerprints.push_back(lf);
    result.kept.push_back(true);
  }
  return result;
}

}  // namespace s3vcd::fp
