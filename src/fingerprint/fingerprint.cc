#include "fingerprint/fingerprint.h"

#include <cmath>

namespace s3vcd::fp {

double Distance(const Fingerprint& a, const Fingerprint& b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace s3vcd::fp
