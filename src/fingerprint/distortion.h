#ifndef S3VCD_FINGERPRINT_DISTORTION_H_
#define S3VCD_FINGERPRINT_DISTORTION_H_

#include <array>
#include <vector>

#include "fingerprint/extractor.h"
#include "fingerprint/fingerprint.h"
#include "media/frame.h"
#include "media/transforms.h"
#include "util/rng.h"

namespace s3vcd::fp {

/// One (reference, distorted) fingerprint pair for the same interest point,
/// collected with the paper's simulated perfect detector (Section IV-C):
/// the point position in the transformed sequence is computed analytically
/// from the original position, so that pure descriptor distortion is
/// measured without detector repeatability noise.
struct DistortionSample {
  Fingerprint reference;
  Fingerprint distorted;
};

/// Options of the distortion sampling protocol.
struct PerfectDetectorOptions {
  ExtractorOptions extractor;
  /// Simulated imprecision of the interest point detector: the theoretical
  /// position in the transformed sequence is shifted by this many pixels in
  /// a random direction (the paper's delta_pix).
  double delta_pix = 0.0;
};

/// Applies `chain` to `video`, extracts reference fingerprints from the
/// original, and for each one computes the distorted fingerprint at the
/// analytically mapped position in the transformed sequence.
std::vector<DistortionSample> CollectDistortionSamples(
    const media::VideoSequence& video, const media::TransformChain& chain,
    const PerfectDetectorOptions& options, Rng* rng);

/// Per-component and pooled statistics of the distortion vector
/// Delta S = S(m) - S(t(m)).
struct DistortionStats {
  std::array<double, kDims> component_sigma{};
  std::array<double, kDims> component_mean{};
  /// The paper's severity criterion: mean of the D per-component sigmas.
  double sigma = 0;
  size_t count = 0;
};

DistortionStats ComputeDistortionStats(
    const std::vector<DistortionSample>& samples);

}  // namespace s3vcd::fp

#endif  // S3VCD_FINGERPRINT_DISTORTION_H_
