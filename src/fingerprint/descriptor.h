#ifndef S3VCD_FINGERPRINT_DESCRIPTOR_H_
#define S3VCD_FINGERPRINT_DESCRIPTOR_H_

#include <optional>
#include <vector>

#include "fingerprint/fingerprint.h"
#include "media/filters.h"
#include "media/frame.h"

namespace s3vcd::fp {

/// Options of the local differential descriptor (paper Section III): four
/// 5-dimensional sub-fingerprints s_i = (Ix, Iy, Ixy, Ixx, Iyy) computed at
/// four spatio-temporal positions around the interest point, each L2
/// normalized, concatenated and quantized to [0, 255]^20.
struct DescriptorOptions {
  /// Spatial offset of the four support positions, in pixels.
  double spatial_offset = 4.0;
  /// Temporal offset, in frames: two positions at t - dt, two at t + dt.
  int temporal_offset = 2;
  /// Gaussian scale of the differential decomposition.
  double derivative_sigma = 1.5;
};

/// Precomputed Gaussian-derivative images of one frame; reused across all
/// interest points of a key-frame.
class DerivativeStack {
 public:
  DerivativeStack(const media::Frame& frame, double sigma);

  /// Samples the 5-dimensional local jet at a continuous position.
  void SampleJet(double x, double y, double* jet5) const;

 private:
  media::DerivativeImages derivatives_;
};

/// The four spatio-temporal support positions around (x, y, t):
/// (x-d, y-d, t-dt), (x+d, y+d, t-dt), (x+d, y-d, t+dt), (x-d, y+d, t+dt).
struct SupportPosition {
  double x;
  double y;
  int frame_offset;  // -dt or +dt
};
std::vector<SupportPosition> SupportPositions(double x, double y,
                                              const DescriptorOptions& opt);

/// Computes the fingerprint at interest point (x, y) in key-frame `t` using
/// precomputed derivative stacks for frames t - dt and t + dt. Degenerate
/// sub-jets (near-zero norm, e.g. in flat black borders) quantize to the
/// neutral byte 128.
Fingerprint ComputeDescriptor(const DerivativeStack& before,
                              const DerivativeStack& after, double x,
                              double y, const DescriptorOptions& options);

}  // namespace s3vcd::fp

#endif  // S3VCD_FINGERPRINT_DESCRIPTOR_H_
