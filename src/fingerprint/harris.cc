#include "fingerprint/harris.h"

#include <algorithm>
#include <cmath>

#include "media/filters.h"

namespace s3vcd::fp {

media::Frame HarrisResponse(const media::Frame& frame,
                            const HarrisOptions& options) {
  const media::Frame smoothed =
      media::GaussianBlur(frame, options.derivative_sigma);
  media::Frame ix;
  media::Frame iy;
  media::ComputeFirstDerivatives(smoothed, &ix, &iy);

  const int w = frame.width();
  const int h = frame.height();
  media::Frame ixx(w, h);
  media::Frame iyy(w, h);
  media::Frame ixy(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const float gx = ix.at(x, y);
      const float gy = iy.at(x, y);
      ixx.at(x, y) = gx * gx;
      iyy.at(x, y) = gy * gy;
      ixy.at(x, y) = gx * gy;
    }
  }
  const media::Frame sxx = media::GaussianBlur(ixx, options.integration_sigma);
  const media::Frame syy = media::GaussianBlur(iyy, options.integration_sigma);
  const media::Frame sxy = media::GaussianBlur(ixy, options.integration_sigma);

  media::Frame response(w, h);
  const float k = static_cast<float>(options.k);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const float a = sxx.at(x, y);
      const float b = syy.at(x, y);
      const float c = sxy.at(x, y);
      const float det = a * b - c * c;
      const float tr = a + b;
      response.at(x, y) = det - k * tr * tr;
    }
  }
  return response;
}

std::vector<InterestPoint> DetectInterestPoints(const media::Frame& frame,
                                                const HarrisOptions& options) {
  const media::Frame response = HarrisResponse(frame, options);
  const int w = frame.width();
  const int h = frame.height();

  float peak = 0;
  for (float v : response.pixels()) {
    peak = std::max(peak, v);
  }
  if (peak <= 0) {
    return {};
  }
  const float threshold = static_cast<float>(options.relative_threshold) * peak;

  // 3x3 non-max suppression inside the border.
  std::vector<InterestPoint> candidates;
  const int border = std::max(1, options.border);
  for (int y = border; y < h - border; ++y) {
    for (int x = border; x < w - border; ++x) {
      const float v = response.at(x, y);
      if (v < threshold) {
        continue;
      }
      bool is_max = true;
      for (int dy = -1; dy <= 1 && is_max; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) {
            continue;
          }
          if (response.at(x + dx, y + dy) > v) {
            is_max = false;
            break;
          }
        }
      }
      if (is_max) {
        candidates.push_back({static_cast<float>(x), static_cast<float>(y), v});
      }
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const InterestPoint& a, const InterestPoint& b) {
              return a.response > b.response;
            });

  // Greedy minimum-distance selection of the strongest points.
  std::vector<InterestPoint> out;
  const double min_d2 = options.min_distance * options.min_distance;
  for (const InterestPoint& cand : candidates) {
    if (static_cast<int>(out.size()) >= options.max_points) {
      break;
    }
    bool too_close = false;
    for (const InterestPoint& kept : out) {
      const double dx = cand.x - kept.x;
      const double dy = cand.y - kept.y;
      if (dx * dx + dy * dy < min_d2) {
        too_close = true;
        break;
      }
    }
    if (!too_close) {
      out.push_back(cand);
    }
  }
  return out;
}

}  // namespace s3vcd::fp
