#ifndef S3VCD_FINGERPRINT_KEYFRAME_H_
#define S3VCD_FINGERPRINT_KEYFRAME_H_

#include <vector>

#include "media/frame.h"

namespace s3vcd::fp {

/// Options of the key-frame detector (paper Section III): key-frames are
/// the extrema of the Gaussian-smoothed "intensity of motion" signal.
struct KeyFrameOptions {
  /// Temporal Gaussian smoothing (in frames) applied to the motion signal.
  double smoothing_sigma = 2.0;
  /// Minimum spacing between consecutive key-frames, in frames; closer
  /// extrema (smoothing artifacts) are suppressed keeping the stronger one.
  int min_gap = 4;
};

/// Mean absolute frame difference for every frame (index 0 gets 0): the
/// intensity-of-motion signal.
std::vector<double> IntensityOfMotion(const media::VideoSequence& video);

/// Positions of the local extrema (maxima and minima) of the smoothed
/// signal; plateau runs contribute their center.
std::vector<int> FindExtrema(const std::vector<double>& signal);

/// Full detector: returns ascending frame indices of the key-frames.
std::vector<int> DetectKeyFrames(const media::VideoSequence& video,
                                 const KeyFrameOptions& options);

}  // namespace s3vcd::fp

#endif  // S3VCD_FINGERPRINT_KEYFRAME_H_
