#ifndef S3VCD_FINGERPRINT_EXTRACTOR_H_
#define S3VCD_FINGERPRINT_EXTRACTOR_H_

#include <vector>

#include "fingerprint/descriptor.h"
#include "fingerprint/fingerprint.h"
#include "fingerprint/harris.h"
#include "fingerprint/keyframe.h"
#include "media/frame.h"

namespace s3vcd::fp {

/// All options of the fingerprint extraction pipeline of Section III:
/// key-frame detection -> Harris interest points -> local differential
/// descriptors quantized to [0, 255]^20.
struct ExtractorOptions {
  KeyFrameOptions keyframe;
  HarrisOptions harris;
  DescriptorOptions descriptor;
};

/// End-to-end extractor. Stateless and thread-compatible; one instance can
/// serve many videos.
class FingerprintExtractor {
 public:
  explicit FingerprintExtractor(ExtractorOptions options = {})
      : options_(options) {}

  const ExtractorOptions& options() const { return options_; }

  /// Extracts the local fingerprints of every key-frame of `video`.
  /// Time codes are frame indices within the video.
  std::vector<LocalFingerprint> Extract(
      const media::VideoSequence& video) const;

  /// Extracts fingerprints at caller-provided positions in one key-frame
  /// (used by the simulated perfect detector); positions too close to the
  /// border for the descriptor support are skipped, and the returned
  /// vector keeps input order with a validity flag encoded by `kept`.
  struct PositionedResult {
    std::vector<LocalFingerprint> fingerprints;
    std::vector<bool> kept;  ///< kept[i]: input position i produced output
  };
  PositionedResult ExtractAtPositions(
      const media::VideoSequence& video, int key_frame,
      const std::vector<std::pair<double, double>>& positions) const;

 private:
  /// Descriptor support margin: positions closer than this to the border
  /// cannot be described reliably.
  double BorderMargin() const {
    return options_.descriptor.spatial_offset + 2.0;
  }

  ExtractorOptions options_;
};

}  // namespace s3vcd::fp

#endif  // S3VCD_FINGERPRINT_EXTRACTOR_H_
