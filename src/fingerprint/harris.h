#ifndef S3VCD_FINGERPRINT_HARRIS_H_
#define S3VCD_FINGERPRINT_HARRIS_H_

#include <vector>

#include "media/frame.h"

namespace s3vcd::fp {

/// An interest point with its corner response.
struct InterestPoint {
  float x = 0;
  float y = 0;
  float response = 0;
};

/// Options of the Harris corner detector (the paper uses the improved
/// Harris of Schmid & Mohr: Gaussian derivatives plus Gaussian integration
/// of the structure tensor).
struct HarrisOptions {
  /// Scale of the Gaussian smoothing before differentiation.
  double derivative_sigma = 1.0;
  /// Scale of the Gaussian window integrating the structure tensor.
  double integration_sigma = 2.0;
  /// The Harris trace weight: R = det(M) - k * trace(M)^2.
  double k = 0.06;
  /// Keep at most this many strongest points per frame.
  int max_points = 20;
  /// Greedy minimum distance between returned points, in pixels.
  double min_distance = 10.0;
  /// Points whose response is below `relative_threshold` times the frame's
  /// strongest response are dropped. Kept deliberately low: a single
  /// inserted high-contrast graphic (logo, caption) can raise the peak by
  /// orders of magnitude, and a tight relative threshold would then discard
  /// every genuine content corner; the max_points/min_distance budget is
  /// the real selection mechanism.
  double relative_threshold = 1e-4;
  /// Points closer than this to the frame border are dropped so that the
  /// descriptor support stays inside the frame.
  int border = 8;
};

/// Harris corner response image of `frame`.
media::Frame HarrisResponse(const media::Frame& frame,
                            const HarrisOptions& options);

/// Detects interest points: local maxima of the Harris response, filtered
/// by threshold, border, non-max suppression and minimum distance; sorted
/// by decreasing response.
std::vector<InterestPoint> DetectInterestPoints(const media::Frame& frame,
                                                const HarrisOptions& options);

}  // namespace s3vcd::fp

#endif  // S3VCD_FINGERPRINT_HARRIS_H_
