#ifndef S3VCD_FINGERPRINT_FINGERPRINT_H_
#define S3VCD_FINGERPRINT_FINGERPRINT_H_

#include <array>
#include <cstdint>

namespace s3vcd::fp {

/// Descriptor dimensionality: four 5-dimensional local jets (Section III).
inline constexpr int kSubDims = 5;
inline constexpr int kNumPositions = 4;
inline constexpr int kDims = kSubDims * kNumPositions;  // D = 20

/// A local fingerprint: each component quantized to one byte, so the search
/// space is [0, 255]^20 exactly as in the paper.
using Fingerprint = std::array<uint8_t, kDims>;

/// Squared Euclidean distance between two fingerprints in byte space.
inline double SquaredDistance(const Fingerprint& a, const Fingerprint& b) {
  int64_t acc = 0;
  for (int i = 0; i < kDims; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    acc += static_cast<int64_t>(d) * d;
  }
  return static_cast<double>(acc);
}

double Distance(const Fingerprint& a, const Fingerprint& b);

/// Quantizes a normalized component v in [-1, 1] to a byte.
inline uint8_t QuantizeComponent(double v) {
  const double scaled = (v + 1.0) * 127.5;
  if (scaled <= 0.0) {
    return 0;
  }
  if (scaled >= 255.0) {
    return 255;
  }
  return static_cast<uint8_t>(scaled + 0.5);
}

/// Inverse of QuantizeComponent (bin center).
inline double DequantizeComponent(uint8_t b) { return b / 127.5 - 1.0; }

/// A fingerprint localized in a video: interest point position within the
/// key-frame and the key-frame's time code (frame index).
struct LocalFingerprint {
  Fingerprint descriptor{};
  float x = 0;
  float y = 0;
  uint32_t time_code = 0;
};

}  // namespace s3vcd::fp

#endif  // S3VCD_FINGERPRINT_FINGERPRINT_H_
