#include "fingerprint/distortion.h"

#include <cmath>

namespace s3vcd::fp {

std::vector<DistortionSample> CollectDistortionSamples(
    const media::VideoSequence& video, const media::TransformChain& chain,
    const PerfectDetectorOptions& options, Rng* rng) {
  std::vector<DistortionSample> samples;
  const FingerprintExtractor extractor(options.extractor);
  const std::vector<LocalFingerprint> references = extractor.Extract(video);
  if (references.empty()) {
    return samples;
  }
  const media::VideoSequence transformed = chain.Apply(video, rng);

  // Group reference fingerprints by key-frame so each derivative stack of
  // the transformed sequence is built once.
  size_t i = 0;
  while (i < references.size()) {
    const uint32_t t = references[i].time_code;
    size_t j = i;
    std::vector<std::pair<double, double>> positions;
    while (j < references.size() && references[j].time_code == t) {
      double tx = 0;
      double ty = 0;
      chain.MapPoint(references[j].x, references[j].y, video.width(),
                     video.height(), &tx, &ty);
      if (options.delta_pix > 0) {
        const double angle = rng->Uniform(0, 2 * M_PI);
        tx += options.delta_pix * std::cos(angle);
        ty += options.delta_pix * std::sin(angle);
      }
      positions.emplace_back(tx, ty);
      ++j;
    }
    const auto result = extractor.ExtractAtPositions(
        transformed, static_cast<int>(t), positions);
    size_t out_idx = 0;
    for (size_t k = 0; k < positions.size(); ++k) {
      if (!result.kept[k]) {
        continue;
      }
      samples.push_back(
          {references[i + k].descriptor,
           result.fingerprints[out_idx].descriptor});
      ++out_idx;
    }
    i = j;
  }
  return samples;
}

DistortionStats ComputeDistortionStats(
    const std::vector<DistortionSample>& samples) {
  DistortionStats stats;
  stats.count = samples.size();
  if (samples.empty()) {
    return stats;
  }
  std::array<double, kDims> sum{};
  std::array<double, kDims> sum_sq{};
  for (const DistortionSample& s : samples) {
    for (int j = 0; j < kDims; ++j) {
      const double d = static_cast<double>(s.reference[j]) -
                       static_cast<double>(s.distorted[j]);
      sum[j] += d;
      sum_sq[j] += d * d;
    }
  }
  const double n = static_cast<double>(samples.size());
  double sigma_total = 0;
  for (int j = 0; j < kDims; ++j) {
    stats.component_mean[j] = sum[j] / n;
    const double var =
        std::max(0.0, sum_sq[j] / n - stats.component_mean[j] *
                                          stats.component_mean[j]);
    stats.component_sigma[j] = std::sqrt(var);
    sigma_total += stats.component_sigma[j];
  }
  stats.sigma = sigma_total / kDims;
  return stats;
}

}  // namespace s3vcd::fp
