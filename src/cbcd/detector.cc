#include "cbcd/detector.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace s3vcd::cbcd {

namespace {

obs::Counter* const g_queries =
    obs::MetricsRegistry::Global().GetCounter("cbcd.queries");
obs::Counter* const g_matches =
    obs::MetricsRegistry::Global().GetCounter("cbcd.matches");
obs::Counter* const g_detections =
    obs::MetricsRegistry::Global().GetCounter("cbcd.detections_emitted");
obs::Counter* const g_windows =
    obs::MetricsRegistry::Global().GetCounter("cbcd.windows_evaluated");
obs::Histogram* const g_search_us =
    obs::MetricsRegistry::Global().GetHistogram("cbcd.search_us");
obs::Histogram* const g_vote_us =
    obs::MetricsRegistry::Global().GetHistogram("cbcd.vote_us");

}  // namespace

CopyDetector::CopyDetector(const core::Searcher* searcher,
                           const core::DistortionModel* model,
                           DetectorOptions options)
    : searcher_(searcher), model_(model), options_(options) {
  S3VCD_CHECK(searcher != nullptr);
  S3VCD_CHECK(model != nullptr);
}

CandidateEntry CopyDetector::SearchOne(const fp::LocalFingerprint& lf,
                                       DetectionStats* stats) const {
  CandidateEntry entry;
  entry.candidate_time_code = lf.time_code;
  entry.x = lf.x;
  entry.y = lf.y;
  Stopwatch watch;
  core::QueryResult result =
      searcher_->StatQuery(lf.descriptor, *model_, options_.query);
  entry.matches = std::move(result.matches);
  const double search_seconds = watch.ElapsedSeconds();
  g_queries->Increment();
  g_matches->Increment(entry.matches.size());
  g_search_us->Record(search_seconds * 1e6);
  if (stats != nullptr) {
    stats->search_seconds += search_seconds;
    ++stats->queries;
    stats->matches += entry.matches.size();
  }
  return entry;
}

std::vector<Detection> CopyDetector::DetectClip(
    const std::vector<fp::LocalFingerprint>& candidate_fps,
    DetectionStats* stats) const {
  S3VCD_TRACE_SPAN("cbcd.detect_clip");
  std::vector<CandidateEntry> entries;
  entries.reserve(candidate_fps.size());
  for (const fp::LocalFingerprint& lf : candidate_fps) {
    entries.push_back(SearchOne(lf, stats));
  }
  Stopwatch watch;
  const std::vector<Vote> votes = ComputeVotes(entries, options_.vote);
  const double vote_seconds = watch.ElapsedSeconds();
  g_vote_us->Record(vote_seconds * 1e6);
  if (stats != nullptr) {
    stats->vote_seconds += vote_seconds;
  }
  std::vector<Detection> detections;
  for (const Vote& vote : votes) {
    if (vote.nsim >= options_.nsim_threshold) {
      detections.push_back({vote.id, vote.offset, vote.nsim, vote.cost});
    }
  }
  g_detections->Increment(detections.size());
  return detections;
}

StreamMonitor::StreamMonitor(const CopyDetector* detector, Options options)
    : detector_(detector), options_(options) {
  S3VCD_CHECK(detector != nullptr);
  S3VCD_CHECK(options.window_keyframes > 0);
  S3VCD_CHECK(options.window_overlap >= 0 &&
              options.window_overlap < options.window_keyframes);
}

std::vector<Detection> StreamMonitor::EvaluateWindow(DetectionStats* stats) {
  S3VCD_TRACE_SPAN("cbcd.evaluate_window");
  Stopwatch watch;
  const std::vector<CandidateEntry> window(buffer_.begin(), buffer_.end());
  const std::vector<Vote> votes =
      ComputeVotes(window, detector_->options().vote);
  const double vote_seconds = watch.ElapsedSeconds();
  g_windows->Increment();
  g_vote_us->Record(vote_seconds * 1e6);
  if (stats != nullptr) {
    stats->vote_seconds += vote_seconds;
  }
  std::vector<Detection> detections;
  for (const Vote& vote : votes) {
    if (vote.nsim >= detector_->options().nsim_threshold) {
      detections.push_back({vote.id, vote.offset, vote.nsim, vote.cost});
    }
  }
  g_detections->Increment(detections.size());
  return detections;
}

std::vector<Detection> StreamMonitor::PushKeyFrame(
    const std::vector<fp::LocalFingerprint>& keyframe_fps,
    DetectionStats* stats) {
  for (const fp::LocalFingerprint& lf : keyframe_fps) {
    buffer_.push_back(detector_->SearchOne(lf, stats));
  }
  ++keyframes_in_window_;
  if (keyframes_in_window_ < options_.window_keyframes) {
    return {};
  }
  std::vector<Detection> detections = EvaluateWindow(stats);
  // Slide: keep the overlap tail. Entries are grouped per key-frame in
  // arrival order; drop whole leading key-frames by time code.
  const int drop_keyframes =
      options_.window_keyframes - options_.window_overlap;
  int dropped = 0;
  while (!buffer_.empty() && dropped < drop_keyframes) {
    const uint32_t tc = buffer_.front().candidate_time_code;
    while (!buffer_.empty() && buffer_.front().candidate_time_code == tc) {
      buffer_.pop_front();
    }
    ++dropped;
  }
  keyframes_in_window_ = options_.window_overlap;
  return detections;
}

std::vector<Detection> StreamMonitor::Flush(DetectionStats* stats) {
  if (buffer_.empty()) {
    return {};
  }
  std::vector<Detection> detections = EvaluateWindow(stats);
  buffer_.clear();
  keyframes_in_window_ = 0;
  return detections;
}

void IngestReferenceVideo(core::DatabaseBuilder* builder,
                          const fp::FingerprintExtractor& extractor,
                          uint32_t id, const media::VideoSequence& video) {
  builder->AddVideo(id, extractor.Extract(video));
}

}  // namespace s3vcd::cbcd
