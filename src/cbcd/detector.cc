#include "cbcd/detector.h"

#include <algorithm>

#include "util/logging.h"
#include "util/timer.h"

namespace s3vcd::cbcd {

CopyDetector::CopyDetector(const core::S3Index* index,
                           const core::DistortionModel* model,
                           DetectorOptions options)
    : index_(index), model_(model), options_(options) {
  S3VCD_CHECK(index != nullptr);
  S3VCD_CHECK(model != nullptr);
}

CandidateEntry CopyDetector::SearchOne(const fp::LocalFingerprint& lf,
                                       DetectionStats* stats) const {
  CandidateEntry entry;
  entry.candidate_time_code = lf.time_code;
  entry.x = lf.x;
  entry.y = lf.y;
  Stopwatch watch;
  core::QueryResult result =
      index_->StatisticalQuery(lf.descriptor, *model_, options_.query);
  entry.matches = std::move(result.matches);
  if (stats != nullptr) {
    stats->search_seconds += watch.ElapsedSeconds();
    ++stats->queries;
    stats->matches += entry.matches.size();
  }
  return entry;
}

std::vector<Detection> CopyDetector::DetectClip(
    const std::vector<fp::LocalFingerprint>& candidate_fps,
    DetectionStats* stats) const {
  std::vector<CandidateEntry> entries;
  entries.reserve(candidate_fps.size());
  for (const fp::LocalFingerprint& lf : candidate_fps) {
    entries.push_back(SearchOne(lf, stats));
  }
  Stopwatch watch;
  const std::vector<Vote> votes = ComputeVotes(entries, options_.vote);
  if (stats != nullptr) {
    stats->vote_seconds += watch.ElapsedSeconds();
  }
  std::vector<Detection> detections;
  for (const Vote& vote : votes) {
    if (vote.nsim >= options_.nsim_threshold) {
      detections.push_back({vote.id, vote.offset, vote.nsim, vote.cost});
    }
  }
  return detections;
}

StreamMonitor::StreamMonitor(const CopyDetector* detector, Options options)
    : detector_(detector), options_(options) {
  S3VCD_CHECK(detector != nullptr);
  S3VCD_CHECK(options.window_keyframes > 0);
  S3VCD_CHECK(options.window_overlap >= 0 &&
              options.window_overlap < options.window_keyframes);
}

std::vector<Detection> StreamMonitor::EvaluateWindow(DetectionStats* stats) {
  Stopwatch watch;
  const std::vector<CandidateEntry> window(buffer_.begin(), buffer_.end());
  const std::vector<Vote> votes =
      ComputeVotes(window, detector_->options().vote);
  if (stats != nullptr) {
    stats->vote_seconds += watch.ElapsedSeconds();
  }
  std::vector<Detection> detections;
  for (const Vote& vote : votes) {
    if (vote.nsim >= detector_->options().nsim_threshold) {
      detections.push_back({vote.id, vote.offset, vote.nsim, vote.cost});
    }
  }
  return detections;
}

std::vector<Detection> StreamMonitor::PushKeyFrame(
    const std::vector<fp::LocalFingerprint>& keyframe_fps,
    DetectionStats* stats) {
  for (const fp::LocalFingerprint& lf : keyframe_fps) {
    buffer_.push_back(detector_->SearchOne(lf, stats));
  }
  ++keyframes_in_window_;
  if (keyframes_in_window_ < options_.window_keyframes) {
    return {};
  }
  std::vector<Detection> detections = EvaluateWindow(stats);
  // Slide: keep the overlap tail. Entries are grouped per key-frame in
  // arrival order; drop whole leading key-frames by time code.
  const int drop_keyframes =
      options_.window_keyframes - options_.window_overlap;
  int dropped = 0;
  while (!buffer_.empty() && dropped < drop_keyframes) {
    const uint32_t tc = buffer_.front().candidate_time_code;
    while (!buffer_.empty() && buffer_.front().candidate_time_code == tc) {
      buffer_.pop_front();
    }
    ++dropped;
  }
  keyframes_in_window_ = options_.window_overlap;
  return detections;
}

std::vector<Detection> StreamMonitor::Flush(DetectionStats* stats) {
  if (buffer_.empty()) {
    return {};
  }
  std::vector<Detection> detections = EvaluateWindow(stats);
  buffer_.clear();
  keyframes_in_window_ = 0;
  return detections;
}

void IngestReferenceVideo(core::DatabaseBuilder* builder,
                          const fp::FingerprintExtractor& extractor,
                          uint32_t id, const media::VideoSequence& video) {
  builder->AddVideo(id, extractor.Extract(video));
}

}  // namespace s3vcd::cbcd
