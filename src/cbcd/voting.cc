#include "cbcd/voting.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "cbcd/tukey.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace s3vcd::cbcd {

namespace {

obs::Counter* const g_votes_cast =
    obs::MetricsRegistry::Global().GetCounter("cbcd.votes_cast");
obs::Counter* const g_cost_evals =
    obs::MetricsRegistry::Global().GetCounter("cbcd.tukey_cost_evals");
obs::Counter* const g_irls_iterations =
    obs::MetricsRegistry::Global().GetCounter("cbcd.irls_iterations");
obs::Counter* const g_hough_passes =
    obs::MetricsRegistry::Global().GetCounter("cbcd.hough_passes");

// The per-id view of the buffer: for each candidate fingerprint j that
// matched this id, the candidate time code and the matched reference
// records. Reference time codes are kept sorted so that evaluating the
// robust cost at one offset is O(J log K) instead of O(J K) -- the paper
// itself notes the voting stage becomes the bottleneck at scale (Sec. VI).
struct PerIdEvidence {
  struct PerCandidate {
    uint32_t candidate_tc;
    float candidate_x;
    float candidate_y;
    std::vector<const core::Match*> matches;
    std::vector<double> sorted_tcs;
  };
  std::vector<PerCandidate> candidates;
};

// Smallest |target - tc| over the candidate's sorted reference time codes.
double BestAbsResidual(const PerIdEvidence::PerCandidate& cand,
                       double target) {
  const auto& tcs = cand.sorted_tcs;
  const auto it = std::lower_bound(tcs.begin(), tcs.end(), target);
  double best = std::numeric_limits<double>::infinity();
  if (it != tcs.end()) {
    best = *it - target;
  }
  if (it != tcs.begin()) {
    best = std::min(best, target - *(it - 1));
  }
  return best;
}

double EvaluateCost(const PerIdEvidence& evidence, double b, double c) {
  double cost = 0;
  for (const auto& cand : evidence.candidates) {
    // min_k rho(tc' - (tc_k + b)) = rho(min_k |(tc' - b) - tc_k|).
    cost += TukeyRho(BestAbsResidual(cand, cand.candidate_tc - b), c);
  }
  return cost;
}

// Coarse Hough pass: keeps only the offsets falling in the most supported
// histogram bins (bin width = tukey_c, plus one-bin neighborhoods), so the
// exact cost is evaluated on a small, promising subset. `offsets` must be
// sorted and deduplicated; every offset also carries an implicit support
// count of one, which is the right granularity after deduplication because
// coherent copies contribute many distinct offsets into the same bin.
std::vector<double> HoughSelectOffsets(const std::vector<double>& offsets,
                                       const PerIdEvidence& evidence,
                                       double bin_width, int top_bins) {
  const double lo = offsets.front();
  const int num_bins =
      static_cast<int>((offsets.back() - lo) / bin_width) + 1;
  std::vector<uint32_t> counts(static_cast<size_t>(num_bins), 0);
  // Support = number of (candidate, match) pairs voting into the bin; this
  // measures coherence better than deduplicated offsets alone.
  for (const auto& cand : evidence.candidates) {
    for (double tc : cand.sorted_tcs) {
      const double b = static_cast<double>(cand.candidate_tc) - tc;
      const int bin = static_cast<int>((b - lo) / bin_width);
      ++counts[static_cast<size_t>(std::clamp(bin, 0, num_bins - 1))];
    }
  }
  // Top bins by support.
  std::vector<int> order(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  const size_t keep = std::min<size_t>(static_cast<size_t>(top_bins),
                                       order.size());
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    [&](int a, int b) { return counts[a] > counts[b]; });
  std::vector<bool> selected(counts.size(), false);
  for (size_t i = 0; i < keep; ++i) {
    const int bin = order[i];
    for (int d = -1; d <= 1; ++d) {
      const int n = bin + d;
      if (n >= 0 && n < num_bins) {
        selected[static_cast<size_t>(n)] = true;
      }
    }
  }
  std::vector<double> kept;
  for (double b : offsets) {
    const int bin = static_cast<int>((b - lo) / bin_width);
    if (selected[static_cast<size_t>(std::clamp(bin, 0, num_bins - 1))]) {
      kept.push_back(b);
    }
  }
  return kept;
}

}  // namespace

std::vector<Vote> ComputeVotes(const std::vector<CandidateEntry>& entries,
                               const VoteOptions& options) {
  S3VCD_TRACE_SPAN("cbcd.compute_votes");
  // Regroup the buffer per identifier.
  std::map<uint32_t, PerIdEvidence> by_id;
  for (const CandidateEntry& entry : entries) {
    // Group this entry's matches by id first so each id gets at most one
    // PerCandidate per candidate fingerprint.
    std::map<uint32_t, std::vector<const core::Match*>> per_id_matches;
    for (const core::Match& m : entry.matches) {
      per_id_matches[m.id].push_back(&m);
    }
    for (auto& [id, matches] : per_id_matches) {
      PerIdEvidence::PerCandidate cand;
      cand.candidate_tc = entry.candidate_time_code;
      cand.candidate_x = entry.x;
      cand.candidate_y = entry.y;
      cand.sorted_tcs.reserve(matches.size());
      for (const core::Match* m : matches) {
        cand.sorted_tcs.push_back(static_cast<double>(m->time_code));
      }
      std::sort(cand.sorted_tcs.begin(), cand.sorted_tcs.end());
      cand.matches = std::move(matches);
      by_id[id].candidates.push_back(std::move(cand));
    }
  }

  std::vector<Vote> votes;
  votes.reserve(by_id.size());
  for (const auto& [id, evidence] : by_id) {
    // Candidate offsets: every observed tc'_j - tc_jk is a potential b.
    std::vector<double> offsets;
    for (const auto& cand : evidence.candidates) {
      for (double tc : cand.sorted_tcs) {
        offsets.push_back(static_cast<double>(cand.candidate_tc) - tc);
      }
    }
    if (offsets.empty()) {
      continue;
    }
    // De-duplicate, then subsample uniformly if the id is pathologically
    // popular, to bound the evaluation loop.
    std::sort(offsets.begin(), offsets.end());
    offsets.erase(std::unique(offsets.begin(), offsets.end()),
                  offsets.end());
    if (offsets.size() > options.hough_threshold) {
      g_hough_passes->Increment();
      offsets = HoughSelectOffsets(offsets, evidence,
                                   std::max(1.0, options.tukey_c),
                                   options.hough_top_bins);
    }
    if (offsets.size() > options.max_candidate_offsets) {
      std::vector<double> sampled;
      sampled.reserve(options.max_candidate_offsets);
      const double stride = static_cast<double>(offsets.size()) /
                            static_cast<double>(options.max_candidate_offsets);
      for (size_t i = 0; i < options.max_candidate_offsets; ++i) {
        sampled.push_back(offsets[static_cast<size_t>(i * stride)]);
      }
      offsets = std::move(sampled);
    }

    double best_b = offsets.front();
    double best_cost = std::numeric_limits<double>::infinity();
    g_cost_evals->Increment(offsets.size());
    for (double b : offsets) {
      const double cost = EvaluateCost(evidence, b, options.tukey_c);
      if (cost < best_cost) {
        best_cost = cost;
        best_b = b;
      }
    }

    if (options.refine_offset) {
      // IRLS on the Tukey M-estimator: each candidate contributes its
      // closest reference time code, weighted by the influence function.
      for (int iter = 0; iter < options.irls_iterations; ++iter) {
        g_irls_iterations->Increment();
        double weighted_sum = 0;
        double weight_total = 0;
        for (const auto& cand : evidence.candidates) {
          const double target = cand.candidate_tc - best_b;
          const auto it = std::lower_bound(cand.sorted_tcs.begin(),
                                           cand.sorted_tcs.end(), target);
          double best_tc = 0;
          double best_abs = std::numeric_limits<double>::infinity();
          if (it != cand.sorted_tcs.end()) {
            best_tc = *it;
            best_abs = std::abs(*it - target);
          }
          if (it != cand.sorted_tcs.begin() &&
              std::abs(*(it - 1) - target) < best_abs) {
            best_tc = *(it - 1);
            best_abs = std::abs(*(it - 1) - target);
          }
          if (!std::isfinite(best_abs)) {
            continue;
          }
          const double residual = cand.candidate_tc - (best_tc + best_b);
          const double w = TukeyWeight(residual, options.tukey_c);
          weighted_sum += w * (cand.candidate_tc - best_tc);
          weight_total += w;
        }
        if (weight_total <= 0) {
          break;
        }
        const double next = weighted_sum / weight_total;
        if (std::abs(next - best_b) < 1e-6) {
          best_b = next;
          break;
        }
        best_b = next;
      }
      g_cost_evals->Increment();
      best_cost = EvaluateCost(evidence, best_b, options.tukey_c);
    }

    // Count nsim: candidate fingerprints with a residual within tolerance
    // of the estimated model. With the spatial extension enabled, first
    // estimate the median displacement of the temporally consistent
    // matches, then require agreement with it.
    std::vector<std::pair<double, double>> displacements;
    int temporally_consistent = 0;
    for (const auto& cand : evidence.candidates) {
      const core::Match* best_match = nullptr;
      double best_abs = options.tolerance;
      for (const core::Match* m : cand.matches) {
        const double residual =
            static_cast<double>(cand.candidate_tc) -
            (static_cast<double>(m->time_code) + best_b);
        if (std::abs(residual) <= best_abs) {
          best_abs = std::abs(residual);
          best_match = m;
        }
      }
      if (best_match != nullptr) {
        ++temporally_consistent;
        displacements.emplace_back(cand.candidate_x - best_match->x,
                                   cand.candidate_y - best_match->y);
      }
    }
    int nsim = temporally_consistent;
    if (options.use_spatial_coherence && !displacements.empty()) {
      auto median_of = [](std::vector<double> v) {
        const size_t upper = v.size() / 2;
        std::nth_element(v.begin(), v.begin() + upper, v.end());
        if (v.size() % 2 == 1) {
          return v[upper];
        }
        const double hi = v[upper];
        const double lo = *std::max_element(v.begin(), v.begin() + upper);
        return 0.5 * (lo + hi);
      };
      std::vector<double> dx;
      std::vector<double> dy;
      for (const auto& [a, b] : displacements) {
        dx.push_back(a);
        dy.push_back(b);
      }
      const double mx = median_of(dx);
      const double my = median_of(dy);
      nsim = 0;
      for (const auto& [a, b] : displacements) {
        if (std::hypot(a - mx, b - my) <= options.spatial_tolerance) {
          ++nsim;
        }
      }
    }

    Vote vote;
    vote.id = id;
    vote.offset = best_b;
    vote.nsim = nsim;
    vote.cost = best_cost;
    votes.push_back(vote);
  }

  g_votes_cast->Increment(votes.size());
  std::sort(votes.begin(), votes.end(), [](const Vote& a, const Vote& b) {
    if (a.nsim != b.nsim) {
      return a.nsim > b.nsim;
    }
    return a.cost < b.cost;
  });
  return votes;
}

}  // namespace s3vcd::cbcd
