#include "cbcd/tukey.h"

#include <cmath>

#include "util/logging.h"

namespace s3vcd::cbcd {

double TukeyRho(double u, double c) {
  S3VCD_DCHECK(c > 0);
  const double saturation = c * c / 6.0;
  const double z = u / c;
  if (std::abs(u) >= c) {
    return saturation;
  }
  const double t = 1.0 - z * z;
  return saturation * (1.0 - t * t * t);
}

double TukeyWeight(double u, double c) {
  S3VCD_DCHECK(c > 0);
  if (std::abs(u) >= c) {
    return 0.0;
  }
  const double z = u / c;
  const double t = 1.0 - z * z;
  return t * t;
}

}  // namespace s3vcd::cbcd
