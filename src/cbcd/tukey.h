#ifndef S3VCD_CBCD_TUKEY_H_
#define S3VCD_CBCD_TUKEY_H_

namespace s3vcd::cbcd {

/// Tukey's biweight M-estimator cost rho(u) (paper Section III, following
/// Black & Anandan): quadratic near zero, saturating at |u| >= c so that
/// outliers contribute a bounded constant instead of dominating the fit.
///
/// rho(u) = c^2/6 * (1 - (1 - (u/c)^2)^3)  for |u| <= c
///        = c^2/6                           otherwise
double TukeyRho(double u, double c);

/// The influence-function weight w(u) = (1 - (u/c)^2)^2 for |u| <= c, else
/// 0; used by IRLS refinements.
double TukeyWeight(double u, double c);

}  // namespace s3vcd::cbcd

#endif  // S3VCD_CBCD_TUKEY_H_
