#ifndef S3VCD_CBCD_DETECTOR_H_
#define S3VCD_CBCD_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "cbcd/voting.h"
#include "core/database.h"
#include "core/distortion_model.h"
#include "core/searcher.h"
#include "fingerprint/extractor.h"
#include "media/frame.h"

namespace s3vcd::cbcd {

/// Options of the end-to-end copy detector.
struct DetectorOptions {
  /// Statistical query parameters (alpha, depth, ...).
  core::QueryOptions query;
  VoteOptions vote;
  /// Decision threshold on the similarity measure nsim: identifiers with
  /// fewer temporally coherent votes are not reported. The paper sets it
  /// so that false alarms average below 1 per hour of monitoring.
  int nsim_threshold = 4;
};

/// A reported copy detection.
struct Detection {
  uint32_t id = 0;
  /// Estimated temporal offset b: candidate_tc = reference_tc + b.
  double offset = 0;
  int nsim = 0;
  double cost = 0;
};

/// Aggregate instrumentation of a detection run.
struct DetectionStats {
  uint64_t queries = 0;
  uint64_t matches = 0;
  double search_seconds = 0;
  double vote_seconds = 0;
};

/// The detection stage of the video CBCD scheme (paper Section III): every
/// candidate fingerprint is searched with a statistical query, the results
/// are buffered, and the voting strategy decides which identifiers are
/// copies.
class CopyDetector {
 public:
  /// `searcher` and `model` must outlive the detector. The detector is
  /// backend-agnostic: any registered Searcher works (the paper's setup is
  /// the "s3" backend).
  CopyDetector(const core::Searcher* searcher,
               const core::DistortionModel* model, DetectorOptions options);

  const DetectorOptions& options() const { return options_; }

  /// Runs detection on the fingerprints of a whole candidate clip.
  /// Detections are sorted by decreasing nsim; only identifiers meeting
  /// the nsim threshold are returned.
  std::vector<Detection> DetectClip(
      const std::vector<fp::LocalFingerprint>& candidate_fps,
      DetectionStats* stats = nullptr) const;

  /// Searches one candidate fingerprint into a buffer entry (exposed so
  /// StreamMonitor can share the machinery).
  CandidateEntry SearchOne(const fp::LocalFingerprint& lf,
                           DetectionStats* stats = nullptr) const;

 private:
  const core::Searcher* searcher_;
  const core::DistortionModel* model_;
  DetectorOptions options_;
};

/// Continuous monitoring front-end (paper Section V-D): a sliding buffer of
/// key-frame search results over a TV stream; votes are evaluated every
/// `window_keyframes` key-frames on the buffered window.
class StreamMonitor {
 public:
  struct Options {
    /// Number of candidate key-frames per voting window.
    int window_keyframes = 24;
    /// Overlap between consecutive windows, in key-frames.
    int window_overlap = 8;
  };

  StreamMonitor(const CopyDetector* detector, Options options);

  /// Feeds the fingerprints of one candidate key-frame; returns the
  /// detections of a completed window, if any (empty otherwise).
  std::vector<Detection> PushKeyFrame(
      const std::vector<fp::LocalFingerprint>& keyframe_fps,
      DetectionStats* stats = nullptr);

  /// Evaluates the remaining buffered window.
  std::vector<Detection> Flush(DetectionStats* stats = nullptr);

 private:
  std::vector<Detection> EvaluateWindow(DetectionStats* stats);

  const CopyDetector* detector_;
  Options options_;
  std::deque<CandidateEntry> buffer_;
  int keyframes_in_window_ = 0;
};

/// Reference-side ingestion helper: extracts the fingerprints of `video`
/// and adds them to `builder` under `id`.
void IngestReferenceVideo(core::DatabaseBuilder* builder,
                          const fp::FingerprintExtractor& extractor,
                          uint32_t id, const media::VideoSequence& video);

}  // namespace s3vcd::cbcd

#endif  // S3VCD_CBCD_DETECTOR_H_
