#ifndef S3VCD_CBCD_VOTING_H_
#define S3VCD_CBCD_VOTING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/record.h"

namespace s3vcd::cbcd {

/// Options of the temporal voting strategy (paper Section III).
struct VoteOptions {
  /// Scale c of Tukey's biweight, in frames: residuals beyond c are
  /// saturated outliers.
  double tukey_c = 12.0;
  /// Residual tolerance, in frames, for a candidate fingerprint to count
  /// toward the similarity measure nsim.
  double tolerance = 3.0;
  /// Cap on the number of candidate offsets evaluated per identifier, for
  /// robustness against ids with enormous match lists.
  size_t max_candidate_offsets = 50000;
  /// When an identifier has more distinct candidate offsets than this, a
  /// coarse Hough pass (offset histogram at tukey_c resolution) selects the
  /// most supported offset bins and the exact robust cost (eq. 2) is only
  /// evaluated inside them. Keeps the voting stage sub-quadratic on very
  /// large result sets -- the bottleneck the paper predicts in Section VI.
  size_t hough_threshold = 256;
  /// Number of top Hough bins refined exactly.
  int hough_top_bins = 8;
  /// Refine the discrete offset estimate with a few IRLS iterations of the
  /// Tukey M-estimator, yielding a continuous (sub-frame) offset. Useful
  /// when candidate and reference frame rates differ slightly.
  bool refine_offset = false;
  int irls_iterations = 5;
  /// Extension (paper Section VI): additionally require the spatial
  /// displacement of the matched interest points to agree with the median
  /// displacement, tightening the vote.
  bool use_spatial_coherence = false;
  /// Spatial tolerance in pixels for the coherence check.
  double spatial_tolerance = 16.0;
};

/// The buffered search results of one candidate fingerprint (one interest
/// point of one candidate key-frame).
struct CandidateEntry {
  /// Time code tc'_j of the candidate key-frame, in frames.
  uint32_t candidate_time_code = 0;
  /// Interest point position in the candidate frame (spatial extension).
  float x = 0;
  float y = 0;
  /// Referenced fingerprints returned by the statistical query.
  std::vector<core::Match> matches;
};

/// One identifier's vote: the robustly estimated temporal offset b such
/// that tc' = tc + b, and the number of candidate fingerprints consistent
/// with it.
struct Vote {
  uint32_t id = 0;
  double offset = 0;
  /// Similarity measure: candidate fingerprints within tolerance of the
  /// estimated offset (paper's nsim).
  int nsim = 0;
  /// Value of the minimized robust cost (eq. 2); lower is better.
  double cost = 0;
};

/// Estimates, for every identifier present in `entries`, the offset b(id)
/// minimizing eq. (2) with Tukey's biweight, then counts nsim. Votes are
/// returned sorted by decreasing nsim.
std::vector<Vote> ComputeVotes(const std::vector<CandidateEntry>& entries,
                               const VoteOptions& options);

}  // namespace s3vcd::cbcd

#endif  // S3VCD_CBCD_VOTING_H_
