#ifndef S3VCD_CORE_LSH_H_
#define S3VCD_CORE_LSH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/descriptor_block.h"
#include "core/record.h"
#include "core/searcher.h"
#include "fingerprint/fingerprint.h"

namespace s3vcd::core {

/// Options of the p-stable LSH baseline (Datar et al., 2004) — the other
/// contemporaneous approximate-search family, provided as a comparison
/// point alongside the VA-file. Each of `num_tables` tables hashes a
/// vector by `hashes_per_table` concatenated projections
/// h(v) = floor((a.v + b) / bucket_width), a ~ N(0, 1)^D, b ~ U[0, w).
struct LshOptions {
  int num_tables = 8;
  int hashes_per_table = 6;
  /// Quantization width of each projection; of the order of the target
  /// radius for good collision behaviour.
  double bucket_width = 120.0;
  uint64_t seed = 1;
};

/// Locality-sensitive hash index over a snapshot of fingerprint records.
/// Range queries return only true neighbors (exact distance filter on the
/// union of colliding buckets) but may miss some — the recall is
/// probabilistic, controlled by the table count. The "lsh" backend of the
/// SearcherRegistry.
class LshIndex : public Searcher {
 public:
  LshIndex(std::vector<FingerprintRecord> records,
           const LshOptions& options);

  size_t size() const { return block_.size(); }
  const LshOptions& options() const { return options_; }

  /// Approximate epsilon-range query: candidates are the records sharing a
  /// bucket with the query in any table; matches are exact-distance
  /// filtered. QueryStats::records_scanned counts the candidate set.
  QueryResult RangeQuery(const fp::Fingerprint& query, double epsilon) const;

  /// Expected bucket-collision probability for two points at distance
  /// `dist` under one table (the standard p-stable formula, for analysis
  /// and tests).
  double TableCollisionProbability(double dist) const;

  // ---- Searcher interface ----
  const char* backend_name() const override { return "lsh"; }
  /// Statistical queries are emulated as a range query at the
  /// equal-expectation radius; recall inherits the hash tables'
  /// probabilistic behaviour.
  QueryResult StatQuery(const fp::Fingerprint& query,
                        const DistortionModel& model,
                        const QueryOptions& options) const override;
  QueryResult RangeQuery(const fp::Fingerprint& query, double epsilon,
                         int /*depth*/) const override {
    return RangeQuery(query, epsilon);
  }
  SearcherStats Stats() const override { return {block_.size(), 0}; }
  uint64_t ApproxBytes() const override;

 private:
  QueryResult RangeQueryImpl(const fp::Fingerprint& query,
                             double epsilon) const;

  /// `v` points at kDims packed descriptor bytes.
  uint64_t BucketOf(int table, const uint8_t* v) const;

  LshOptions options_;
  /// Candidate verification runs over this SoA snapshot of the records.
  DescriptorBlock block_;
  /// projections_[t * k + i] = the D gaussian coefficients of hash i of
  /// table t; offsets_ holds the matching b terms.
  std::vector<std::array<float, fp::kDims>> projections_;
  std::vector<float> offsets_;
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> tables_;
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_LSH_H_
