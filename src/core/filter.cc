#include "core/filter.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <queue>

#include "util/logging.h"

namespace s3vcd::core {

namespace {

using hilbert::BlockTree;

// A block-tree node annotated with its per-axis probability factors. A
// quantized byte value b represents the continuous interval
// [b - 0.5, b + 0.5), so a cell range [lo, hi) in cells maps to the byte
// interval [lo * w - 0.5, hi * w - 0.5) with w the cell width in bytes.
// The node type is shared by the Hilbert and Z-order trees.
struct ProbNode {
  BlockTree::Node node;
  std::array<double, fp::kDims> axis_mass;
  double prob = 0;
};

// Byte components of distorted fingerprints are clamped to [0, 255], so the
// grid-edge cells absorb the entire tail of the distortion density: the
// lowest cell represents (-inf, lo+w) and the highest [hi-w, +inf).
constexpr double kInfinityBytes = 1e30;

double ByteLo(uint32_t cell_lo, int shift) {
  if (cell_lo == 0) {
    return -kInfinityBytes;
  }
  return static_cast<double>(cell_lo << shift) - 0.5;
}
double ByteHi(uint32_t cell_hi, int shift, uint32_t grid_size) {
  if (cell_hi == grid_size) {
    return kInfinityBytes;
  }
  return static_cast<double>(cell_hi << shift) - 0.5;
}

template <typename Tree>
ProbNode MakeRoot(const Tree& tree, const fp::Fingerprint& query,
                  const DistortionModel& model, int shift) {
  ProbNode root;
  root.node = tree.Root();
  root.prob = 1.0;
  const int dims = tree.curve().dims();
  const uint32_t grid = tree.curve().grid_size();
  for (int j = 0; j < dims; ++j) {
    root.axis_mass[j] = model.ComponentMass(
        j, ByteLo(root.node.lo[j], shift),
        ByteHi(root.node.hi[j], shift, grid),
        static_cast<double>(query[j]));
    root.prob *= root.axis_mass[j];
  }
  return root;
}

// Recomputes the changed axis factor after a split and the product.
void UpdateChild(const ProbNode& parent, const fp::Fingerprint& query,
                 const DistortionModel& model, int shift, uint32_t grid,
                 ProbNode* child) {
  child->axis_mass = parent.axis_mass;
  const int axis = child->node.split_axis;
  child->axis_mass[axis] = model.ComponentMass(
      axis, ByteLo(child->node.lo[axis], shift),
      ByteHi(child->node.hi[axis], shift, grid),
      static_cast<double>(query[axis]));
  // Recompute the full product: numerically stable and still only D
  // multiplications per split.
  double prob = 1.0;
  const int dims = static_cast<int>(fp::kDims);
  for (int j = 0; j < dims; ++j) {
    prob *= child->axis_mass[j];
  }
  child->prob = prob;
}

struct HeapLess {
  bool operator()(const ProbNode& a, const ProbNode& b) const {
    return a.prob < b.prob;
  }
};

// Squared distance from the query (byte space) to a cell box.
double BoxMinSquaredDistance(const BlockTree::Node& node,
                             const fp::Fingerprint& query, int shift,
                             int dims) {
  double acc = 0;
  for (int j = 0; j < dims; ++j) {
    const double q = query[j];
    const double lo = static_cast<double>(node.lo[j] << shift);
    const double hi = static_cast<double>(node.hi[j] << shift) - 1.0;
    if (q < lo) {
      acc += (lo - q) * (lo - q);
    } else if (q > hi) {
      acc += (q - hi) * (q - hi);
    }
  }
  return acc;
}

// Best-first expansion: the heap top always bounds every remaining
// block's probability, so emitted depth-p blocks come out in decreasing
// probability order and the greedy stop is the minimal block set.
template <typename Tree>
BlockSelection SelectStatisticalBestFirst(const Tree& tree, int cell_shift,
                                          const fp::Fingerprint& query,
                                          const DistortionModel& model,
                                          const FilterOptions& options,
                                          int depth) {
  BlockSelection selection;
  const int key_bits = tree.curve().key_bits();
  std::priority_queue<ProbNode, std::vector<ProbNode>, HeapLess> heap;
  ProbNode root = MakeRoot(tree, query, model, cell_shift);
  // The achievable mass inside the grid may be below alpha (query near the
  // space border with a wide model): target what is achievable.
  const double target = std::min(options.alpha, root.prob * (1.0 - 1e-9));
  heap.push(std::move(root));
  selection.nodes_visited = 1;

  std::vector<BitKey> prefixes;
  double total = 0;
  while (!heap.empty() && total < target &&
         prefixes.size() < options.max_blocks &&
         selection.nodes_visited < options.max_nodes) {
    ProbNode top = heap.top();
    heap.pop();
    if (top.node.depth == depth) {
      prefixes.push_back(top.node.prefix);
      total += top.prob;
      continue;
    }
    ProbNode c0;
    ProbNode c1;
    tree.Split(top.node, &c0.node, &c1.node);
    UpdateChild(top, query, model, cell_shift, tree.curve().grid_size(), &c0);
    UpdateChild(top, query, model, cell_shift, tree.curve().grid_size(), &c1);
    selection.nodes_visited += 2;
    // Negligible-mass children cannot contribute to alpha in any realistic
    // block budget; dropping them keeps the heap small.
    constexpr double kNegligible = 1e-18;
    if (c0.prob > kNegligible) {
      heap.push(std::move(c0));
    }
    if (c1.prob > kNegligible) {
      heap.push(std::move(c1));
    }
  }
  selection.num_blocks = prefixes.size();
  selection.probability_mass = total;
  selection.ranges = MergeBlockRanges(std::move(prefixes), depth, key_bits);
  return selection;
}

// The paper's eq. (4): bisection for the largest threshold t with
// Psup(t) >= alpha, each evaluation a pruned DFS of the block tree.
template <typename Tree>
BlockSelection SelectStatisticalThreshold(const Tree& tree, int cell_shift,
                                          const fp::Fingerprint& query,
                                          const DistortionModel& model,
                                          const FilterOptions& options,
                                          int depth) {
  uint64_t nodes_visited = 0;
  auto evaluate = [&](double t, std::vector<BitKey>* out_prefixes,
                      double* out_mass) -> bool {
    double mass = 0;
    uint64_t count = 0;
    bool capped = false;
    std::vector<ProbNode> stack;
    ProbNode root = MakeRoot(tree, query, model, cell_shift);
    if (root.prob > t) {
      stack.push_back(std::move(root));
    }
    ++nodes_visited;
    while (!stack.empty()) {
      if (nodes_visited > options.max_nodes) {
        capped = true;
        break;
      }
      ProbNode n = std::move(stack.back());
      stack.pop_back();
      if (n.node.depth == depth) {
        mass += n.prob;
        ++count;
        if (out_prefixes != nullptr) {
          out_prefixes->push_back(n.node.prefix);
        }
        if (count > options.max_blocks) {
          capped = true;
          break;
        }
        continue;
      }
      ProbNode c0;
      ProbNode c1;
      tree.Split(n.node, &c0.node, &c1.node);
      UpdateChild(n, query, model, cell_shift, tree.curve().grid_size(),
                  &c0);
      UpdateChild(n, query, model, cell_shift, tree.curve().grid_size(),
                  &c1);
      nodes_visited += 2;
      if (c0.prob > t) {
        stack.push_back(std::move(c0));
      }
      if (c1.prob > t) {
        stack.push_back(std::move(c1));
      }
    }
    *out_mass = mass;
    return capped;
  };

  // Bisection on log t for the largest t with Psup(t) >= alpha (eq. 4).
  double log_lo = std::log(1e-15);  // small t: B(t) large, Psup high
  double log_hi = 0.0;              // t = 1: B(t) empty
  double best_valid_log_t = log_lo;
  for (int iter = 0; iter < 24; ++iter) {
    const double log_mid = 0.5 * (log_lo + log_hi);
    double mass = 0;
    const bool capped = evaluate(std::exp(log_mid), nullptr, &mass);
    if (capped || mass >= options.alpha) {
      best_valid_log_t = log_mid;
      log_lo = log_mid;  // t can grow
    } else {
      log_hi = log_mid;
    }
  }

  BlockSelection selection;
  std::vector<BitKey> prefixes;
  double mass = 0;
  evaluate(std::exp(best_valid_log_t), &prefixes, &mass);
  if (prefixes.size() > options.max_blocks) {
    prefixes.resize(options.max_blocks);
  }
  selection.nodes_visited = nodes_visited;
  selection.num_blocks = prefixes.size();
  selection.probability_mass = mass;
  selection.ranges = MergeBlockRanges(std::move(prefixes), depth,
                                      tree.curve().key_bits());
  return selection;
}

template <typename Tree>
BlockSelection SelectStatisticalImpl(const Tree& tree, int cell_shift,
                                     const fp::Fingerprint& query,
                                     const DistortionModel& model,
                                     const FilterOptions& options) {
  S3VCD_CHECK(options.alpha > 0 && options.alpha < 1);
  const int depth =
      std::clamp(options.depth, 1,
                 std::min(tree.curve().key_bits(), kMaxPracticalDepth));
  if (options.algorithm == FilterAlgorithm::kThresholdSearch) {
    return SelectStatisticalThreshold(tree, cell_shift, query, model,
                                      options, depth);
  }
  return SelectStatisticalBestFirst(tree, cell_shift, query, model, options,
                                    depth);
}

template <typename Tree>
BlockSelection SelectRangeImpl(const Tree& tree, int cell_shift,
                               const fp::Fingerprint& query, double epsilon,
                               int depth, uint64_t max_blocks) {
  S3VCD_CHECK(epsilon >= 0);
  const int clamped_depth = std::clamp(depth, 1, tree.curve().key_bits());
  const double eps_sq = epsilon * epsilon;
  const int dims = tree.curve().dims();

  BlockSelection selection;
  std::vector<BitKey> prefixes;
  std::vector<BlockTree::Node> stack;
  stack.push_back(tree.Root());
  selection.nodes_visited = 1;
  while (!stack.empty()) {
    BlockTree::Node n = std::move(stack.back());
    stack.pop_back();
    if (BoxMinSquaredDistance(n, query, cell_shift, dims) > eps_sq) {
      continue;
    }
    if (n.depth == clamped_depth) {
      prefixes.push_back(n.prefix);
      if (prefixes.size() >= max_blocks) {
        break;
      }
      continue;
    }
    BlockTree::Node c0;
    BlockTree::Node c1;
    tree.Split(n, &c0, &c1);
    selection.nodes_visited += 2;
    stack.push_back(std::move(c0));
    stack.push_back(std::move(c1));
  }
  selection.num_blocks = prefixes.size();
  selection.ranges = MergeBlockRanges(std::move(prefixes), clamped_depth,
                                      tree.curve().key_bits());
  return selection;
}

}  // namespace

std::vector<std::pair<BitKey, BitKey>> MergeBlockRanges(
    std::vector<BitKey> prefixes, int depth, int key_bits) {
  std::sort(prefixes.begin(), prefixes.end());
  std::vector<std::pair<BitKey, BitKey>> ranges;
  const int shift = key_bits - depth;
  for (const BitKey& prefix : prefixes) {
    BitKey begin = prefix << shift;
    BitKey next = prefix;
    next.Increment();
    BitKey end = next << shift;
    if (!ranges.empty() && ranges.back().second == begin) {
      ranges.back().second = end;
    } else {
      ranges.emplace_back(begin, end);
    }
  }
  return ranges;
}

BlockFilter::BlockFilter(const hilbert::HilbertCurve& curve)
    : curve_(&curve), tree_(curve), cell_shift_(8 - curve.order()) {
  S3VCD_CHECK(curve.dims() == fp::kDims);
  S3VCD_CHECK(curve.order() >= 1 && curve.order() <= 8);
}

BlockSelection BlockFilter::SelectStatistical(
    const fp::Fingerprint& query, const DistortionModel& model,
    const FilterOptions& options) const {
  return SelectStatisticalImpl(tree_, cell_shift_, query, model, options);
}

BlockSelection BlockFilter::SelectRange(const fp::Fingerprint& query,
                                        double epsilon, int depth,
                                        uint64_t max_blocks) const {
  return SelectRangeImpl(tree_, cell_shift_, query, epsilon, depth,
                         max_blocks);
}

ZOrderBlockFilter::ZOrderBlockFilter(const hilbert::ZOrderCurve& curve)
    : curve_(&curve), tree_(curve), cell_shift_(8 - curve.order()) {
  S3VCD_CHECK(curve.dims() == fp::kDims);
  S3VCD_CHECK(curve.order() >= 1 && curve.order() <= 8);
}

BlockSelection ZOrderBlockFilter::SelectStatistical(
    const fp::Fingerprint& query, const DistortionModel& model,
    const FilterOptions& options) const {
  return SelectStatisticalImpl(tree_, cell_shift_, query, model, options);
}

BlockSelection ZOrderBlockFilter::SelectRange(const fp::Fingerprint& query,
                                              double epsilon, int depth,
                                              uint64_t max_blocks) const {
  return SelectRangeImpl(tree_, cell_shift_, query, epsilon, depth,
                         max_blocks);
}

}  // namespace s3vcd::core
