#include "core/filter.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"

namespace s3vcd::core {

namespace internal {

void LazyTable::Begin(size_t rows, size_t new_cols) {
  cols = new_cols;
  const size_t needed = rows * new_cols;
  if (value.size() < needed) {
    value.resize(needed, 0.0);
    stamp.resize(needed, 0);
  }
  if (++generation == 0) {
    // Generation counter wrapped (once per ~4G queries): stale stamps could
    // alias the new generation, so clear them once and restart at 1.
    std::fill(stamp.begin(), stamp.end(), 0u);
    generation = 1;
  }
}

}  // namespace internal

SelectionScratch& ThreadLocalSelectionScratch() {
  thread_local SelectionScratch scratch;
  return scratch;
}

uint64_t SelectionScratch::ApproxBytes() const {
  uint64_t bytes = 0;
  bytes += cdf.value.capacity() * sizeof(double) +
           cdf.stamp.capacity() * sizeof(uint32_t);
  bytes += sq.value.capacity() * sizeof(double) +
           sq.stamp.capacity() * sizeof(uint32_t);
  bytes += arena.capacity() * sizeof(hilbert::BlockTree::Node);
  bytes += free_slots.capacity() * sizeof(uint32_t);
  bytes += heap.capacity() * sizeof(std::pair<double, uint32_t>);
  bytes += dfs.capacity() * sizeof(std::pair<double, uint32_t>);
  bytes += prefixes.capacity() * sizeof(BitKey);
  return bytes;
}

namespace {

using hilbert::BlockTree;
using Node = BlockTree::Node;

// Byte components of distorted fingerprints are clamped to [0, 255], so the
// grid-edge cells absorb the entire tail of the distortion density: the
// lowest cell represents (-inf, lo+w) and the highest [hi-w, +inf).
constexpr double kInfinityBytes = 1e30;

// The quantization-interval convention, shared by the statistical and the
// geometric filter: a quantized byte value b represents the continuous
// interval [b - 0.5, b + 0.5), so a cell range [lo, hi) in cells maps to
// the byte interval [lo * w - 0.5, hi * w - 0.5) with w the cell width in
// bytes — i.e. boundary index b (in [0, grid]) sits at byte b * w - 0.5,
// with the grid edges extended to +/- infinity (tail absorption).
double BoundaryByte(uint32_t boundary, int shift, uint32_t grid_size) {
  if (boundary == 0) {
    return -kInfinityBytes;
  }
  if (boundary == grid_size) {
    return kInfinityBytes;
  }
  return static_cast<double>(boundary << shift) - 0.5;
}

void MergeBlockRangesInto(std::vector<BitKey>* prefixes, int depth,
                          int key_bits,
                          std::vector<std::pair<BitKey, BitKey>>* ranges) {
  std::sort(prefixes->begin(), prefixes->end());
  ranges->clear();
  const int shift = key_bits - depth;
  for (const BitKey& prefix : *prefixes) {
    BitKey begin = prefix << shift;
    BitKey next = prefix;
    next.Increment();
    BitKey end = next << shift;
    if (!ranges->empty() && ranges->back().second == begin) {
      ranges->back().second = end;
    } else {
      ranges->emplace_back(begin, end);
    }
  }
}

// --- arena helpers ---------------------------------------------------------
// Nodes live in a pooled arena indexed by 32-bit slots; the heap and DFS
// stack hold (probability, slot) pairs, so heap operations move 16 bytes
// instead of whole nodes. Slots of consumed nodes are recycled within the
// query; the arena itself is recycled across queries via SelectionScratch.

uint32_t AllocSlot(SelectionScratch* s) {
  if (!s->free_slots.empty()) {
    const uint32_t slot = s->free_slots.back();
    s->free_slots.pop_back();
    return slot;
  }
  s->arena.emplace_back();
  return static_cast<uint32_t>(s->arena.size() - 1);
}

void ResetArena(SelectionScratch* s) {
  s->arena.clear();
  s->free_slots.clear();
}

// --- probability engines ---------------------------------------------------
// Both engines evaluate node probabilities as products (in ascending axis
// order) of per-axis interval masses taken over identical boundary byte
// values, so — given the DistortionModel::ComponentCdf exactness contract —
// their selections are bit-identical; tests/filter_table_test.cc pins this.

// Production engine (SelectionEngine::kBoundaryTable): a per-query table of
// the distortion CDF at the cell boundaries, one row per axis, filled
// lazily (one ComponentCdf call per boundary the expansion actually
// touches) and generation-stamped so reuse across queries clears nothing.
// A node's axis mass is table[hi] - table[lo]: the expansion loop itself
// runs zero transcendentals — D loads, D subtractions, D multiplies.
class TableProbEngine {
 public:
  TableProbEngine(const fp::Fingerprint& query, const DistortionModel& model,
                  int dims, int shift, uint32_t grid, SelectionScratch* s)
      : query_(&query),
        model_(&model),
        dims_(dims),
        shift_(shift),
        grid_(grid),
        s_(s) {
    s->cdf.Begin(static_cast<size_t>(dims), static_cast<size_t>(grid) + 1);
  }

  double RootProb(const Node& root, uint32_t /*slot*/) {
    return NodeProb(root);
  }

  double ChildProb(uint32_t /*parent_slot*/, const Node& child,
                   uint32_t /*slot*/) {
    return NodeProb(child);
  }

 private:
  double Cdf(int axis, uint32_t boundary) {
    internal::LazyTable& t = s_->cdf;
    const size_t idx = static_cast<size_t>(axis) * t.cols + boundary;
    if (t.stamp[idx] != t.generation) {
      t.value[idx] =
          model_->ComponentCdf(axis, BoundaryByte(boundary, shift_, grid_),
                               static_cast<double>((*query_)[axis]));
      t.stamp[idx] = t.generation;
    }
    return t.value[idx];
  }

  double NodeProb(const Node& n) {
    double prob = 1.0;
    for (int j = 0; j < dims_; ++j) {
      prob *= Cdf(j, n.hi[j]) - Cdf(j, n.lo[j]);
    }
    return prob;
  }

  const fp::Fingerprint* query_;
  const DistortionModel* model_;
  int dims_;
  int shift_;
  uint32_t grid_;
  SelectionScratch* s_;
};

// Validation baseline (SelectionEngine::kReference): the pre-table
// formulation calling DistortionModel::ComponentMass for every axis of
// every node the expansion touches — 2·D transcendental evaluations per
// node. Used by the parity tests and by BENCH_filter to quantify the
// boundary-table speedup.
class ReferenceProbEngine {
 public:
  ReferenceProbEngine(const fp::Fingerprint& query,
                      const DistortionModel& model, int dims, int shift,
                      uint32_t grid, SelectionScratch* /*s*/)
      : query_(&query), model_(&model), dims_(dims), shift_(shift),
        grid_(grid) {}

  double RootProb(const Node& root, uint32_t /*slot*/) {
    return NodeProb(root);
  }

  double ChildProb(uint32_t /*parent_slot*/, const Node& child,
                   uint32_t /*slot*/) {
    return NodeProb(child);
  }

 private:
  double NodeProb(const Node& n) const {
    double prob = 1.0;
    for (int j = 0; j < dims_; ++j) {
      prob *= model_->ComponentMass(j, BoundaryByte(n.lo[j], shift_, grid_),
                                    BoundaryByte(n.hi[j], shift_, grid_),
                                    static_cast<double>((*query_)[j]));
    }
    return prob;
  }

  const fp::Fingerprint* query_;
  const DistortionModel* model_;
  int dims_;
  int shift_;
  uint32_t grid_;
};

// --- selection algorithms --------------------------------------------------

// Best-first expansion: the heap top always bounds every remaining
// block's probability, so emitted depth-p blocks come out in decreasing
// probability order and the greedy stop is the minimal block set. The heap
// orders (prob, slot) pairs, so probability ties break deterministically
// by slot id — identical across engines.
template <typename Tree, typename Engine>
BlockSelection SelectStatisticalBestFirst(const Tree& tree, Engine& engine,
                                          const FilterOptions& options,
                                          int depth, SelectionScratch* s) {
  BlockSelection selection;
  const int key_bits = tree.curve().key_bits();
  ResetArena(s);
  s->heap.clear();
  s->prefixes.clear();

  const uint32_t root_slot = AllocSlot(s);
  s->arena[root_slot] = tree.Root();
  const double root_prob = engine.RootProb(s->arena[root_slot], root_slot);
  selection.nodes_visited = 1;
  // The achievable mass inside the grid may be below alpha (query near the
  // space border with a wide model): target what is achievable.
  const double target = std::min(options.alpha, root_prob * (1.0 - 1e-9));
  s->heap.emplace_back(root_prob, root_slot);

  double total = 0;
  while (!s->heap.empty() && total < target) {
    std::pop_heap(s->heap.begin(), s->heap.end());
    const auto [prob, slot] = s->heap.back();
    s->heap.pop_back();
    if (s->arena[slot].depth == depth) {
      s->prefixes.push_back(s->arena[slot].prefix);
      total += prob;
      s->free_slots.push_back(slot);
      if (s->prefixes.size() >= options.max_blocks) {
        break;  // Partial selection: the highest-probability blocks so far.
      }
      continue;
    }
    if (selection.nodes_visited + 2 > options.max_nodes) {
      break;  // Node cap: stop expanding, keep what was emitted.
    }
    const uint32_t c0 = AllocSlot(s);
    const uint32_t c1 = AllocSlot(s);
    tree.Split(s->arena[slot], &s->arena[c0], &s->arena[c1]);
    const double p0 = engine.ChildProb(slot, s->arena[c0], c0);
    const double p1 = engine.ChildProb(slot, s->arena[c1], c1);
    selection.nodes_visited += 2;
    s->free_slots.push_back(slot);
    // Negligible-mass children cannot contribute to alpha in any realistic
    // block budget; dropping them keeps the heap small.
    constexpr double kNegligible = 1e-18;
    if (p0 > kNegligible) {
      s->heap.emplace_back(p0, c0);
      std::push_heap(s->heap.begin(), s->heap.end());
    } else {
      s->free_slots.push_back(c0);
    }
    if (p1 > kNegligible) {
      s->heap.emplace_back(p1, c1);
      std::push_heap(s->heap.begin(), s->heap.end());
    } else {
      s->free_slots.push_back(c1);
    }
  }
  selection.num_blocks = s->prefixes.size();
  selection.probability_mass = total;
  MergeBlockRangesInto(&s->prefixes, depth, key_bits, &selection.ranges);
  return selection;
}

// The paper's eq. (4): bisection for the largest threshold t with
// Psup(t) >= alpha, each evaluation a pruned DFS of the block tree. The
// engine's boundary tables persist across all bisection passes, so only
// the first pass pays any transcendental cost under kBoundaryTable.
template <typename Tree, typename Engine>
BlockSelection SelectStatisticalThreshold(const Tree& tree, Engine& engine,
                                          const FilterOptions& options,
                                          int depth, SelectionScratch* s) {
  uint64_t nodes_visited = 0;
  auto evaluate = [&](double t, bool emit, double* out_mass) -> bool {
    double mass = 0;
    uint64_t count = 0;
    bool capped = false;
    ResetArena(s);
    s->dfs.clear();
    const uint32_t root_slot = AllocSlot(s);
    s->arena[root_slot] = tree.Root();
    const double root_prob = engine.RootProb(s->arena[root_slot], root_slot);
    ++nodes_visited;
    if (root_prob > t) {
      s->dfs.emplace_back(root_prob, root_slot);
    }
    while (!s->dfs.empty()) {
      const auto [prob, slot] = s->dfs.back();
      s->dfs.pop_back();
      if (s->arena[slot].depth == depth) {
        mass += prob;
        ++count;
        if (emit) {
          s->prefixes.push_back(s->arena[slot].prefix);
        }
        s->free_slots.push_back(slot);
        if (count >= options.max_blocks) {
          capped = true;
          break;
        }
        continue;
      }
      if (nodes_visited + 2 > options.max_nodes) {
        capped = true;
        break;
      }
      const uint32_t c0 = AllocSlot(s);
      const uint32_t c1 = AllocSlot(s);
      tree.Split(s->arena[slot], &s->arena[c0], &s->arena[c1]);
      const double p0 = engine.ChildProb(slot, s->arena[c0], c0);
      const double p1 = engine.ChildProb(slot, s->arena[c1], c1);
      nodes_visited += 2;
      s->free_slots.push_back(slot);
      if (p0 > t) {
        s->dfs.emplace_back(p0, c0);
      } else {
        s->free_slots.push_back(c0);
      }
      if (p1 > t) {
        s->dfs.emplace_back(p1, c1);
      } else {
        s->free_slots.push_back(c1);
      }
    }
    *out_mass = mass;
    return capped;
  };

  // Bisection on log t for the largest t with Psup(t) >= alpha (eq. 4).
  double log_lo = std::log(1e-15);  // small t: B(t) large, Psup high
  double log_hi = 0.0;              // t = 1: B(t) empty
  double best_valid_log_t = log_lo;
  for (int iter = 0; iter < 24; ++iter) {
    const double log_mid = 0.5 * (log_lo + log_hi);
    double mass = 0;
    const bool capped = evaluate(std::exp(log_mid), /*emit=*/false, &mass);
    if (capped || mass >= options.alpha) {
      best_valid_log_t = log_mid;
      log_lo = log_mid;  // t can grow
    } else {
      log_hi = log_mid;
    }
  }

  BlockSelection selection;
  s->prefixes.clear();
  double mass = 0;
  evaluate(std::exp(best_valid_log_t), /*emit=*/true, &mass);
  selection.nodes_visited = nodes_visited;
  selection.num_blocks = s->prefixes.size();
  selection.probability_mass = mass;
  MergeBlockRangesInto(&s->prefixes, depth, tree.curve().key_bits(),
                       &selection.ranges);
  return selection;
}

template <typename Tree>
BlockSelection SelectStatisticalImpl(const Tree& tree, int cell_shift,
                                     const fp::Fingerprint& query,
                                     const DistortionModel& model,
                                     const FilterOptions& options,
                                     SelectionScratch* scratch) {
  S3VCD_CHECK(options.alpha > 0 && options.alpha < 1);
  SelectionScratch* s =
      scratch != nullptr ? scratch : &ThreadLocalSelectionScratch();
  const int depth =
      std::clamp(options.depth, 1,
                 std::min(tree.curve().key_bits(), kMaxPracticalDepth));
  const int dims = tree.curve().dims();
  const uint32_t grid = tree.curve().grid_size();
  if (options.engine == SelectionEngine::kReference) {
    ReferenceProbEngine engine(query, model, dims, cell_shift, grid, s);
    if (options.algorithm == FilterAlgorithm::kThresholdSearch) {
      return SelectStatisticalThreshold(tree, engine, options, depth, s);
    }
    return SelectStatisticalBestFirst(tree, engine, options, depth, s);
  }
  TableProbEngine engine(query, model, dims, cell_shift, grid, s);
  if (options.algorithm == FilterAlgorithm::kThresholdSearch) {
    return SelectStatisticalThreshold(tree, engine, options, depth, s);
  }
  return SelectStatisticalBestFirst(tree, engine, options, depth, s);
}

template <typename Tree>
BlockSelection SelectRangeImpl(const Tree& tree, int cell_shift,
                               const fp::Fingerprint& query, double epsilon,
                               int depth, uint64_t max_blocks,
                               uint64_t max_nodes,
                               SelectionScratch* scratch) {
  S3VCD_CHECK(epsilon >= 0);
  SelectionScratch* s =
      scratch != nullptr ? scratch : &ThreadLocalSelectionScratch();
  const int clamped_depth = std::clamp(depth, 1, tree.curve().key_bits());
  const double eps_sq = epsilon * epsilon;
  const int dims = tree.curve().dims();
  const uint32_t grid = tree.curve().grid_size();

  // Per-axis squared distances from the query to the cell boundaries, under
  // the same quantization-interval convention as the statistical filter
  // (BoundaryByte): two table rows per axis — row 2j holds the penalty when
  // the box *starts* at boundary b (box entirely above the query), row
  // 2j + 1 when the box *ends* at b (entirely below). Lazily filled, like
  // the CDF table, so the DFS loop runs only table loads and adds.
  s->sq.Begin(static_cast<size_t>(2 * dims), static_cast<size_t>(grid) + 1);
  internal::LazyTable& sq = s->sq;
  auto penalty = [&](size_t row, uint32_t boundary, bool box_above,
                     double q) -> double {
    const size_t idx = row * sq.cols + boundary;
    if (sq.stamp[idx] != sq.generation) {
      const double b = BoundaryByte(boundary, cell_shift, grid);
      const double d = std::max(0.0, box_above ? b - q : q - b);
      sq.value[idx] = d * d;
      sq.stamp[idx] = sq.generation;
    }
    return sq.value[idx];
  };
  auto box_dist_sq = [&](const Node& n) -> double {
    double acc = 0;
    for (int j = 0; j < dims; ++j) {
      const double q = static_cast<double>(query[j]);
      acc += penalty(static_cast<size_t>(2 * j), n.lo[j], /*box_above=*/true,
                     q) +
             penalty(static_cast<size_t>(2 * j) + 1, n.hi[j],
                     /*box_above=*/false, q);
    }
    return acc;
  };

  BlockSelection selection;
  ResetArena(s);
  s->dfs.clear();
  s->prefixes.clear();
  const uint32_t root_slot = AllocSlot(s);
  s->arena[root_slot] = tree.Root();
  selection.nodes_visited = 1;
  s->dfs.emplace_back(0.0, root_slot);
  while (!s->dfs.empty()) {
    const uint32_t slot = s->dfs.back().second;
    s->dfs.pop_back();
    if (box_dist_sq(s->arena[slot]) > eps_sq) {
      s->free_slots.push_back(slot);
      continue;
    }
    if (s->arena[slot].depth == clamped_depth) {
      s->prefixes.push_back(s->arena[slot].prefix);
      s->free_slots.push_back(slot);
      if (s->prefixes.size() >= max_blocks) {
        break;
      }
      continue;
    }
    if (selection.nodes_visited + 2 > max_nodes) {
      break;
    }
    const uint32_t c0 = AllocSlot(s);
    const uint32_t c1 = AllocSlot(s);
    tree.Split(s->arena[slot], &s->arena[c0], &s->arena[c1]);
    selection.nodes_visited += 2;
    s->free_slots.push_back(slot);
    s->dfs.emplace_back(0.0, c0);
    s->dfs.emplace_back(0.0, c1);
  }
  selection.num_blocks = s->prefixes.size();
  selection.probability_mass = 0;
  MergeBlockRangesInto(&s->prefixes, clamped_depth, tree.curve().key_bits(),
                       &selection.ranges);
  return selection;
}

}  // namespace

std::vector<std::pair<BitKey, BitKey>> MergeBlockRanges(
    std::vector<BitKey> prefixes, int depth, int key_bits) {
  std::vector<std::pair<BitKey, BitKey>> ranges;
  MergeBlockRangesInto(&prefixes, depth, key_bits, &ranges);
  return ranges;
}

BlockFilter::BlockFilter(const hilbert::HilbertCurve& curve)
    : curve_(&curve), tree_(curve), cell_shift_(8 - curve.order()) {
  S3VCD_CHECK(curve.dims() == fp::kDims);
  S3VCD_CHECK(curve.order() >= 1 && curve.order() <= 8);
}

BlockSelection BlockFilter::SelectStatistical(
    const fp::Fingerprint& query, const DistortionModel& model,
    const FilterOptions& options, SelectionScratch* scratch) const {
  return SelectStatisticalImpl(tree_, cell_shift_, query, model, options,
                               scratch);
}

BlockSelection BlockFilter::SelectRange(const fp::Fingerprint& query,
                                        double epsilon, int depth,
                                        uint64_t max_blocks,
                                        uint64_t max_nodes,
                                        SelectionScratch* scratch) const {
  return SelectRangeImpl(tree_, cell_shift_, query, epsilon, depth,
                         max_blocks, max_nodes, scratch);
}

ZOrderBlockFilter::ZOrderBlockFilter(const hilbert::ZOrderCurve& curve)
    : curve_(&curve), tree_(curve), cell_shift_(8 - curve.order()) {
  S3VCD_CHECK(curve.dims() == fp::kDims);
  S3VCD_CHECK(curve.order() >= 1 && curve.order() <= 8);
}

BlockSelection ZOrderBlockFilter::SelectStatistical(
    const fp::Fingerprint& query, const DistortionModel& model,
    const FilterOptions& options, SelectionScratch* scratch) const {
  return SelectStatisticalImpl(tree_, cell_shift_, query, model, options,
                               scratch);
}

BlockSelection ZOrderBlockFilter::SelectRange(const fp::Fingerprint& query,
                                              double epsilon, int depth,
                                              uint64_t max_blocks,
                                              uint64_t max_nodes,
                                              SelectionScratch* scratch) const {
  return SelectRangeImpl(tree_, cell_shift_, query, epsilon, depth,
                         max_blocks, max_nodes, scratch);
}

}  // namespace s3vcd::core
