#ifndef S3VCD_CORE_SEARCHER_H_
#define S3VCD_CORE_SEARCHER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/distortion_model.h"
#include "core/filter.h"
#include "core/record.h"
#include "fingerprint/fingerprint.h"
#include "util/status.h"

namespace s3vcd::core {

/// What the refinement step keeps from the scanned curve sections.
enum class RefinementMode {
  /// The paper's statistical query semantics: every fingerprint inside the
  /// selected region V_alpha is a result (the voting strategy absorbs the
  /// false ones).
  kAll,
  /// Extension: additionally require distance <= radius.
  kRadiusFilter,
  /// Extension for anisotropic models: require the model-normalized
  /// distance sqrt(sum_j ((q_j - x_j) / scale_j)^2) <= radius, with
  /// scale_j = DistortionModel::ComponentScale(j). The isotropic special
  /// case reduces to kRadiusFilter with radius * sigma.
  kNormalizedRadiusFilter,
};

/// Options of a statistical query.
struct QueryOptions {
  FilterOptions filter;
  RefinementMode refinement = RefinementMode::kAll;
  /// Radius for kRadiusFilter, in byte-space distance units.
  double radius = 0;
};

/// Matches plus instrumentation.
struct QueryResult {
  std::vector<Match> matches;
  QueryStats stats;
};

/// Which per-query counter a finished query bumps in the metrics registry.
enum class QueryKind {
  kStatistical,
  kRange,
  kSequentialScan,
};

/// Publishes one finished query's stats into the global metrics registry
/// (the `index.*` counters and latency histograms — see
/// docs/observability.md). Every Searcher backend publishes exactly one
/// record per query through this function, so the registry's counters stay
/// comparable across backends; layered structures batching across shards
/// publish one merged record instead.
void RecordQueryMetrics(QueryKind kind, const QueryStats& stats,
                        uint64_t hits);

/// The two search paradigms the paper compares (plus sequential scan,
/// which is the "seqscan" backend rather than a separate paradigm).
enum class SearchParadigm {
  /// Statistical S3 query of expectation alpha (Section II).
  kStatistical,
  /// Exact spherical epsilon-range query.
  kRange,
};

/// One self-contained query: the fingerprint, the paradigm and its
/// parameters. Searcher::Query dispatches it to StatQuery or RangeQuery.
struct QueryRequest {
  fp::Fingerprint query{};
  SearchParadigm paradigm = SearchParadigm::kStatistical;
  /// Statistical parameters; options.filter.depth also supplies the
  /// partition depth of range queries on block-structured backends.
  QueryOptions options;
  /// Range radius, byte-space units (kRange only).
  double epsilon = 0;
};

/// Name of the refinement kernel ScanRecords currently dispatches to
/// ("scalar", "sse2", "avx2", "avx512") — see core/scan_kernel.h. Declared
/// here so SearcherStats can carry it without a header cycle.
const char* ActiveScanKernelName();

/// Size accounting common to every backend.
struct SearcherStats {
  /// Total searchable records (static part + any insert buffer).
  uint64_t records = 0;
  /// Records buffered by TryInsert but not yet folded in by Compact.
  uint64_t pending_inserts = 0;
  /// Refinement kernel in use when these stats were taken.
  const char* scan_kernel = ActiveScanKernelName();
  /// Descriptor codec(s) the backend stores records under ("exact"
  /// everywhere except quantized segment stores, which report the codecs
  /// actually present — '+'-joined when mixed mid-migration, e.g.
  /// "exact+lvq4"; see core/descriptor_codec.h).
  std::string codec = "exact";
  /// Worst-case L2 distance perturbation the codec can introduce (max over
  /// the backend's trained codecs of DescriptorCodec::max_error; 0 when
  /// everything is exact). By the triangle inequality a reported match
  /// distance is within this of the exact one.
  double codec_max_error = 0;
};

/// The uniform interface over every search structure in the system: the
/// paper's S3 index, its dynamic (insertable) variant, the VA-file and LSH
/// extension baselines, and plain sequential scan. Callers above core —
/// the copy detector, the parallel fan-out, the sharded service, the tool
/// and the benches — hold a Searcher and never name a concrete backend;
/// construction goes through SearcherRegistry.
///
/// Semantics: StatQuery returns the contents of a region of expectation
/// alpha. Block-structured backends (s3, dynamic) implement it exactly as
/// in the paper; backends without block structure (vafile, lsh, seqscan)
/// emulate it as an exact range query at the equal-expectation radius
/// (EqualExpectationRadius below), which retrieves the distorted target
/// with the same probability alpha under the model. RangeQuery is the
/// exact epsilon-ball for every backend except lsh, whose recall is
/// probabilistic (a documented property of the baseline, asserted as a
/// recall floor in tests/backend_parity_test.cc).
///
/// Concurrency: all query methods are const and safe to fan out; TryInsert
/// and Compact mutate and require external exclusion.
class Searcher {
 public:
  virtual ~Searcher() = default;

  /// Registry name of this backend ("s3", "vafile", ...).
  virtual const char* backend_name() const = 0;

  /// Statistical query of expectation options.filter.alpha.
  virtual QueryResult StatQuery(const fp::Fingerprint& query,
                                const DistortionModel& model,
                                const QueryOptions& options) const = 0;

  /// Epsilon-range query. `depth` is the partition depth of the geometric
  /// filter on block-structured backends; others ignore it.
  virtual QueryResult RangeQuery(const fp::Fingerprint& query, double epsilon,
                                 int depth) const = 0;

  /// Batch variants; the defaults are serial loops, overridable by
  /// backends with a cheaper amortized path. results[i] corresponds to
  /// queries[i].
  virtual std::vector<QueryResult> BatchStatQuery(
      const std::vector<fp::Fingerprint>& queries,
      const DistortionModel& model, const QueryOptions& options) const;
  virtual std::vector<QueryResult> BatchRangeQuery(
      const std::vector<fp::Fingerprint>& queries, double epsilon,
      int depth) const;

  /// Dispatches a QueryRequest to StatQuery or RangeQuery.
  QueryResult Query(const QueryRequest& request,
                    const DistortionModel& model) const;

  virtual SearcherStats Stats() const = 0;

  /// Approximate resident bytes of the structure (records + auxiliary
  /// data), for capacity planning and the memory columns of the benches.
  virtual uint64_t ApproxBytes() const = 0;

  // ---- Optional capabilities. Callers must test for nullptr / false and
  // degrade gracefully (see service::ShardedSearcher). ----

  /// The block filter of a block-structured backend, whose BlockSelection
  /// depends only on the query/model/filter options and can therefore be
  /// shared across shards and cached. nullptr when the backend has no
  /// block structure.
  virtual const BlockFilter* selection_filter() const { return nullptr; }

  /// Refinement scan of a precomputed block selection, appending matches
  /// and scan counters to `result`. Only meaningful when
  /// selection_filter() != nullptr; the default implementation aborts.
  virtual void ScanSelection(const fp::Fingerprint& query,
                             const BlockSelection& selection,
                             RefinementMode mode, double radius,
                             const DistortionModel* model,
                             QueryResult* result) const;

  /// Buffers one new record if the backend supports dynamic insertion
  /// (visible to queries immediately). Returns false — and inserts
  /// nothing — on static backends.
  virtual bool TryInsert(const fp::Fingerprint& fingerprint, uint32_t id,
                         uint32_t time_code, float x = 0, float y = 0);

  /// Folds any insert buffer into the static structure. No-op by default.
  virtual void Compact() {}
};

/// Radius of the ball that an exact range query must use to retrieve the
/// distorted target with probability `alpha` under `model`: the alpha
/// quantile of the chi distribution of ||Delta S|| (paper Section V-B,
/// the "equal expectation" comparison between the two paradigms). The
/// model's per-component scales enter through their root mean square.
double EqualExpectationRadius(const DistortionModel& model, double alpha);

/// Construction parameters common to every registered backend; each
/// backend reads the fields it understands and ignores the rest.
struct SearcherConfig {
  /// s3 / dynamic: depth of the precomputed index table (see
  /// S3IndexOptions::index_table_depth).
  int index_table_depth = 14;
  /// vafile: bits of the per-dimension approximation, in [1, 8].
  int vafile_bits_per_dim = 4;
  /// vafile: quantile (equal-population) slice boundaries vs equal-width.
  bool vafile_quantile_boundaries = true;
  /// lsh: table count / hashes per table / projection quantization width.
  int lsh_num_tables = 8;
  int lsh_hashes_per_table = 6;
  double lsh_bucket_width = 120.0;
  uint64_t lsh_seed = 1;
  /// segment: store directory (empty = ephemeral temp dir), memtable spill
  /// threshold, compaction fan-in, mmap vs resident reads. See
  /// docs/segment_format.md and the segment-store table in docs/tuning.md.
  std::string segment_store_dir;
  uint64_t segment_spill_threshold = 64 * 1024;
  int segment_tier_fanin = 4;
  bool segment_use_mmap = true;
  /// segment: descriptor codec newly written segments are encoded with
  /// ("exact", "lvq8", "lvq4" — see core/descriptor_codec.h). Existing
  /// segments keep whatever codec they were written with.
  std::string segment_codec = "exact";
  /// vamana: graph out-degree bound R, build beam L_build, query beam L,
  /// RobustPrune alpha, build seed/threads, storage codec and optional
  /// graph blob path — see core/vamana.h and the knob table in
  /// docs/tuning.md.
  int vamana_graph_degree = 32;
  int vamana_build_beam = 64;
  int vamana_beam_width = 64;
  double vamana_alpha = 1.2;
  uint64_t vamana_seed = 1;
  int vamana_build_threads = 0;
  std::string vamana_codec = "exact";
  std::string vamana_graph_path;
};

/// String-keyed factory of Searcher backends. The built-ins ("s3",
/// "dynamic", "vafile", "lsh", "seqscan") are registered on first access
/// of Global(); extensions may Register additional names at startup
/// (registration is not thread-safe and must precede concurrent use).
class SearcherRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Searcher>(
      FingerprintDatabase db, const SearcherConfig& config)>;

  static SearcherRegistry& Global();

  void Register(const std::string& name, Factory factory);
  bool Contains(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> Names() const;
  /// "dynamic, lsh, s3, seqscan, vafile" — for error messages and usage.
  std::string NamesCsv() const;

  /// Constructs backend `name` over `db` (consumed). Unknown names return
  /// kInvalidArgument listing the registered backends.
  Result<std::unique_ptr<Searcher>> Create(const std::string& name,
                                           FingerprintDatabase db,
                                           const SearcherConfig& config = {})
      const;

 private:
  SearcherRegistry();

  std::map<std::string, Factory> factories_;
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_SEARCHER_H_
