#include "core/dynamic_index.h"

#include <cmath>

#include "core/scan_kernel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace s3vcd::core {

namespace {

obs::Counter* const g_inserts =
    obs::MetricsRegistry::Global().GetCounter("dynamic_index.inserts");
obs::Counter* const g_compactions =
    obs::MetricsRegistry::Global().GetCounter("dynamic_index.compactions");
obs::Gauge* const g_pending =
    obs::MetricsRegistry::Global().GetGauge("dynamic_index.pending_inserts");

}  // namespace

DynamicIndex::DynamicIndex(S3Index base) : base_(std::move(base)) {}

void DynamicIndex::Insert(const fp::Fingerprint& fingerprint, uint32_t id,
                          uint32_t time_code, float x, float y) {
  buffer_.Append(fingerprint, id, time_code, x, y);
  buffer_keys_.push_back(base_.database().EncodeFingerprint(fingerprint));
  g_inserts->Increment();
  g_pending->Set(static_cast<int64_t>(buffer_.size()));
}

void DynamicIndex::AppendBufferMatches(
    const fp::Fingerprint& query,
    const std::vector<std::pair<BitKey, BitKey>>& ranges,
    RefinementMode mode, double radius, const DistortionModel* model,
    QueryResult* result) const {
  // Membership uses the same wrapped-end convention as the static part's
  // ResolveRange (a zero `end` means "to the top of the key space"), so a
  // buffered record inside the final wrapped section is never dropped.
  const RefineSpec spec(mode, radius, model);
  for (size_t i = 0; i < buffer_.size(); ++i) {
    if (!KeyInSelection(buffer_keys_[i], ranges)) {
      continue;
    }
    RefineRecord(query, buffer_, i, spec, result);
  }
}

void DynamicIndex::ScanSelection(const fp::Fingerprint& query,
                                 const BlockSelection& selection,
                                 RefinementMode mode, double radius,
                                 const DistortionModel* model,
                                 QueryResult* result) const {
  base_.ScanSelection(query, selection, mode, radius, model, result);
  AppendBufferMatches(query, selection.ranges, mode, radius, model, result);
}

QueryResult DynamicIndex::StatisticalQuery(const fp::Fingerprint& query,
                                           const DistortionModel& model,
                                           const QueryOptions& options) const {
  S3VCD_TRACE_SPAN("dynamic_index.query.statistical");
  QueryResult result;
  Stopwatch watch;
  const BlockSelection selection = base_.filter().SelectStatistical(
      query, model, options.filter, &ThreadLocalSelectionScratch());
  result.stats.selection_ns = watch.ElapsedNanos();
  result.stats.filter_seconds = result.stats.selection_ns * 1e-9;
  result.stats.blocks_selected = selection.num_blocks;
  result.stats.nodes_visited = selection.nodes_visited;
  result.stats.probability_mass = selection.probability_mass;

  watch.Reset();
  base_.ScanSelection(query, selection, options.refinement, options.radius,
                      &model, &result);
  AppendBufferMatches(query, selection.ranges, options.refinement,
                      options.radius, &model, &result);
  result.stats.refine_ns = watch.ElapsedNanos();
  result.stats.refine_seconds = result.stats.refine_ns * 1e-9;
  RecordQueryMetrics(QueryKind::kStatistical, result.stats,
                     result.matches.size());
  return result;
}

QueryResult DynamicIndex::RangeQuery(const fp::Fingerprint& query,
                                     double epsilon, int depth) const {
  S3VCD_TRACE_SPAN("dynamic_index.query.range");
  QueryResult result;
  Stopwatch watch;
  const BlockSelection selection =
      base_.filter().SelectRange(query, epsilon, depth);
  result.stats.selection_ns = watch.ElapsedNanos();
  result.stats.filter_seconds = result.stats.selection_ns * 1e-9;
  result.stats.blocks_selected = selection.num_blocks;
  result.stats.nodes_visited = selection.nodes_visited;

  watch.Reset();
  base_.ScanSelection(query, selection, RefinementMode::kRadiusFilter,
                      epsilon, nullptr, &result);
  AppendBufferMatches(query, selection.ranges, RefinementMode::kRadiusFilter,
                      epsilon, nullptr, &result);
  result.stats.refine_ns = watch.ElapsedNanos();
  result.stats.refine_seconds = result.stats.refine_ns * 1e-9;
  RecordQueryMetrics(QueryKind::kRange, result.stats, result.matches.size());
  return result;
}

void DynamicIndex::Compact() {
  if (buffer_.empty()) {
    return;
  }
  S3VCD_TRACE_SPAN("dynamic_index.compact");
  DatabaseBuilder builder(base_.database().order());
  for (size_t i = 0; i < base_.database().size(); ++i) {
    const FingerprintRecord r = base_.database().record(i);
    builder.Add(r.descriptor, r.id, r.time_code, r.x, r.y);
  }
  for (size_t i = 0; i < buffer_.size(); ++i) {
    const FingerprintRecord r = buffer_.Record(i);
    builder.Add(r.descriptor, r.id, r.time_code, r.x, r.y);
  }
  const S3IndexOptions options = base_.options();
  base_ = S3Index(builder.Build(), options);
  buffer_.Clear();
  buffer_keys_.clear();
  g_compactions->Increment();
  g_pending->Set(0);
}

}  // namespace s3vcd::core
