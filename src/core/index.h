#ifndef S3VCD_CORE_INDEX_H_
#define S3VCD_CORE_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/distortion_model.h"
#include "core/filter.h"
#include "core/record.h"
#include "core/searcher.h"
#include "fingerprint/fingerprint.h"

namespace s3vcd::core {

/// Index construction options.
struct S3IndexOptions {
  /// Depth of the precomputed index table mapping aligned curve prefixes to
  /// record offsets (2^depth + 1 entries). Block lookups at depths <= this
  /// use the table; deeper lookups fall back to binary search on the keys.
  /// 0 disables the table entirely.
  int index_table_depth = 14;
};

/// The S3 search engine: a Hilbert-ordered fingerprint database plus the
/// statistical / geometric filtering rules and the refinement scan
/// (paper Section IV). The "s3" backend of the SearcherRegistry.
class S3Index : public Searcher {
 public:
  explicit S3Index(FingerprintDatabase database, S3IndexOptions options = {});

  // Move operations re-seat the filter on the moved database: BlockFilter
  // holds a pointer to the curve living inside db_.
  S3Index(S3Index&& other) noexcept
      : db_(std::move(other.db_)),
        filter_(db_.curve()),
        options_(other.options_),
        table_(std::move(other.table_)) {}
  S3Index& operator=(S3Index&& other) noexcept {
    db_ = std::move(other.db_);
    filter_ = BlockFilter(db_.curve());
    options_ = other.options_;
    table_ = std::move(other.table_);
    return *this;
  }

  const FingerprintDatabase& database() const { return db_; }
  const BlockFilter& filter() const { return filter_; }
  const S3IndexOptions& options() const { return options_; }

  /// Statistical query of expectation options.filter.alpha (Section II).
  QueryResult StatisticalQuery(const fp::Fingerprint& query,
                               const DistortionModel& model,
                               const QueryOptions& options) const;

  /// Baseline: linear scan of the whole database with distance <= epsilon
  /// (the reference method of Section V-B).
  QueryResult SequentialScan(const fp::Fingerprint& query,
                             double epsilon) const;

  /// Resolves a key range to record indices [first, last).
  std::pair<size_t, size_t> ResolveRange(const BitKey& begin,
                                         const BitKey& end) const;

  // ---- Searcher interface ----
  const char* backend_name() const override { return "s3"; }
  QueryResult StatQuery(const fp::Fingerprint& query,
                        const DistortionModel& model,
                        const QueryOptions& options) const override {
    return StatisticalQuery(query, model, options);
  }
  /// Exact spherical epsilon-range query through the index: geometric
  /// filtering of the blocks, then distance refinement.
  QueryResult RangeQuery(const fp::Fingerprint& query, double epsilon,
                         int depth) const override;
  SearcherStats Stats() const override { return {db_.size(), 0}; }
  uint64_t ApproxBytes() const override {
    return db_.MemoryBytes() + table_.size() * sizeof(uint64_t);
  }
  const BlockFilter* selection_filter() const override { return &filter_; }
  /// Runs the refinement scan of a precomputed block selection, appending
  /// matches and scan counters to `result`. Exposed so layered structures
  /// (e.g. DynamicIndex, the sharded service) can share one filtering
  /// pass. `model` is only required for kNormalizedRadiusFilter (may be
  /// null otherwise).
  void ScanSelection(const fp::Fingerprint& query,
                     const BlockSelection& selection, RefinementMode mode,
                     double radius, const DistortionModel* model,
                     QueryResult* result) const override;

 private:
  void BuildIndexTable();

  FingerprintDatabase db_;
  BlockFilter filter_;
  S3IndexOptions options_;
  /// Record offsets of the 2^table_depth aligned prefixes (+ end sentinel).
  std::vector<uint64_t> table_;
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_INDEX_H_
