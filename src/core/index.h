#ifndef S3VCD_CORE_INDEX_H_
#define S3VCD_CORE_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/distortion_model.h"
#include "core/filter.h"
#include "core/record.h"
#include "fingerprint/fingerprint.h"

namespace s3vcd::core {

/// What the refinement step keeps from the scanned curve sections.
enum class RefinementMode {
  /// The paper's statistical query semantics: every fingerprint inside the
  /// selected region V_alpha is a result (the voting strategy absorbs the
  /// false ones).
  kAll,
  /// Extension: additionally require distance <= radius.
  kRadiusFilter,
  /// Extension for anisotropic models: require the model-normalized
  /// distance sqrt(sum_j ((q_j - x_j) / scale_j)^2) <= radius, with
  /// scale_j = DistortionModel::ComponentScale(j). The isotropic special
  /// case reduces to kRadiusFilter with radius * sigma.
  kNormalizedRadiusFilter,
};

/// Options of a statistical query.
struct QueryOptions {
  FilterOptions filter;
  RefinementMode refinement = RefinementMode::kAll;
  /// Radius for kRadiusFilter, in byte-space distance units.
  double radius = 0;
};

/// Matches plus instrumentation.
struct QueryResult {
  std::vector<Match> matches;
  QueryStats stats;
};

/// Which per-query counter a finished query bumps in the metrics registry.
enum class QueryKind {
  kStatistical,
  kRange,
  kSequentialScan,
};

/// Publishes one finished query's stats into the global metrics registry
/// (the `index.*` counters and latency histograms — see
/// docs/observability.md). Called by S3Index for its own queries; exposed
/// so layered structures (DynamicIndex, PseudoDiskSearcher) publish the
/// same per-stage counters for theirs. `hits` is the number of matches the
/// refinement kept.
void RecordQueryMetrics(QueryKind kind, const QueryStats& stats,
                        uint64_t hits);

/// Index construction options.
struct S3IndexOptions {
  /// Depth of the precomputed index table mapping aligned curve prefixes to
  /// record offsets (2^depth + 1 entries). Block lookups at depths <= this
  /// use the table; deeper lookups fall back to binary search on the keys.
  /// 0 disables the table entirely.
  int index_table_depth = 14;
};

/// The S3 search engine: a Hilbert-ordered fingerprint database plus the
/// statistical / geometric filtering rules and the refinement scan
/// (paper Section IV).
class S3Index {
 public:
  explicit S3Index(FingerprintDatabase database, S3IndexOptions options = {});

  // Move operations re-seat the filter on the moved database: BlockFilter
  // holds a pointer to the curve living inside db_.
  S3Index(S3Index&& other) noexcept
      : db_(std::move(other.db_)),
        filter_(db_.curve()),
        options_(other.options_),
        table_(std::move(other.table_)) {}
  S3Index& operator=(S3Index&& other) noexcept {
    db_ = std::move(other.db_);
    filter_ = BlockFilter(db_.curve());
    options_ = other.options_;
    table_ = std::move(other.table_);
    return *this;
  }

  const FingerprintDatabase& database() const { return db_; }
  const BlockFilter& filter() const { return filter_; }
  const S3IndexOptions& options() const { return options_; }

  /// Statistical query of expectation options.filter.alpha (Section II).
  QueryResult StatisticalQuery(const fp::Fingerprint& query,
                               const DistortionModel& model,
                               const QueryOptions& options) const;

  /// Exact spherical epsilon-range query through the index: geometric
  /// filtering of the blocks, then distance refinement.
  QueryResult RangeQuery(const fp::Fingerprint& query, double epsilon,
                         int depth) const;

  /// Baseline: linear scan of the whole database with distance <= epsilon
  /// (the reference method of Section V-B).
  QueryResult SequentialScan(const fp::Fingerprint& query,
                             double epsilon) const;

  /// Resolves a key range to record indices [first, last).
  std::pair<size_t, size_t> ResolveRange(const BitKey& begin,
                                         const BitKey& end) const;

  /// Runs the refinement scan of a precomputed block selection, appending
  /// matches and scan counters to `result`. Exposed so layered structures
  /// (e.g. DynamicIndex) can share one filtering pass. `model` is only
  /// required for kNormalizedRadiusFilter (may be null otherwise).
  void ScanSelection(const fp::Fingerprint& query,
                     const BlockSelection& selection, RefinementMode mode,
                     double radius, const DistortionModel* model,
                     QueryResult* result) const;

 private:
  void BuildIndexTable();

  FingerprintDatabase db_;
  BlockFilter filter_;
  S3IndexOptions options_;
  /// Record offsets of the 2^table_depth aligned prefixes (+ end sentinel).
  std::vector<uint64_t> table_;
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_INDEX_H_
