#include "core/distortion_model.h"

#include "util/logging.h"
#include "util/math.h"

namespace s3vcd::core {

GaussianDistortionModel::GaussianDistortionModel(double sigma)
    : sigma_(sigma) {
  S3VCD_CHECK(sigma > 0);
}

double GaussianDistortionModel::ComponentMass(int /*component*/, double lo,
                                              double hi, double q) const {
  return GaussianMass(lo, hi, q, sigma_);
}

double GaussianDistortionModel::ComponentCdf(int /*component*/, double x,
                                             double q) const {
  // GaussianMass is GaussianCdf(hi) - GaussianCdf(lo), so differences of
  // this CDF reproduce ComponentMass bit for bit (see the base contract).
  return GaussianCdf(x, q, sigma_);
}

PerComponentGaussianModel::PerComponentGaussianModel(
    const std::array<double, fp::kDims>& sigmas)
    : sigmas_(sigmas) {
  for (double s : sigmas_) {
    S3VCD_CHECK(s > 0);
  }
}

double PerComponentGaussianModel::ComponentMass(int component, double lo,
                                                double hi, double q) const {
  return GaussianMass(lo, hi, q, sigmas_[component]);
}

double PerComponentGaussianModel::ComponentCdf(int component, double x,
                                               double q) const {
  return GaussianCdf(x, q, sigmas_[component]);
}

}  // namespace s3vcd::core
