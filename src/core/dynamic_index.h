#ifndef S3VCD_CORE_DYNAMIC_INDEX_H_
#define S3VCD_CORE_DYNAMIC_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/descriptor_block.h"
#include "core/distortion_model.h"
#include "core/index.h"
#include "core/searcher.h"
#include "fingerprint/fingerprint.h"
#include "util/bitkey.h"

namespace s3vcd::core {

/// Extension beyond the paper: the S3 structure is deliberately static
/// ("no dynamic insertion or deletion are possible", Section IV), yet the
/// INA use case ingests new reference material continuously. DynamicIndex
/// layers a small unsorted write buffer (a memtable, LSM-style) on top of
/// the static Hilbert-sorted index:
///
///  * Insert is O(1): the record and its Hilbert key go to the buffer.
///  * Queries run on the static index as usual, then post-filter the
///    buffer by key membership in the selected curve sections, so the
///    statistical-query semantics (all fingerprints inside V_alpha) are
///    preserved exactly over the union of both parts.
///  * Compact() folds the buffer into a freshly built static part (the
///    sort is near-linear on the almost-sorted input) and rebuilds the
///    index table.
///
/// The "dynamic" backend of the SearcherRegistry — the only built-in for
/// which TryInsert succeeds. Single-writer, no concurrent mutation during
/// queries.
class DynamicIndex : public Searcher {
 public:
  explicit DynamicIndex(S3Index base);

  const S3Index& base() const { return base_; }
  size_t pending_inserts() const { return buffer_.size(); }
  size_t total_size() const { return base_.database().size() + buffer_.size(); }

  /// Buffers one fingerprint; visible to queries immediately.
  void Insert(const fp::Fingerprint& fingerprint, uint32_t id,
              uint32_t time_code, float x = 0, float y = 0);

  /// Statistical query over static part + buffer (same semantics as
  /// S3Index::StatisticalQuery on an equivalent fully-built index).
  QueryResult StatisticalQuery(const fp::Fingerprint& query,
                               const DistortionModel& model,
                               const QueryOptions& options) const;

  // ---- Searcher interface ----
  const char* backend_name() const override { return "dynamic"; }
  QueryResult StatQuery(const fp::Fingerprint& query,
                        const DistortionModel& model,
                        const QueryOptions& options) const override {
    return StatisticalQuery(query, model, options);
  }
  /// Exact range query over static part + buffer.
  QueryResult RangeQuery(const fp::Fingerprint& query, double epsilon,
                         int depth) const override;
  SearcherStats Stats() const override {
    return {total_size(), buffer_.size()};
  }
  uint64_t ApproxBytes() const override {
    return base_.ApproxBytes() + buffer_.MemoryBytes() +
           buffer_keys_.size() * sizeof(BitKey);
  }
  const BlockFilter* selection_filter() const override {
    return &base_.filter();
  }
  /// Runs the refinement scan of a precomputed block selection over the
  /// static part AND the insert buffer, appending matches and scan
  /// counters to `result`. The selection must come from a filter over the
  /// same curve geometry (same order). Exposed so the sharded service
  /// layer computes one selection per query and scans every shard with it
  /// (the selection depends only on the query, model and filter options —
  /// never on database contents). Does not publish per-query metrics;
  /// callers batching across shards publish one merged record instead.
  void ScanSelection(const fp::Fingerprint& query,
                     const BlockSelection& selection, RefinementMode mode,
                     double radius, const DistortionModel* model,
                     QueryResult* result) const override;
  bool TryInsert(const fp::Fingerprint& fingerprint, uint32_t id,
                 uint32_t time_code, float x = 0, float y = 0) override {
    Insert(fingerprint, id, time_code, x, y);
    return true;
  }
  /// Folds the buffer into the static part.
  void Compact() override;

 private:
  void AppendBufferMatches(const fp::Fingerprint& query,
                           const std::vector<std::pair<BitKey, BitKey>>& ranges,
                           RefinementMode mode, double radius,
                           const DistortionModel* model,
                           QueryResult* result) const;

  S3Index base_;
  /// The insert buffer, in the same SoA layout as the static part, with
  /// the records' Hilbert keys in a parallel array.
  DescriptorBlock buffer_;
  std::vector<BitKey> buffer_keys_;
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_DYNAMIC_INDEX_H_
