#ifndef S3VCD_CORE_KNN_H_
#define S3VCD_CORE_KNN_H_

#include <cstdint>
#include <vector>

#include "core/index.h"
#include "core/record.h"
#include "fingerprint/fingerprint.h"

namespace s3vcd::core {

/// Options of the k-nearest-neighbor search over the Hilbert index.
struct KnnOptions {
  /// Number of neighbors to return.
  int k = 10;
  /// 0 = exact search (distance-browsing best-first, provably exact).
  /// > 0 = approximate: stop after scanning this many leaf blocks, the
  /// early-stopping style of approximation the paper's related work
  /// discusses ([14], [15]).
  uint64_t max_blocks = 0;
  /// Partition depth of the leaf blocks that are scanned.
  int depth = 14;
};

/// k-nearest-neighbor search over an S3Index by best-first traversal of the
/// block tree ordered by minimum distance (Hjaltason-Samet distance
/// browsing): provably exact when max_blocks = 0.
///
/// Provided as the comparison point for the paper's Section II argument
/// that k-NN semantics are wrong for copy detection: the number of relevant
/// fingerprints per query is highly variable (a clip can be duplicated
/// hundreds of times in a TV archive), so any fixed k truncates evidence.
/// See bench/ablation_knn_vote.
QueryResult KnnQuery(const S3Index& index, const fp::Fingerprint& query,
                     const KnnOptions& options);

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_KNN_H_
