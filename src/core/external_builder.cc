#include "core/external_builder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <queue>

#include "util/io.h"
#include "util/logging.h"

namespace s3vcd::core {

namespace {

constexpr uint32_t kRunMagic = 0x53325255;  // "S2RU"
// Run record layout: 32-byte key + serialized record.
constexpr size_t kKeyBytes = 32;
constexpr size_t kRunRecordBytes = kKeyBytes + internal::kRecordBytes;

void SerializeKeyed(const BitKey& key, const FingerprintRecord& record,
                    uint8_t* out) {
  for (int w = 0; w < BitKey::kWords; ++w) {
    const uint64_t v = key.word(w);
    std::memcpy(out + w * 8, &v, 8);
  }
  internal::SerializeRecord(record, out + kKeyBytes);
}

void DeserializeKeyed(const uint8_t* in, BitKey* key,
                      FingerprintRecord* record) {
  for (int w = 0; w < BitKey::kWords; ++w) {
    uint64_t v = 0;
    std::memcpy(&v, in + w * 8, 8);
    key->set_word(w, v);
  }
  internal::DeserializeRecord(in + kKeyBytes, record);
}

// Buffered sequential reader over one sorted run file.
class RunReader {
 public:
  explicit RunReader(const std::string& path) : path_(path) {}

  Status Open() {
    S3VCD_RETURN_IF_ERROR(reader_.Open(path_));
    uint32_t magic = 0;
    S3VCD_RETURN_IF_ERROR(reader_.ReadU32(&magic));
    if (magic != kRunMagic) {
      return Status::Corruption("not a run file: " + path_);
    }
    S3VCD_RETURN_IF_ERROR(reader_.ReadU64(&remaining_));
    return Advance();
  }

  bool exhausted() const { return exhausted_; }
  const BitKey& key() const { return key_; }
  const FingerprintRecord& record() const { return record_; }

  Status Advance() {
    if (remaining_ == 0) {
      exhausted_ = true;
      return reader_.Close();
    }
    uint8_t buf[kRunRecordBytes];
    S3VCD_RETURN_IF_ERROR(reader_.ReadBytes(buf, kRunRecordBytes));
    DeserializeKeyed(buf, &key_, &record_);
    --remaining_;
    return Status::OK();
  }

 private:
  std::string path_;
  BinaryReader reader_;
  uint64_t remaining_ = 0;
  bool exhausted_ = false;
  BitKey key_;
  FingerprintRecord record_;
};

}  // namespace

ExternalDatabaseBuilder::ExternalDatabaseBuilder(
    std::string output_path, const ExternalBuilderOptions& options)
    : output_path_(std::move(output_path)),
      options_(options),
      curve_(fp::kDims, options.order) {
  S3VCD_CHECK(options.max_records_in_memory >= 2);
  buffer_.reserve(std::min<size_t>(options.max_records_in_memory, 1 << 16));
}

ExternalDatabaseBuilder::~ExternalDatabaseBuilder() {
  // Best-effort cleanup of temporaries if Finish was never called.
  for (const std::string& path : run_paths_) {
    std::remove(path.c_str());
  }
}

void ExternalDatabaseBuilder::SortBuffer() {
  std::sort(buffer_.begin(), buffer_.end(),
            [](const KeyedRecord& a, const KeyedRecord& b) {
              return a.key < b.key;
            });
}

Status ExternalDatabaseBuilder::SpillRun() {
  SortBuffer();
  const std::string path = options_.temp_dir + "/s3vcd_run_" +
                           std::to_string(reinterpret_cast<uintptr_t>(this)) +
                           "_" + std::to_string(run_paths_.size()) + ".tmp";
  BinaryWriter writer;
  S3VCD_RETURN_IF_ERROR(writer.Open(path));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(kRunMagic));
  S3VCD_RETURN_IF_ERROR(writer.WriteU64(buffer_.size()));
  uint8_t buf[kRunRecordBytes];
  for (const KeyedRecord& kr : buffer_) {
    SerializeKeyed(kr.key, kr.record, buf);
    S3VCD_RETURN_IF_ERROR(writer.WriteBytes(buf, kRunRecordBytes));
  }
  S3VCD_RETURN_IF_ERROR(writer.Close());
  run_paths_.push_back(path);
  buffer_.clear();
  return Status::OK();
}

Status ExternalDatabaseBuilder::Add(const fp::Fingerprint& fingerprint,
                                    uint32_t id, uint32_t time_code, float x,
                                    float y) {
  if (finished_) {
    return Status::FailedPrecondition("builder already finished");
  }
  KeyedRecord kr;
  uint32_t coords[fp::kDims];
  const int shift = 8 - curve_.order();
  for (int j = 0; j < fp::kDims; ++j) {
    coords[j] = static_cast<uint32_t>(fingerprint[j]) >> shift;
  }
  kr.key = curve_.Encode(coords);
  kr.record = {fingerprint, id, time_code, x, y};
  buffer_.push_back(kr);
  ++total_records_;
  if (buffer_.size() >= options_.max_records_in_memory) {
    return SpillRun();
  }
  return Status::OK();
}

Status ExternalDatabaseBuilder::AddVideo(
    uint32_t id, const std::vector<fp::LocalFingerprint>& fps) {
  for (const fp::LocalFingerprint& lf : fps) {
    S3VCD_RETURN_IF_ERROR(Add(lf.descriptor, id, lf.time_code, lf.x, lf.y));
  }
  return Status::OK();
}

Status ExternalDatabaseBuilder::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("builder already finished");
  }
  finished_ = true;
  const Status status = MergeRuns();
  // Temp runs are gone after Finish whether the merge succeeded or not;
  // a failed merge also takes its partial output file with it.
  for (const std::string& path : run_paths_) {
    std::remove(path.c_str());
  }
  run_paths_.clear();
  buffer_.clear();
  if (!status.ok()) {
    std::remove(output_path_.c_str());
  }
  return status;
}

Status ExternalDatabaseBuilder::MergeRuns() {
  SortBuffer();

  // Output header (same format as FingerprintDatabase::SaveToFile).
  BinaryWriter writer;
  S3VCD_RETURN_IF_ERROR(writer.Open(output_path_));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(0x53334442));  // "S3DB"
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(1));           // version
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(static_cast<uint32_t>(fp::kDims)));
  S3VCD_RETURN_IF_ERROR(
      writer.WriteU32(static_cast<uint32_t>(curve_.order())));
  S3VCD_RETURN_IF_ERROR(writer.WriteU64(total_records_));

  // K-way merge of the spilled runs plus the in-memory tail.
  std::vector<std::unique_ptr<RunReader>> runs;
  for (const std::string& path : run_paths_) {
    runs.push_back(std::make_unique<RunReader>(path));
    S3VCD_RETURN_IF_ERROR(runs.back()->Open());
  }
  size_t tail_pos = 0;

  struct HeapEntry {
    BitKey key;
    int source;  // run index, or -1 for the in-memory tail
  };
  auto greater = [](const HeapEntry& a, const HeapEntry& b) {
    return b.key < a.key;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(greater)>
      heap(greater);
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r]->exhausted()) {
      heap.push({runs[r]->key(), static_cast<int>(r)});
    }
  }
  if (tail_pos < buffer_.size()) {
    heap.push({buffer_[tail_pos].key, -1});
  }

  uint8_t buf[internal::kRecordBytes];
  uint64_t written = 0;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.source < 0) {
      internal::SerializeRecord(buffer_[tail_pos].record, buf);
      S3VCD_RETURN_IF_ERROR(
          writer.WriteBytes(buf, internal::kRecordBytes));
      ++tail_pos;
      if (tail_pos < buffer_.size()) {
        heap.push({buffer_[tail_pos].key, -1});
      }
    } else {
      RunReader& run = *runs[static_cast<size_t>(top.source)];
      internal::SerializeRecord(run.record(), buf);
      S3VCD_RETURN_IF_ERROR(
          writer.WriteBytes(buf, internal::kRecordBytes));
      S3VCD_RETURN_IF_ERROR(run.Advance());
      if (!run.exhausted()) {
        heap.push({run.key(), top.source});
      }
    }
    ++written;
  }
  if (written != total_records_) {
    return Status::Internal("merge produced a different record count");
  }
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(writer.crc()));
  // Durability before success: the bytes reach stable storage, then the
  // file's directory entry. A crash right after Finish returns OK cannot
  // lose or truncate the database.
  S3VCD_RETURN_IF_ERROR(writer.Sync());
  S3VCD_RETURN_IF_ERROR(writer.Close());
  S3VCD_RETURN_IF_ERROR(SyncDir(DirName(output_path_)));
  return Status::OK();
}

}  // namespace s3vcd::core
