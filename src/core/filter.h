#ifndef S3VCD_CORE_FILTER_H_
#define S3VCD_CORE_FILTER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/distortion_model.h"
#include "fingerprint/fingerprint.h"
#include "hilbert/block_tree.h"
#include "hilbert/hilbert_curve.h"
#include "hilbert/zorder.h"
#include "util/bitkey.h"

namespace s3vcd::core {

/// How the set B_alpha of p-blocks is computed.
enum class FilterAlgorithm {
  /// Best-first expansion ordered by block probability. Exact: returns the
  /// minimal-cardinality block set of total mass >= alpha (greedy on a
  /// monotone bound), visiting only the nodes it needs.
  kBestFirst,
  /// The paper's formulation (eq. 4): search the largest threshold t_max
  /// with Psup(t_max) >= alpha by a Newton/bisection iteration, each
  /// evaluation being a pruned DFS of the block tree.
  kThresholdSearch,
};

/// Deepest practically useful partition: beyond this, blocks are smaller
/// than any realistic database occupancy and the candidate block population
/// explodes (the paper's tuned p stays far below: ~log2 of the DB size).
inline constexpr int kMaxPracticalDepth = 48;

/// Options of the filtering step.
struct FilterOptions {
  /// Partition depth p (number of Hilbert key prefix bits). Clamped to
  /// [1, min(dims * order, kMaxPracticalDepth)].
  int depth = 12;
  /// Target expectation alpha of the statistical query, in (0, 1).
  double alpha = 0.8;
  FilterAlgorithm algorithm = FilterAlgorithm::kBestFirst;
  /// Safety cap on the number of selected blocks.
  uint64_t max_blocks = 1 << 16;
  /// Safety cap on block-tree nodes expanded per query: bounds worst-case
  /// time and memory; the selection returned is whatever mass was reached.
  uint64_t max_nodes = 1 << 18;
};

/// Result of the filtering step: the curve sections to scan.
struct BlockSelection {
  /// Merged, sorted, disjoint key ranges [begin, end).
  std::vector<std::pair<BitKey, BitKey>> ranges;
  /// Achieved probability mass (statistical filter only).
  double probability_mass = 0;
  uint64_t num_blocks = 0;
  uint64_t nodes_visited = 0;
};

/// Computes block selections for statistical and epsilon-range queries over
/// a Hilbert curve partition. Stateless w.r.t. queries; the curve must
/// outlive the filter.
class BlockFilter {
 public:
  explicit BlockFilter(const hilbert::HilbertCurve& curve);

  /// Statistical filtering (Section IV-A): selects p-blocks whose total
  /// probability under the distortion model centered at `query` reaches
  /// `options.alpha` (or the achievable maximum when the model's mass
  /// within the grid is below alpha).
  BlockSelection SelectStatistical(const fp::Fingerprint& query,
                                   const DistortionModel& model,
                                   const FilterOptions& options) const;

  /// Geometric filtering for a spherical epsilon-range query: selects all
  /// p-blocks intersecting the ball of radius `epsilon` (byte units)
  /// centered at `query`.
  BlockSelection SelectRange(const fp::Fingerprint& query, double epsilon,
                             int depth,
                             uint64_t max_blocks = 1 << 20) const;

  const hilbert::HilbertCurve& curve() const { return *curve_; }

 private:
  const hilbert::HilbertCurve* curve_;
  hilbert::BlockTree tree_;
  int cell_shift_;  ///< log2 of the byte width of one grid cell (8 - order)
};

/// Merges a list of equal-depth blocks (given by their prefixes) into
/// sorted disjoint key ranges; exposed for tests.
std::vector<std::pair<BitKey, BitKey>> MergeBlockRanges(
    std::vector<BitKey> prefixes, int depth, int key_bits);

/// The same filtering rules over the Z-order (Morton) partition instead of
/// the Hilbert partition. Selection quality is identical in block count at
/// equal depth; what differs is the *clustering* of the selected blocks
/// along the curve — the property the paper's Hilbert choice buys (see
/// bench/ablation_curve_clustering).
class ZOrderBlockFilter {
 public:
  explicit ZOrderBlockFilter(const hilbert::ZOrderCurve& curve);

  BlockSelection SelectStatistical(const fp::Fingerprint& query,
                                   const DistortionModel& model,
                                   const FilterOptions& options) const;
  BlockSelection SelectRange(const fp::Fingerprint& query, double epsilon,
                             int depth,
                             uint64_t max_blocks = 1 << 20) const;

  const hilbert::ZOrderCurve& curve() const { return *curve_; }

 private:
  const hilbert::ZOrderCurve* curve_;
  hilbert::ZOrderTree tree_;
  int cell_shift_;
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_FILTER_H_
