#ifndef S3VCD_CORE_FILTER_H_
#define S3VCD_CORE_FILTER_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/distortion_model.h"
#include "fingerprint/fingerprint.h"
#include "hilbert/block_tree.h"
#include "hilbert/hilbert_curve.h"
#include "hilbert/zorder.h"
#include "util/bitkey.h"

namespace s3vcd::core {

/// How the set B_alpha of p-blocks is computed.
enum class FilterAlgorithm {
  /// Best-first expansion ordered by block probability. Exact: returns the
  /// minimal-cardinality block set of total mass >= alpha (greedy on a
  /// monotone bound), visiting only the nodes it needs.
  kBestFirst,
  /// The paper's formulation (eq. 4): search the largest threshold t_max
  /// with Psup(t_max) >= alpha by a Newton/bisection iteration, each
  /// evaluation being a pruned DFS of the block tree.
  kThresholdSearch,
};

/// Which probability-evaluation engine drives the statistical selection.
/// Both engines produce bit-identical selections (same `ranges`, same
/// `probability_mass`); they differ only in speed. Pinned by
/// tests/filter_table_test.cc.
enum class SelectionEngine {
  /// Per-query, per-axis table of the distortion CDF at the cell
  /// boundaries, filled lazily; node expansion runs zero transcendentals.
  kBoundaryTable,
  /// Evaluates DistortionModel::ComponentMass per node (the split axis per
  /// child). Retained as the validation baseline and for BENCH_filter
  /// speedup measurement.
  kReference,
};

/// Deepest practically useful partition: beyond this, blocks are smaller
/// than any realistic database occupancy and the candidate block population
/// explodes (the paper's tuned p stays far below: ~log2 of the DB size).
inline constexpr int kMaxPracticalDepth = 48;

/// Options of the filtering step.
struct FilterOptions {
  /// Partition depth p (number of Hilbert key prefix bits). Clamped to
  /// [1, min(dims * order, kMaxPracticalDepth)].
  int depth = 12;
  /// Target expectation alpha of the statistical query, in (0, 1).
  double alpha = 0.8;
  FilterAlgorithm algorithm = FilterAlgorithm::kBestFirst;
  SelectionEngine engine = SelectionEngine::kBoundaryTable;
  /// Safety cap on the number of selected blocks.
  uint64_t max_blocks = 1 << 16;
  /// Safety cap on block-tree nodes expanded per query: bounds worst-case
  /// time and memory.
  uint64_t max_nodes = 1 << 18;
};

/// Result of the filtering step: the curve sections to scan.
///
/// Cap semantics, identical for BlockFilter and ZOrderBlockFilter and for
/// every algorithm (they share one template): `nodes_visited` counts the
/// root plus two per split, and a node is only split while
/// `nodes_visited + 2 <= max_nodes`; blocks stop being emitted once
/// `max_blocks` are collected. When either cap fires the selection is
/// *partial but valid*: the blocks emitted up to that point (for the
/// best-first algorithm, the highest-probability blocks) with
/// `probability_mass` the mass actually covered — possibly below alpha.
struct BlockSelection {
  /// Merged, sorted, disjoint key ranges [begin, end).
  std::vector<std::pair<BitKey, BitKey>> ranges;
  /// Achieved probability mass (statistical filter only).
  double probability_mass = 0;
  uint64_t num_blocks = 0;
  uint64_t nodes_visited = 0;
};

namespace internal {

/// A lazily-filled per-query table: `value[r * cols + c]` is valid only
/// when `stamp[...] == generation`. Begin() bumps the generation, so reuse
/// across queries (or across filters of different geometry) clears nothing.
struct LazyTable {
  std::vector<double> value;
  std::vector<uint32_t> stamp;
  uint32_t generation = 0;
  size_t cols = 0;

  void Begin(size_t rows, size_t new_cols);
};

}  // namespace internal

/// Reusable per-thread (or per-owner) workspace for block selection. After
/// the first few queries warm its pools, a selection allocates nothing:
/// the node arena, the heap/stack, the prefix list and the boundary tables
/// are all recycled. The members are an implementation detail of
/// filter.cc; callers only construct, reuse and (optionally) inspect
/// ApproxBytes(). Not thread-safe: one scratch per thread — see
/// ThreadLocalSelectionScratch().
struct SelectionScratch {
  internal::LazyTable cdf;  ///< [dims x (grid+1)] distortion CDF at boundaries
  internal::LazyTable sq;   ///< [2*dims x (grid+1)] squared boundary distances
  std::vector<hilbert::BlockTree::Node> arena;   ///< pooled slim nodes
  std::vector<uint32_t> free_slots;              ///< recycled arena indices
  std::vector<std::pair<double, uint32_t>> heap;  ///< (prob, slot) binary heap
  std::vector<std::pair<double, uint32_t>> dfs;   ///< (prob, slot) DFS stack
  std::vector<BitKey> prefixes;  ///< selected block prefixes, pre-merge

  /// Approximate heap footprint of the pooled storage, for capacity
  /// monitoring in long-running services.
  uint64_t ApproxBytes() const;
};

/// The scratch used when a caller passes none. One instance per thread;
/// batch services thread it through explicitly (see ShardedSearcher) so
/// the dependency is visible, but plain callers may rely on this default.
SelectionScratch& ThreadLocalSelectionScratch();

/// Computes block selections for statistical and epsilon-range queries over
/// a Hilbert curve partition. Stateless w.r.t. queries; the curve must
/// outlive the filter. Query methods are const and thread-safe as long as
/// concurrent callers use distinct SelectionScratch objects (the default
/// thread-local one qualifies).
class BlockFilter {
 public:
  explicit BlockFilter(const hilbert::HilbertCurve& curve);

  /// Statistical filtering (Section IV-A): selects p-blocks whose total
  /// probability under the distortion model centered at `query` reaches
  /// `options.alpha` (or the achievable maximum when the model's mass
  /// within the grid is below alpha). See BlockSelection for the partial
  /// selection returned when `max_nodes` / `max_blocks` fire.
  BlockSelection SelectStatistical(const fp::Fingerprint& query,
                                   const DistortionModel& model,
                                   const FilterOptions& options,
                                   SelectionScratch* scratch = nullptr) const;

  /// Geometric filtering for a spherical epsilon-range query: selects all
  /// p-blocks intersecting the ball of radius `epsilon` (byte units)
  /// centered at `query`, under the same quantization-interval convention
  /// as the statistical filter (cell range [lo, hi) covers bytes
  /// [lo*w - 0.5, hi*w - 0.5), edge cells extended to +/- infinity).
  BlockSelection SelectRange(const fp::Fingerprint& query, double epsilon,
                             int depth, uint64_t max_blocks = 1 << 20,
                             uint64_t max_nodes = 1 << 18,
                             SelectionScratch* scratch = nullptr) const;

  const hilbert::HilbertCurve& curve() const { return *curve_; }

 private:
  const hilbert::HilbertCurve* curve_;
  hilbert::BlockTree tree_;
  int cell_shift_;  ///< log2 of the byte width of one grid cell (8 - order)
};

/// Merges a list of equal-depth blocks (given by their prefixes) into
/// sorted disjoint key ranges; exposed for tests.
std::vector<std::pair<BitKey, BitKey>> MergeBlockRanges(
    std::vector<BitKey> prefixes, int depth, int key_bits);

/// The same filtering rules over the Z-order (Morton) partition instead of
/// the Hilbert partition, sharing the exact same selection template — cap
/// accounting and partial-selection semantics are identical to
/// BlockFilter. Selection quality is identical in block count at equal
/// depth; what differs is the *clustering* of the selected blocks along
/// the curve — the property the paper's Hilbert choice buys (see
/// bench/ablation_curve_clustering).
class ZOrderBlockFilter {
 public:
  explicit ZOrderBlockFilter(const hilbert::ZOrderCurve& curve);

  BlockSelection SelectStatistical(const fp::Fingerprint& query,
                                   const DistortionModel& model,
                                   const FilterOptions& options,
                                   SelectionScratch* scratch = nullptr) const;
  BlockSelection SelectRange(const fp::Fingerprint& query, double epsilon,
                             int depth, uint64_t max_blocks = 1 << 20,
                             uint64_t max_nodes = 1 << 18,
                             SelectionScratch* scratch = nullptr) const;

  const hilbert::ZOrderCurve& curve() const { return *curve_; }

 private:
  const hilbert::ZOrderCurve* curve_;
  hilbert::ZOrderTree tree_;
  int cell_shift_;
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_FILTER_H_
