#ifndef S3VCD_CORE_PSEUDO_DISK_H_
#define S3VCD_CORE_PSEUDO_DISK_H_

#include <string>
#include <vector>

#include "core/distortion_model.h"
#include "core/filter.h"
#include "core/record.h"
#include "fingerprint/fingerprint.h"
#include "hilbert/hilbert_curve.h"
#include "util/status.h"

namespace s3vcd::core {

/// Options of the pseudo-disk strategy (paper Section IV-B), used when the
/// fingerprint database exceeds primary storage: the Hilbert curve is split
/// into 2^r regular sections, N_sig queries are filtered up front, and the
/// sections are loaded into memory one at a time while every query's
/// refinement ranges inside the section are scanned.
struct PseudoDiskOptions {
  /// log2 of the number of curve sections (r). Must satisfy 0 <= r <= p.
  int section_depth = 4;
  /// Partition depth p of the statistical filtering.
  int query_depth = 12;
  double alpha = 0.8;
};

/// Aggregate timing of one batch, decomposing eq. (5):
/// T_tot = T + T_load / N_sig.
struct PseudoDiskBatchStats {
  double filter_seconds = 0;
  double load_seconds = 0;
  double refine_seconds = 0;
  uint64_t records_loaded = 0;
  uint64_t records_scanned = 0;
  uint64_t sections_loaded = 0;
  size_t num_queries = 0;

  /// Average per-query total response time in milliseconds.
  double AverageTotalMillis() const {
    return num_queries == 0
               ? 0.0
               : (filter_seconds + load_seconds + refine_seconds) * 1e3 /
                     static_cast<double>(num_queries);
  }
};

/// Searches a database file section by section without ever holding more
/// than one section of records in memory (only the per-prefix offset table
/// is resident). Matches of query i are returned in results[i].
class PseudoDiskSearcher {
 public:
  /// Opens a database file written by FingerprintDatabase::SaveToFile and
  /// builds the offset table at `options.query_depth` with one streaming
  /// metadata pass (records are not retained).
  static Result<PseudoDiskSearcher> Open(const std::string& db_path,
                                         const PseudoDiskOptions& options);

  /// Executes a batch of statistical queries (one pass over the sections).
  Status SearchBatch(const std::vector<fp::Fingerprint>& queries,
                     const DistortionModel& model,
                     std::vector<std::vector<Match>>* results,
                     PseudoDiskBatchStats* stats) const;

  uint64_t num_records() const { return offsets_.empty() ? 0 : offsets_.back(); }
  const PseudoDiskOptions& options() const { return options_; }

 private:
  PseudoDiskSearcher(std::string path, PseudoDiskOptions options, int order);

  std::string path_;
  PseudoDiskOptions options_;
  hilbert::HilbertCurve curve_;
  /// Record index of the first record of each depth-p prefix (+ sentinel);
  /// size 2^p + 1.
  std::vector<uint64_t> offsets_;
  uint64_t payload_offset_ = 0;  ///< file offset of the first record
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_PSEUDO_DISK_H_
