#include "core/lsh.h"

#include <cmath>

#include "core/scan_kernel.h"
#include "util/logging.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/timer.h"

namespace s3vcd::core {

LshIndex::LshIndex(std::vector<FingerprintRecord> records,
                   const LshOptions& options)
    : options_(options) {
  S3VCD_CHECK(options.num_tables >= 1);
  S3VCD_CHECK(options.hashes_per_table >= 1);
  S3VCD_CHECK(options.bucket_width > 0);
  block_.Reserve(records.size());
  for (const FingerprintRecord& r : records) {
    block_.AppendRecord(r);
  }
  Rng rng(options.seed);
  const int total_hashes = options.num_tables * options.hashes_per_table;
  projections_.resize(total_hashes);
  offsets_.resize(total_hashes);
  for (int h = 0; h < total_hashes; ++h) {
    for (int j = 0; j < fp::kDims; ++j) {
      projections_[h][j] = static_cast<float>(rng.Gaussian(0, 1));
    }
    offsets_[h] = static_cast<float>(rng.Uniform(0, options.bucket_width));
  }
  tables_.resize(options.num_tables);
  for (uint32_t i = 0; i < block_.size(); ++i) {
    for (int t = 0; t < options.num_tables; ++t) {
      tables_[t][BucketOf(t, block_.descriptor(i))].push_back(i);
    }
  }
}

uint64_t LshIndex::BucketOf(int table, const uint8_t* v) const {
  uint64_t key = 0xcbf29ce484222325ull;  // FNV-1a combine of the k slots
  for (int i = 0; i < options_.hashes_per_table; ++i) {
    const int h = table * options_.hashes_per_table + i;
    double dot = offsets_[h];
    for (int j = 0; j < fp::kDims; ++j) {
      dot += projections_[h][j] * static_cast<double>(v[j]);
    }
    const auto slot = static_cast<int64_t>(
        std::floor(dot / options_.bucket_width));
    key ^= static_cast<uint64_t>(slot) + 0x9e3779b97f4a7c15ull + (key << 6) +
           (key >> 2);
  }
  return key;
}

QueryResult LshIndex::RangeQueryImpl(const fp::Fingerprint& query,
                                     double epsilon) const {
  QueryResult result;
  Stopwatch watch;
  // Candidate gathering with per-query dedup by record index.
  std::vector<uint32_t> candidates;
  std::vector<bool> seen(block_.size(), false);
  for (int t = 0; t < options_.num_tables; ++t) {
    const auto it = tables_[t].find(BucketOf(t, query.data()));
    if (it == tables_[t].end()) {
      continue;
    }
    for (uint32_t idx : it->second) {
      if (!seen[idx]) {
        seen[idx] = true;
        candidates.push_back(idx);
      }
    }
  }
  result.stats.selection_ns = watch.ElapsedNanos();
  result.stats.filter_seconds = result.stats.selection_ns * 1e-9;

  watch.Reset();
  const RefineSpec spec(RefinementMode::kRadiusFilter, epsilon, nullptr);
  for (uint32_t idx : candidates) {
    RefineRecord(query, block_, idx, spec, &result);
  }
  result.stats.refine_ns = watch.ElapsedNanos();
  result.stats.refine_seconds = result.stats.refine_ns * 1e-9;
  return result;
}

QueryResult LshIndex::RangeQuery(const fp::Fingerprint& query,
                                 double epsilon) const {
  QueryResult result = RangeQueryImpl(query, epsilon);
  RecordQueryMetrics(QueryKind::kRange, result.stats, result.matches.size());
  return result;
}

QueryResult LshIndex::StatQuery(const fp::Fingerprint& query,
                                const DistortionModel& model,
                                const QueryOptions& options) const {
  QueryResult result = RangeQueryImpl(
      query, EqualExpectationRadius(model, options.filter.alpha));
  RecordQueryMetrics(QueryKind::kStatistical, result.stats,
                     result.matches.size());
  return result;
}

uint64_t LshIndex::ApproxBytes() const {
  uint64_t bytes = block_.MemoryBytes() +
                   projections_.size() * sizeof(projections_[0]) +
                   offsets_.size() * sizeof(float);
  for (const auto& table : tables_) {
    // Bucket lists hold one 4-byte record index per (record, table) entry.
    for (const auto& [bucket, entries] : table) {
      bytes += sizeof(bucket) + entries.size() * sizeof(uint32_t);
    }
  }
  return bytes;
}

double LshIndex::TableCollisionProbability(double dist) const {
  // p(d) for one projection (Datar et al.): with c = d / w,
  // p = 1 - 2 Phi(-1/c) - (2 c / sqrt(2 pi)) (1 - exp(-1 / (2 c^2))),
  // and a table of k concatenated hashes collides with p^k.
  if (dist <= 0) {
    return 1.0;
  }
  const double c = dist / options_.bucket_width;
  const double p = 1.0 - 2.0 * GaussianCdf(-1.0 / c, 0, 1) -
                   (2.0 * c / std::sqrt(2.0 * M_PI)) *
                       (1.0 - std::exp(-1.0 / (2.0 * c * c)));
  return std::pow(std::max(0.0, p), options_.hashes_per_table);
}

}  // namespace s3vcd::core
