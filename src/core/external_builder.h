#ifndef S3VCD_CORE_EXTERNAL_BUILDER_H_
#define S3VCD_CORE_EXTERNAL_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/record.h"
#include "fingerprint/fingerprint.h"
#include "hilbert/hilbert_curve.h"
#include "util/status.h"

namespace s3vcd::core {

/// Options of the external (larger-than-RAM) database build.
struct ExternalBuilderOptions {
  /// Records buffered in memory before a sorted run is spilled to disk.
  /// The paper's own database (13 GB for 10,000 hours) cannot be sorted in
  /// RAM; this is the standard external merge-sort answer.
  size_t max_records_in_memory = 1 << 20;
  /// Directory for the temporary run files (removed by Finish).
  std::string temp_dir = "/tmp";
  /// Curve order of the produced database.
  int order = FingerprintDatabase::kDefaultOrder;
};

/// Builds a FingerprintDatabase file of unbounded size with bounded memory:
/// accumulate -> spill sorted runs -> k-way merge into the final file (the
/// same format FingerprintDatabase::SaveToFile writes, CRC included). The
/// result can be served directly by PseudoDiskSearcher without ever fitting
/// in RAM, or loaded normally when it does fit.
///
/// Usage: Add(...) any number of times, then Finish() exactly once.
class ExternalDatabaseBuilder {
 public:
  ExternalDatabaseBuilder(std::string output_path,
                          const ExternalBuilderOptions& options = {});
  ~ExternalDatabaseBuilder();

  ExternalDatabaseBuilder(const ExternalDatabaseBuilder&) = delete;
  ExternalDatabaseBuilder& operator=(const ExternalDatabaseBuilder&) = delete;

  /// Buffers one record; spills a sorted run when the buffer is full.
  Status Add(const fp::Fingerprint& fingerprint, uint32_t id,
             uint32_t time_code, float x = 0, float y = 0);

  /// Adds every fingerprint of a video under one identifier.
  Status AddVideo(uint32_t id, const std::vector<fp::LocalFingerprint>& fps);

  uint64_t total_records() const { return total_records_; }
  /// Number of sorted runs spilled so far (excludes the in-memory tail).
  size_t runs_spilled() const { return run_paths_.size(); }

  /// Merges all runs plus the in-memory tail into the output file, fsyncs
  /// the file and its directory, and removes the temporaries — on success
  /// *and* on every error path (a failed merge also removes its partial
  /// output). The builder cannot be reused afterwards.
  Status Finish();

 private:
  struct KeyedRecord {
    BitKey key;
    FingerprintRecord record;
  };

  Status SpillRun();
  Status MergeRuns();
  void SortBuffer();

  std::string output_path_;
  ExternalBuilderOptions options_;
  hilbert::HilbertCurve curve_;
  std::vector<KeyedRecord> buffer_;
  std::vector<std::string> run_paths_;
  uint64_t total_records_ = 0;
  bool finished_ = false;
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_EXTERNAL_BUILDER_H_
