#ifndef S3VCD_CORE_PARALLEL_H_
#define S3VCD_CORE_PARALLEL_H_

#include <vector>

#include "core/distortion_model.h"
#include "core/searcher.h"
#include "fingerprint/fingerprint.h"
#include "util/thread_pool.h"

namespace s3vcd::core {

/// Runs a batch of statistical queries across `num_threads` workers.
/// Searcher queries are const and the backends are immutable during
/// queries, so fan-out is safe over any backend; results[i] corresponds
/// to queries[i]. With num_threads = 1 this degenerates to the serial
/// loop (useful as the control in tests).
///
/// Pool ownership: pass a caller-owned `pool` to run the fan-out on it
/// (its width then governs the parallelism; the long-lived QueryService
/// does exactly this with its per-worker pool). With pool == nullptr the
/// fan-out runs on a lazily-created shared pool of `num_threads` workers
/// that is reused by every subsequent call of the same width — thread
/// spawn cost never lands on the query path (regression-tested via
/// ThreadPool::TotalPoolsCreated). Concurrent callers may share a pool;
/// each call waits only for its own tasks.
///
/// The paper's monitoring deployment is naturally batch-parallel: each
/// key-frame contributes ~20 independent fingerprint queries.
std::vector<QueryResult> ParallelStatisticalSearch(
    const Searcher& searcher, const DistortionModel& model,
    const std::vector<fp::Fingerprint>& queries, const QueryOptions& options,
    int num_threads, ThreadPool* pool = nullptr);

/// Same fan-out for exact range queries.
std::vector<QueryResult> ParallelRangeSearch(
    const Searcher& searcher, const std::vector<fp::Fingerprint>& queries,
    double epsilon, int depth, int num_threads, ThreadPool* pool = nullptr);

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_PARALLEL_H_
