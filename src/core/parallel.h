#ifndef S3VCD_CORE_PARALLEL_H_
#define S3VCD_CORE_PARALLEL_H_

#include <vector>

#include "core/distortion_model.h"
#include "core/index.h"
#include "fingerprint/fingerprint.h"

namespace s3vcd::core {

/// Runs a batch of statistical queries across `num_threads` workers.
/// S3Index queries are const and the index is immutable, so fan-out is
/// safe; results[i] corresponds to queries[i]. With num_threads = 1 this
/// degenerates to the serial loop (useful as the control in tests).
///
/// The paper's monitoring deployment is naturally batch-parallel: each
/// key-frame contributes ~20 independent fingerprint queries.
std::vector<QueryResult> ParallelStatisticalSearch(
    const S3Index& index, const DistortionModel& model,
    const std::vector<fp::Fingerprint>& queries, const QueryOptions& options,
    int num_threads);

/// Same fan-out for exact range queries.
std::vector<QueryResult> ParallelRangeSearch(
    const S3Index& index, const std::vector<fp::Fingerprint>& queries,
    double epsilon, int depth, int num_threads);

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_PARALLEL_H_
