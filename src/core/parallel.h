#ifndef S3VCD_CORE_PARALLEL_H_
#define S3VCD_CORE_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "core/distortion_model.h"
#include "core/searcher.h"
#include "fingerprint/fingerprint.h"
#include "util/thread_pool.h"

namespace s3vcd::core {

/// Runs `body(first, last)` over contiguous shards of [0, n) on
/// `num_threads` workers — the generic fan-out primitive behind the batch
/// query helpers below, exposed for other embarrassingly parallel phases
/// (the vamana graph build runs its per-batch greedy searches through it).
/// Pool ownership follows the batch helpers: a caller-owned `pool` is used
/// directly; with pool == nullptr the lazily-created shared pool of this
/// width is reused across calls, so thread spawn cost is paid once per
/// width. `body` must be safe to invoke concurrently on disjoint shards.
void ParallelFor(size_t n, int num_threads, ThreadPool* pool,
                 const std::function<void(size_t, size_t)>& body);

/// Runs a batch of statistical queries across `num_threads` workers.
/// Searcher queries are const and the backends are immutable during
/// queries, so fan-out is safe over any backend; results[i] corresponds
/// to queries[i]. With num_threads = 1 this degenerates to the serial
/// loop (useful as the control in tests).
///
/// Pool ownership: pass a caller-owned `pool` to run the fan-out on it
/// (its width then governs the parallelism; the long-lived QueryService
/// does exactly this with its per-worker pool). With pool == nullptr the
/// fan-out runs on a lazily-created shared pool of `num_threads` workers
/// that is reused by every subsequent call of the same width — thread
/// spawn cost never lands on the query path (regression-tested via
/// ThreadPool::TotalPoolsCreated). Concurrent callers may share a pool;
/// each call waits only for its own tasks.
///
/// The paper's monitoring deployment is naturally batch-parallel: each
/// key-frame contributes ~20 independent fingerprint queries.
std::vector<QueryResult> ParallelStatisticalSearch(
    const Searcher& searcher, const DistortionModel& model,
    const std::vector<fp::Fingerprint>& queries, const QueryOptions& options,
    int num_threads, ThreadPool* pool = nullptr);

/// Same fan-out for exact range queries.
std::vector<QueryResult> ParallelRangeSearch(
    const Searcher& searcher, const std::vector<fp::Fingerprint>& queries,
    double epsilon, int depth, int num_threads, ThreadPool* pool = nullptr);

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_PARALLEL_H_
