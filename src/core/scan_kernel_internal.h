#ifndef S3VCD_CORE_SCAN_KERNEL_INTERNAL_H_
#define S3VCD_CORE_SCAN_KERNEL_INTERNAL_H_

#include <cstddef>
#include <cstdint>

#include "fingerprint/fingerprint.h"

namespace s3vcd::core {
struct DescriptorCodec;
}  // namespace s3vcd::core

namespace s3vcd::core::internal {

/// Batch squared distances of `n` packed descriptors (fp::kDims bytes
/// each, back to back) against one query descriptor, in record order:
/// out[i] = sum_j (desc[i*kDims+j] - query[j])^2. All kernel variants
/// compute this value exactly (pure integer arithmetic), so their outputs
/// are bitwise identical.
using SqDistBatchFn = void (*)(const uint8_t* desc, size_t n,
                               const uint8_t* query, uint32_t* out);

/// The portable reference kernel. Lives in its own translation unit
/// (scan_kernel_scalar.cc) compiled with auto-vectorization disabled, so
/// the "scalar" leg of the scalar-vs-SIMD benchmark measures a genuine
/// scalar loop rather than whatever the optimizer re-vectorized.
void SqDistBatchScalar(const uint8_t* desc, size_t n, const uint8_t* query,
                       uint32_t* out);

/// The AVX-512 exact kernels (defined in scan_kernel.cc behind runtime
/// dispatch; only callable on CPUs where ScanKernelAvailable(kAvx512)).
/// Two variants cover the same contract: the BW path widens to u16 and
/// uses madd, the VNNI path runs the u8 dot product through vpdpbusd with
/// the signed-operand correction. Declared here so the parity test can
/// pin both against the scalar reference even though dispatch picks only
/// one at runtime.
#if defined(__x86_64__) || defined(__i386__)
void SqDistBatchAvx512Bw(const uint8_t* desc, size_t n, const uint8_t* query,
                         uint32_t* out);
void SqDistBatchAvx512Vnni(const uint8_t* desc, size_t n,
                           const uint8_t* query, uint32_t* out);
/// Whether the VNNI variant can run on this CPU (implies kAvx512).
bool Avx512VnniAvailable();
#endif

/// Per-scan precomputation of a quantized sweep: the query and the codec
/// parameters widened to u16 so the fused decode+distance kernels index
/// plain arrays (or load them straight into vectors). Built once per
/// ScanRecords call on a coded view.
struct QuantQuery {
  uint16_t query[fp::kDims];   ///< exact query, widened
  uint16_t step16[fp::kDims];  ///< codec fixed-point steps
  uint16_t lo[fp::kDims];      ///< codec biases, widened
  bool nibble = false;         ///< 4-bit codes, two axes per byte
};

/// Builds a QuantQuery from the query bytes and a (quantized) codec.
QuantQuery MakeQuantQuery(const uint8_t* query, const DescriptorCodec& codec);

/// Batch fused decode + squared distance over packed *coded* records
/// (code_bytes each, back to back): out[i] = sum_j (decode(c_ij) - q_j)^2
/// with the decode formula of core/descriptor_codec.h. Pure integer
/// arithmetic — every variant is bitwise identical (pinned by
/// tests/descriptor_codec_test.cc).
using SqDistCodedBatchFn = void (*)(const uint8_t* codes, size_t n,
                                    const QuantQuery& q, uint32_t* out);

/// Scalar reference of the fused kernel (scan_kernel_scalar.cc, same
/// no-auto-vectorization TU as the exact reference).
void SqDistCodedBatchScalar(const uint8_t* codes, size_t n,
                            const QuantQuery& q, uint32_t* out);

/// Gathered batch distances: out[i] = squared distance of the query to
/// packed record indices[i] (an arbitrary, possibly repeating id set — the
/// graph-traversal counterpart of SqDistBatchFn's contiguous strip). SIMD
/// variants software-prefetch the descriptor lines a few gathers ahead;
/// the arithmetic per record is identical to the strip kernels, so every
/// variant is bitwise identical (pinned by tests/scan_kernel_test.cc).
using SqDistGatherFn = void (*)(const uint8_t* desc, const uint32_t* indices,
                                size_t k, const uint8_t* query,
                                uint32_t* out);

/// Scalar gather reference (scan_kernel_scalar.cc, no-auto-vectorization).
void SqDistGatherScalar(const uint8_t* desc, const uint32_t* indices,
                        size_t k, const uint8_t* query, uint32_t* out);

/// Gathered fused decode + distance over coded records (code_bytes
/// per record derived from q.nibble, exactly like SqDistCodedBatchFn).
using SqDistCodedGatherFn = void (*)(const uint8_t* codes,
                                     const uint32_t* indices, size_t k,
                                     const QuantQuery& q, uint32_t* out);

/// Scalar coded gather reference (scan_kernel_scalar.cc).
void SqDistCodedGatherScalar(const uint8_t* codes, const uint32_t* indices,
                             size_t k, const QuantQuery& q, uint32_t* out);

#if defined(__x86_64__) || defined(__i386__)
/// The two AVX-512 exact gather variants, declared like the strip kernels
/// above so the parity test can pin both even though dispatch installs one.
void SqDistGatherAvx512Bw(const uint8_t* desc, const uint32_t* indices,
                          size_t k, const uint8_t* query, uint32_t* out);
void SqDistGatherAvx512Vnni(const uint8_t* desc, const uint32_t* indices,
                            size_t k, const uint8_t* query, uint32_t* out);
#endif

}  // namespace s3vcd::core::internal

#endif  // S3VCD_CORE_SCAN_KERNEL_INTERNAL_H_
