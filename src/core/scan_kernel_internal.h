#ifndef S3VCD_CORE_SCAN_KERNEL_INTERNAL_H_
#define S3VCD_CORE_SCAN_KERNEL_INTERNAL_H_

#include <cstddef>
#include <cstdint>

namespace s3vcd::core::internal {

/// Batch squared distances of `n` packed descriptors (fp::kDims bytes
/// each, back to back) against one query descriptor, in record order:
/// out[i] = sum_j (desc[i*kDims+j] - query[j])^2. All kernel variants
/// compute this value exactly (pure integer arithmetic), so their outputs
/// are bitwise identical.
using SqDistBatchFn = void (*)(const uint8_t* desc, size_t n,
                               const uint8_t* query, uint32_t* out);

/// The portable reference kernel. Lives in its own translation unit
/// (scan_kernel_scalar.cc) compiled with auto-vectorization disabled, so
/// the "scalar" leg of the scalar-vs-SIMD benchmark measures a genuine
/// scalar loop rather than whatever the optimizer re-vectorized.
void SqDistBatchScalar(const uint8_t* desc, size_t n, const uint8_t* query,
                       uint32_t* out);

}  // namespace s3vcd::core::internal

#endif  // S3VCD_CORE_SCAN_KERNEL_INTERNAL_H_
