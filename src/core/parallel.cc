#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>

#include "obs/trace.h"
#include "util/logging.h"

namespace s3vcd::core {

namespace {

// Lazily-created shared pools, one per requested width, reused by every
// batch call (constructing and joining a pool per call would put thread
// spawn cost on the query path). Pools are intentionally leaked: workers
// park on a condition variable when idle, and skipping destruction avoids
// static-teardown join-order hazards (same pattern as SearcherRegistry).
ThreadPool* SharedPool(int num_threads) {
  static std::mutex* const mutex = new std::mutex();
  static std::map<int, ThreadPool*>* const pools =
      new std::map<int, ThreadPool*>();
  std::lock_guard<std::mutex> lock(*mutex);
  ThreadPool*& pool = (*pools)[num_threads];
  if (pool == nullptr) {
    pool = new ThreadPool(num_threads);
  }
  return pool;
}

// Shards [0, n) into contiguous chunks and runs `body(first, last)` for
// each on the pool, waiting for this call's own tasks only (the pool may
// be shared with concurrent callers, so ThreadPool::Wait — which waits for
// global quiescence — would oversynchronize).
template <typename Body>
void ShardedRun(size_t n, int num_threads, ThreadPool* pool,
                const Body& body) {
  if (n == 0) {
    return;
  }
  if (num_threads <= 1 && pool == nullptr) {
    body(0, n);
    return;
  }
  if (pool == nullptr) {
    pool = SharedPool(num_threads);
  }
  const int width = std::max(num_threads, pool->num_threads());
  const size_t shards =
      std::min<size_t>(static_cast<size_t>(width) * 4, n);
  const size_t chunk = (n + shards - 1) / shards;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  // All tasks are counted before any is submitted, so a fast worker can
  // never see pending hit zero early.
  size_t pending = (n + chunk - 1) / chunk;
  for (size_t first = 0; first < n; first += chunk) {
    const size_t last = std::min(n, first + chunk);
    pool->Submit([&, first, last] {
      body(first, last);
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--pending == 0) {
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return pending == 0; });
}

}  // namespace

void ParallelFor(size_t n, int num_threads, ThreadPool* pool,
                 const std::function<void(size_t, size_t)>& body) {
  S3VCD_CHECK(num_threads >= 1);
  ShardedRun(n, num_threads, pool, body);
}

std::vector<QueryResult> ParallelStatisticalSearch(
    const Searcher& searcher, const DistortionModel& model,
    const std::vector<fp::Fingerprint>& queries, const QueryOptions& options,
    int num_threads, ThreadPool* pool) {
  S3VCD_CHECK(num_threads >= 1);
  S3VCD_TRACE_SPAN("parallel.statistical_batch");
  std::vector<QueryResult> results(queries.size());
  ShardedRun(queries.size(), num_threads, pool,
             [&](size_t first, size_t last) {
               for (size_t i = first; i < last; ++i) {
                 results[i] =
                     searcher.StatQuery(queries[i], model, options);
               }
             });
  return results;
}

std::vector<QueryResult> ParallelRangeSearch(
    const Searcher& searcher, const std::vector<fp::Fingerprint>& queries,
    double epsilon, int depth, int num_threads, ThreadPool* pool) {
  S3VCD_CHECK(num_threads >= 1);
  S3VCD_TRACE_SPAN("parallel.range_batch");
  std::vector<QueryResult> results(queries.size());
  ShardedRun(queries.size(), num_threads, pool,
             [&](size_t first, size_t last) {
               for (size_t i = first; i < last; ++i) {
                 results[i] = searcher.RangeQuery(queries[i], epsilon, depth);
               }
             });
  return results;
}

}  // namespace s3vcd::core
