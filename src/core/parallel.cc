#include "core/parallel.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace s3vcd::core {

namespace {

// Shards [0, n) into `shards` contiguous chunks and runs `body(first,
// last)` for each on the pool.
template <typename Body>
void ShardedRun(size_t n, int num_threads, const Body& body) {
  if (n == 0) {
    return;
  }
  if (num_threads <= 1) {
    body(0, n);
    return;
  }
  ThreadPool pool(num_threads);
  const size_t shards = std::min<size_t>(static_cast<size_t>(num_threads) * 4,
                                         n);
  const size_t chunk = (n + shards - 1) / shards;
  for (size_t first = 0; first < n; first += chunk) {
    const size_t last = std::min(n, first + chunk);
    pool.Submit([&body, first, last] { body(first, last); });
  }
  pool.Wait();
}

}  // namespace

std::vector<QueryResult> ParallelStatisticalSearch(
    const Searcher& searcher, const DistortionModel& model,
    const std::vector<fp::Fingerprint>& queries, const QueryOptions& options,
    int num_threads) {
  S3VCD_CHECK(num_threads >= 1);
  S3VCD_TRACE_SPAN("parallel.statistical_batch");
  std::vector<QueryResult> results(queries.size());
  ShardedRun(queries.size(), num_threads,
             [&](size_t first, size_t last) {
               for (size_t i = first; i < last; ++i) {
                 results[i] =
                     searcher.StatQuery(queries[i], model, options);
               }
             });
  return results;
}

std::vector<QueryResult> ParallelRangeSearch(
    const Searcher& searcher, const std::vector<fp::Fingerprint>& queries,
    double epsilon, int depth, int num_threads) {
  S3VCD_CHECK(num_threads >= 1);
  S3VCD_TRACE_SPAN("parallel.range_batch");
  std::vector<QueryResult> results(queries.size());
  ShardedRun(queries.size(), num_threads,
             [&](size_t first, size_t last) {
               for (size_t i = first; i < last; ++i) {
                 results[i] = searcher.RangeQuery(queries[i], epsilon, depth);
               }
             });
  return results;
}

}  // namespace s3vcd::core
