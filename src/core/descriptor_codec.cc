#include "core/descriptor_codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace s3vcd::core {

namespace {

inline uint32_t EncodeAxis(uint32_t v, uint8_t lo, uint16_t step16,
                           uint32_t maxcode) {
  if (v <= lo) {
    return 0;
  }
  // round((v - lo) * 256 / step16), clamped to the code range.
  const uint32_t scaled = ((v - lo) * 256u + step16 / 2u) / step16;
  return std::min(scaled, maxcode);
}

inline uint32_t DecodeAxis(uint32_t c, uint8_t lo, uint16_t step16) {
  // The one decode formula of the whole system: every kernel variant and
  // every scalar path computes exactly this, so quantized distances are
  // bitwise identical everywhere. c*step16 <= 255*256 fits u16 with the
  // +128 rounding term staying inside u32 comfortably.
  const uint32_t v = lo + ((c * step16 + 128u) >> 8);
  return std::min(v, 255u);
}

}  // namespace

const char* DescriptorCodecName(DescriptorCodecKind kind) {
  switch (kind) {
    case DescriptorCodecKind::kExactU8:
      return "exact";
    case DescriptorCodecKind::kLvq8:
      return "lvq8";
    case DescriptorCodecKind::kLvq4:
      return "lvq4";
  }
  return "unknown";
}

bool DescriptorCodecFromName(const std::string& name,
                             DescriptorCodecKind* kind) {
  if (name == "exact") {
    *kind = DescriptorCodecKind::kExactU8;
  } else if (name == "lvq8") {
    *kind = DescriptorCodecKind::kLvq8;
  } else if (name == "lvq4") {
    *kind = DescriptorCodecKind::kLvq4;
  } else {
    return false;
  }
  return true;
}

std::string DescriptorCodecNamesCsv() { return "exact, lvq4, lvq8"; }

size_t DescriptorCodeBytes(DescriptorCodecKind kind) {
  return kind == DescriptorCodecKind::kLvq4 ? fp::kDims / 2 : fp::kDims;
}

uint32_t DescriptorCodecMaxCode(DescriptorCodecKind kind) {
  return kind == DescriptorCodecKind::kLvq4 ? 15u : 255u;
}

double DescriptorCodec::NormalizedMaxError(
    const double* inv_scale_sq) const {
  double acc = 0;
  for (int j = 0; j < fp::kDims; ++j) {
    const double e = static_cast<double>(axis_error[j]);
    acc += e * e * inv_scale_sq[j];
  }
  return std::sqrt(acc);
}

namespace {

/// Fills axis_error/max_error by exhaustively round-tripping every value
/// of the trained range [lo_j, hi_j] — integers in, integers out, so the
/// bound is exact, not estimated.
void FinalizeErrors(DescriptorCodec* codec,
                    const std::array<uint8_t, fp::kDims>& hi) {
  double sum_sq = 0;
  const uint32_t maxcode = DescriptorCodecMaxCode(codec->kind);
  for (int j = 0; j < fp::kDims; ++j) {
    uint32_t worst = 0;
    if (!codec->is_exact()) {
      for (uint32_t v = codec->lo[j]; v <= hi[j]; ++v) {
        const uint32_t c =
            EncodeAxis(v, codec->lo[j], codec->step16[j], maxcode);
        const uint32_t r = DecodeAxis(c, codec->lo[j], codec->step16[j]);
        worst = std::max(worst, r > v ? r - v : v - r);
      }
    }
    codec->axis_error[j] = static_cast<uint8_t>(std::min(worst, 255u));
    sum_sq += static_cast<double>(worst) * static_cast<double>(worst);
  }
  codec->max_error = std::sqrt(sum_sq);
}

}  // namespace

DescriptorCodec TrainDescriptorCodec(DescriptorCodecKind kind,
                                     const uint8_t* descriptors, size_t n) {
  DescriptorCodec codec;
  codec.kind = kind;
  codec.step16.fill(1);
  if (kind == DescriptorCodecKind::kExactU8) {
    return codec;
  }
  std::array<uint8_t, fp::kDims> hi{};
  codec.lo.fill(255);
  if (n == 0) {
    codec.lo.fill(0);
  }
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* d = descriptors + i * fp::kDims;
    for (int j = 0; j < fp::kDims; ++j) {
      codec.lo[j] = std::min(codec.lo[j], d[j]);
      hi[j] = std::max(hi[j], d[j]);
    }
  }
  const uint32_t maxcode = DescriptorCodecMaxCode(kind);
  for (int j = 0; j < fp::kDims; ++j) {
    const uint32_t range = hi[j] - codec.lo[j];
    // Round the fixed-point step up so the largest trained value still
    // encodes inside the code range (the +maxcode-1 ceiling), floor 1.
    codec.step16[j] = static_cast<uint16_t>(
        std::max<uint32_t>(1, (range * 256u + maxcode - 1) / maxcode));
  }
  FinalizeErrors(&codec, hi);
  return codec;
}

void EncodeDescriptor(const DescriptorCodec& codec, const uint8_t* src,
                      uint8_t* dst) {
  switch (codec.kind) {
    case DescriptorCodecKind::kExactU8:
      std::memcpy(dst, src, fp::kDims);
      return;
    case DescriptorCodecKind::kLvq8:
      for (int j = 0; j < fp::kDims; ++j) {
        dst[j] = static_cast<uint8_t>(
            EncodeAxis(src[j], codec.lo[j], codec.step16[j], 255u));
      }
      return;
    case DescriptorCodecKind::kLvq4:
      for (int j = 0; j < fp::kDims; j += 2) {
        const uint32_t even =
            EncodeAxis(src[j], codec.lo[j], codec.step16[j], 15u);
        const uint32_t odd =
            EncodeAxis(src[j + 1], codec.lo[j + 1], codec.step16[j + 1], 15u);
        dst[j / 2] = static_cast<uint8_t>(even | (odd << 4));
      }
      return;
  }
}

void DecodeDescriptor(const DescriptorCodec& codec, const uint8_t* src,
                      uint8_t* dst) {
  switch (codec.kind) {
    case DescriptorCodecKind::kExactU8:
      std::memcpy(dst, src, fp::kDims);
      return;
    case DescriptorCodecKind::kLvq8:
      for (int j = 0; j < fp::kDims; ++j) {
        dst[j] = static_cast<uint8_t>(
            DecodeAxis(src[j], codec.lo[j], codec.step16[j]));
      }
      return;
    case DescriptorCodecKind::kLvq4:
      for (int j = 0; j < fp::kDims; j += 2) {
        const uint8_t byte = src[j / 2];
        dst[j] = static_cast<uint8_t>(
            DecodeAxis(byte & 0x0F, codec.lo[j], codec.step16[j]));
        dst[j + 1] = static_cast<uint8_t>(
            DecodeAxis(byte >> 4, codec.lo[j + 1], codec.step16[j + 1]));
      }
      return;
  }
}

void SerializeCodecParams(const DescriptorCodec& codec,
                          uint8_t out[kDescriptorCodecParamsBytes]) {
  std::memset(out, 0, kDescriptorCodecParamsBytes);
  for (int j = 0; j < fp::kDims; ++j) {
    const uint16_t s = codec.step16[j];
    std::memcpy(out + j * 2, &s, 2);
  }
  std::memcpy(out + 2 * fp::kDims, codec.lo.data(), fp::kDims);
  std::memcpy(out + 3 * fp::kDims, codec.axis_error.data(), fp::kDims);
  out[4 * fp::kDims] =
      static_cast<uint8_t>(DescriptorCodecMaxCode(codec.kind));
}

bool DeserializeCodecParams(DescriptorCodecKind kind, const uint8_t* in,
                            DescriptorCodec* codec) {
  DescriptorCodec out;
  out.kind = kind;
  if (kind == DescriptorCodecKind::kExactU8) {
    out.step16.fill(1);
    *codec = out;
    return true;
  }
  double sum_sq = 0;
  for (int j = 0; j < fp::kDims; ++j) {
    uint16_t s = 0;
    std::memcpy(&s, in + j * 2, 2);
    if (s == 0 || s > 256u * 255u / DescriptorCodecMaxCode(kind) + 256u) {
      return false;  // zero or absurd step: structurally invalid params
    }
    out.step16[j] = s;
    out.lo[j] = in[2 * fp::kDims + j];
    out.axis_error[j] = in[3 * fp::kDims + j];
    const double e = static_cast<double>(out.axis_error[j]);
    sum_sq += e * e;
  }
  if (in[4 * fp::kDims] != DescriptorCodecMaxCode(kind)) {
    return false;  // params written by a different codec width
  }
  out.max_error = std::sqrt(sum_sq);
  *codec = out;
  return true;
}

CodedDescriptorBlock CodedDescriptorBlock::Encode(
    DescriptorCodecKind kind, const DescriptorBlock& block) {
  CodedDescriptorBlock coded;
  coded.codec_ = TrainDescriptorCodec(kind, block.descriptors(), block.size());
  const size_t code_bytes = coded.codec_.code_bytes();
  coded.codes_.resize(block.size() * code_bytes);
  coded.ids_.reserve(block.size());
  coded.time_codes_.reserve(block.size());
  coded.xs_.reserve(block.size());
  coded.ys_.reserve(block.size());
  for (size_t i = 0; i < block.size(); ++i) {
    EncodeDescriptor(coded.codec_, block.descriptor(i),
                     coded.codes_.data() + i * code_bytes);
    coded.ids_.push_back(block.id(i));
    coded.time_codes_.push_back(block.time_code(i));
    coded.xs_.push_back(block.x(i));
    coded.ys_.push_back(block.y(i));
  }
  return coded;
}

}  // namespace s3vcd::core
