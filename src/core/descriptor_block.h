#ifndef S3VCD_CORE_DESCRIPTOR_BLOCK_H_
#define S3VCD_CORE_DESCRIPTOR_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/record.h"
#include "fingerprint/fingerprint.h"

namespace s3vcd::core {

struct DescriptorCodec;  // core/descriptor_codec.h

/// Non-owning view of a structure-of-arrays record store: raw pointers to
/// the packed descriptor bytes and the parallel id/time/x/y columns. The
/// refinement kernels (core/scan_kernel) operate on views, so the same
/// SIMD scan runs over a resident DescriptorBlock and over columns mapped
/// straight out of an on-disk segment (src/store/) without copying. The
/// pointed-to arrays must outlive the view and hold `count` entries each.
///
/// The descriptor column is *coded*: `codec` names the representation and
/// `desc_bytes` its per-record width. The defaults (nullptr codec,
/// fp::kDims bytes) mean the historical packed exact u8 layout, so every
/// aggregate-initialized view stays exact; quantized owners (coded blocks,
/// LVQ segments) fill both fields and the scan kernels fuse the decode —
/// see core/descriptor_codec.h.
struct DescriptorView {
  const uint8_t* descriptors = nullptr;  ///< count * desc_bytes packed bytes
  const uint32_t* ids = nullptr;
  const uint32_t* time_codes = nullptr;
  const float* xs = nullptr;
  const float* ys = nullptr;
  size_t count = 0;
  /// Bytes per stored descriptor record (codec code bytes; fp::kDims for
  /// the exact layout).
  size_t desc_bytes = fp::kDims;
  /// Codec of the descriptor column. nullptr (or an exact codec) means the
  /// bytes are exact u8 descriptors.
  const DescriptorCodec* codec = nullptr;

  size_t size() const { return count; }
  bool empty() const { return count == 0; }

  /// First byte of record i's (coded) descriptor.
  const uint8_t* descriptor(size_t i) const {
    return descriptors + i * desc_bytes;
  }
  uint32_t id(size_t i) const { return ids[i]; }
  uint32_t time_code(size_t i) const { return time_codes[i]; }
  float x(size_t i) const { return xs[i]; }
  float y(size_t i) const { return ys[i]; }
};

/// Structure-of-arrays store of fingerprint records: the 20-byte
/// descriptors live packed back to back, with the ids, time codes and
/// interest-point coordinates in parallel arrays. This is the layout every
/// refinement scan runs over — a curve-section strip touches 20 contiguous
/// bytes per record instead of striding over 36-byte FingerprintRecords,
/// and the packed descriptors are what the SIMD kernels in
/// core/scan_kernel consume. The static database, the dynamic index's
/// insert buffer, the VA-file's exact vectors and the LSH record snapshot
/// all keep their records in a DescriptorBlock.
class DescriptorBlock {
 public:
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  void Reserve(size_t n) {
    descriptors_.reserve(n * fp::kDims);
    ids_.reserve(n);
    time_codes_.reserve(n);
    xs_.reserve(n);
    ys_.reserve(n);
  }

  void Append(const fp::Fingerprint& descriptor, uint32_t id,
              uint32_t time_code, float x, float y) {
    descriptors_.insert(descriptors_.end(), descriptor.begin(),
                        descriptor.end());
    ids_.push_back(id);
    time_codes_.push_back(time_code);
    xs_.push_back(x);
    ys_.push_back(y);
  }

  void AppendRecord(const FingerprintRecord& r) {
    Append(r.descriptor, r.id, r.time_code, r.x, r.y);
  }

  void Clear() {
    descriptors_.clear();
    ids_.clear();
    time_codes_.clear();
    xs_.clear();
    ys_.clear();
  }

  /// The packed descriptor bytes (size() * fp::kDims of them).
  const uint8_t* descriptors() const { return descriptors_.data(); }
  /// First byte of record i's descriptor.
  const uint8_t* descriptor(size_t i) const {
    return descriptors_.data() + i * fp::kDims;
  }
  uint32_t id(size_t i) const { return ids_[i]; }
  uint32_t time_code(size_t i) const { return time_codes_[i]; }
  float x(size_t i) const { return xs_[i]; }
  float y(size_t i) const { return ys_[i]; }

  /// Materializes record i in array-of-structs form (serialization,
  /// rebuilds; not the scan path).
  FingerprintRecord Record(size_t i) const {
    FingerprintRecord r;
    std::memcpy(r.descriptor.data(), descriptor(i), fp::kDims);
    r.id = ids_[i];
    r.time_code = time_codes_[i];
    r.x = xs_[i];
    r.y = ys_[i];
    return r;
  }

  /// A view over this block's arrays, valid until the next mutation.
  DescriptorView View() const {
    return {descriptors_.data(), ids_.data(),  time_codes_.data(),
            xs_.data(),          ys_.data(),   ids_.size()};
  }

  uint64_t MemoryBytes() const {
    return descriptors_.size() * sizeof(uint8_t) +
           ids_.size() * sizeof(uint32_t) +
           time_codes_.size() * sizeof(uint32_t) +
           xs_.size() * sizeof(float) + ys_.size() * sizeof(float);
  }

 private:
  std::vector<uint8_t> descriptors_;  ///< size() * fp::kDims packed bytes
  std::vector<uint32_t> ids_;
  std::vector<uint32_t> time_codes_;
  std::vector<float> xs_;
  std::vector<float> ys_;
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_DESCRIPTOR_BLOCK_H_
