#ifndef S3VCD_CORE_SCAN_KERNEL_H_
#define S3VCD_CORE_SCAN_KERNEL_H_

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/descriptor_block.h"
#include "core/descriptor_codec.h"
#include "core/record.h"
#include "core/scan_kernel_internal.h"
#include "core/searcher.h"
#include "fingerprint/fingerprint.h"
#include "util/bitkey.h"

namespace s3vcd::core {

/// The shared refinement kernel: every backend's inner scan loop — the
/// S3 index's curve-section scan, the dynamic index's insert-buffer pass,
/// the VA-file's phase-2 exact check, the LSH candidate filter and the
/// sequential scan — funnels each touched record through RefineRecord /
/// ScanRecords, so `records_scanned` and match accounting mean exactly the
/// same thing on every backend (pinned by tests/backend_parity_test.cc).
///
/// ScanRecords runs a blocked kernel over the structure-of-arrays
/// DescriptorBlock layout: a strip of packed descriptors at a time,
/// u8-difference -> i32-accumulate squared distances, through one of four
/// runtime-dispatched variants (portable scalar, SSE2, AVX2, AVX-512)
/// selected at startup from CPU features. The integer arithmetic is exact,
/// so every variant returns bitwise-identical distances (asserted by
/// tests/scan_kernel_test.cc). When the view carries a quantized codec
/// (core/descriptor_codec.h) the kernels fuse the integer decode into the
/// distance accumulation and inflate radius tests by the codec's
/// reconstruction error bound, so the quantized match set is a superset of
/// the exact one.
///
/// Environment overrides:
///   S3VCD_SCAN_KERNEL=scalar|sse2|avx2|avx512  pin a specific kernel
///     (falls back to the widest available one, with a warning, if the
///     requested kernel cannot run on this CPU/build);
///   S3VCD_NO_SIMD=1  force the scalar kernel (kept for compatibility;
///     S3VCD_SCAN_KERNEL wins when both are set).

/// The available kernel implementations, in dispatch-preference order.
enum class ScanKernelKind {
  kScalar = 0,  ///< portable reference loop (always available)
  kSse2 = 1,    ///< x86-64 baseline SIMD
  kAvx2 = 2,    ///< 32-byte SIMD, used when the CPU supports it
  kAvx512 = 3,  ///< 64-byte SIMD (F+BW+VL; VNNI u8-dot when available)
};

/// Display name of a kernel: "scalar", "sse2", "avx2", "avx512".
const char* ScanKernelName(ScanKernelKind kind);

/// The kernel ScanRecords currently dispatches to. Defaults to the widest
/// variant this CPU supports; see the environment overrides above.
ScanKernelKind ActiveScanKernel();

/// Whether this build/CPU can run `kind`.
bool ScanKernelAvailable(ScanKernelKind kind);

/// Overrides the dispatched kernel (must be available); returns the
/// previous one. Testing/benchmark hook — call it before spawning query
/// threads.
ScanKernelKind SetScanKernelForTest(ScanKernelKind kind);

/// Parameters of one refinement pass. For kNormalizedRadiusFilter the
/// constructor precomputes the per-component 1/scale_j^2 weight table, so
/// the scan evaluates the normalized distance in a single pass (no
/// unnormalized distance is computed in that mode).
struct RefineSpec {
  /// `model` is only required for kNormalizedRadiusFilter.
  RefineSpec(RefinementMode mode, double radius, const DistortionModel* model)
      : mode(mode), radius_sq(radius * radius), model(model) {
    if (mode == RefinementMode::kNormalizedRadiusFilter && model != nullptr) {
      for (int j = 0; j < fp::kDims; ++j) {
        const double scale = model->ComponentScale(j);
        inv_scale_sq[j] = 1.0 / (scale * scale);
      }
    }
  }

  RefinementMode mode;
  double radius_sq;
  const DistortionModel* model;
  /// 1 / ComponentScale(j)^2, filled for kNormalizedRadiusFilter.
  std::array<double, fp::kDims> inv_scale_sq{};
};

/// Model-normalized squared distance sum_j (a_j - b_j)^2 * inv_scale_sq[j].
/// Defined once (in scan_kernel_scalar.cc) and called from every backend
/// and kernel variant, so normalized-mode results are bitwise identical
/// everywhere.
double NormalizedSquaredDistance(const uint8_t* a, const uint8_t* b,
                                 const double* inv_scale_sq);

/// Exact squared byte-space distance of two packed descriptors. Pure
/// integer arithmetic (max value 20 * 255^2 = 1,300,500, well inside
/// uint32_t) — identical to what the batch kernels compute per record.
inline uint32_t SquaredDistanceU32(const uint8_t* a, const uint8_t* b) {
  uint32_t acc = 0;
  for (int j = 0; j < fp::kDims; ++j) {
    const int diff = static_cast<int>(a[j]) - static_cast<int>(b[j]);
    acc += static_cast<uint32_t>(diff * diff);
  }
  return acc;
}

/// Refines one candidate record of a block (LSH candidate verification,
/// VA-file phase 2, dynamic-index insert buffer): bumps records_scanned
/// and descriptor_bytes_scanned, applies the mode's distance test, and
/// appends a Match on acceptance. Returns whether the record was kept.
///
/// Match.distance semantics (the definitive statement, pinned by
/// tests/scan_kernel_test.cc): in kAll and kRadiusFilter modes it is the
/// Euclidean byte-space distance sqrt(sum_j (q_j - x_j)^2); in
/// kNormalizedRadiusFilter mode it is the model-normalized distance
/// sqrt(sum_j ((q_j - x_j) / scale_j)^2) — the one distance that mode
/// computes and tests against the radius (in sigma units). The
/// unnormalized distance is not computed in normalized mode.
///
/// On a quantized view, x_j is the *decoded* record (the same values every
/// fused kernel reconstructs) and the radius is inflated by the codec's
/// reconstruction error bound, so no record the exact representation would
/// accept is dropped; exact surfaces (memtable, in-memory backends, exact
/// segments) re-rank those candidates by construction.
inline bool RefineRecord(const fp::Fingerprint& query,
                         const DescriptorView& block, size_t i,
                         const RefineSpec& spec, QueryResult* result) {
  ++result->stats.records_scanned;
  result->stats.descriptor_bytes_scanned += block.desc_bytes;
  const uint8_t* record = block.descriptor(i);
  double radius_sq = spec.radius_sq;
  uint8_t decoded[fp::kDims];
  if (block.codec != nullptr && !block.codec->is_exact()) {
    DecodeDescriptor(*block.codec, record, decoded);
    record = decoded;
    if (spec.mode != RefinementMode::kAll) {
      const double err =
          spec.mode == RefinementMode::kNormalizedRadiusFilter
              ? block.codec->NormalizedMaxError(spec.inv_scale_sq.data())
              : block.codec->max_error;
      const double r = std::sqrt(spec.radius_sq) + err;
      radius_sq = r * r;
    }
  }
  double dist_sq;
  if (spec.mode == RefinementMode::kNormalizedRadiusFilter) {
    dist_sq = NormalizedSquaredDistance(query.data(), record,
                                        spec.inv_scale_sq.data());
  } else {
    dist_sq = static_cast<double>(SquaredDistanceU32(query.data(), record));
  }
  if (spec.mode != RefinementMode::kAll && dist_sq > radius_sq) {
    return false;
  }
  result->matches.push_back({block.id(i), block.time_code(i),
                             static_cast<float>(std::sqrt(dist_sq)),
                             block.x(i), block.y(i)});
  return true;
}

inline bool RefineRecord(const fp::Fingerprint& query,
                         const DescriptorBlock& block, size_t i,
                         const RefineSpec& spec, QueryResult* result) {
  return RefineRecord(query, block.View(), i, spec, result);
}

/// Refines records [first, last) of a view through the dispatched blocked
/// kernel. Equivalent to calling RefineRecord on each index in order —
/// identical matches and records_scanned accounting, vectorized distance
/// computation. The view may point into a resident DescriptorBlock or at
/// columns mapped from an on-disk segment; the kernel only reads through
/// the view's pointers.
void ScanRecords(const fp::Fingerprint& query, const DescriptorView& block,
                 size_t first, size_t last, const RefineSpec& spec,
                 QueryResult* result);

inline void ScanRecords(const fp::Fingerprint& query,
                        const DescriptorBlock& block, size_t first,
                        size_t last, const RefineSpec& spec,
                        QueryResult* result) {
  ScanRecords(query, block.View(), first, last, spec, result);
}

/// One-query scorer for *gathered* candidate sets — the graph-traversal
/// counterpart of ScanRecords. Construction widens the query (and, on a
/// quantized view, the codec tables) once and resolves the dispatched
/// kernel; each Score() call then computes the exact integer squared
/// byte-space distances of K arbitrary record indices in a single kernel
/// call (scalar/SSE2/AVX2/AVX-512 variants, decode fused for lvq8/lvq4
/// views, software prefetch of the descriptor lines a few gathers ahead).
/// The distances are the same integers the strip kernels produce — bitwise
/// identical across every variant (pinned by tests/scan_kernel_test.cc).
/// The view's arrays must outlive the scorer; a scorer is cheap enough to
/// build per query and is immutable afterwards (safe to share across
/// threads, though each beam search builds its own).
class GatherScorer {
 public:
  /// `query` points at fp::kDims exact descriptor bytes.
  GatherScorer(const uint8_t* query, const DescriptorView& view);
  GatherScorer(const fp::Fingerprint& query, const DescriptorView& view)
      : GatherScorer(query.data(), view) {}

  /// out[i] = squared distance of the query to (decoded) record
  /// indices[i]. Indices may repeat and arrive in any order; every index
  /// must be < view.count.
  void Score(const uint32_t* indices, size_t k, uint32_t* out) const;

  /// Hints the hardware prefetcher at record `index`'s descriptor line —
  /// call it for the next hop's neighborhood while the current one is
  /// being consumed.
  void Prefetch(uint32_t index) const {
    __builtin_prefetch(
        descriptors_ + static_cast<size_t>(index) * desc_bytes_, 0, 3);
  }

  /// Bytes per stored (coded) record of the underlying view.
  size_t desc_bytes() const { return desc_bytes_; }

 private:
  const uint8_t* descriptors_;
  size_t desc_bytes_;
  bool coded_;
  internal::QuantQuery quant_{};        // quantized views only
  uint8_t query_[fp::kDims];            // exact views only
  internal::SqDistGatherFn exact_fn_ = nullptr;
  internal::SqDistCodedGatherFn coded_fn_ = nullptr;
};

/// Membership of a curve key in the half-open section [begin, end), where
/// a numerically zero `end` denotes the final section wrapping to the top
/// of the key space (the same convention S3Index::ResolveRange applies).
inline bool KeyInSection(const BitKey& key, const BitKey& begin,
                         const BitKey& end) {
  return begin <= key && (end.is_zero() || key < end);
}

/// Membership of a curve key in a block selection's merged, sorted,
/// disjoint ranges (binary search on the range starts).
bool KeyInSelection(const BitKey& key,
                    const std::vector<std::pair<BitKey, BitKey>>& ranges);

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_SCAN_KERNEL_H_
