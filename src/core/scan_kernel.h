#ifndef S3VCD_CORE_SCAN_KERNEL_H_
#define S3VCD_CORE_SCAN_KERNEL_H_

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/record.h"
#include "core/searcher.h"
#include "fingerprint/fingerprint.h"
#include "util/bitkey.h"

namespace s3vcd::core {

/// The shared refinement kernel: every backend's inner scan loop — the
/// S3 index's curve-section scan, the dynamic index's insert-buffer pass,
/// the VA-file's phase-2 exact check, the LSH candidate filter and the
/// sequential scan — funnels each touched record through RefineRecord, so
/// `records_scanned` and match accounting mean exactly the same thing on
/// every backend (pinned by tests/backend_parity_test.cc).
struct RefineSpec {
  /// `model` is only required for kNormalizedRadiusFilter.
  RefineSpec(RefinementMode mode, double radius, const DistortionModel* model)
      : mode(mode), radius_sq(radius * radius), model(model) {}

  RefinementMode mode;
  double radius_sq;
  const DistortionModel* model;
};

/// Model-normalized squared distance (per-component sigma weighting).
inline double NormalizedSquaredDistance(const fp::Fingerprint& a,
                                        const fp::Fingerprint& b,
                                        const DistortionModel& model) {
  double acc = 0;
  for (int j = 0; j < fp::kDims; ++j) {
    const double d =
        (static_cast<double>(a[j]) - b[j]) / model.ComponentScale(j);
    acc += d * d;
  }
  return acc;
}

/// Refines one candidate record: bumps records_scanned, applies the mode's
/// distance test, and appends a Match on acceptance. Returns whether the
/// record was kept.
inline bool RefineRecord(const fp::Fingerprint& query,
                         const FingerprintRecord& rec, const RefineSpec& spec,
                         QueryResult* result) {
  ++result->stats.records_scanned;
  const double dist_sq = fp::SquaredDistance(query, rec.descriptor);
  if (spec.mode == RefinementMode::kRadiusFilter &&
      dist_sq > spec.radius_sq) {
    return false;
  }
  if (spec.mode == RefinementMode::kNormalizedRadiusFilter &&
      NormalizedSquaredDistance(query, rec.descriptor, *spec.model) >
          spec.radius_sq) {
    return false;
  }
  result->matches.push_back({rec.id, rec.time_code,
                             static_cast<float>(std::sqrt(dist_sq)), rec.x,
                             rec.y});
  return true;
}

/// Refines a contiguous slice of records.
inline void ScanRecords(const fp::Fingerprint& query,
                        const FingerprintRecord* records, size_t count,
                        const RefineSpec& spec, QueryResult* result) {
  for (size_t i = 0; i < count; ++i) {
    RefineRecord(query, records[i], spec, result);
  }
}

/// Membership of a curve key in the half-open section [begin, end), where
/// a numerically zero `end` denotes the final section wrapping to the top
/// of the key space (the same convention S3Index::ResolveRange applies).
inline bool KeyInSection(const BitKey& key, const BitKey& begin,
                         const BitKey& end) {
  return begin <= key && (end.is_zero() || key < end);
}

/// Membership of a curve key in a block selection's merged, sorted,
/// disjoint ranges (binary search on the range starts).
bool KeyInSelection(const BitKey& key,
                    const std::vector<std::pair<BitKey, BitKey>>& ranges);

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_SCAN_KERNEL_H_
