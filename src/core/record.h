#ifndef S3VCD_CORE_RECORD_H_
#define S3VCD_CORE_RECORD_H_

#include <cstdint>

#include "fingerprint/fingerprint.h"

namespace s3vcd::core {

/// One referenced fingerprint as stored in the database: the 20-byte
/// descriptor plus the video sequence identifier and time code used by the
/// voting strategy (Section III). The interest point position is kept for
/// the spatial-coherence extension of the vote (paper Section VI).
struct FingerprintRecord {
  fp::Fingerprint descriptor{};
  uint32_t id = 0;
  uint32_t time_code = 0;
  float x = 0;
  float y = 0;
};

/// One search hit returned by a query.
struct Match {
  uint32_t id = 0;
  uint32_t time_code = 0;
  /// Distance between the query and the stored descriptor; which distance
  /// depends on the refinement mode — see RefineRecord in
  /// core/scan_kernel.h for the definitive statement.
  float distance = 0;
  float x = 0;
  float y = 0;
};

/// Per-query instrumentation, the raw material of the paper's timing plots.
struct QueryStats {
  double filter_seconds = 0;      ///< statistical / geometric filtering step
  double refine_seconds = 0;      ///< sequential scan of the curve sections
  /// Nanosecond-resolution selection/refine split of the same two stages
  /// (selection_ns mirrors filter_seconds, refine_ns mirrors
  /// refine_seconds). Sub-microsecond cached selections vanish in
  /// double-seconds aggregation; these feed the `# METRICS` blocks and the
  /// `s3vcd_tool query` timing summary.
  uint64_t selection_ns = 0;
  uint64_t refine_ns = 0;
  /// True when the block selection was served from a SelectionCache hit.
  /// On a cached hit no tree walk ran: nodes_visited is reported as 0 and
  /// selection_ns is the (tiny) lookup time, while blocks_selected /
  /// probability_mass still describe the reused selection.
  bool selection_cached = false;
  uint64_t blocks_selected = 0;   ///< card(B_alpha)
  uint64_t ranges_scanned = 0;    ///< merged contiguous curve sections
  uint64_t records_scanned = 0;   ///< fingerprints touched by refinement
  /// Stored descriptor bytes the refinement actually read: records_scanned
  /// weighted by each surface's per-record code width (20 exact, 10 lvq4 —
  /// see core/descriptor_codec.h). The headline metric of quantized codecs:
  /// on a quantized segment it is half the exact figure for the same scan.
  uint64_t descriptor_bytes_scanned = 0;
  uint64_t nodes_visited = 0;     ///< block-tree nodes expanded by the filter
  double probability_mass = 0;    ///< achieved expectation of the region
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_RECORD_H_
