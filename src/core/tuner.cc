#include "core/tuner.h"

#include <algorithm>

#include "util/logging.h"
#include "util/math.h"
#include "util/timer.h"

namespace s3vcd::core {

DepthTuningResult TuneDepth(const S3Index& index, const DistortionModel& model,
                            const std::vector<fp::Fingerprint>& sample_queries,
                            double alpha,
                            const std::vector<int>& candidate_depths,
                            int repetitions) {
  S3VCD_CHECK(!candidate_depths.empty());
  S3VCD_CHECK(!sample_queries.empty());
  S3VCD_CHECK(repetitions >= 1);
  DepthTuningResult result;
  double best_ms = -1;
  for (int depth : candidate_depths) {
    QueryOptions options;
    options.filter.depth = depth;
    options.filter.alpha = alpha;
    Stopwatch watch;
    for (int rep = 0; rep < repetitions; ++rep) {
      for (const fp::Fingerprint& q : sample_queries) {
        const QueryResult r = index.StatisticalQuery(q, model, options);
        (void)r;
      }
    }
    const double avg_ms = watch.ElapsedMillis() /
                          (repetitions * sample_queries.size());
    result.profile.emplace_back(depth, avg_ms);
    if (best_ms < 0 || avg_ms < best_ms) {
      best_ms = avg_ms;
      result.best_depth = depth;
    }
  }
  return result;
}

std::vector<int> DefaultDepthCandidates(size_t db_size, int key_bits) {
  const int center = db_size < 2
                         ? 4
                         : Log2Exact(NextPowerOfTwo(db_size));
  std::vector<int> candidates;
  for (int p = std::max(2, center - 6); p <= std::min(key_bits, center + 4);
       p += 2) {
    candidates.push_back(p);
  }
  if (candidates.empty()) {
    candidates.push_back(std::min(4, key_bits));
  }
  return candidates;
}

}  // namespace s3vcd::core
