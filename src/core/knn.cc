#include "core/knn.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "hilbert/block_tree.h"
#include "util/logging.h"
#include "util/timer.h"

namespace s3vcd::core {

namespace {

using hilbert::BlockTree;

double BoxMinSquaredDistance(const BlockTree::Node& node,
                             const fp::Fingerprint& query, int shift,
                             int dims) {
  double acc = 0;
  for (int j = 0; j < dims; ++j) {
    const double q = query[j];
    const double lo = static_cast<double>(node.lo[j] << shift);
    const double hi = static_cast<double>(node.hi[j] << shift) - 1.0;
    if (q < lo) {
      acc += (lo - q) * (lo - q);
    } else if (q > hi) {
      acc += (q - hi) * (q - hi);
    }
  }
  return acc;
}

struct FrontierEntry {
  double min_dist_sq;
  BlockTree::Node node;
};
struct FrontierGreater {
  bool operator()(const FrontierEntry& a, const FrontierEntry& b) const {
    return a.min_dist_sq > b.min_dist_sq;
  }
};

// Max-heap of the best k matches by distance.
struct ResultGreater {
  bool operator()(const Match& a, const Match& b) const {
    return a.distance < b.distance;
  }
};

}  // namespace

QueryResult KnnQuery(const S3Index& index, const fp::Fingerprint& query,
                     const KnnOptions& options) {
  S3VCD_CHECK(options.k >= 1);
  QueryResult result;
  const FingerprintDatabase& db = index.database();
  if (db.empty()) {
    return result;
  }
  Stopwatch watch;
  const hilbert::HilbertCurve& curve = db.curve();
  const BlockTree tree(curve);
  const int shift = 8 - curve.order();
  const int depth =
      std::clamp(options.depth, 1, std::min(curve.key_bits(), 48));

  std::priority_queue<FrontierEntry, std::vector<FrontierEntry>,
                      FrontierGreater>
      frontier;
  frontier.push({0.0, tree.Root()});
  result.stats.nodes_visited = 1;

  std::priority_queue<Match, std::vector<Match>, ResultGreater> best;
  auto kth_dist = [&]() {
    return best.size() < static_cast<size_t>(options.k)
               ? std::numeric_limits<float>::infinity()
               : best.top().distance;
  };

  uint64_t blocks_scanned = 0;
  while (!frontier.empty()) {
    const FrontierEntry top = frontier.top();
    const double kth = kth_dist();
    // Exactness: every unexplored region is at least this far away.
    if (std::sqrt(top.min_dist_sq) >= kth) {
      break;
    }
    frontier.pop();
    if (top.node.depth == depth) {
      // Leaf block: scan its records.
      const auto [first, last] =
          index.ResolveRange(top.node.RangeBegin(curve.key_bits()),
                             top.node.RangeEnd(curve.key_bits()));
      ++result.stats.ranges_scanned;
      ++blocks_scanned;
      ++result.stats.blocks_selected;
      for (size_t i = first; i < last; ++i) {
        const FingerprintRecord& rec = db.record(i);
        ++result.stats.records_scanned;
        const double dist =
            std::sqrt(fp::SquaredDistance(query, rec.descriptor));
        if (dist < kth_dist()) {
          best.push({rec.id, rec.time_code, static_cast<float>(dist),
                     rec.x, rec.y});
          if (best.size() > static_cast<size_t>(options.k)) {
            best.pop();
          }
        }
      }
      if (options.max_blocks != 0 && blocks_scanned >= options.max_blocks) {
        break;  // approximate early stop
      }
      continue;
    }
    BlockTree::Node c0;
    BlockTree::Node c1;
    tree.Split(top.node, &c0, &c1);
    result.stats.nodes_visited += 2;
    frontier.push(
        {BoxMinSquaredDistance(c0, query, shift, curve.dims()), c0});
    frontier.push(
        {BoxMinSquaredDistance(c1, query, shift, curve.dims()), c1});
  }

  result.matches.resize(best.size());
  for (size_t i = result.matches.size(); i-- > 0;) {
    result.matches[i] = best.top();
    best.pop();
  }
  result.stats.refine_ns = watch.ElapsedNanos();
  result.stats.refine_seconds = result.stats.refine_ns * 1e-9;
  return result;
}

}  // namespace s3vcd::core
