// Vamana-style graph ANN backend (DiskANN lineage): a single-shot
// proximity graph built with GreedySearch + alpha-RobustPrune under a hard
// out-degree bound, queried by beam search. Every candidate set — during
// build and during queries — is scored through the batched gather kernels
// of core/scan_kernel.h, so graph traversal rides the same 0-ULP-pinned
// SIMD distance path as the refine scans.
//
// The build is deterministic in (records, options): points are inserted in
// a seeded random order, in fixed-size batches whose greedy searches run
// in parallel against the graph state frozen at batch start (reads only),
// and whose edge updates are applied serially in batch order. Thread count
// therefore never changes the produced graph (pinned by
// tests/backend_parity_test.cc).
#include "core/vamana.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "core/parallel.h"
#include "core/scan_kernel.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace s3vcd::core {

namespace {

constexpr uint32_t kGraphMagic = 0x53335647;  // "S3VG"
constexpr uint32_t kGraphVersion = 1;

// Batch width of the parallel build. A fixed constant (not derived from
// the thread count) so batch boundaries — and hence the graph — are
// identical for every build_threads value.
constexpr size_t kBuildBatch = 2048;

bool CandidateLess(const VamanaScratch::Candidate& a,
                   const VamanaScratch::Candidate& b) {
  return a.dist_sq < b.dist_sq || (a.dist_sq == b.dist_sq && a.id < b.id);
}

}  // namespace

VamanaScratch* ThreadLocalVamanaScratch() {
  static thread_local VamanaScratch scratch;
  return &scratch;
}

VamanaIndex::VamanaIndex(std::vector<FingerprintRecord> records,
                         const VamanaOptions& options)
    : options_(options) {
  S3VCD_CHECK(options_.graph_degree >= 1);
  S3VCD_CHECK(options_.build_beam >= 1);
  S3VCD_CHECK(options_.beam_width >= 1);
  S3VCD_CHECK(options_.alpha >= 1.0);
  block_.Reserve(records.size());
  for (const FingerprintRecord& r : records) {
    block_.AppendRecord(r);
  }
  const size_t n = block_.size();
  // Digest of the exact input descriptors: a loaded graph blob only ever
  // pairs with the record set that produced it.
  digest_ = Crc32(block_.descriptors(), n * fp::kDims,
                  static_cast<uint32_t>(n));
  if (options_.codec == DescriptorCodecKind::kExactU8) {
    view_ = block_.View();
  } else {
    coded_ = CodedDescriptorBlock::Encode(options_.codec, block_);
    view_ = coded_.View();
    max_error_ = coded_.codec().max_error;
    block_ = DescriptorBlock();  // the coded columns are the storage now
  }
  degree_bound_ =
      n > 1 ? static_cast<uint32_t>(std::min<size_t>(
                  static_cast<size_t>(options_.graph_degree), n - 1))
            : 0;
  if (!options_.graph_path.empty()) {
    const Status status = LoadGraph(options_.graph_path);
    if (status.ok()) {
      loaded_from_blob_ = true;
    } else if (status.code() != StatusCode::kNotFound) {
      S3VCD_LOG(INFO) << "vamana graph blob " << options_.graph_path
                      << " not usable (" << status.ToString()
                      << "); rebuilding";
    }
  }
  if (!loaded_from_blob_) {
    Build();
    if (!options_.graph_path.empty()) {
      const Status status = SaveGraph(options_.graph_path);
      if (!status.ok()) {
        S3VCD_LOG(ERROR) << "vamana graph blob save failed: "
                         << status.ToString();
      }
    }
  }
}

std::vector<uint32_t> VamanaIndex::Neighbors(uint32_t node) const {
  S3VCD_CHECK(node < view_.count);
  const uint32_t* row =
      adj_.data() + static_cast<size_t>(node) * degree_bound_;
  return std::vector<uint32_t>(row, row + degree_[node]);
}

// ---- Beam search -------------------------------------------------------

template <typename OnScored>
uint64_t VamanaIndex::BeamSearch(const uint8_t* query_bytes, int beam,
                                 bool collect_visited,
                                 VamanaScratch* scratch,
                                 OnScored&& on_scored) const {
  const size_t n = view_.count;
  if (n == 0) {
    return 0;
  }
  if (scratch->visit_mark.size() != n) {
    scratch->visit_mark.assign(n, 0);
    scratch->epoch = 0;
  }
  if (++scratch->epoch == 0) {  // epoch wrapped: restamp everything
    std::fill(scratch->visit_mark.begin(), scratch->visit_mark.end(), 0);
    scratch->epoch = 1;
  }
  const uint32_t epoch = scratch->epoch;
  auto& pool = scratch->pool;
  pool.clear();
  if (collect_visited) {
    scratch->visited.clear();
  }
  const size_t cap = beam < 1 ? 1 : static_cast<size_t>(beam);
  const GatherScorer scorer(query_bytes, view_);

  const auto insert = [&pool, cap](uint32_t dist_sq, uint32_t id) {
    if (pool.size() == cap) {
      const VamanaScratch::Candidate& worst = pool.back();
      if (dist_sq > worst.dist_sq ||
          (dist_sq == worst.dist_sq && id >= worst.id)) {
        return;
      }
    }
    const VamanaScratch::Candidate candidate{dist_sq, id, false};
    const auto pos =
        std::lower_bound(pool.begin(), pool.end(), candidate, CandidateLess);
    pool.insert(pos, candidate);
    if (pool.size() > cap) {
      pool.pop_back();
    }
  };

  scratch->visit_mark[medoid_] = epoch;
  uint32_t entry_dist = 0;
  scorer.Score(&medoid_, 1, &entry_dist);
  on_scored(medoid_, entry_dist);
  insert(entry_dist, medoid_);

  uint64_t expansions = 0;
  auto& ids = scratch->gather_ids;
  auto& dists = scratch->gather_dist;
  while (true) {
    size_t next = pool.size();
    for (size_t i = 0; i < pool.size(); ++i) {
      if (!pool[i].expanded) {
        next = i;
        break;
      }
    }
    if (next == pool.size()) {
      break;
    }
    pool[next].expanded = true;
    const uint32_t node = pool[next].id;
    const uint32_t node_dist = pool[next].dist_sq;
    ++expansions;
    if (collect_visited) {
      scratch->visited.push_back({node_dist, node, true});
    }
    const uint32_t* row =
        adj_.data() + static_cast<size_t>(node) * degree_bound_;
    const uint32_t deg = degree_.empty() ? 0 : degree_[node];
    ids.clear();
    for (uint32_t j = 0; j < deg; ++j) {
      const uint32_t nb = row[j];
      if (scratch->visit_mark[nb] != epoch) {
        scratch->visit_mark[nb] = epoch;
        ids.push_back(nb);
      }
    }
    if (ids.empty()) {
      continue;
    }
    dists.resize(ids.size());
    scorer.Score(ids.data(), ids.size(), dists.data());
    for (size_t j = 0; j < ids.size(); ++j) {
      on_scored(ids[j], dists[j]);
      insert(dists[j], ids[j]);
    }
    // Software-prefetch the next hop: its adjacency row and descriptor
    // line go out now, and its neighborhood's descriptor lines stream
    // inside the next gather call.
    for (size_t i = 0; i < pool.size(); ++i) {
      if (!pool[i].expanded) {
        __builtin_prefetch(
            adj_.data() + static_cast<size_t>(pool[i].id) * degree_bound_, 0,
            3);
        scorer.Prefetch(pool[i].id);
        break;
      }
    }
  }
  return expansions;
}

// ---- Build -------------------------------------------------------------

void VamanaIndex::RobustPrune(uint32_t p, double alpha, const uint8_t* base,
                              std::vector<VamanaScratch::Candidate>* candidates,
                              std::vector<uint32_t>* out) const {
  out->clear();
  std::sort(candidates->begin(), candidates->end(), CandidateLess);
  candidates->erase(
      std::unique(candidates->begin(), candidates->end(),
                  [](const VamanaScratch::Candidate& a,
                     const VamanaScratch::Candidate& b) {
                    return a.id == b.id;
                  }),
      candidates->end());
  const size_t m = candidates->size();
  std::vector<char> removed(m, 0);
  const double alpha_sq = alpha * alpha;
  for (size_t i = 0; i < m && out->size() < degree_bound_; ++i) {
    if (removed[i]) {
      continue;
    }
    const VamanaScratch::Candidate star = (*candidates)[i];
    if (star.id == p) {
      continue;
    }
    out->push_back(star.id);
    const uint8_t* sb = base + static_cast<size_t>(star.id) * fp::kDims;
    for (size_t j = i + 1; j < m; ++j) {
      if (removed[j]) {
        continue;
      }
      const VamanaScratch::Candidate& c = (*candidates)[j];
      const double d_star = static_cast<double>(SquaredDistanceU32(
          sb, base + static_cast<size_t>(c.id) * fp::kDims));
      if (alpha_sq * d_star <= static_cast<double>(c.dist_sq)) {
        removed[j] = 1;
      }
    }
  }
}

void VamanaIndex::Build() {
  const size_t n = view_.count;
  degree_.assign(n, 0);
  adj_.assign(n * degree_bound_, 0);
  medoid_ = 0;
  if (n <= 1 || degree_bound_ == 0) {
    return;
  }

  // Exact-domain bytes of every record, build-time only: decoded once for
  // quantized storage (so build distances equal the query-time decoded
  // distances), aliased for exact storage.
  std::vector<uint8_t> decoded;
  const uint8_t* base;
  if (view_.codec != nullptr && !view_.codec->is_exact()) {
    decoded.resize(n * fp::kDims);
    for (size_t i = 0; i < n; ++i) {
      DecodeDescriptor(*view_.codec, view_.descriptor(i),
                       decoded.data() + i * fp::kDims);
    }
    base = decoded.data();
  } else {
    base = view_.descriptors;
  }

  // Entry point: the record nearest the component-wise centroid (the
  // cheap deterministic stand-in for the exact medoid).
  {
    std::array<double, fp::kDims> mean{};
    for (size_t i = 0; i < n; ++i) {
      const uint8_t* d = base + i * fp::kDims;
      for (int j = 0; j < fp::kDims; ++j) {
        mean[j] += d[j];
      }
    }
    for (int j = 0; j < fp::kDims; ++j) {
      mean[j] /= static_cast<double>(n);
    }
    double best = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint8_t* d = base + i * fp::kDims;
      double dist = 0;
      for (int j = 0; j < fp::kDims; ++j) {
        const double diff = static_cast<double>(d[j]) - mean[j];
        dist += diff * diff;
      }
      if (i == 0 || dist < best) {
        best = dist;
        medoid_ = static_cast<uint32_t>(i);
      }
    }
  }

  Rng rng(options_.seed);
  // Initial random graph: up to R distinct random out-neighbors per node,
  // so the first greedy searches have edges to walk.
  for (size_t i = 0; i < n; ++i) {
    uint32_t* row = adj_.data() + i * degree_bound_;
    uint32_t deg = 0;
    for (uint32_t attempt = 0;
         attempt < 2 * degree_bound_ && deg < degree_bound_; ++attempt) {
      const uint32_t j = static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      if (j == i) {
        continue;
      }
      bool present = false;
      for (uint32_t t = 0; t < deg; ++t) {
        if (row[t] == j) {
          present = true;
          break;
        }
      }
      if (!present) {
        row[deg++] = j;
      }
    }
    degree_[i] = deg;
  }

  // Seeded random insertion order.
  std::vector<uint32_t> perm(n);
  for (size_t i = 0; i < n; ++i) {
    perm[i] = static_cast<uint32_t>(i);
  }
  for (size_t i = n - 1; i > 0; --i) {
    const size_t j = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(i)));
    std::swap(perm[i], perm[j]);
  }

  int threads = options_.build_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(1, threads);
  const int build_beam =
      std::max(options_.build_beam, static_cast<int>(degree_bound_));

  const auto add_backlink = [this, base](uint32_t q, uint32_t p,
                                         double alpha) {
    if (q == p) {
      return;
    }
    uint32_t* row = adj_.data() + static_cast<size_t>(q) * degree_bound_;
    const uint32_t deg = degree_[q];
    for (uint32_t t = 0; t < deg; ++t) {
      if (row[t] == p) {
        return;
      }
    }
    if (deg < degree_bound_) {
      row[deg] = p;
      degree_[q] = deg + 1;
      return;
    }
    // Overflow: alpha-prune the neighborhood plus the new backlink.
    const uint8_t* qb = base + static_cast<size_t>(q) * fp::kDims;
    std::vector<VamanaScratch::Candidate> cand;
    cand.reserve(deg + 1);
    for (uint32_t t = 0; t < deg; ++t) {
      cand.push_back(
          {SquaredDistanceU32(
               qb, base + static_cast<size_t>(row[t]) * fp::kDims),
           row[t], false});
    }
    cand.push_back(
        {SquaredDistanceU32(qb, base + static_cast<size_t>(p) * fp::kDims),
         p, false});
    std::vector<uint32_t> pruned;
    RobustPrune(q, alpha, base, &cand, &pruned);
    degree_[q] = static_cast<uint32_t>(pruned.size());
    std::copy(pruned.begin(), pruned.end(), row);
  };

  // Two passes over the seeded insertion order (the standard Vamana
  // schedule): pass 1 at alpha = 1 lays short-range edges, pass 2 at the
  // configured alpha re-prunes with diversity.
  const double pass_alphas[2] = {1.0, options_.alpha};
  for (const double pass_alpha : pass_alphas) {
    for (size_t start = 0; start < n; start += kBuildBatch) {
      const size_t count = std::min(kBuildBatch, n - start);
      std::vector<std::vector<uint32_t>> pruned(count);
      // Parallel phase: greedy-search + prune every point of the batch
      // against the graph frozen at batch start (reads only).
      ParallelFor(count, threads, nullptr, [&](size_t first, size_t last) {
        VamanaScratch* scratch = ThreadLocalVamanaScratch();
        for (size_t b = first; b < last; ++b) {
          const uint32_t p = perm[start + b];
          const uint8_t* pb = base + static_cast<size_t>(p) * fp::kDims;
          BeamSearch(pb, build_beam, /*collect_visited=*/true, scratch,
                     [](uint32_t, uint32_t) {});
          std::vector<VamanaScratch::Candidate> cand = scratch->visited;
          const uint32_t* row =
              adj_.data() + static_cast<size_t>(p) * degree_bound_;
          for (uint32_t t = 0; t < degree_[p]; ++t) {
            cand.push_back(
                {SquaredDistanceU32(
                     pb, base + static_cast<size_t>(row[t]) * fp::kDims),
                 row[t], false});
          }
          RobustPrune(p, pass_alpha, base, &cand, &pruned[b]);
        }
      });
      // Serial apply phase, in batch order: new out-edges, then pruned
      // backlinks — deterministic regardless of the fan-out above.
      for (size_t b = 0; b < count; ++b) {
        const uint32_t p = perm[start + b];
        uint32_t* row = adj_.data() + static_cast<size_t>(p) * degree_bound_;
        degree_[p] = static_cast<uint32_t>(pruned[b].size());
        std::copy(pruned[b].begin(), pruned[b].end(), row);
        for (const uint32_t q : pruned[b]) {
          add_backlink(q, p, pass_alpha);
        }
      }
    }
  }
}

// ---- Queries -----------------------------------------------------------

QueryResult VamanaIndex::RangeQueryImpl(const fp::Fingerprint& query,
                                        double epsilon, int beam) const {
  QueryResult result;
  if (view_.count == 0) {
    return result;
  }
  Stopwatch watch;
  // Same inflation convention as the refine kernels: on a quantized store
  // the radius grows by the codec's reconstruction bound, so no record the
  // exact representation would accept is dropped by quantization (misses
  // can only come from the graph traversal itself).
  const double r = std::max(0.0, epsilon) + max_error_;
  const double radius_sq = r * r;
  VamanaScratch* scratch = ThreadLocalVamanaScratch();
  uint64_t scored = 0;
  const uint64_t expansions = BeamSearch(
      query.data(), beam, /*collect_visited=*/false, scratch,
      [&](uint32_t id, uint32_t dist_sq) {
        ++scored;
        const double d_sq = static_cast<double>(dist_sq);
        if (d_sq > radius_sq) {
          return;
        }
        result.matches.push_back({view_.id(id), view_.time_code(id),
                                  static_cast<float>(std::sqrt(d_sq)),
                                  view_.x(id), view_.y(id)});
      });
  result.stats.records_scanned = scored;
  result.stats.descriptor_bytes_scanned = scored * view_.desc_bytes;
  result.stats.nodes_visited = expansions;
  result.stats.refine_ns = watch.ElapsedNanos();
  result.stats.refine_seconds = result.stats.refine_ns * 1e-9;
  return result;
}

QueryResult VamanaIndex::RangeQueryWithBeam(const fp::Fingerprint& query,
                                            double epsilon, int beam) const {
  QueryResult result = RangeQueryImpl(query, epsilon, beam);
  RecordQueryMetrics(QueryKind::kRange, result.stats, result.matches.size());
  return result;
}

QueryResult VamanaIndex::RangeQuery(const fp::Fingerprint& query,
                                    double epsilon, int /*depth*/) const {
  return RangeQueryWithBeam(query, epsilon, options_.beam_width);
}

QueryResult VamanaIndex::StatQuery(const fp::Fingerprint& query,
                                   const DistortionModel& model,
                                   const QueryOptions& options) const {
  QueryResult result = RangeQueryImpl(
      query, EqualExpectationRadius(model, options.filter.alpha),
      options_.beam_width);
  RecordQueryMetrics(QueryKind::kStatistical, result.stats,
                     result.matches.size());
  return result;
}

SearcherStats VamanaIndex::Stats() const {
  SearcherStats stats;
  stats.records = view_.count;
  stats.pending_inserts = 0;
  stats.codec =
      view_.codec != nullptr ? view_.codec->name() : "exact";
  stats.codec_max_error = max_error_;
  return stats;
}

uint64_t VamanaIndex::ApproxBytes() const {
  uint64_t bytes = adj_.size() * sizeof(uint32_t) +
                   degree_.size() * sizeof(uint32_t);
  if (view_.codec != nullptr && !view_.codec->is_exact()) {
    bytes += coded_.coded_descriptor_bytes() +
             coded_.size() * (2 * sizeof(uint32_t) + 2 * sizeof(float));
  } else {
    bytes += block_.MemoryBytes();
  }
  return bytes;
}

// ---- Graph blob --------------------------------------------------------

Status VamanaIndex::SaveGraph(const std::string& path) const {
  BinaryWriter writer;
  S3VCD_RETURN_IF_ERROR(writer.Open(path));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(kGraphMagic));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(kGraphVersion));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(fp::kDims));
  S3VCD_RETURN_IF_ERROR(writer.WriteU64(view_.count));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(degree_bound_));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(medoid_));
  S3VCD_RETURN_IF_ERROR(
      writer.WriteU32(static_cast<uint32_t>(options_.graph_degree)));
  S3VCD_RETURN_IF_ERROR(
      writer.WriteU32(static_cast<uint32_t>(options_.build_beam)));
  S3VCD_RETURN_IF_ERROR(writer.WriteDouble(options_.alpha));
  S3VCD_RETURN_IF_ERROR(writer.WriteU64(options_.seed));
  S3VCD_RETURN_IF_ERROR(
      writer.WriteU32(static_cast<uint32_t>(options_.codec)));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(digest_));
  S3VCD_RETURN_IF_ERROR(
      writer.WriteBytes(degree_.data(), degree_.size() * sizeof(uint32_t)));
  S3VCD_RETURN_IF_ERROR(
      writer.WriteBytes(adj_.data(), adj_.size() * sizeof(uint32_t)));
  const uint32_t crc = writer.crc();
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(crc));
  S3VCD_RETURN_IF_ERROR(writer.Sync());
  return writer.Close();
}

Status VamanaIndex::LoadGraph(const std::string& path) {
  BinaryReader reader;
  Status open = reader.Open(path);
  if (!open.ok()) {
    return Status::NotFound("no vamana graph blob at " + path);
  }
  uint32_t magic = 0, version = 0, dims = 0;
  uint64_t count = 0;
  S3VCD_RETURN_IF_ERROR(reader.ReadU32(&magic));
  S3VCD_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (magic != kGraphMagic || version != kGraphVersion) {
    return Status::Corruption("bad vamana graph magic/version");
  }
  S3VCD_RETURN_IF_ERROR(reader.ReadU32(&dims));
  S3VCD_RETURN_IF_ERROR(reader.ReadU64(&count));
  uint32_t bound = 0, medoid = 0, graph_degree = 0, build_beam = 0;
  S3VCD_RETURN_IF_ERROR(reader.ReadU32(&bound));
  S3VCD_RETURN_IF_ERROR(reader.ReadU32(&medoid));
  S3VCD_RETURN_IF_ERROR(reader.ReadU32(&graph_degree));
  S3VCD_RETURN_IF_ERROR(reader.ReadU32(&build_beam));
  double alpha = 0;
  uint64_t seed = 0;
  uint32_t codec = 0, digest = 0;
  S3VCD_RETURN_IF_ERROR(reader.ReadDouble(&alpha));
  S3VCD_RETURN_IF_ERROR(reader.ReadU64(&seed));
  S3VCD_RETURN_IF_ERROR(reader.ReadU32(&codec));
  S3VCD_RETURN_IF_ERROR(reader.ReadU32(&digest));
  if (dims != static_cast<uint32_t>(fp::kDims) || count != view_.count ||
      bound != degree_bound_ ||
      graph_degree != static_cast<uint32_t>(options_.graph_degree) ||
      build_beam != static_cast<uint32_t>(options_.build_beam) ||
      alpha != options_.alpha || seed != options_.seed ||
      codec != static_cast<uint32_t>(options_.codec) ||
      digest != digest_) {
    return Status::FailedPrecondition(
        "vamana graph blob does not match the records/options");
  }
  if (count > 0 && medoid >= count) {
    return Status::Corruption("vamana graph medoid out of range");
  }
  std::vector<uint32_t> degree(count);
  std::vector<uint32_t> adj(count * bound);
  S3VCD_RETURN_IF_ERROR(
      reader.ReadBytes(degree.data(), degree.size() * sizeof(uint32_t)));
  S3VCD_RETURN_IF_ERROR(
      reader.ReadBytes(adj.data(), adj.size() * sizeof(uint32_t)));
  const uint32_t computed = reader.crc();
  uint32_t stored = 0;
  S3VCD_RETURN_IF_ERROR(reader.ReadU32(&stored));
  if (stored != computed) {
    return Status::Corruption("vamana graph blob checksum mismatch");
  }
  for (size_t i = 0; i < count; ++i) {
    if (degree[i] > bound) {
      return Status::Corruption("vamana graph degree out of range");
    }
    const uint32_t* row = adj.data() + i * bound;
    for (uint32_t t = 0; t < degree[i]; ++t) {
      if (row[t] >= count) {
        return Status::Corruption("vamana graph neighbor out of range");
      }
    }
  }
  medoid_ = medoid;
  degree_ = std::move(degree);
  adj_ = std::move(adj);
  return Status::OK();
}

}  // namespace s3vcd::core
