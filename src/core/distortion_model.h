#ifndef S3VCD_CORE_DISTORTION_MODEL_H_
#define S3VCD_CORE_DISTORTION_MODEL_H_

#include <array>
#include <memory>

#include "fingerprint/fingerprint.h"

namespace s3vcd::core {

/// Probabilistic model of the distortion vector Delta S = S(m) - S(t(m))
/// between a referenced fingerprint and the fingerprint of a transformed
/// copy (paper Section II). The S3 system only requires the D components to
/// be independent; a model supplies, per component, the probability that a
/// referenced value falls in an interval given the query value.
class DistortionModel {
 public:
  virtual ~DistortionModel() = default;

  /// P(X_j in [lo, hi) | Q_j = q) where X = Q + Delta S, i.e. the mass the
  /// distortion density centered at q puts on the interval.
  virtual double ComponentMass(int component, double lo, double hi,
                               double q) const = 0;

  /// P(X_j < x | Q_j = q): the cumulative distribution of component j at x.
  /// The block filter builds per-query tables of this at the cell
  /// boundaries, so interval masses become table subtractions. Contract:
  /// ComponentCdf(j, hi, q) - ComponentCdf(j, lo, q) must equal
  /// ComponentMass(j, lo, hi, q) *exactly* (the same floating-point
  /// subtraction), which holds automatically when ComponentMass is itself
  /// defined as a difference of CDF evaluations — as the default here and
  /// the Gaussian models do.
  virtual double ComponentCdf(int component, double x, double q) const {
    return ComponentMass(component, -1e30, x, q);
  }

  /// Characteristic scale of component `component` (its standard
  /// deviation for Gaussian models). Used by the normalized-radius
  /// refinement to weight distances per component.
  virtual double ComponentScale(int /*component*/) const { return 1.0; }
};

/// The paper's practical choice (Section IV-C): zero-mean normal with the
/// same standard deviation for every component, estimated from the most
/// severe expected transformation.
class GaussianDistortionModel final : public DistortionModel {
 public:
  explicit GaussianDistortionModel(double sigma);

  double ComponentMass(int component, double lo, double hi,
                       double q) const override;
  double ComponentCdf(int component, double x, double q) const override;
  double ComponentScale(int /*component*/) const override { return sigma_; }

  double sigma() const { return sigma_; }

 private:
  double sigma_;
};

/// Extension (paper Section VI, "investigations in the statistical
/// modeling"): an independent zero-mean normal per component, using the
/// per-component sigmas measured by the simulated perfect detector.
class PerComponentGaussianModel final : public DistortionModel {
 public:
  explicit PerComponentGaussianModel(
      const std::array<double, fp::kDims>& sigmas);

  double ComponentMass(int component, double lo, double hi,
                       double q) const override;
  double ComponentCdf(int component, double x, double q) const override;
  double ComponentScale(int component) const override {
    return sigmas_[component];
  }

  double sigma(int component) const { return sigmas_[component]; }

 private:
  std::array<double, fp::kDims> sigmas_;
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_DISTORTION_MODEL_H_
