#ifndef S3VCD_CORE_DATABASE_H_
#define S3VCD_CORE_DATABASE_H_

#include <string>
#include <vector>

#include "core/descriptor_block.h"
#include "core/record.h"
#include "fingerprint/fingerprint.h"
#include "hilbert/hilbert_curve.h"
#include "util/bitkey.h"
#include "util/io.h"
#include "util/status.h"

namespace s3vcd::core {

namespace internal {

/// On-disk record size: descriptor + id + time code + x + y.
inline constexpr size_t kRecordBytes = fp::kDims + 16;
/// Database file header: magic, version, dims, order (u32 each) + count
/// (u64) = 24 bytes before the record payload.
inline constexpr uint64_t kHeaderBytes = 24;

void SerializeRecord(const FingerprintRecord& r, uint8_t* out);
void DeserializeRecord(const uint8_t* in, FingerprintRecord* r);

struct FileHeader {
  uint32_t dims = 0;
  uint32_t order = 0;
  uint64_t count = 0;
};

/// Reads and validates the header of a database file, leaving the reader
/// positioned at the first record.
Result<FileHeader> ReadHeader(BinaryReader* reader);

}  // namespace internal

/// The static fingerprint store of the S3 system: records physically
/// ordered by their position on the Hilbert curve (paper Section IV). The
/// structure is immutable once built — the paper's design explicitly trades
/// dynamic insertion for a compact, cache-friendly sorted layout.
class FingerprintDatabase {
 public:
  /// Default curve order (bits per component): fingerprint bytes are grid
  /// coordinates directly.
  static constexpr int kDefaultOrder = 8;

  /// An empty database with the given curve order in [1, 8].
  explicit FingerprintDatabase(int order = kDefaultOrder);

  FingerprintDatabase(FingerprintDatabase&&) = default;
  FingerprintDatabase& operator=(FingerprintDatabase&&) = default;
  FingerprintDatabase(const FingerprintDatabase&) = delete;
  FingerprintDatabase& operator=(const FingerprintDatabase&) = delete;

  const hilbert::HilbertCurve& curve() const { return curve_; }
  int order() const { return curve_.order(); }
  size_t size() const { return block_.size(); }
  bool empty() const { return block_.empty(); }

  /// Record i materialized in array-of-structs form. Scans should use
  /// block() instead of looping over this.
  FingerprintRecord record(size_t i) const { return block_.Record(i); }
  /// The structure-of-arrays record store (what ScanRecords consumes).
  const DescriptorBlock& block() const { return block_; }
  const BitKey& key(size_t i) const { return keys_[i]; }

  /// Index of the first record whose key is >= `key` (binary search).
  size_t LowerBound(const BitKey& key) const;

  /// Hilbert key of a fingerprint under this database's curve. When the
  /// order is below 8, byte components are truncated to the top bits.
  BitKey EncodeFingerprint(const fp::Fingerprint& fingerprint) const;

  /// Approximate in-memory footprint in bytes (records + keys).
  uint64_t MemoryBytes() const;

  /// Serializes to a single file (header, sorted records, CRC).
  Status SaveToFile(const std::string& path) const;
  static Result<FingerprintDatabase> LoadFromFile(const std::string& path);

 private:
  friend class DatabaseBuilder;

  hilbert::HilbertCurve curve_;
  DescriptorBlock block_;     // sorted by keys_
  std::vector<BitKey> keys_;  // parallel to block_
};

/// Accumulates fingerprints, then sorts them along the Hilbert curve into a
/// FingerprintDatabase.
class DatabaseBuilder {
 public:
  explicit DatabaseBuilder(int order = FingerprintDatabase::kDefaultOrder);

  void Add(const fp::Fingerprint& fingerprint, uint32_t id,
           uint32_t time_code, float x = 0, float y = 0);

  /// Adds every local fingerprint of a video under one identifier.
  void AddVideo(uint32_t id, const std::vector<fp::LocalFingerprint>& fps);

  size_t size() const { return records_.size(); }

  /// Sorts and returns the database; the builder is left empty.
  FingerprintDatabase Build();

 private:
  int order_;
  std::vector<FingerprintRecord> records_;
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_DATABASE_H_
