#include "core/database.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "util/io.h"
#include "util/logging.h"

namespace s3vcd::core {

namespace {

constexpr uint32_t kMagic = 0x53334442;  // "S3DB"
constexpr uint32_t kVersion = 1;

}  // namespace

namespace internal {

void SerializeRecord(const FingerprintRecord& r, uint8_t* out) {
  std::memcpy(out, r.descriptor.data(), fp::kDims);
  std::memcpy(out + fp::kDims, &r.id, 4);
  std::memcpy(out + fp::kDims + 4, &r.time_code, 4);
  std::memcpy(out + fp::kDims + 8, &r.x, 4);
  std::memcpy(out + fp::kDims + 12, &r.y, 4);
}

void DeserializeRecord(const uint8_t* in, FingerprintRecord* r) {
  std::memcpy(r->descriptor.data(), in, fp::kDims);
  std::memcpy(&r->id, in + fp::kDims, 4);
  std::memcpy(&r->time_code, in + fp::kDims + 4, 4);
  std::memcpy(&r->x, in + fp::kDims + 8, 4);
  std::memcpy(&r->y, in + fp::kDims + 12, 4);
}

Result<FileHeader> ReadHeader(BinaryReader* reader) {
  uint32_t magic = 0;
  uint32_t version = 0;
  FileHeader header;
  S3VCD_RETURN_IF_ERROR(reader->ReadU32(&magic));
  if (magic != kMagic) {
    return Status::Corruption("not a fingerprint database file");
  }
  S3VCD_RETURN_IF_ERROR(reader->ReadU32(&version));
  if (version != kVersion) {
    return Status::Corruption("unsupported database version");
  }
  S3VCD_RETURN_IF_ERROR(reader->ReadU32(&header.dims));
  if (header.dims != static_cast<uint32_t>(fp::kDims)) {
    return Status::Corruption("database dimensionality mismatch");
  }
  S3VCD_RETURN_IF_ERROR(reader->ReadU32(&header.order));
  if (header.order < 1 || header.order > 8) {
    return Status::Corruption("invalid curve order");
  }
  S3VCD_RETURN_IF_ERROR(reader->ReadU64(&header.count));
  return header;
}

}  // namespace internal

using internal::DeserializeRecord;
using internal::kRecordBytes;
using internal::SerializeRecord;

FingerprintDatabase::FingerprintDatabase(int order)
    : curve_(fp::kDims, order) {
  S3VCD_CHECK(order >= 1 && order <= 8);
}

size_t FingerprintDatabase::LowerBound(const BitKey& key) const {
  return static_cast<size_t>(
      std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin());
}

BitKey FingerprintDatabase::EncodeFingerprint(
    const fp::Fingerprint& fingerprint) const {
  uint32_t coords[fp::kDims];
  const int shift = 8 - curve_.order();
  for (int j = 0; j < fp::kDims; ++j) {
    coords[j] = static_cast<uint32_t>(fingerprint[j]) >> shift;
  }
  return curve_.Encode(coords);
}

uint64_t FingerprintDatabase::MemoryBytes() const {
  return block_.MemoryBytes() + keys_.size() * sizeof(BitKey);
}

Status FingerprintDatabase::SaveToFile(const std::string& path) const {
  BinaryWriter writer;
  S3VCD_RETURN_IF_ERROR(writer.Open(path));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(kMagic));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(kVersion));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(static_cast<uint32_t>(fp::kDims)));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(static_cast<uint32_t>(order())));
  S3VCD_RETURN_IF_ERROR(writer.WriteU64(block_.size()));
  uint8_t buf[kRecordBytes];
  for (size_t i = 0; i < block_.size(); ++i) {
    SerializeRecord(block_.Record(i), buf);
    S3VCD_RETURN_IF_ERROR(writer.WriteBytes(buf, kRecordBytes));
  }
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(writer.crc()));
  return writer.Close();
}

Result<FingerprintDatabase> FingerprintDatabase::LoadFromFile(
    const std::string& path) {
  BinaryReader reader;
  S3VCD_RETURN_IF_ERROR(reader.Open(path));
  S3VCD_ASSIGN_OR_RETURN(const internal::FileHeader header,
                         internal::ReadHeader(&reader));
  const uint64_t count = header.count;
  FingerprintDatabase db(static_cast<int>(header.order));
  db.block_.Reserve(count);
  db.keys_.reserve(count);
  uint8_t buf[kRecordBytes];
  FingerprintRecord record;
  for (uint64_t i = 0; i < count; ++i) {
    S3VCD_RETURN_IF_ERROR(reader.ReadBytes(buf, kRecordBytes));
    DeserializeRecord(buf, &record);
    db.block_.AppendRecord(record);
    // Recompute the key; the sort order is verified below.
    db.keys_.push_back(db.EncodeFingerprint(record.descriptor));
  }
  const uint32_t computed_crc = reader.crc();
  uint32_t stored_crc = 0;
  S3VCD_RETURN_IF_ERROR(reader.ReadU32(&stored_crc));
  if (stored_crc != computed_crc) {
    return Status::Corruption("database checksum mismatch");
  }
  S3VCD_RETURN_IF_ERROR(reader.Close());
  for (size_t i = 1; i < db.keys_.size(); ++i) {
    if (db.keys_[i] < db.keys_[i - 1]) {
      return Status::Corruption("database records are not curve-ordered");
    }
  }
  return db;
}

DatabaseBuilder::DatabaseBuilder(int order) : order_(order) {
  S3VCD_CHECK(order >= 1 && order <= 8);
}

void DatabaseBuilder::Add(const fp::Fingerprint& fingerprint, uint32_t id,
                          uint32_t time_code, float x, float y) {
  records_.push_back({fingerprint, id, time_code, x, y});
}

void DatabaseBuilder::AddVideo(uint32_t id,
                               const std::vector<fp::LocalFingerprint>& fps) {
  records_.reserve(records_.size() + fps.size());
  for (const fp::LocalFingerprint& lf : fps) {
    Add(lf.descriptor, id, lf.time_code, lf.x, lf.y);
  }
}

FingerprintDatabase DatabaseBuilder::Build() {
  FingerprintDatabase db(order_);
  const size_t n = records_.size();
  std::vector<BitKey> keys;
  keys.reserve(n);
  for (const FingerprintRecord& r : records_) {
    keys.push_back(db.EncodeFingerprint(r.descriptor));
  }
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return keys[a] < keys[b];
  });
  db.block_.Reserve(n);
  db.keys_.reserve(n);
  for (uint32_t idx : perm) {
    db.block_.AppendRecord(records_[idx]);
    db.keys_.push_back(keys[idx]);
  }
  records_.clear();
  return db;
}

}  // namespace s3vcd::core
