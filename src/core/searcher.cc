#include "core/searcher.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/dynamic_index.h"
#include "core/index.h"
#include "core/lsh.h"
#include "core/scan_kernel.h"
#include "core/vafile.h"
#include "core/vamana.h"
#include "util/logging.h"
#include "util/math.h"
#include "util/timer.h"

namespace s3vcd::core {

std::vector<QueryResult> Searcher::BatchStatQuery(
    const std::vector<fp::Fingerprint>& queries, const DistortionModel& model,
    const QueryOptions& options) const {
  std::vector<QueryResult> results;
  results.reserve(queries.size());
  for (const fp::Fingerprint& query : queries) {
    results.push_back(StatQuery(query, model, options));
  }
  return results;
}

std::vector<QueryResult> Searcher::BatchRangeQuery(
    const std::vector<fp::Fingerprint>& queries, double epsilon,
    int depth) const {
  std::vector<QueryResult> results;
  results.reserve(queries.size());
  for (const fp::Fingerprint& query : queries) {
    results.push_back(RangeQuery(query, epsilon, depth));
  }
  return results;
}

QueryResult Searcher::Query(const QueryRequest& request,
                            const DistortionModel& model) const {
  if (request.paradigm == SearchParadigm::kStatistical) {
    return StatQuery(request.query, model, request.options);
  }
  return RangeQuery(request.query, request.epsilon,
                    request.options.filter.depth);
}

void Searcher::ScanSelection(const fp::Fingerprint& /*query*/,
                             const BlockSelection& /*selection*/,
                             RefinementMode /*mode*/, double /*radius*/,
                             const DistortionModel* /*model*/,
                             QueryResult* /*result*/) const {
  // Callers must check selection_filter() != nullptr before asking for a
  // selection scan; backends without block structure cannot honor one.
  S3VCD_CHECK(selection_filter() != nullptr);
}

bool Searcher::TryInsert(const fp::Fingerprint& /*fingerprint*/,
                         uint32_t /*id*/, uint32_t /*time_code*/, float /*x*/,
                         float /*y*/) {
  return false;
}

double EqualExpectationRadius(const DistortionModel& model, double alpha) {
  double acc = 0;
  for (int j = 0; j < fp::kDims; ++j) {
    const double scale = model.ComponentScale(j);
    acc += scale * scale;
  }
  const double sigma_rms = std::sqrt(acc / fp::kDims);
  return ChiNormDistribution(fp::kDims, sigma_rms).Quantile(alpha);
}

namespace {

/// The paper's reference method (Section V-B) as a Searcher of its own:
/// every query is a full linear scan of the database. Registry-only — no
/// public header; construct it as SearcherRegistry "seqscan".
class SeqScanSearcher final : public Searcher {
 public:
  explicit SeqScanSearcher(FingerprintDatabase db) : db_(std::move(db)) {}

  const char* backend_name() const override { return "seqscan"; }

  QueryResult StatQuery(const fp::Fingerprint& query,
                        const DistortionModel& model,
                        const QueryOptions& options) const override {
    QueryResult result = Scan(
        query, EqualExpectationRadius(model, options.filter.alpha));
    RecordQueryMetrics(QueryKind::kStatistical, result.stats,
                       result.matches.size());
    return result;
  }

  QueryResult RangeQuery(const fp::Fingerprint& query, double epsilon,
                         int /*depth*/) const override {
    QueryResult result = Scan(query, epsilon);
    RecordQueryMetrics(QueryKind::kSequentialScan, result.stats,
                       result.matches.size());
    return result;
  }

  SearcherStats Stats() const override { return {db_.size(), 0}; }

  uint64_t ApproxBytes() const override { return db_.MemoryBytes(); }

 private:
  QueryResult Scan(const fp::Fingerprint& query, double epsilon) const {
    QueryResult result;
    Stopwatch watch;
    const RefineSpec spec(RefinementMode::kRadiusFilter, epsilon, nullptr);
    ScanRecords(query, db_.block(), 0, db_.size(), spec, &result);
    result.stats.refine_ns = watch.ElapsedNanos();
    result.stats.refine_seconds = result.stats.refine_ns * 1e-9;
    return result;
  }

  FingerprintDatabase db_;
};

std::vector<FingerprintRecord> CopyRecords(const FingerprintDatabase& db) {
  std::vector<FingerprintRecord> records;
  records.reserve(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    records.push_back(db.record(i));
  }
  return records;
}

}  // namespace

SearcherRegistry::SearcherRegistry() {
  Register("s3", [](FingerprintDatabase db, const SearcherConfig& config)
               -> std::unique_ptr<Searcher> {
    S3IndexOptions options;
    options.index_table_depth = config.index_table_depth;
    return std::make_unique<S3Index>(std::move(db), options);
  });
  Register("dynamic", [](FingerprintDatabase db, const SearcherConfig& config)
               -> std::unique_ptr<Searcher> {
    S3IndexOptions options;
    options.index_table_depth = config.index_table_depth;
    return std::make_unique<DynamicIndex>(
        S3Index(std::move(db), options));
  });
  Register("vafile", [](FingerprintDatabase db, const SearcherConfig& config)
               -> std::unique_ptr<Searcher> {
    VAFileOptions options;
    options.bits_per_dim = config.vafile_bits_per_dim;
    options.quantile_boundaries = config.vafile_quantile_boundaries;
    return std::make_unique<VAFile>(CopyRecords(db), options);
  });
  Register("lsh", [](FingerprintDatabase db, const SearcherConfig& config)
               -> std::unique_ptr<Searcher> {
    LshOptions options;
    options.num_tables = config.lsh_num_tables;
    options.hashes_per_table = config.lsh_hashes_per_table;
    options.bucket_width = config.lsh_bucket_width;
    options.seed = config.lsh_seed;
    return std::make_unique<LshIndex>(CopyRecords(db), options);
  });
  Register("seqscan", [](FingerprintDatabase db, const SearcherConfig&)
               -> std::unique_ptr<Searcher> {
    return std::make_unique<SeqScanSearcher>(std::move(db));
  });
  Register("vamana", [](FingerprintDatabase db, const SearcherConfig& config)
               -> std::unique_ptr<Searcher> {
    VamanaOptions options;
    options.graph_degree = config.vamana_graph_degree;
    options.build_beam = config.vamana_build_beam;
    options.beam_width = config.vamana_beam_width;
    options.alpha = config.vamana_alpha;
    options.seed = config.vamana_seed;
    options.build_threads = config.vamana_build_threads;
    options.graph_path = config.vamana_graph_path;
    if (!DescriptorCodecFromName(config.vamana_codec, &options.codec)) {
      S3VCD_LOG(ERROR) << "unknown vamana codec '" << config.vamana_codec
                       << "'; known codecs: " << DescriptorCodecNamesCsv();
      return nullptr;
    }
    return std::make_unique<VamanaIndex>(CopyRecords(db), options);
  });
}

SearcherRegistry& SearcherRegistry::Global() {
  static SearcherRegistry* const registry = new SearcherRegistry();
  return *registry;
}

void SearcherRegistry::Register(const std::string& name, Factory factory) {
  S3VCD_CHECK(factory != nullptr);
  factories_[name] = std::move(factory);
}

bool SearcherRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> SearcherRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted
}

std::string SearcherRegistry::NamesCsv() const {
  std::string csv;
  for (const std::string& name : Names()) {
    if (!csv.empty()) {
      csv += ", ";
    }
    csv += name;
  }
  return csv;
}

Result<std::unique_ptr<Searcher>> SearcherRegistry::Create(
    const std::string& name, FingerprintDatabase db,
    const SearcherConfig& config) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::InvalidArgument("unknown searcher backend '" + name +
                                   "'; registered backends: " + NamesCsv());
  }
  std::unique_ptr<Searcher> searcher = it->second(std::move(db), config);
  if (searcher == nullptr) {
    // Factories signal construction failure by returning null (and logging
    // the cause); never hand a null Searcher to the caller as "ok".
    return Status::Internal("construction of searcher backend '" + name +
                            "' failed (see log for the cause)");
  }
  return searcher;
}

}  // namespace s3vcd::core
