#ifndef S3VCD_CORE_TUNER_H_
#define S3VCD_CORE_TUNER_H_

#include <vector>

#include "core/distortion_model.h"
#include "core/index.h"
#include "fingerprint/fingerprint.h"

namespace s3vcd::core {

/// Outcome of the partition-depth tuning of Section IV-A: the response time
/// T(p) = Tf(p) + Tr(p) has a single minimum p_min, learned at the start of
/// the retrieval stage by timing sample queries.
struct DepthTuningResult {
  int best_depth = 0;
  /// (depth, average total milliseconds per query) for every probed depth.
  std::vector<std::pair<int, double>> profile;
};

/// Measures the average statistical-query time over `sample_queries` for
/// each candidate depth and returns the fastest. Candidates must be
/// non-empty; repeats each measurement `repetitions` times.
DepthTuningResult TuneDepth(const S3Index& index, const DistortionModel& model,
                            const std::vector<fp::Fingerprint>& sample_queries,
                            double alpha,
                            const std::vector<int>& candidate_depths,
                            int repetitions = 1);

/// Convenience: a geometric ladder of candidate depths suited to a database
/// of `db_size` records (p around log2(db_size) +- a few levels).
std::vector<int> DefaultDepthCandidates(size_t db_size, int key_bits);

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_TUNER_H_
