#include "core/index.h"

#include <algorithm>
#include <cmath>

#include "core/scan_kernel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace s3vcd::core {

namespace {

// Global mirrors of QueryStats: every query adds its per-run stats into
// these registry counters, so a metrics snapshot bracketing a run carries
// exactly the values the QueryStats structs reported (tested in obs_test).
obs::Counter* const g_stat_queries =
    obs::MetricsRegistry::Global().GetCounter("index.queries.statistical");
obs::Counter* const g_range_queries =
    obs::MetricsRegistry::Global().GetCounter("index.queries.range");
obs::Counter* const g_seq_scans =
    obs::MetricsRegistry::Global().GetCounter("index.queries.seq_scan");
obs::Counter* const g_blocks_selected =
    obs::MetricsRegistry::Global().GetCounter("index.blocks_selected");
obs::Counter* const g_nodes_visited =
    obs::MetricsRegistry::Global().GetCounter("index.nodes_visited");
obs::Counter* const g_ranges_scanned =
    obs::MetricsRegistry::Global().GetCounter("index.ranges_scanned");
obs::Counter* const g_records_scanned =
    obs::MetricsRegistry::Global().GetCounter("index.records_scanned");
obs::Counter* const g_descriptor_bytes_scanned =
    obs::MetricsRegistry::Global().GetCounter(
        "index.descriptor_bytes_scanned");
obs::Counter* const g_matches =
    obs::MetricsRegistry::Global().GetCounter("index.matches");
obs::Counter* const g_refine_rejected =
    obs::MetricsRegistry::Global().GetCounter("index.refine_rejected");
obs::Counter* const g_selection_ns =
    obs::MetricsRegistry::Global().GetCounter("index.selection_ns");
obs::Counter* const g_refine_ns =
    obs::MetricsRegistry::Global().GetCounter("index.refine_ns");
obs::Counter* const g_selection_cached =
    obs::MetricsRegistry::Global().GetCounter("index.selection_cached");
obs::Histogram* const g_filter_us =
    obs::MetricsRegistry::Global().GetHistogram("index.filter_us");
obs::Histogram* const g_refine_us =
    obs::MetricsRegistry::Global().GetHistogram("index.refine_us");

}  // namespace

void RecordQueryMetrics(QueryKind kind, const QueryStats& stats,
                        uint64_t hits) {
  switch (kind) {
    case QueryKind::kStatistical:
      g_stat_queries->Increment();
      break;
    case QueryKind::kRange:
      g_range_queries->Increment();
      break;
    case QueryKind::kSequentialScan:
      g_seq_scans->Increment();
      break;
  }
  g_blocks_selected->Increment(stats.blocks_selected);
  g_nodes_visited->Increment(stats.nodes_visited);
  g_ranges_scanned->Increment(stats.ranges_scanned);
  g_records_scanned->Increment(stats.records_scanned);
  g_descriptor_bytes_scanned->Increment(stats.descriptor_bytes_scanned);
  g_matches->Increment(hits);
  g_refine_rejected->Increment(stats.records_scanned - hits);
  g_selection_ns->Increment(stats.selection_ns);
  g_refine_ns->Increment(stats.refine_ns);
  if (stats.selection_cached) {
    g_selection_cached->Increment();
  }
  g_filter_us->Record(stats.filter_seconds * 1e6);
  g_refine_us->Record(stats.refine_seconds * 1e6);
}

S3Index::S3Index(FingerprintDatabase database, S3IndexOptions options)
    : db_(std::move(database)), filter_(db_.curve()), options_(options) {
  S3VCD_CHECK(options_.index_table_depth >= 0 &&
              options_.index_table_depth <= 28);
  if (options_.index_table_depth > db_.curve().key_bits()) {
    options_.index_table_depth = db_.curve().key_bits();
  }
  BuildIndexTable();
}

void S3Index::BuildIndexTable() {
  const int depth = options_.index_table_depth;
  if (depth == 0) {
    return;
  }
  const uint64_t buckets = uint64_t{1} << depth;
  const int shift = db_.curve().key_bits() - depth;
  table_.assign(buckets + 1, db_.size());
  // Single linear walk over the sorted keys.
  uint64_t bucket = 0;
  table_[0] = 0;
  for (size_t i = 0; i < db_.size(); ++i) {
    const uint64_t b = (db_.key(i) >> shift).low64();
    S3VCD_DCHECK(b >= bucket);
    while (bucket < b) {
      table_[++bucket] = i;
    }
  }
  while (bucket < buckets) {
    table_[++bucket] = db_.size();
  }
}

std::pair<size_t, size_t> S3Index::ResolveRange(const BitKey& begin,
                                                const BitKey& end) const {
  const int table_depth = options_.index_table_depth;
  if (table_depth > 0) {
    const int shift = db_.curve().key_bits() - table_depth;
    // Aligned ranges resolve exactly through the table.
    const BitKey mask = BitKey::LowMask(shift);
    if ((begin & mask).is_zero() && (end & mask).is_zero()) {
      const uint64_t b = (begin >> shift).low64();
      const uint64_t e = (end >> shift).low64();
      if (e <= static_cast<uint64_t>(table_.size()) - 1) {
        return {static_cast<size_t>(table_[b]),
                static_cast<size_t>(table_[e])};
      }
    }
  }
  const size_t first = db_.LowerBound(begin);
  const size_t last = end.is_zero() ? db_.size() : db_.LowerBound(end);
  return {first, last};
}

void S3Index::ScanSelection(const fp::Fingerprint& query,
                            const BlockSelection& selection,
                            RefinementMode mode, double radius,
                            const DistortionModel* model,
                            QueryResult* result) const {
  S3VCD_DCHECK(mode != RefinementMode::kNormalizedRadiusFilter ||
               model != nullptr);
  const RefineSpec spec(mode, radius, model);
  for (const auto& [begin, end] : selection.ranges) {
    // `end` may numerically wrap to zero for the last curve section.
    const auto [first, last] = ResolveRange(begin, end);
    ++result->stats.ranges_scanned;
    if (first < last) {
      ScanRecords(query, db_.block(), first, last, spec, result);
    }
  }
}

QueryResult S3Index::StatisticalQuery(const fp::Fingerprint& query,
                                      const DistortionModel& model,
                                      const QueryOptions& options) const {
  S3VCD_TRACE_SPAN("index.query.statistical");
  QueryResult result;
  Stopwatch watch;
  BlockSelection selection;
  {
    S3VCD_TRACE_SPAN("index.filter");
    selection = filter_.SelectStatistical(query, model, options.filter,
                                          &ThreadLocalSelectionScratch());
  }
  result.stats.selection_ns = watch.ElapsedNanos();
  result.stats.filter_seconds = result.stats.selection_ns * 1e-9;
  result.stats.blocks_selected = selection.num_blocks;
  result.stats.nodes_visited = selection.nodes_visited;
  result.stats.probability_mass = selection.probability_mass;

  watch.Reset();
  {
    S3VCD_TRACE_SPAN("index.refine");
    ScanSelection(query, selection, options.refinement, options.radius,
                  &model, &result);
  }
  result.stats.refine_ns = watch.ElapsedNanos();
  result.stats.refine_seconds = result.stats.refine_ns * 1e-9;
  RecordQueryMetrics(QueryKind::kStatistical, result.stats,
                     result.matches.size());
  return result;
}

QueryResult S3Index::RangeQuery(const fp::Fingerprint& query, double epsilon,
                                int depth) const {
  S3VCD_TRACE_SPAN("index.query.range");
  QueryResult result;
  Stopwatch watch;
  BlockSelection selection;
  {
    S3VCD_TRACE_SPAN("index.filter");
    selection = filter_.SelectRange(query, epsilon, depth);
  }
  result.stats.selection_ns = watch.ElapsedNanos();
  result.stats.filter_seconds = result.stats.selection_ns * 1e-9;
  result.stats.blocks_selected = selection.num_blocks;
  result.stats.nodes_visited = selection.nodes_visited;

  watch.Reset();
  {
    S3VCD_TRACE_SPAN("index.refine");
    ScanSelection(query, selection, RefinementMode::kRadiusFilter, epsilon,
                  nullptr, &result);
  }
  result.stats.refine_ns = watch.ElapsedNanos();
  result.stats.refine_seconds = result.stats.refine_ns * 1e-9;
  RecordQueryMetrics(QueryKind::kRange, result.stats, result.matches.size());
  return result;
}

QueryResult S3Index::SequentialScan(const fp::Fingerprint& query,
                                    double epsilon) const {
  S3VCD_TRACE_SPAN("index.query.seq_scan");
  QueryResult result;
  Stopwatch watch;
  const RefineSpec spec(RefinementMode::kRadiusFilter, epsilon, nullptr);
  ScanRecords(query, db_.block(), 0, db_.size(), spec, &result);
  result.stats.refine_ns = watch.ElapsedNanos();
  result.stats.refine_seconds = result.stats.refine_ns * 1e-9;
  RecordQueryMetrics(QueryKind::kSequentialScan, result.stats,
                     result.matches.size());
  return result;
}

}  // namespace s3vcd::core
