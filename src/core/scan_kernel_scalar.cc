// Reference kernels of the refinement scan. This translation unit is
// compiled with -fno-tree-vectorize (see src/core/CMakeLists.txt): it is
// the deterministic scalar baseline that the SIMD kernels are checked
// against and that the scalar leg of bench/micro_benchmarks measures.
#include "core/scan_kernel_internal.h"

#include "core/descriptor_codec.h"
#include "fingerprint/fingerprint.h"

namespace s3vcd::core {

double NormalizedSquaredDistance(const uint8_t* a, const uint8_t* b,
                                 const double* inv_scale_sq) {
  // The single definition of the model-normalized distance: every backend
  // and kernel calls this one function, so normalized-mode results are
  // bitwise identical everywhere regardless of per-TU code generation.
  double acc = 0;
  for (int j = 0; j < fp::kDims; ++j) {
    const double diff =
        static_cast<double>(a[j]) - static_cast<double>(b[j]);
    acc += diff * diff * inv_scale_sq[j];
  }
  return acc;
}

namespace internal {

void SqDistBatchScalar(const uint8_t* desc, size_t n, const uint8_t* query,
                       uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* d = desc + i * fp::kDims;
    uint32_t acc = 0;
    for (int j = 0; j < fp::kDims; ++j) {
      const int diff = static_cast<int>(d[j]) - static_cast<int>(query[j]);
      acc += static_cast<uint32_t>(diff * diff);
    }
    out[i] = acc;
  }
}

QuantQuery MakeQuantQuery(const uint8_t* query,
                          const DescriptorCodec& codec) {
  QuantQuery q;
  for (int j = 0; j < fp::kDims; ++j) {
    q.query[j] = query[j];
    q.step16[j] = codec.step16[j];
    q.lo[j] = codec.lo[j];
  }
  q.nibble = codec.kind == DescriptorCodecKind::kLvq4;
  return q;
}

void SqDistCodedBatchScalar(const uint8_t* codes, size_t n,
                            const QuantQuery& q, uint32_t* out) {
  const size_t code_bytes = q.nibble ? fp::kDims / 2 : fp::kDims;
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* c = codes + i * code_bytes;
    uint32_t acc = 0;
    for (int j = 0; j < fp::kDims; ++j) {
      const uint32_t code =
          q.nibble ? ((j & 1) ? (c[j / 2] >> 4) : (c[j / 2] & 0x0F)) : c[j];
      // The decode formula of core/descriptor_codec.h, in u16-safe
      // integer steps (the SIMD variants mirror these exact operations).
      uint32_t v = q.lo[j] + ((code * q.step16[j] + 128u) >> 8);
      if (v > 255u) {
        v = 255u;
      }
      const int diff = static_cast<int>(v) - static_cast<int>(q.query[j]);
      acc += static_cast<uint32_t>(diff * diff);
    }
    out[i] = acc;
  }
}

void SqDistGatherScalar(const uint8_t* desc, const uint32_t* indices,
                        size_t k, const uint8_t* query, uint32_t* out) {
  for (size_t i = 0; i < k; ++i) {
    const uint8_t* d = desc + static_cast<size_t>(indices[i]) * fp::kDims;
    uint32_t acc = 0;
    for (int j = 0; j < fp::kDims; ++j) {
      const int diff = static_cast<int>(d[j]) - static_cast<int>(query[j]);
      acc += static_cast<uint32_t>(diff * diff);
    }
    out[i] = acc;
  }
}

void SqDistCodedGatherScalar(const uint8_t* codes, const uint32_t* indices,
                             size_t k, const QuantQuery& q, uint32_t* out) {
  const size_t code_bytes = q.nibble ? fp::kDims / 2 : fp::kDims;
  for (size_t i = 0; i < k; ++i) {
    const uint8_t* c = codes + static_cast<size_t>(indices[i]) * code_bytes;
    uint32_t acc = 0;
    for (int j = 0; j < fp::kDims; ++j) {
      const uint32_t code =
          q.nibble ? ((j & 1) ? (c[j / 2] >> 4) : (c[j / 2] & 0x0F)) : c[j];
      uint32_t v = q.lo[j] + ((code * q.step16[j] + 128u) >> 8);
      if (v > 255u) {
        v = 255u;
      }
      const int diff = static_cast<int>(v) - static_cast<int>(q.query[j]);
      acc += static_cast<uint32_t>(diff * diff);
    }
    out[i] = acc;
  }
}

}  // namespace internal
}  // namespace s3vcd::core
