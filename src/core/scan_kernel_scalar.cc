// Reference kernels of the refinement scan. This translation unit is
// compiled with -fno-tree-vectorize (see src/core/CMakeLists.txt): it is
// the deterministic scalar baseline that the SIMD kernels are checked
// against and that the scalar leg of bench/micro_benchmarks measures.
#include "core/scan_kernel_internal.h"

#include "fingerprint/fingerprint.h"

namespace s3vcd::core {

double NormalizedSquaredDistance(const uint8_t* a, const uint8_t* b,
                                 const double* inv_scale_sq) {
  // The single definition of the model-normalized distance: every backend
  // and kernel calls this one function, so normalized-mode results are
  // bitwise identical everywhere regardless of per-TU code generation.
  double acc = 0;
  for (int j = 0; j < fp::kDims; ++j) {
    const double diff =
        static_cast<double>(a[j]) - static_cast<double>(b[j]);
    acc += diff * diff * inv_scale_sq[j];
  }
  return acc;
}

namespace internal {

void SqDistBatchScalar(const uint8_t* desc, size_t n, const uint8_t* query,
                       uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* d = desc + i * fp::kDims;
    uint32_t acc = 0;
    for (int j = 0; j < fp::kDims; ++j) {
      const int diff = static_cast<int>(d[j]) - static_cast<int>(query[j]);
      acc += static_cast<uint32_t>(diff * diff);
    }
    out[i] = acc;
  }
}

}  // namespace internal
}  // namespace s3vcd::core
