#ifndef S3VCD_CORE_VAFILE_H_
#define S3VCD_CORE_VAFILE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/descriptor_block.h"
#include "core/record.h"
#include "core/searcher.h"
#include "fingerprint/fingerprint.h"

namespace s3vcd::core {

/// Options of the VA-file baseline.
struct VAFileOptions {
  /// Bits of the per-dimension approximation, in [1, 8]; the classic
  /// VA-file sweet spot for byte data is 4-6.
  int bits_per_dim = 4;
  /// true: slice boundaries at data quantiles (equal-population slices,
  /// Weber & Blott's recommendation); false: equal-width slices.
  bool quantile_boundaries = true;
};

/// Vector-Approximation file (Weber & Blott), the improved-sequential-scan
/// baseline the paper cites ([11]) as sometimes beating all tree
/// structures in high dimension. Every vector is approximated by a
/// compact cell signature; a query first scans the signatures computing
/// cheap lower/upper distance bounds and only fetches the exact vectors
/// that survive the filtering. The "vafile" backend of the
/// SearcherRegistry.
class VAFile : public Searcher {
 public:
  /// Builds the approximation file over a snapshot of `records` (copied).
  VAFile(std::vector<FingerprintRecord> records,
         const VAFileOptions& options);

  size_t size() const { return block_.size(); }
  int bits_per_dim() const { return options_.bits_per_dim; }

  /// Exact epsilon-range query (all records with distance <= epsilon).
  QueryResult RangeQuery(const fp::Fingerprint& query, double epsilon) const;

  /// Exact k-nearest-neighbor query (VA-SSA style: candidates ordered by
  /// lower bound, cut by the running kth upper bound).
  QueryResult KnnQuery(const fp::Fingerprint& query, int k) const;

  /// Fraction of records whose exact vectors were fetched on the last
  /// phase-2 pass is reported through QueryStats::records_scanned.

  // ---- Searcher interface ----
  const char* backend_name() const override { return "vafile"; }
  /// Statistical queries are emulated as an exact range query at the
  /// equal-expectation radius of (model, options.filter.alpha).
  QueryResult StatQuery(const fp::Fingerprint& query,
                        const DistortionModel& model,
                        const QueryOptions& options) const override;
  QueryResult RangeQuery(const fp::Fingerprint& query, double epsilon,
                         int /*depth*/) const override {
    return RangeQuery(query, epsilon);
  }
  SearcherStats Stats() const override { return {block_.size(), 0}; }
  uint64_t ApproxBytes() const override {
    return block_.MemoryBytes() + ApproximationBits() / 8;
  }

 private:
  /// Shared body of the range paths; publishes no metrics (the public
  /// entry points publish exactly one record per query).
  QueryResult RangeQueryImpl(const fp::Fingerprint& query,
                             double epsilon) const;
  /// Slice index of value v in dimension j.
  int SliceOf(int dim, uint8_t value) const;

  /// Per-query tables: squared lower/upper bound contribution of each
  /// (dim, slice).
  void BuildBoundTables(
      const fp::Fingerprint& query,
      std::array<std::vector<double>, fp::kDims>* lower_sq,
      std::array<std::vector<double>, fp::kDims>* upper_sq) const;

  VAFileOptions options_;
  int slices_;
  /// The exact vectors in SoA layout (phase 2 runs over this block).
  DescriptorBlock block_;
  /// Per-dimension slice boundaries, slices_ + 1 ascending values in
  /// [0, 256]; slice s spans [boundaries[s], boundaries[s+1]).
  std::array<std::vector<double>, fp::kDims> boundaries_;
  /// Packed approximations: one byte per (record, dim) for simplicity of
  /// access (bits_per_dim <= 8); the *conceptual* size is bits_per_dim
  /// bits and is what the memory accounting below reports.
  std::vector<uint8_t> cells_;

 public:
  /// Size of the approximation data in conceptual VA-file bits.
  uint64_t ApproximationBits() const {
    return static_cast<uint64_t>(block_.size()) * fp::kDims *
           options_.bits_per_dim;
  }
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_VAFILE_H_
