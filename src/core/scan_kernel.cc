#include "core/scan_kernel.h"

#include <algorithm>

namespace s3vcd::core {

bool KeyInSelection(const BitKey& key,
                    const std::vector<std::pair<BitKey, BitKey>>& ranges) {
  // Ranges are sorted by begin and disjoint: the only candidate is the
  // last range starting at or before the key.
  const auto it = std::upper_bound(
      ranges.begin(), ranges.end(), key,
      [](const BitKey& k, const std::pair<BitKey, BitKey>& range) {
        return k < range.first;
      });
  if (it == ranges.begin()) {
    return false;
  }
  const auto& [begin, end] = *(it - 1);
  return KeyInSection(key, begin, end);
}

}  // namespace s3vcd::core
