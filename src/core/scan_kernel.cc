#include "core/scan_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "core/scan_kernel_internal.h"
#include "util/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#include <emmintrin.h>
#include <immintrin.h>
#define S3VCD_X86 1
#endif

namespace s3vcd::core {

namespace {

using internal::SqDistBatchFn;
using internal::SqDistBatchScalar;

// Strip width of the blocked kernel: distances for kScanStrip records are
// computed into a stack buffer before the mode test touches them, keeping
// the distance loop free of branches and Match pushes.
constexpr size_t kScanStrip = 64;

#ifdef S3VCD_X86

// The query widened to three u16 vectors: components [0,8), [8,16) and
// [16,20) (upper four lanes zero). Shared by the SSE2 and AVX2 kernels.
struct QueryU16 {
  __m128i q0, q1, q2;
};

inline QueryU16 WidenQuery(const uint8_t* query) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i lo =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(query));
  uint32_t tail_bits;
  std::memcpy(&tail_bits, query + 16, 4);
  const __m128i hi = _mm_cvtsi32_si128(static_cast<int>(tail_bits));
  return {_mm_unpacklo_epi8(lo, zero), _mm_unpackhi_epi8(lo, zero),
          _mm_unpacklo_epi8(hi, zero)};
}

// One record: |d - q| fits i16, madd(diff, diff) sums i16*i16 products in
// exact i32 pairs; the total (max 20 * 255^2) fits i32.
inline uint32_t SqDistOneSse2(const uint8_t* d, const QueryU16& q) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d));
  uint32_t tail_bits;
  std::memcpy(&tail_bits, d + 16, 4);
  const __m128i hi = _mm_cvtsi32_si128(static_cast<int>(tail_bits));
  const __m128i diff0 = _mm_sub_epi16(_mm_unpacklo_epi8(lo, zero), q.q0);
  const __m128i diff1 = _mm_sub_epi16(_mm_unpackhi_epi8(lo, zero), q.q1);
  const __m128i diff2 = _mm_sub_epi16(_mm_unpacklo_epi8(hi, zero), q.q2);
  __m128i acc = _mm_madd_epi16(diff0, diff0);
  acc = _mm_add_epi32(acc, _mm_madd_epi16(diff1, diff1));
  acc = _mm_add_epi32(acc, _mm_madd_epi16(diff2, diff2));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<uint32_t>(_mm_cvtsi128_si32(acc));
}

void SqDistBatchSse2(const uint8_t* desc, size_t n, const uint8_t* query,
                     uint32_t* out) {
  const QueryU16 q = WidenQuery(query);
  for (size_t i = 0; i < n; ++i) {
    out[i] = SqDistOneSse2(desc + i * fp::kDims, q);
  }
}

__attribute__((target("avx2"))) void SqDistBatchAvx2(const uint8_t* desc,
                                                     size_t n,
                                                     const uint8_t* query,
                                                     uint32_t* out) {
  const QueryU16 qn = WidenQuery(query);
  // Components [0,16) as one 16-lane u16 vector; tail [16,20) stays xmm.
  const __m256i q016 = _mm256_set_m128i(qn.q1, qn.q0);
  const __m128i qtail = qn.q2;
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* d = desc + i * fp::kDims;
    const __m256i v = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(d)));
    const __m256i diff = _mm256_sub_epi16(v, q016);
    const __m256i acc = _mm256_madd_epi16(diff, diff);
    uint32_t tail_bits;
    std::memcpy(&tail_bits, d + 16, 4);
    const __m128i t =
        _mm_cvtepu8_epi16(_mm_cvtsi32_si128(static_cast<int>(tail_bits)));
    const __m128i dt = _mm_sub_epi16(t, qtail);
    __m128i sum = _mm_add_epi32(_mm256_castsi256_si128(acc),
                                _mm256_extracti128_si256(acc, 1));
    sum = _mm_add_epi32(sum, _mm_madd_epi16(dt, dt));
    sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
    sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
    out[i] = static_cast<uint32_t>(_mm_cvtsi128_si32(sum));
  }
}

#endif  // S3VCD_X86

SqDistBatchFn KernelFn(ScanKernelKind kind) {
  switch (kind) {
    case ScanKernelKind::kScalar:
      return &SqDistBatchScalar;
#ifdef S3VCD_X86
    case ScanKernelKind::kSse2:
      return &SqDistBatchSse2;
    case ScanKernelKind::kAvx2:
      return &SqDistBatchAvx2;
#else
    case ScanKernelKind::kSse2:
    case ScanKernelKind::kAvx2:
      break;
#endif
  }
  return &SqDistBatchScalar;
}

ScanKernelKind DetectKernel() {
  const char* no_simd = std::getenv("S3VCD_NO_SIMD");
  if (no_simd != nullptr && no_simd[0] == '1') {
    return ScanKernelKind::kScalar;
  }
#ifdef S3VCD_X86
  if (__builtin_cpu_supports("avx2")) {
    return ScanKernelKind::kAvx2;
  }
  return ScanKernelKind::kSse2;  // baseline on x86-64
#else
  return ScanKernelKind::kScalar;
#endif
}

std::atomic<int>& ActiveKernelSlot() {
  static std::atomic<int> slot(static_cast<int>(DetectKernel()));
  return slot;
}

}  // namespace

const char* ScanKernelName(ScanKernelKind kind) {
  switch (kind) {
    case ScanKernelKind::kScalar:
      return "scalar";
    case ScanKernelKind::kSse2:
      return "sse2";
    case ScanKernelKind::kAvx2:
      return "avx2";
  }
  return "unknown";
}

ScanKernelKind ActiveScanKernel() {
  return static_cast<ScanKernelKind>(
      ActiveKernelSlot().load(std::memory_order_relaxed));
}

const char* ActiveScanKernelName() {
  return ScanKernelName(ActiveScanKernel());
}

bool ScanKernelAvailable(ScanKernelKind kind) {
  switch (kind) {
    case ScanKernelKind::kScalar:
      return true;
    case ScanKernelKind::kSse2:
#ifdef S3VCD_X86
      return true;
#else
      return false;
#endif
    case ScanKernelKind::kAvx2:
#ifdef S3VCD_X86
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

ScanKernelKind SetScanKernelForTest(ScanKernelKind kind) {
  S3VCD_CHECK(ScanKernelAvailable(kind));
  return static_cast<ScanKernelKind>(ActiveKernelSlot().exchange(
      static_cast<int>(kind), std::memory_order_relaxed));
}

void ScanRecords(const fp::Fingerprint& query, const DescriptorView& block,
                 size_t first, size_t last, const RefineSpec& spec,
                 QueryResult* result) {
  if (first >= last) {
    return;
  }
  result->stats.records_scanned += last - first;
  if (spec.mode == RefinementMode::kNormalizedRadiusFilter) {
    // Normalized mode stays on the single shared scalar definition so all
    // backends and kernels agree bitwise (see NormalizedSquaredDistance);
    // the weight table already makes it a single pass per record.
    for (size_t i = first; i < last; ++i) {
      const double dist_sq = NormalizedSquaredDistance(
          query.data(), block.descriptor(i), spec.inv_scale_sq.data());
      if (dist_sq > spec.radius_sq) {
        continue;
      }
      result->matches.push_back({block.id(i), block.time_code(i),
                                 static_cast<float>(std::sqrt(dist_sq)),
                                 block.x(i), block.y(i)});
    }
    return;
  }
  // Integer path: blocked strips of distances, then the mode test.
  const SqDistBatchFn batch = KernelFn(ActiveScanKernel());
  uint32_t dist_sq[kScanStrip];
  for (size_t strip = first; strip < last; strip += kScanStrip) {
    const size_t count = std::min(kScanStrip, last - strip);
    batch(block.descriptor(strip), count, query.data(), dist_sq);
    for (size_t k = 0; k < count; ++k) {
      const double d_sq = static_cast<double>(dist_sq[k]);
      if (spec.mode == RefinementMode::kRadiusFilter &&
          d_sq > spec.radius_sq) {
        continue;
      }
      const size_t i = strip + k;
      result->matches.push_back({block.id(i), block.time_code(i),
                                 static_cast<float>(std::sqrt(d_sq)),
                                 block.x(i), block.y(i)});
    }
  }
}

bool KeyInSelection(const BitKey& key,
                    const std::vector<std::pair<BitKey, BitKey>>& ranges) {
  // Ranges are sorted by begin and disjoint: the only candidate is the
  // last range starting at or before the key.
  const auto it = std::upper_bound(
      ranges.begin(), ranges.end(), key,
      [](const BitKey& k, const std::pair<BitKey, BitKey>& range) {
        return k < range.first;
      });
  if (it == ranges.begin()) {
    return false;
  }
  const auto& [begin, end] = *(it - 1);
  return KeyInSection(key, begin, end);
}

}  // namespace s3vcd::core
