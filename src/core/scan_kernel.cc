#include "core/scan_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/descriptor_codec.h"
#include "core/scan_kernel_internal.h"
#include "util/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#include <emmintrin.h>
#include <immintrin.h>
#define S3VCD_X86 1
#endif

namespace s3vcd::core {

namespace {

using internal::MakeQuantQuery;
using internal::QuantQuery;
using internal::SqDistBatchFn;
using internal::SqDistBatchScalar;
using internal::SqDistCodedBatchFn;
using internal::SqDistCodedBatchScalar;

// Strip width of the blocked kernel: distances for kScanStrip records are
// computed into a stack buffer before the mode test touches them, keeping
// the distance loop free of branches and Match pushes.
constexpr size_t kScanStrip = 64;

// How many gathers ahead the gather kernels prefetch the next descriptor
// lines: far enough to cover a memory round trip at graph-traversal
// candidate-set sizes (K ~ graph degree), near enough not to thrash.
constexpr size_t kGatherPrefetchAhead = 8;

#ifdef S3VCD_X86

// The query widened to three u16 vectors: components [0,8), [8,16) and
// [16,20) (upper four lanes zero). Shared by the SSE2 and AVX2 kernels.
struct QueryU16 {
  __m128i q0, q1, q2;
};

inline QueryU16 WidenQuery(const uint8_t* query) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i lo =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(query));
  uint32_t tail_bits;
  std::memcpy(&tail_bits, query + 16, 4);
  const __m128i hi = _mm_cvtsi32_si128(static_cast<int>(tail_bits));
  return {_mm_unpacklo_epi8(lo, zero), _mm_unpackhi_epi8(lo, zero),
          _mm_unpacklo_epi8(hi, zero)};
}

// One record: |d - q| fits i16, madd(diff, diff) sums i16*i16 products in
// exact i32 pairs; the total (max 20 * 255^2) fits i32.
inline uint32_t SqDistOneSse2(const uint8_t* d, const QueryU16& q) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d));
  uint32_t tail_bits;
  std::memcpy(&tail_bits, d + 16, 4);
  const __m128i hi = _mm_cvtsi32_si128(static_cast<int>(tail_bits));
  const __m128i diff0 = _mm_sub_epi16(_mm_unpacklo_epi8(lo, zero), q.q0);
  const __m128i diff1 = _mm_sub_epi16(_mm_unpackhi_epi8(lo, zero), q.q1);
  const __m128i diff2 = _mm_sub_epi16(_mm_unpacklo_epi8(hi, zero), q.q2);
  __m128i acc = _mm_madd_epi16(diff0, diff0);
  acc = _mm_add_epi32(acc, _mm_madd_epi16(diff1, diff1));
  acc = _mm_add_epi32(acc, _mm_madd_epi16(diff2, diff2));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<uint32_t>(_mm_cvtsi128_si32(acc));
}

void SqDistBatchSse2(const uint8_t* desc, size_t n, const uint8_t* query,
                     uint32_t* out) {
  const QueryU16 q = WidenQuery(query);
  for (size_t i = 0; i < n; ++i) {
    out[i] = SqDistOneSse2(desc + i * fp::kDims, q);
  }
}

void SqDistGatherSse2(const uint8_t* desc, const uint32_t* indices, size_t k,
                      const uint8_t* query, uint32_t* out) {
  const QueryU16 q = WidenQuery(query);
  for (size_t i = 0; i < k; ++i) {
    if (i + kGatherPrefetchAhead < k) {
      __builtin_prefetch(
          desc + static_cast<size_t>(indices[i + kGatherPrefetchAhead]) *
                     fp::kDims,
          0, 3);
    }
    out[i] = SqDistOneSse2(
        desc + static_cast<size_t>(indices[i]) * fp::kDims, q);
  }
}

// One record of the AVX2 exact kernel: components [0,16) as one 16-lane
// u16 vector, tail [16,20) in an xmm.
__attribute__((target("avx2"))) inline uint32_t SqDistOneAvx2(
    const uint8_t* d, const __m256i q016, const __m128i qtail) {
  const __m256i v = _mm256_cvtepu8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(d)));
  const __m256i diff = _mm256_sub_epi16(v, q016);
  const __m256i acc = _mm256_madd_epi16(diff, diff);
  uint32_t tail_bits;
  std::memcpy(&tail_bits, d + 16, 4);
  const __m128i t =
      _mm_cvtepu8_epi16(_mm_cvtsi32_si128(static_cast<int>(tail_bits)));
  const __m128i dt = _mm_sub_epi16(t, qtail);
  __m128i sum = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
  sum = _mm_add_epi32(sum, _mm_madd_epi16(dt, dt));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<uint32_t>(_mm_cvtsi128_si32(sum));
}

__attribute__((target("avx2"))) void SqDistBatchAvx2(const uint8_t* desc,
                                                     size_t n,
                                                     const uint8_t* query,
                                                     uint32_t* out) {
  const QueryU16 qn = WidenQuery(query);
  const __m256i q016 = _mm256_set_m128i(qn.q1, qn.q0);
  const __m128i qtail = qn.q2;
  for (size_t i = 0; i < n; ++i) {
    out[i] = SqDistOneAvx2(desc + i * fp::kDims, q016, qtail);
  }
}

__attribute__((target("avx2"))) void SqDistGatherAvx2(
    const uint8_t* desc, const uint32_t* indices, size_t k,
    const uint8_t* query, uint32_t* out) {
  const QueryU16 qn = WidenQuery(query);
  const __m256i q016 = _mm256_set_m128i(qn.q1, qn.q0);
  const __m128i qtail = qn.q2;
  for (size_t i = 0; i < k; ++i) {
    if (i + kGatherPrefetchAhead < k) {
      __builtin_prefetch(
          desc + static_cast<size_t>(indices[i + kGatherPrefetchAhead]) *
                     fp::kDims,
          0, 3);
    }
    out[i] = SqDistOneAvx2(
        desc + static_cast<size_t>(indices[i]) * fp::kDims, q016, qtail);
  }
}

// ---- Fused decode + distance kernels (quantized views) ----

// Expands 10 packed nibble bytes (two axes per byte, even axis in the low
// nibble — the lvq4 layout of core/descriptor_codec.cc) into 20 u8 codes:
// bytes 0..7 become axes 0..15, bytes 8..9 become axes 16..19 (upper
// output bytes zero). Pure SSE2, callable from any kernel.
inline void ExpandNibbles(const uint8_t* p, __m128i* codes016,
                          __m128i* codes_tail) {
  const __m128i mask = _mm_set1_epi8(0x0F);
  const __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  uint16_t tail_bits;
  std::memcpy(&tail_bits, p + 8, 2);
  const __m128i t = _mm_cvtsi32_si128(tail_bits);
  *codes016 = _mm_unpacklo_epi8(_mm_and_si128(b, mask),
                                _mm_and_si128(_mm_srli_epi16(b, 4), mask));
  *codes_tail = _mm_unpacklo_epi8(_mm_and_si128(t, mask),
                                  _mm_and_si128(_mm_srli_epi16(t, 4), mask));
}

// The quantized query/codec tables widened to u16 vectors: lanes [0,16) in
// ymm registers, lanes [16,20) in xmms (upper four lanes zero, which makes
// the padding lanes decode to 0 and contribute nothing).
struct QuantU16 {
  __m256i q016, s016, l016;
  __m128i qt, st, lt;
};

__attribute__((target("avx2"))) inline __m128i LoadU16x4(const uint16_t* p) {
  return _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
}

__attribute__((target("avx2"))) inline QuantU16 WidenQuant(
    const QuantQuery& q) {
  QuantU16 w;
  w.q016 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q.query));
  w.s016 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q.step16));
  w.l016 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q.lo));
  w.qt = LoadU16x4(q.query + 16);
  w.st = LoadU16x4(q.step16 + 16);
  w.lt = LoadU16x4(q.lo + 16);
  return w;
}

// v = min(255, lo + ((c * step16 + 128) >> 8)) in u16 lanes — exactly the
// scalar decode formula. All intermediates fit u16: c*step16 <= 65280 (the
// training step ceiling guarantees it), +128 <= 65408.
__attribute__((target("avx2"))) inline __m256i DecodeU16x16(__m256i c,
                                                            __m256i step,
                                                            __m256i lo) {
  const __m256i prod = _mm256_add_epi16(_mm256_mullo_epi16(c, step),
                                        _mm256_set1_epi16(128));
  const __m256i v = _mm256_add_epi16(_mm256_srli_epi16(prod, 8), lo);
  return _mm256_min_epu16(v, _mm256_set1_epi16(255));
}

__attribute__((target("avx2"))) inline __m128i DecodeU16x4(__m128i c,
                                                           __m128i step,
                                                           __m128i lo) {
  const __m128i prod =
      _mm_add_epi16(_mm_mullo_epi16(c, step), _mm_set1_epi16(128));
  const __m128i v = _mm_add_epi16(_mm_srli_epi16(prod, 8), lo);
  return _mm_min_epu16(v, _mm_set1_epi16(255));
}

// One coded record of the AVX2 fused kernel.
__attribute__((target("avx2"))) inline uint32_t SqDistCodedOneAvx2(
    const uint8_t* p, bool nibble, const QuantU16& w) {
  __m256i c016;
  __m128i ctail;
  if (nibble) {
    __m128i c8, t8;
    ExpandNibbles(p, &c8, &t8);
    c016 = _mm256_cvtepu8_epi16(c8);
    ctail = _mm_cvtepu8_epi16(t8);
  } else {
    c016 = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    uint32_t tail_bits;
    std::memcpy(&tail_bits, p + 16, 4);
    ctail =
        _mm_cvtepu8_epi16(_mm_cvtsi32_si128(static_cast<int>(tail_bits)));
  }
  const __m256i diff =
      _mm256_sub_epi16(DecodeU16x16(c016, w.s016, w.l016), w.q016);
  const __m256i acc = _mm256_madd_epi16(diff, diff);
  const __m128i dt = _mm_sub_epi16(DecodeU16x4(ctail, w.st, w.lt), w.qt);
  __m128i sum = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
  sum = _mm_add_epi32(sum, _mm_madd_epi16(dt, dt));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<uint32_t>(_mm_cvtsi128_si32(sum));
}

__attribute__((target("avx2"))) void SqDistCodedBatchAvx2(
    const uint8_t* codes, size_t n, const QuantQuery& q, uint32_t* out) {
  const QuantU16 w = WidenQuant(q);
  const size_t code_bytes = q.nibble ? fp::kDims / 2 : fp::kDims;
  for (size_t i = 0; i < n; ++i) {
    out[i] = SqDistCodedOneAvx2(codes + i * code_bytes, q.nibble, w);
  }
}

__attribute__((target("avx2"))) void SqDistCodedGatherAvx2(
    const uint8_t* codes, const uint32_t* indices, size_t k,
    const QuantQuery& q, uint32_t* out) {
  const QuantU16 w = WidenQuant(q);
  const size_t code_bytes = q.nibble ? fp::kDims / 2 : fp::kDims;
  for (size_t i = 0; i < k; ++i) {
    if (i + kGatherPrefetchAhead < k) {
      __builtin_prefetch(
          codes + static_cast<size_t>(indices[i + kGatherPrefetchAhead]) *
                      code_bytes,
          0, 3);
    }
    out[i] = SqDistCodedOneAvx2(
        codes + static_cast<size_t>(indices[i]) * code_bytes, q.nibble, w);
  }
}

// One coded record of the AVX-512 fused kernel: one whole record per zmm,
// 20 u16 lanes decode + subtract + madd, the masked-off lanes all zero on
// both sides.
__attribute__((target("avx512f,avx512bw,avx512vl"))) inline uint32_t
SqDistCodedOneAvx512(const uint8_t* p, bool nibble, __m512i qv, __m512i sv,
                     __m512i lv, __m512i half, __m512i cap) {
  const __mmask32 k20 = 0xFFFFF;
  __m256i c8;
  if (nibble) {
    __m128i lo16, t4;
    ExpandNibbles(p, &lo16, &t4);
    c8 = _mm256_set_m128i(t4, lo16);
  } else {
    c8 = _mm256_maskz_loadu_epi8(k20, p);
  }
  const __m512i c = _mm512_cvtepu8_epi16(c8);
  const __m512i prod = _mm512_add_epi16(_mm512_mullo_epi16(c, sv), half);
  const __m512i v = _mm512_min_epu16(
      _mm512_add_epi16(_mm512_srli_epi16(prod, 8), lv), cap);
  const __m512i diff = _mm512_sub_epi16(v, qv);
  return static_cast<uint32_t>(
      _mm512_reduce_add_epi32(_mm512_madd_epi16(diff, diff)));
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) void
SqDistCodedBatchAvx512(const uint8_t* codes, size_t n, const QuantQuery& q,
                       uint32_t* out) {
  const __mmask32 k20 = 0xFFFFF;
  const __m512i qv = _mm512_maskz_loadu_epi16(k20, q.query);
  const __m512i sv = _mm512_maskz_loadu_epi16(k20, q.step16);
  const __m512i lv = _mm512_maskz_loadu_epi16(k20, q.lo);
  const __m512i half = _mm512_set1_epi16(128);
  const __m512i cap = _mm512_set1_epi16(255);
  const size_t code_bytes = q.nibble ? fp::kDims / 2 : fp::kDims;
  for (size_t i = 0; i < n; ++i) {
    out[i] = SqDistCodedOneAvx512(codes + i * code_bytes, q.nibble, qv, sv,
                                  lv, half, cap);
  }
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) void
SqDistCodedGatherAvx512(const uint8_t* codes, const uint32_t* indices,
                        size_t k, const QuantQuery& q, uint32_t* out) {
  const __mmask32 k20 = 0xFFFFF;
  const __m512i qv = _mm512_maskz_loadu_epi16(k20, q.query);
  const __m512i sv = _mm512_maskz_loadu_epi16(k20, q.step16);
  const __m512i lv = _mm512_maskz_loadu_epi16(k20, q.lo);
  const __m512i half = _mm512_set1_epi16(128);
  const __m512i cap = _mm512_set1_epi16(255);
  const size_t code_bytes = q.nibble ? fp::kDims / 2 : fp::kDims;
  for (size_t i = 0; i < k; ++i) {
    if (i + kGatherPrefetchAhead < k) {
      __builtin_prefetch(
          codes + static_cast<size_t>(indices[i + kGatherPrefetchAhead]) *
                      code_bytes,
          0, 3);
    }
    out[i] = SqDistCodedOneAvx512(
        codes + static_cast<size_t>(indices[i]) * code_bytes, q.nibble, qv,
        sv, lv, half, cap);
  }
}

#endif  // S3VCD_X86

SqDistBatchFn KernelFn(ScanKernelKind kind) {
  switch (kind) {
    case ScanKernelKind::kScalar:
      return &SqDistBatchScalar;
#ifdef S3VCD_X86
    case ScanKernelKind::kSse2:
      return &SqDistBatchSse2;
    case ScanKernelKind::kAvx2:
      return &SqDistBatchAvx2;
    case ScanKernelKind::kAvx512:
      // The VNNI u8-dot variant when the CPU has it, the u16-madd variant
      // otherwise; both compute the exact integer distance.
      return internal::Avx512VnniAvailable()
                 ? &internal::SqDistBatchAvx512Vnni
                 : &internal::SqDistBatchAvx512Bw;
#else
    case ScanKernelKind::kSse2:
    case ScanKernelKind::kAvx2:
    case ScanKernelKind::kAvx512:
      break;
#endif
  }
  return &SqDistBatchScalar;
}

SqDistCodedBatchFn CodedKernelFn(ScanKernelKind kind) {
  switch (kind) {
#ifdef S3VCD_X86
    case ScanKernelKind::kAvx2:
      return &SqDistCodedBatchAvx2;
    case ScanKernelKind::kAvx512:
      return &SqDistCodedBatchAvx512;
#endif
    default:
      // Scalar and SSE2 share the reference fused loop: the nibble/decode
      // shuffle work leaves no profitable pure-SSE2 variant.
      return &SqDistCodedBatchScalar;
  }
}

internal::SqDistGatherFn GatherKernelFn(ScanKernelKind kind) {
  switch (kind) {
    case ScanKernelKind::kScalar:
      return &internal::SqDistGatherScalar;
#ifdef S3VCD_X86
    case ScanKernelKind::kSse2:
      return &SqDistGatherSse2;
    case ScanKernelKind::kAvx2:
      return &SqDistGatherAvx2;
    case ScanKernelKind::kAvx512:
      return internal::Avx512VnniAvailable()
                 ? &internal::SqDistGatherAvx512Vnni
                 : &internal::SqDistGatherAvx512Bw;
#else
    case ScanKernelKind::kSse2:
    case ScanKernelKind::kAvx2:
    case ScanKernelKind::kAvx512:
      break;
#endif
  }
  return &internal::SqDistGatherScalar;
}

internal::SqDistCodedGatherFn CodedGatherKernelFn(ScanKernelKind kind) {
  switch (kind) {
#ifdef S3VCD_X86
    case ScanKernelKind::kAvx2:
      return &SqDistCodedGatherAvx2;
    case ScanKernelKind::kAvx512:
      return &SqDistCodedGatherAvx512;
#endif
    default:
      return &internal::SqDistCodedGatherScalar;
  }
}

// The widest kernel this CPU/build can run, in dispatch-preference order.
ScanKernelKind WidestKernel() {
#ifdef S3VCD_X86
  if (ScanKernelAvailable(ScanKernelKind::kAvx512)) {
    return ScanKernelKind::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) {
    return ScanKernelKind::kAvx2;
  }
  return ScanKernelKind::kSse2;  // baseline on x86-64
#else
  return ScanKernelKind::kScalar;
#endif
}

bool KernelFromName(const char* name, ScanKernelKind* kind) {
  if (std::strcmp(name, "scalar") == 0) {
    *kind = ScanKernelKind::kScalar;
  } else if (std::strcmp(name, "sse2") == 0) {
    *kind = ScanKernelKind::kSse2;
  } else if (std::strcmp(name, "avx2") == 0) {
    *kind = ScanKernelKind::kAvx2;
  } else if (std::strcmp(name, "avx512") == 0) {
    *kind = ScanKernelKind::kAvx512;
  } else {
    return false;
  }
  return true;
}

ScanKernelKind DetectKernel() {
  const char* named = std::getenv("S3VCD_SCAN_KERNEL");
  if (named != nullptr && named[0] != '\0') {
    ScanKernelKind kind;
    if (!KernelFromName(named, &kind)) {
      std::fprintf(stderr,
                   "s3vcd: unknown S3VCD_SCAN_KERNEL '%s' (expected "
                   "scalar|sse2|avx2|avx512); falling back to detection\n",
                   named);
    } else if (!ScanKernelAvailable(kind)) {
      std::fprintf(stderr,
                   "s3vcd: S3VCD_SCAN_KERNEL=%s is not available on this "
                   "CPU/build; falling back to detection\n",
                   named);
    } else {
      return kind;
    }
  }
  const char* no_simd = std::getenv("S3VCD_NO_SIMD");
  if (no_simd != nullptr && no_simd[0] == '1') {
    return ScanKernelKind::kScalar;
  }
  return WidestKernel();
}

std::atomic<int>& ActiveKernelSlot() {
  static std::atomic<int> slot(static_cast<int>(DetectKernel()));
  return slot;
}

}  // namespace

#ifdef S3VCD_X86
namespace internal {

__attribute__((target("avx512f,avx512bw,avx512vl"))) void SqDistBatchAvx512Bw(
    const uint8_t* desc, size_t n, const uint8_t* query, uint32_t* out) {
  // Masked 20-byte loads never touch bytes past the record, so the kernel
  // is safe on the last record of a mapped segment; the masked-off lanes
  // are zero on both sides and contribute nothing.
  const __mmask32 k20 = 0xFFFFF;
  const __m512i q = _mm512_cvtepu8_epi16(_mm256_maskz_loadu_epi8(k20, query));
  for (size_t i = 0; i < n; ++i) {
    const __m512i d = _mm512_cvtepu8_epi16(
        _mm256_maskz_loadu_epi8(k20, desc + i * fp::kDims));
    const __m512i diff = _mm512_sub_epi16(d, q);
    out[i] = static_cast<uint32_t>(
        _mm512_reduce_add_epi32(_mm512_madd_epi16(diff, diff)));
  }
}

__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) void
SqDistBatchAvx512Vnni(const uint8_t* desc, size_t n, const uint8_t* query,
                      uint32_t* out) {
  const __mmask32 k20 = 0xFFFFF;
  const __m256i q = _mm256_maskz_loadu_epi8(k20, query);
  const __m256i zero = _mm256_setzero_si256();
  for (size_t i = 0; i < n; ++i) {
    const __m256i d = _mm256_maskz_loadu_epi8(k20, desc + i * fp::kDims);
    const __m256i diff =
        _mm256_or_si256(_mm256_subs_epu8(d, q), _mm256_subs_epu8(q, d));
    // vpdpbusd multiplies u8 (first operand) by *signed* i8 (second): a
    // lane with diff >= 128 contributes diff * (diff - 256) = diff^2 -
    // 256*diff. Recover the exact square by adding 256 * sum(diff over
    // those lanes), which a sign-masked SAD against zero produces. All
    // arithmetic is mod-2^32 exact and the true value fits uint32_t.
    const __m256i acc = _mm256_dpbusd_epi32(zero, diff, diff);
    const __m256i high =
        _mm256_maskz_mov_epi8(_mm256_movepi8_mask(diff), diff);
    const __m256i sad = _mm256_sad_epu8(high, zero);
    __m128i sum = _mm_add_epi32(_mm256_castsi256_si128(acc),
                                _mm256_extracti128_si256(acc, 1));
    sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
    sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
    const __m128i s64 = _mm_add_epi64(_mm256_castsi256_si128(sad),
                                      _mm256_extracti128_si256(sad, 1));
    const uint32_t corr = static_cast<uint32_t>(
        static_cast<uint64_t>(_mm_cvtsi128_si64(s64)) +
        static_cast<uint64_t>(_mm_extract_epi64(s64, 1)));
    out[i] = static_cast<uint32_t>(_mm_cvtsi128_si32(sum)) + 256u * corr;
  }
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) void
SqDistGatherAvx512Bw(const uint8_t* desc, const uint32_t* indices, size_t k,
                     const uint8_t* query, uint32_t* out) {
  const __mmask32 k20 = 0xFFFFF;
  const __m512i q = _mm512_cvtepu8_epi16(_mm256_maskz_loadu_epi8(k20, query));
  for (size_t i = 0; i < k; ++i) {
    if (i + kGatherPrefetchAhead < k) {
      __builtin_prefetch(
          desc + static_cast<size_t>(indices[i + kGatherPrefetchAhead]) *
                     fp::kDims,
          0, 3);
    }
    const __m512i d = _mm512_cvtepu8_epi16(_mm256_maskz_loadu_epi8(
        k20, desc + static_cast<size_t>(indices[i]) * fp::kDims));
    const __m512i diff = _mm512_sub_epi16(d, q);
    out[i] = static_cast<uint32_t>(
        _mm512_reduce_add_epi32(_mm512_madd_epi16(diff, diff)));
  }
}

__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) void
SqDistGatherAvx512Vnni(const uint8_t* desc, const uint32_t* indices,
                       size_t k, const uint8_t* query, uint32_t* out) {
  const __mmask32 k20 = 0xFFFFF;
  const __m256i q = _mm256_maskz_loadu_epi8(k20, query);
  const __m256i zero = _mm256_setzero_si256();
  for (size_t i = 0; i < k; ++i) {
    if (i + kGatherPrefetchAhead < k) {
      __builtin_prefetch(
          desc + static_cast<size_t>(indices[i + kGatherPrefetchAhead]) *
                     fp::kDims,
          0, 3);
    }
    const __m256i d = _mm256_maskz_loadu_epi8(
        k20, desc + static_cast<size_t>(indices[i]) * fp::kDims);
    const __m256i diff =
        _mm256_or_si256(_mm256_subs_epu8(d, q), _mm256_subs_epu8(q, d));
    // Same signed-operand correction as SqDistBatchAvx512Vnni above.
    const __m256i acc = _mm256_dpbusd_epi32(zero, diff, diff);
    const __m256i high =
        _mm256_maskz_mov_epi8(_mm256_movepi8_mask(diff), diff);
    const __m256i sad = _mm256_sad_epu8(high, zero);
    __m128i sum = _mm_add_epi32(_mm256_castsi256_si128(acc),
                                _mm256_extracti128_si256(acc, 1));
    sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
    sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
    const __m128i s64 = _mm_add_epi64(_mm256_castsi256_si128(sad),
                                      _mm256_extracti128_si256(sad, 1));
    const uint32_t corr = static_cast<uint32_t>(
        static_cast<uint64_t>(_mm_cvtsi128_si64(s64)) +
        static_cast<uint64_t>(_mm_extract_epi64(s64, 1)));
    out[i] = static_cast<uint32_t>(_mm_cvtsi128_si32(sum)) + 256u * corr;
  }
}

bool Avx512VnniAvailable() {
  return ScanKernelAvailable(ScanKernelKind::kAvx512) &&
         __builtin_cpu_supports("avx512vnni");
}

}  // namespace internal
#endif  // S3VCD_X86

GatherScorer::GatherScorer(const uint8_t* query, const DescriptorView& view)
    : descriptors_(view.descriptors),
      desc_bytes_(view.desc_bytes),
      coded_(view.codec != nullptr && !view.codec->is_exact()) {
  if (coded_) {
    quant_ = MakeQuantQuery(query, *view.codec);
    coded_fn_ = CodedGatherKernelFn(ActiveScanKernel());
  } else {
    std::memcpy(query_, query, fp::kDims);
    exact_fn_ = GatherKernelFn(ActiveScanKernel());
  }
}

void GatherScorer::Score(const uint32_t* indices, size_t k,
                         uint32_t* out) const {
  if (k == 0) {
    return;
  }
  if (coded_) {
    coded_fn_(descriptors_, indices, k, quant_, out);
  } else {
    exact_fn_(descriptors_, indices, k, query_, out);
  }
}

const char* ScanKernelName(ScanKernelKind kind) {
  switch (kind) {
    case ScanKernelKind::kScalar:
      return "scalar";
    case ScanKernelKind::kSse2:
      return "sse2";
    case ScanKernelKind::kAvx2:
      return "avx2";
    case ScanKernelKind::kAvx512:
      return "avx512";
  }
  return "unknown";
}

ScanKernelKind ActiveScanKernel() {
  return static_cast<ScanKernelKind>(
      ActiveKernelSlot().load(std::memory_order_relaxed));
}

const char* ActiveScanKernelName() {
  return ScanKernelName(ActiveScanKernel());
}

bool ScanKernelAvailable(ScanKernelKind kind) {
  switch (kind) {
    case ScanKernelKind::kScalar:
      return true;
    case ScanKernelKind::kSse2:
#ifdef S3VCD_X86
      return true;
#else
      return false;
#endif
    case ScanKernelKind::kAvx2:
#ifdef S3VCD_X86
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case ScanKernelKind::kAvx512:
#ifdef S3VCD_X86
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl");
#else
      return false;
#endif
  }
  return false;
}

ScanKernelKind SetScanKernelForTest(ScanKernelKind kind) {
  S3VCD_CHECK(ScanKernelAvailable(kind));
  return static_cast<ScanKernelKind>(ActiveKernelSlot().exchange(
      static_cast<int>(kind), std::memory_order_relaxed));
}

void ScanRecords(const fp::Fingerprint& query, const DescriptorView& block,
                 size_t first, size_t last, const RefineSpec& spec,
                 QueryResult* result) {
  if (first >= last) {
    return;
  }
  result->stats.records_scanned += last - first;
  result->stats.descriptor_bytes_scanned += (last - first) * block.desc_bytes;
  const bool coded = block.codec != nullptr && !block.codec->is_exact();
  if (spec.mode == RefinementMode::kNormalizedRadiusFilter) {
    // Normalized mode stays on the single shared scalar definition so all
    // backends and kernels agree bitwise (see NormalizedSquaredDistance);
    // the weight table already makes it a single pass per record. A coded
    // view decodes per record and inflates the radius by the codec's
    // normalized reconstruction error bound.
    double radius_sq = spec.radius_sq;
    if (coded) {
      const double r =
          std::sqrt(spec.radius_sq) +
          block.codec->NormalizedMaxError(spec.inv_scale_sq.data());
      radius_sq = r * r;
    }
    uint8_t decoded[fp::kDims];
    for (size_t i = first; i < last; ++i) {
      const uint8_t* record = block.descriptor(i);
      if (coded) {
        DecodeDescriptor(*block.codec, record, decoded);
        record = decoded;
      }
      const double dist_sq = NormalizedSquaredDistance(
          query.data(), record, spec.inv_scale_sq.data());
      if (dist_sq > radius_sq) {
        continue;
      }
      result->matches.push_back({block.id(i), block.time_code(i),
                                 static_cast<float>(std::sqrt(dist_sq)),
                                 block.x(i), block.y(i)});
    }
    return;
  }
  // Integer path: blocked strips of distances, then the mode test. Coded
  // views run the fused decode+distance kernels against an error-inflated
  // radius, making the quantized match set a superset of the exact one.
  const SqDistBatchFn batch = coded ? nullptr : KernelFn(ActiveScanKernel());
  const SqDistCodedBatchFn coded_batch =
      coded ? CodedKernelFn(ActiveScanKernel()) : nullptr;
  QuantQuery quant;
  double radius_sq = spec.radius_sq;
  if (coded) {
    quant = MakeQuantQuery(query.data(), *block.codec);
    if (spec.mode == RefinementMode::kRadiusFilter) {
      const double r = std::sqrt(spec.radius_sq) + block.codec->max_error;
      radius_sq = r * r;
    }
  }
  uint32_t dist_sq[kScanStrip];
  for (size_t strip = first; strip < last; strip += kScanStrip) {
    const size_t count = std::min(kScanStrip, last - strip);
    if (coded) {
      coded_batch(block.descriptor(strip), count, quant, dist_sq);
    } else {
      batch(block.descriptor(strip), count, query.data(), dist_sq);
    }
    for (size_t k = 0; k < count; ++k) {
      const double d_sq = static_cast<double>(dist_sq[k]);
      if (spec.mode == RefinementMode::kRadiusFilter && d_sq > radius_sq) {
        continue;
      }
      const size_t i = strip + k;
      result->matches.push_back({block.id(i), block.time_code(i),
                                 static_cast<float>(std::sqrt(d_sq)),
                                 block.x(i), block.y(i)});
    }
  }
}

bool KeyInSelection(const BitKey& key,
                    const std::vector<std::pair<BitKey, BitKey>>& ranges) {
  // Ranges are sorted by begin and disjoint: the only candidate is the
  // last range starting at or before the key.
  const auto it = std::upper_bound(
      ranges.begin(), ranges.end(), key,
      [](const BitKey& k, const std::pair<BitKey, BitKey>& range) {
        return k < range.first;
      });
  if (it == ranges.begin()) {
    return false;
  }
  const auto& [begin, end] = *(it - 1);
  return KeyInSection(key, begin, end);
}

}  // namespace s3vcd::core
