#include "core/pseudo_disk.h"

#include <algorithm>
#include <cmath>

#include "core/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/timer.h"

namespace s3vcd::core {

namespace {

obs::Counter* const g_io_ops =
    obs::MetricsRegistry::Global().GetCounter("pseudo_disk.io_ops");
obs::Counter* const g_bytes_read =
    obs::MetricsRegistry::Global().GetCounter("pseudo_disk.bytes_read");
obs::Counter* const g_sections_loaded =
    obs::MetricsRegistry::Global().GetCounter("pseudo_disk.sections_loaded");
obs::Counter* const g_records_loaded =
    obs::MetricsRegistry::Global().GetCounter("pseudo_disk.records_loaded");
obs::Counter* const g_records_scanned =
    obs::MetricsRegistry::Global().GetCounter("pseudo_disk.records_scanned");
obs::Counter* const g_batches =
    obs::MetricsRegistry::Global().GetCounter("pseudo_disk.batches");
obs::Histogram* const g_section_load_us =
    obs::MetricsRegistry::Global().GetHistogram(
        "pseudo_disk.section_load_us");

}  // namespace

PseudoDiskSearcher::PseudoDiskSearcher(std::string path,
                                       PseudoDiskOptions options, int order)
    : path_(std::move(path)),
      options_(options),
      curve_(fp::kDims, order) {}

Result<PseudoDiskSearcher> PseudoDiskSearcher::Open(
    const std::string& db_path, const PseudoDiskOptions& options) {
  if (options.section_depth < 0 ||
      options.section_depth > options.query_depth) {
    return Status::InvalidArgument(
        "section_depth must be in [0, query_depth]");
  }
  BinaryReader reader;
  S3VCD_RETURN_IF_ERROR(reader.Open(db_path));
  S3VCD_ASSIGN_OR_RETURN(const internal::FileHeader header,
                         internal::ReadHeader(&reader));
  if (options.query_depth < 1 ||
      options.query_depth > static_cast<int>(header.dims * header.order)) {
    return Status::InvalidArgument("query_depth out of range for this DB");
  }

  PseudoDiskSearcher searcher(db_path, options,
                              static_cast<int>(header.order));
  searcher.payload_offset_ = internal::kHeaderBytes;

  // Streaming metadata pass: compute each record's depth-p prefix and fill
  // the offset table; records themselves are not retained.
  const int p = options.query_depth;
  const uint64_t buckets = uint64_t{1} << p;
  const int shift = searcher.curve_.key_bits() - p;
  searcher.offsets_.assign(buckets + 1, header.count);
  searcher.offsets_[0] = 0;
  uint64_t bucket = 0;
  uint8_t buf[internal::kRecordBytes];
  FingerprintRecord rec;
  uint32_t coords[fp::kDims];
  const int coord_shift = 8 - static_cast<int>(header.order);
  BitKey prev_key;
  for (uint64_t i = 0; i < header.count; ++i) {
    S3VCD_RETURN_IF_ERROR(reader.ReadBytes(buf, internal::kRecordBytes));
    internal::DeserializeRecord(buf, &rec);
    for (int j = 0; j < fp::kDims; ++j) {
      coords[j] = static_cast<uint32_t>(rec.descriptor[j]) >> coord_shift;
    }
    const BitKey key = searcher.curve_.Encode(coords);
    if (i > 0 && key < prev_key) {
      return Status::Corruption("database records are not curve-ordered");
    }
    prev_key = key;
    const uint64_t b = (key >> shift).low64();
    while (bucket < b) {
      searcher.offsets_[++bucket] = i;
    }
  }
  while (bucket < buckets) {
    searcher.offsets_[++bucket] = header.count;
  }
  const uint32_t computed_crc = reader.crc();
  uint32_t stored_crc = 0;
  S3VCD_RETURN_IF_ERROR(reader.ReadU32(&stored_crc));
  if (stored_crc != computed_crc) {
    return Status::Corruption("database checksum mismatch");
  }
  S3VCD_RETURN_IF_ERROR(reader.Close());
  return searcher;
}

Status PseudoDiskSearcher::SearchBatch(
    const std::vector<fp::Fingerprint>& queries, const DistortionModel& model,
    std::vector<std::vector<Match>>* results,
    PseudoDiskBatchStats* stats) const {
  S3VCD_TRACE_SPAN("pseudo_disk.search_batch");
  results->assign(queries.size(), {});
  *stats = PseudoDiskBatchStats{};
  stats->num_queries = queries.size();
  if (queries.empty()) {
    return Status::OK();
  }
  g_batches->Increment();

  // Phase 1: filter every query up front (independent of the database).
  const int p = options_.query_depth;
  const int shift = curve_.key_bits() - p;
  const BlockFilter filter(curve_);
  FilterOptions filter_options;
  filter_options.depth = p;
  filter_options.alpha = options_.alpha;

  // Per query, the record ranges to scan.
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> record_ranges(
      queries.size());
  Stopwatch watch;
  {
    S3VCD_TRACE_SPAN("pseudo_disk.filter_queries");
    // One explicit scratch for the whole batch: the arena and boundary
    // tables warm up on the first query and are recycled afterwards.
    SelectionScratch& scratch = ThreadLocalSelectionScratch();
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const BlockSelection selection = filter.SelectStatistical(
          queries[qi], model, filter_options, &scratch);
      for (const auto& [begin, end] : selection.ranges) {
        const uint64_t pb = (begin >> shift).low64();
        const uint64_t pe = end.is_zero() ? (offsets_.size() - 1)
                                          : (end >> shift).low64();
        const uint64_t rb = offsets_[pb];
        const uint64_t re = offsets_[pe];
        if (rb < re) {
          record_ranges[qi].emplace_back(rb, re);
        }
      }
    }
  }
  stats->filter_seconds = watch.ElapsedSeconds();

  // Phase 2: load the 2^r sections one at a time and refine every query's
  // ranges that intersect the resident section.
  const int r = options_.section_depth;
  const uint64_t sections = uint64_t{1} << r;
  const uint64_t prefixes_per_section = uint64_t{1} << (p - r);
  BinaryReader reader;
  S3VCD_RETURN_IF_ERROR(reader.Open(path_));
  std::vector<uint8_t> buffer;
  FingerprintRecord rec;
  for (uint64_t s = 0; s < sections; ++s) {
    const uint64_t sec_first = offsets_[s * prefixes_per_section];
    const uint64_t sec_last = offsets_[(s + 1) * prefixes_per_section];
    if (sec_first >= sec_last) {
      continue;
    }
    // Does any query need this section?
    bool needed = false;
    for (const auto& ranges : record_ranges) {
      for (const auto& [rb, re] : ranges) {
        if (rb < sec_last && re > sec_first) {
          needed = true;
          break;
        }
      }
      if (needed) {
        break;
      }
    }
    if (!needed) {
      continue;
    }

    watch.Reset();
    const uint64_t n = sec_last - sec_first;
    {
      S3VCD_TRACE_SPAN("pseudo_disk.load_section");
      buffer.resize(n * internal::kRecordBytes);
      S3VCD_RETURN_IF_ERROR(reader.Seek(
          payload_offset_ + sec_first * internal::kRecordBytes));
      S3VCD_RETURN_IF_ERROR(reader.ReadBytes(buffer.data(), buffer.size()));
    }
    const double load_seconds = watch.ElapsedSeconds();
    stats->load_seconds += load_seconds;
    stats->records_loaded += n;
    ++stats->sections_loaded;
    // One Seek + one contiguous ReadBytes = one simulated IO.
    g_io_ops->Increment();
    g_bytes_read->Increment(buffer.size());
    g_sections_loaded->Increment();
    g_records_loaded->Increment(n);
    g_section_load_us->Record(load_seconds * 1e6);

    watch.Reset();
    {
      S3VCD_TRACE_SPAN("pseudo_disk.refine_section");
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        for (const auto& [rb, re] : record_ranges[qi]) {
          const uint64_t lo = std::max(rb, sec_first);
          const uint64_t hi = std::min(re, sec_last);
          for (uint64_t i = lo; i < hi; ++i) {
            internal::DeserializeRecord(
                buffer.data() + (i - sec_first) * internal::kRecordBytes,
                &rec);
            const double dist_sq =
                fp::SquaredDistance(queries[qi], rec.descriptor);
            (*results)[qi].push_back(
                {rec.id, rec.time_code,
                 static_cast<float>(std::sqrt(dist_sq)), rec.x, rec.y});
            ++stats->records_scanned;
          }
        }
      }
    }
    stats->refine_seconds += watch.ElapsedSeconds();
  }
  g_records_scanned->Increment(stats->records_scanned);
  return reader.Close();
}

}  // namespace s3vcd::core
