#ifndef S3VCD_CORE_SYNTHETIC_DB_H_
#define S3VCD_CORE_SYNTHETIC_DB_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "fingerprint/fingerprint.h"
#include "util/rng.h"

namespace s3vcd::core {

/// Options of the distractor generator that pads large experimental
/// databases (see DESIGN.md substitutions: it replaces the bulk of the INA
/// archive whose only experimental role is distractor density).
struct DistractorOptions {
  /// Per-component Gaussian jitter added to a bootstrap-resampled real
  /// fingerprint, in byte units. Keeps the padded population on the same
  /// manifold as extracted fingerprints instead of filling the hypercube
  /// uniformly (which would be unrealistically easy to index).
  double jitter_sigma = 6.0;
  /// Identifier of the first synthetic video; distractors must not collide
  /// with real reference ids.
  uint32_t first_id = 1u << 20;
  /// Fingerprints attributed to each synthetic video id.
  uint32_t fingerprints_per_video = 500;
  /// Time codes are drawn uniformly in [0, max_time_code) so distractors
  /// exhibit no temporal coherence for the voting stage to latch onto.
  uint32_t max_time_code = 500000;
};

/// Draws `count` distractor fingerprints by bootstrap-resampling `pool`
/// with jitter and appends them to `builder`. The pool must be non-empty.
void AppendDistractors(DatabaseBuilder* builder,
                       const std::vector<fp::Fingerprint>& pool,
                       uint64_t count, const DistractorOptions& options,
                       Rng* rng);

/// Convenience used by benchmarks: a purely synthetic query/pool
/// fingerprint with i.i.d. uniform byte components (the distribution used
/// in the paper's Section V-A protocol before adding Gaussian distortion).
fp::Fingerprint UniformRandomFingerprint(Rng* rng);

/// Adds i.i.d. N(0, sigma) distortion to each component (clamped to
/// [0, 255]): builds the paper's Q = S + Delta S queries.
fp::Fingerprint DistortFingerprint(const fp::Fingerprint& base, double sigma,
                                   Rng* rng);

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_SYNTHETIC_DB_H_
