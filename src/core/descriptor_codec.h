#ifndef S3VCD_CORE_DESCRIPTOR_CODEC_H_
#define S3VCD_CORE_DESCRIPTOR_CODEC_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/descriptor_block.h"
#include "fingerprint/fingerprint.h"

namespace s3vcd::core {

/// The pluggable descriptor representation ("codec") behind every scan
/// surface. A codec maps the exact 20-byte u8 descriptor to a packed code
/// and back; the refinement kernels (core/scan_kernel) fuse the decode
/// into the distance accumulation so quantized stores are scanned without
/// materializing exact bytes.
///
/// Codecs:
///   exact  20 B/record, bit-identical roundtrip, the default everywhere.
///   lvq8   20 B/record, LVQ-style per-axis scale+bias u8 scalar codes
///          (lossless on u8 sources whose per-axis range is full; at most
///          off-by-rounding otherwise — axis_error pins the exact bound).
///   lvq4   10 B/record, 4-bit codes, two axes per byte (even axis in the
///          low nibble): the 2x byte-reduction codec. Reconstruction error
///          per axis is bounded by the trained step (~range/15).
///
/// Distance semantics on a quantized view: the kernels compute the exact
/// integer squared distance between the query and the *decoded* record
/// v̂ = min(255, lo_j + ((c * step16_j + 128) >> 8)) — deterministic pure
/// integer arithmetic, so every kernel variant (scalar/AVX2/AVX-512)
/// returns bitwise-identical distances. Radius tests are inflated by the
/// codec's max reconstruction error E = sqrt(sum_j e_j^2), which makes the
/// quantized match set a guaranteed superset of the exact one (recall 1.0
/// with respect to membership; reported distances are the decoded-point
/// distances). The exact path — memtable, exact segments, all in-memory
/// backends — re-ranks those candidates for free because it scans exact
/// bytes.
enum class DescriptorCodecKind : uint8_t {
  kExactU8 = 0,  ///< packed exact bytes, the historical layout
  kLvq8 = 1,     ///< 8-bit per-axis scale+bias scalar quantization
  kLvq4 = 2,     ///< 4-bit codes, two axes per byte
};

/// Display/parse name: "exact", "lvq8", "lvq4".
const char* DescriptorCodecName(DescriptorCodecKind kind);
/// Parses a codec name; returns false (and leaves *kind alone) on unknown
/// names.
bool DescriptorCodecFromName(const std::string& name,
                             DescriptorCodecKind* kind);
/// "exact, lvq4, lvq8" — for error messages and usage lines.
std::string DescriptorCodecNamesCsv();

/// Encoded bytes per record: 20 / 20 / 10.
size_t DescriptorCodeBytes(DescriptorCodecKind kind);
/// Largest code value per axis: 255 / 255 / 15.
uint32_t DescriptorCodecMaxCode(DescriptorCodecKind kind);

/// A trained codec: kind + per-axis parameters + the exact reconstruction
/// error bounds derived from them. Trivially copyable; owners (segments,
/// coded blocks) embed one and hand scans a pointer via DescriptorView.
struct DescriptorCodec {
  DescriptorCodecKind kind = DescriptorCodecKind::kExactU8;
  /// Per-axis bias: the smallest value seen at training time.
  std::array<uint8_t, fp::kDims> lo{};
  /// Per-axis fixed-point step, scale * 256 (>= 1). Decode multiplies the
  /// code by this and shifts right 8 with rounding.
  std::array<uint16_t, fp::kDims> step16{};
  /// Exact per-axis max |decode(encode(v)) - v| over the trained range,
  /// computed by exhaustive scan at training time (integers, so exact).
  std::array<uint8_t, fp::kDims> axis_error{};
  /// sqrt(sum_j axis_error_j^2): the Euclidean reconstruction error bound
  /// used to inflate radius tests on quantized scans.
  double max_error = 0;

  bool is_exact() const { return kind == DescriptorCodecKind::kExactU8; }
  size_t code_bytes() const { return DescriptorCodeBytes(kind); }
  const char* name() const { return DescriptorCodecName(kind); }
  /// Reconstruction error bound in model-normalized units:
  /// sqrt(sum_j axis_error_j^2 * inv_scale_sq_j).
  double NormalizedMaxError(const double* inv_scale_sq) const;
};

/// Trains codec parameters of `kind` over `n` packed exact descriptors
/// (per-axis min/max -> lo/step16) and computes the exact error bounds.
/// Training an exact codec returns the identity codec. Deterministic.
DescriptorCodec TrainDescriptorCodec(DescriptorCodecKind kind,
                                     const uint8_t* descriptors, size_t n);

/// Encodes one exact descriptor (fp::kDims bytes) into codec.code_bytes()
/// output bytes. For lvq4 the even axis lands in the low nibble.
void EncodeDescriptor(const DescriptorCodec& codec, const uint8_t* src,
                      uint8_t* dst);

/// Decodes one coded record back to fp::kDims exact-domain bytes using the
/// deterministic integer formula the kernels fuse.
void DecodeDescriptor(const DescriptorCodec& codec, const uint8_t* src,
                      uint8_t* dst);

/// On-disk serialization of the trained parameters (the codec-params
/// section of `.s3seg` version 2): step16 LE + lo + axis_error + maxcode,
/// zero-padded to kDescriptorCodecParamsBytes. Exact codecs serialize to
/// an empty section instead.
inline constexpr size_t kDescriptorCodecParamsBytes = 96;
void SerializeCodecParams(const DescriptorCodec& codec,
                          uint8_t out[kDescriptorCodecParamsBytes]);
/// Rebuilds a codec of `kind` from a serialized params blob. Returns false
/// on structurally invalid params (zero step, maxcode mismatch).
bool DeserializeCodecParams(DescriptorCodecKind kind, const uint8_t* in,
                            DescriptorCodec* codec);

/// A structure-of-arrays record store in *encoded* form: the quantized
/// counterpart of DescriptorBlock. Built by encoding an exact block (or
/// appending pre-encoded rows); serves a DescriptorView whose codec field
/// routes scans through the fused decode kernels. Used by the quantized
/// benches, the recall tests, and any in-memory consumer that wants the
/// byte reduction without a segment file.
class CodedDescriptorBlock {
 public:
  /// Trains `kind` on `block` and encodes every record.
  static CodedDescriptorBlock Encode(DescriptorCodecKind kind,
                                     const DescriptorBlock& block);

  const DescriptorCodec& codec() const { return codec_; }
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  /// Encoded payload bytes (size() * codec().code_bytes()).
  uint64_t coded_descriptor_bytes() const { return codes_.size(); }

  /// A view over the encoded arrays, valid until the next mutation. The
  /// view's codec pointer is into this object.
  DescriptorView View() const {
    DescriptorView view{codes_.data(), ids_.data(), time_codes_.data(),
                        xs_.data(),    ys_.data(),  ids_.size()};
    view.desc_bytes = codec_.code_bytes();
    view.codec = &codec_;
    return view;
  }

 private:
  DescriptorCodec codec_;
  std::vector<uint8_t> codes_;  ///< size() * code_bytes packed codes
  std::vector<uint32_t> ids_;
  std::vector<uint32_t> time_codes_;
  std::vector<float> xs_;
  std::vector<float> ys_;
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_DESCRIPTOR_CODEC_H_
