#ifndef S3VCD_CORE_VAMANA_H_
#define S3VCD_CORE_VAMANA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/descriptor_block.h"
#include "core/descriptor_codec.h"
#include "core/record.h"
#include "core/searcher.h"
#include "fingerprint/fingerprint.h"
#include "util/status.h"

namespace s3vcd::core {

/// Options of the Vamana-style graph ANN backend (registry name "vamana"):
/// a single-shot DiskANN-flavored proximity graph over a snapshot of
/// fingerprint records, built with GreedySearch + alpha-RobustPrune under
/// a hard out-degree bound.
struct VamanaOptions {
  /// Out-degree bound R of every node.
  int graph_degree = 32;
  /// Beam width L_build of the build-time greedy searches (clamped up to
  /// graph_degree so the pruning pool is never smaller than the degree).
  int build_beam = 64;
  /// Default query-time beam width L. Larger beams visit more of the graph:
  /// higher recall, more distance computations (see docs/tuning.md for the
  /// measured recall-vs-latency tradeoff).
  int beam_width = 64;
  /// RobustPrune diversity factor; > 1 keeps longer-range edges that help
  /// the search escape local neighborhoods.
  double alpha = 1.2;
  /// Seed of the random insertion order and the initial random graph. The
  /// build is deterministic in (records, options) — including this seed —
  /// regardless of build_threads (pinned by tests/backend_parity_test.cc).
  uint64_t seed = 1;
  /// Build fan-out width (0 = hardware concurrency), run on the shared
  /// ThreadPool via ParallelFor.
  int build_threads = 0;
  /// Vector-storage codec: quantized codecs back the graph with a
  /// CodedDescriptorBlock and the beam search scores through the fused
  /// decode gather kernels (see core/descriptor_codec.h).
  DescriptorCodecKind codec = DescriptorCodecKind::kExactU8;
  /// Optional graph blob path: loaded when header + record digest match
  /// the current records and options, (re)written after a build, so
  /// rebuilds are not paid per process. Empty = build in memory each time.
  std::string graph_path;
};

/// Per-thread beam-search scratch, reused across queries (the same pattern
/// as the filter layer's SelectionScratch): the epoch-stamped visited set,
/// the sorted candidate pool and the gather id/distance staging buffers.
/// Obtain via ThreadLocalVamanaScratch().
struct VamanaScratch {
  struct Candidate {
    uint32_t dist_sq = 0;
    uint32_t id = 0;
    bool expanded = false;
  };

  std::vector<uint32_t> visit_mark;  ///< per-node epoch stamp
  uint32_t epoch = 0;
  std::vector<Candidate> pool;        ///< beam, sorted by (dist_sq, id)
  std::vector<uint32_t> gather_ids;   ///< unvisited neighbors of one hop
  std::vector<uint32_t> gather_dist;  ///< their batched distances
  std::vector<Candidate> visited;     ///< expanded nodes (build pruning)
};

/// The calling thread's scratch (thread-local, lazily created).
VamanaScratch* ThreadLocalVamanaScratch();

/// Graph ANN index over a snapshot of fingerprint records: beam search
/// from a medoid entry point over a degree-bounded proximity graph, with
/// every candidate set scored through the batched gather kernels of
/// core/scan_kernel.h. Queries are approximate — the recall contract at
/// the benchmarked operating points lives in BENCH_ann.json and is floored
/// by tests/backend_parity_test.cc (like the LSH baseline). StatQuery is
/// emulated as a range query at the equal-expectation radius; matches are
/// always exact-distance filtered (no false positives beyond the codec's
/// documented reconstruction bound), only misses are possible.
class VamanaIndex : public Searcher {
 public:
  VamanaIndex(std::vector<FingerprintRecord> records,
              const VamanaOptions& options);

  size_t size() const { return view_.count; }
  const VamanaOptions& options() const { return options_; }
  uint32_t medoid() const { return medoid_; }
  /// Effective degree bound (min(graph_degree, n - 1)).
  uint32_t degree_bound() const { return degree_bound_; }
  /// Whether construction loaded the graph blob instead of building.
  bool loaded_from_blob() const { return loaded_from_blob_; }

  /// Out-neighbors of `node`, for tests and diagnostics.
  std::vector<uint32_t> Neighbors(uint32_t node) const;

  /// Range query at an explicit beam width (the Searcher interface uses
  /// options().beam_width); the equal-recall harness sweeps this.
  QueryResult RangeQueryWithBeam(const fp::Fingerprint& query, double epsilon,
                                 int beam) const;

  /// Serializes the graph (header, parameters, record digest, adjacency,
  /// CRC) to `path`. The vectors are not stored — the blob only ever pairs
  /// with the records that produced its digest.
  Status SaveGraph(const std::string& path) const;

  // ---- Searcher interface ----
  const char* backend_name() const override { return "vamana"; }
  QueryResult StatQuery(const fp::Fingerprint& query,
                        const DistortionModel& model,
                        const QueryOptions& options) const override;
  QueryResult RangeQuery(const fp::Fingerprint& query, double epsilon,
                         int /*depth*/) const override;
  SearcherStats Stats() const override;
  uint64_t ApproxBytes() const override;

 private:
  /// Greedy beam search toward `query_bytes` (fp::kDims exact-domain
  /// bytes). Returns the number of beam expansions; `on_scored` sees every
  /// (node, exact integer squared distance) pair exactly once. When
  /// `collect_visited` the expanded nodes land in scratch->visited in
  /// expansion order (the RobustPrune candidate pool of the build).
  template <typename OnScored>
  uint64_t BeamSearch(const uint8_t* query_bytes, int beam,
                      bool collect_visited, VamanaScratch* scratch,
                      OnScored&& on_scored) const;

  QueryResult RangeQueryImpl(const fp::Fingerprint& query, double epsilon,
                             int beam) const;

  void Build();
  Status LoadGraph(const std::string& path);

  /// alpha-RobustPrune of `candidates` (sorted by distance from `p`) down
  /// to the degree bound, using exact-domain bytes at `base`.
  void RobustPrune(uint32_t p, double alpha, const uint8_t* base,
                   std::vector<VamanaScratch::Candidate>* candidates,
                   std::vector<uint32_t>* out) const;

  VamanaOptions options_;
  DescriptorBlock block_;        ///< exact storage (exact codec only)
  CodedDescriptorBlock coded_;   ///< quantized storage (lvq codecs)
  DescriptorView view_;          ///< into block_ or coded_
  double max_error_ = 0;         ///< codec reconstruction bound
  uint32_t digest_ = 0;          ///< CRC of the input records (blob check)
  uint32_t degree_bound_ = 0;
  uint32_t medoid_ = 0;
  bool loaded_from_blob_ = false;
  std::vector<uint32_t> degree_;  ///< out-degree per node
  std::vector<uint32_t> adj_;     ///< n * degree_bound_ neighbor ids
};

}  // namespace s3vcd::core

#endif  // S3VCD_CORE_VAMANA_H_
