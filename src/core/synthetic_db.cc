#include "core/synthetic_db.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace s3vcd::core {

namespace {

uint8_t ClampToByte(double v) {
  if (v <= 0) {
    return 0;
  }
  if (v >= 255) {
    return 255;
  }
  return static_cast<uint8_t>(v + 0.5);
}

}  // namespace

void AppendDistractors(DatabaseBuilder* builder,
                       const std::vector<fp::Fingerprint>& pool,
                       uint64_t count, const DistractorOptions& options,
                       Rng* rng) {
  S3VCD_CHECK(!pool.empty());
  for (uint64_t i = 0; i < count; ++i) {
    const fp::Fingerprint& base =
        pool[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(pool.size()) - 1))];
    fp::Fingerprint out;
    for (int j = 0; j < fp::kDims; ++j) {
      out[j] = ClampToByte(base[j] + rng->Gaussian(0, options.jitter_sigma));
    }
    const uint32_t id =
        options.first_id +
        static_cast<uint32_t>(i / options.fingerprints_per_video);
    const uint32_t tc = static_cast<uint32_t>(
        rng->UniformInt(0, options.max_time_code - 1));
    builder->Add(out, id, tc);
  }
}

fp::Fingerprint UniformRandomFingerprint(Rng* rng) {
  fp::Fingerprint out;
  for (int j = 0; j < fp::kDims; ++j) {
    out[j] = static_cast<uint8_t>(rng->UniformInt(0, 255));
  }
  return out;
}

fp::Fingerprint DistortFingerprint(const fp::Fingerprint& base, double sigma,
                                   Rng* rng) {
  fp::Fingerprint out;
  for (int j = 0; j < fp::kDims; ++j) {
    out[j] = ClampToByte(base[j] + rng->Gaussian(0, sigma));
  }
  return out;
}

}  // namespace s3vcd::core
