#include "core/vafile.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/scan_kernel.h"
#include "util/logging.h"
#include "util/timer.h"

namespace s3vcd::core {

VAFile::VAFile(std::vector<FingerprintRecord> records,
               const VAFileOptions& options)
    : options_(options), slices_(1 << options.bits_per_dim) {
  S3VCD_CHECK(options.bits_per_dim >= 1 && options.bits_per_dim <= 8);
  block_.Reserve(records.size());
  for (const FingerprintRecord& r : records) {
    block_.AppendRecord(r);
  }
  // Slice boundaries.
  for (int j = 0; j < fp::kDims; ++j) {
    boundaries_[j].resize(slices_ + 1);
    boundaries_[j][0] = 0.0;
    boundaries_[j][slices_] = 256.0;
  }
  if (options_.quantile_boundaries && !block_.empty()) {
    std::vector<uint8_t> column(block_.size());
    for (int j = 0; j < fp::kDims; ++j) {
      for (size_t i = 0; i < block_.size(); ++i) {
        column[i] = block_.descriptor(i)[j];
      }
      std::sort(column.begin(), column.end());
      for (int s = 1; s < slices_; ++s) {
        const size_t rank = block_.size() * static_cast<size_t>(s) /
                            static_cast<size_t>(slices_);
        // Boundaries must strictly increase; nudge past duplicates.
        double b = static_cast<double>(column[rank]);
        b = std::max(b, boundaries_[j][s - 1] + 256.0 / (slices_ * 4.0));
        boundaries_[j][s] = std::min(b, 256.0 - (slices_ - s) * 0.001);
      }
    }
  } else {
    const double width = 256.0 / slices_;
    for (int j = 0; j < fp::kDims; ++j) {
      for (int s = 1; s < slices_; ++s) {
        boundaries_[j][s] = s * width;
      }
    }
  }
  // Approximations.
  cells_.resize(block_.size() * fp::kDims);
  for (size_t i = 0; i < block_.size(); ++i) {
    for (int j = 0; j < fp::kDims; ++j) {
      cells_[i * fp::kDims + j] =
          static_cast<uint8_t>(SliceOf(j, block_.descriptor(i)[j]));
    }
  }
}

int VAFile::SliceOf(int dim, uint8_t value) const {
  const auto& b = boundaries_[dim];
  // First boundary strictly greater than value, minus one.
  const auto it = std::upper_bound(b.begin() + 1, b.end(),
                                   static_cast<double>(value));
  int slice = static_cast<int>(it - b.begin()) - 1;
  return std::clamp(slice, 0, slices_ - 1);
}

void VAFile::BuildBoundTables(
    const fp::Fingerprint& query,
    std::array<std::vector<double>, fp::kDims>* lower_sq,
    std::array<std::vector<double>, fp::kDims>* upper_sq) const {
  for (int j = 0; j < fp::kDims; ++j) {
    auto& lo = (*lower_sq)[j];
    auto& hi = (*upper_sq)[j];
    lo.resize(slices_);
    hi.resize(slices_);
    const double q = query[j];
    for (int s = 0; s < slices_; ++s) {
      // Slice values lie in [a, b); using the open edge b keeps the lower
      // bound conservative for arbitrarily narrow quantile slices.
      const double a = boundaries_[j][s];
      const double b = boundaries_[j][s + 1];
      double lower = 0;
      if (q < a) {
        lower = a - q;
      } else if (q > b) {
        lower = q - b;
      }
      const double upper = std::max(std::abs(q - a), std::abs(q - b));
      lo[s] = lower * lower;
      hi[s] = upper * upper;
    }
  }
}

QueryResult VAFile::RangeQueryImpl(const fp::Fingerprint& query,
                                   double epsilon) const {
  QueryResult result;
  Stopwatch watch;
  std::array<std::vector<double>, fp::kDims> lower_sq;
  std::array<std::vector<double>, fp::kDims> upper_sq;
  BuildBoundTables(query, &lower_sq, &upper_sq);
  result.stats.selection_ns = watch.ElapsedNanos();
  result.stats.filter_seconds = result.stats.selection_ns * 1e-9;

  watch.Reset();
  const double eps_sq = epsilon * epsilon;
  const RefineSpec spec(RefinementMode::kRadiusFilter, epsilon, nullptr);
  for (size_t i = 0; i < block_.size(); ++i) {
    const uint8_t* cell = &cells_[i * fp::kDims];
    double lb = 0;
    for (int j = 0; j < fp::kDims; ++j) {
      lb += lower_sq[j][cell[j]];
      if (lb > eps_sq) {
        break;
      }
    }
    if (lb > eps_sq) {
      continue;  // filtered by the approximation alone
    }
    // Phase 2 (exact vector access) counts as a scanned record.
    RefineRecord(query, block_, i, spec, &result);
  }
  result.stats.refine_ns = watch.ElapsedNanos();
  result.stats.refine_seconds = result.stats.refine_ns * 1e-9;
  return result;
}

QueryResult VAFile::RangeQuery(const fp::Fingerprint& query,
                               double epsilon) const {
  QueryResult result = RangeQueryImpl(query, epsilon);
  RecordQueryMetrics(QueryKind::kRange, result.stats, result.matches.size());
  return result;
}

QueryResult VAFile::StatQuery(const fp::Fingerprint& query,
                              const DistortionModel& model,
                              const QueryOptions& options) const {
  QueryResult result = RangeQueryImpl(
      query, EqualExpectationRadius(model, options.filter.alpha));
  RecordQueryMetrics(QueryKind::kStatistical, result.stats,
                     result.matches.size());
  return result;
}

QueryResult VAFile::KnnQuery(const fp::Fingerprint& query, int k) const {
  S3VCD_CHECK(k >= 1);
  QueryResult result;
  Stopwatch watch;
  std::array<std::vector<double>, fp::kDims> lower_sq;
  std::array<std::vector<double>, fp::kDims> upper_sq;
  BuildBoundTables(query, &lower_sq, &upper_sq);

  // Phase 1: compute bounds, keep candidates whose lower bound beats the
  // running kth-smallest upper bound.
  struct Candidate {
    double lb;
    uint32_t index;
  };
  std::priority_queue<double> kth_upper;  // max-heap of k smallest ubs
  std::vector<Candidate> candidates;
  candidates.reserve(256);
  for (size_t i = 0; i < block_.size(); ++i) {
    const uint8_t* cell = &cells_[i * fp::kDims];
    double lb = 0;
    double ub = 0;
    for (int j = 0; j < fp::kDims; ++j) {
      lb += lower_sq[j][cell[j]];
      ub += upper_sq[j][cell[j]];
    }
    const double cutoff = kth_upper.size() < static_cast<size_t>(k)
                              ? std::numeric_limits<double>::infinity()
                              : kth_upper.top();
    if (lb <= cutoff) {
      candidates.push_back({lb, static_cast<uint32_t>(i)});
      if (kth_upper.size() < static_cast<size_t>(k)) {
        kth_upper.push(ub);
      } else if (ub < kth_upper.top()) {
        kth_upper.pop();
        kth_upper.push(ub);
      }
    }
  }
  result.stats.selection_ns = watch.ElapsedNanos();
  result.stats.filter_seconds = result.stats.selection_ns * 1e-9;

  // Phase 2: visit candidates by increasing lower bound; stop when the
  // next lower bound exceeds the kth exact distance found so far.
  watch.Reset();
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.lb < b.lb;
            });
  std::priority_queue<Match, std::vector<Match>,
                      decltype([](const Match& a, const Match& b) {
                        return a.distance < b.distance;
                      })>
      best;
  for (const Candidate& cand : candidates) {
    if (best.size() == static_cast<size_t>(k) &&
        std::sqrt(cand.lb) >= best.top().distance) {
      break;
    }
    ++result.stats.records_scanned;
    const size_t idx = cand.index;
    const float dist = static_cast<float>(std::sqrt(static_cast<double>(
        SquaredDistanceU32(query.data(), block_.descriptor(idx)))));
    const Match m{block_.id(idx), block_.time_code(idx), dist, block_.x(idx),
                  block_.y(idx)};
    if (best.size() < static_cast<size_t>(k)) {
      best.push(m);
    } else if (dist < best.top().distance) {
      best.pop();
      best.push(m);
    }
  }
  result.matches.resize(best.size());
  for (size_t i = result.matches.size(); i-- > 0;) {
    result.matches[i] = best.top();
    best.pop();
  }
  result.stats.refine_ns = watch.ElapsedNanos();
  result.stats.refine_seconds = result.stats.refine_ns * 1e-9;
  return result;
}

}  // namespace s3vcd::core
