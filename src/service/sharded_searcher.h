#ifndef S3VCD_SERVICE_SHARDED_SEARCHER_H_
#define S3VCD_SERVICE_SHARDED_SEARCHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/distortion_model.h"
#include "core/searcher.h"
#include "fingerprint/fingerprint.h"
#include "obs/metrics.h"
#include "service/cancel_token.h"
#include "service/selection_cache.h"
#include "util/bitkey.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace s3vcd::service {

/// How reference records are assigned to shards.
enum class ShardingPolicy {
  /// Contiguous Hilbert-key ranges with (near) equal record counts per
  /// shard. Preserves the curve locality inside each shard, so a query's
  /// selected region usually touches few shards' occupied ranges; shard
  /// sizes can drift as inserts cluster.
  kHilbertRange,
  /// Mixed hash on the reference video id. Keeps every video's
  /// fingerprints on one shard (deletion/compaction of one video touches
  /// one shard) and load-balances inserts by construction.
  kRefIdHash,
};

/// Construction options of a ShardedSearcher.
struct ShardedSearcherOptions {
  /// Number of shards K, clamped to [1, 1024].
  int num_shards = 4;
  ShardingPolicy policy = ShardingPolicy::kHilbertRange;
  /// Registry name of the per-shard backend ("dynamic", "s3", "vafile",
  /// "lsh", "seqscan", or any extension registered with SearcherRegistry).
  std::string backend = "dynamic";
  /// Backend construction parameters forwarded to the registry factory.
  core::SearcherConfig config;
};

/// Partitions one reference database across K Searcher shards (any
/// registered backend; "dynamic" by default) and answers statistical
/// queries over their union.
///
/// Correctness invariant (pinned by tests/service_test.cc and
/// tests/backend_parity_test.cc): on block-structured backends a
/// statistical query's block selection depends only on the query, the
/// model and the filter options — never on database contents — so
/// scanning every shard with ONE shared selection returns exactly the
/// matches the unsharded index would return, for any shard count and
/// either policy. That shared selection is also what the SelectionCache
/// stores. Backends without block structure (selection_filter() ==
/// nullptr) degrade gracefully: each shard answers the statistical query
/// itself and the partials are merged — still exact for exhaustive
/// backends, with no selection to share or cache.
///
/// Concurrency: queries are const and safe to fan out; Insert/CompactAll
/// mutate and require external exclusion (the backend's single-writer
/// contract).
class ShardedSearcher {
 public:
  /// Consumes `db` and redistributes its records into K shards.
  static Result<ShardedSearcher> Build(core::FingerprintDatabase db,
                                       const ShardedSearcherOptions& options);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardedSearcherOptions& options() const { return options_; }
  const core::Searcher& shard(int i) const { return *shards_[i]; }
  size_t total_size() const;
  size_t pending_inserts() const;

  /// Routes one new fingerprint to its shard, where it becomes visible
  /// to queries immediately. Returns false — and inserts nothing — when
  /// the backend does not support dynamic insertion.
  bool Insert(const fp::Fingerprint& fingerprint, uint32_t id,
              uint32_t time_code, float x = 0, float y = 0);

  /// Folds every shard's insert buffer into its static part.
  void CompactAll();

  /// Statistical query over the union of all shards: one block selection
  /// (optionally via `cache`) and one refinement scan per shard when the
  /// backend exposes block structure, one per-shard statistical query
  /// otherwise; merged matches either way. Per-shard scan latency lands in
  /// service.shard<k>.scan_us; the per-query stats are published through
  /// the same RecordQueryMetrics path as unsharded queries.
  core::QueryResult StatisticalQuery(const fp::Fingerprint& query,
                                     const core::DistortionModel& model,
                                     const core::QueryOptions& options,
                                     SelectionCache* cache = nullptr) const;

  /// Exact epsilon-range query over the union of all shards: each shard
  /// answers the range query itself (publishing its own per-query metrics,
  /// like the no-selection statistical fallback) and the partials are
  /// merged. `depth` is the geometric filter's partition depth on
  /// block-structured backends. Exact for every backend whose RangeQuery
  /// is exact (all but lsh).
  core::QueryResult RangeQuery(const fp::Fingerprint& query, double epsilon,
                               int depth) const;

  /// Fans a batch out on `pool` — per-query selections, then one
  /// refinement-scan task per (query, shard) on block-structured backends;
  /// directly one statistical-query task per (query, shard) otherwise —
  /// so shard count multiplies the available parallelism even for small
  /// batches. Serial when pool is null. results[i] corresponds to
  /// queries[i].
  ///
  /// When `cancel` is non-null, tasks poll it and stop starting work once
  /// it fires (deadline or hedge loss); a query counts as executed — and
  /// carries a non-default result — only if its selection AND every shard
  /// scan ran, so a cancelled batch never returns a partial shard union
  /// disguised as a complete result. `*executed` (when non-null) receives
  /// the number of fully-executed queries.
  std::vector<core::QueryResult> BatchStatisticalQuery(
      const std::vector<fp::Fingerprint>& queries,
      const core::DistortionModel& model, const core::QueryOptions& options,
      ThreadPool* pool = nullptr, SelectionCache* cache = nullptr,
      const CancelToken* cancel = nullptr, size_t* executed = nullptr) const;

 private:
  ShardedSearcher(ShardedSearcherOptions options,
                  std::vector<std::unique_ptr<core::Searcher>> shards,
                  std::vector<BitKey> boundaries, int order);

  /// Shard index a new record with `key` / `id` routes to.
  size_t RouteShard(const BitKey& key, uint32_t id) const;

  /// Computes (or fetches from `cache`) the shared block selection for one
  /// query; stores the elapsed selection time in *selection_ns and whether
  /// it was served by a cache hit in *cached (so stats don't re-report the
  /// cached walk's nodes_visited as fresh work). Returns nullptr (leaving
  /// *selection_ns at 0) when the backend has no block structure — callers
  /// then fall back to per-shard StatQuery.
  std::shared_ptr<const core::BlockSelection> GetSelection(
      const fp::Fingerprint& query, const core::DistortionModel& model,
      const core::QueryOptions& options, SelectionCache* cache,
      uint64_t* selection_ns, bool* cached) const;

  /// Refinement scan of shard `k` under a precomputed selection.
  core::QueryResult ScanShard(size_t k, const fp::Fingerprint& query,
                              const core::BlockSelection& selection,
                              const core::DistortionModel& model,
                              const core::QueryOptions& options) const;

  /// Fallback without a shared selection: shard `k` answers the
  /// statistical query itself (publishing its own per-shard metrics).
  core::QueryResult StatShard(size_t k, const fp::Fingerprint& query,
                              const core::DistortionModel& model,
                              const core::QueryOptions& options) const;

  /// Combines per-shard partial results into the query's final result.
  /// With a `selection`, publishes one merged metrics record (the shards
  /// only scanned); without one, the per-shard queries already published
  /// and the merge only aggregates the stats.
  core::QueryResult MergeShardResults(
      const core::BlockSelection* selection, uint64_t selection_ns,
      bool selection_cached, std::vector<core::QueryResult> partials) const;

  ShardedSearcherOptions options_;
  std::vector<std::unique_ptr<core::Searcher>> shards_;
  /// kHilbertRange only: upper key bound (exclusive) of each shard except
  /// the last; size num_shards - 1.
  std::vector<BitKey> boundaries_;
  /// Empty database of the shards' curve order: the Hilbert encoder that
  /// routes inserts (backends do not all expose their database).
  core::FingerprintDatabase encoder_;
  /// Per-shard scan-latency histograms ("service.shard<k>.scan_us").
  std::vector<obs::Histogram*> shard_scan_us_;
};

}  // namespace s3vcd::service

#endif  // S3VCD_SERVICE_SHARDED_SEARCHER_H_
