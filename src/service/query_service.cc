#include "service/query_service.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace s3vcd::service {

namespace {

obs::Gauge* const g_queue_depth =
    obs::MetricsRegistry::Global().GetGauge("service.queue_depth");
obs::Counter* const g_batches_submitted =
    obs::MetricsRegistry::Global().GetCounter("service.batches_submitted");
obs::Counter* const g_batches_completed =
    obs::MetricsRegistry::Global().GetCounter("service.batches_completed");
obs::Counter* const g_admission_rejects =
    obs::MetricsRegistry::Global().GetCounter("service.admission_rejects");
obs::Counter* const g_deadline_expirations =
    obs::MetricsRegistry::Global().GetCounter(
        "service.deadline_expirations");
// The queued/executing split of deadline_expirations: queue starvation
// (raise workers / shed load) reads very differently from slow execution
// (shrink batches / tighten the filter).
obs::Counter* const g_deadline_expired_queued =
    obs::MetricsRegistry::Global().GetCounter(
        "service.deadline_expired_queued");
obs::Counter* const g_deadline_expired_executing =
    obs::MetricsRegistry::Global().GetCounter(
        "service.deadline_expired_executing");
obs::Counter* const g_batch_queries =
    obs::MetricsRegistry::Global().GetCounter("service.batch_queries");
obs::Histogram* const g_queue_wait_us =
    obs::MetricsRegistry::Global().GetHistogram("service.queue_wait_us");
obs::Histogram* const g_execute_us =
    obs::MetricsRegistry::Global().GetHistogram("service.execute_us");
// Per-stage breakdown of a batch's end-to-end latency. stage_queue_us
// duplicates queue_wait_us bucket-for-bucket so the stage_* family is
// self-contained; selection/refine sum the per-query QueryStats CPU times
// (can exceed wall time under fan-out); stage_other_us is the wall-clock
// residual execute - selection - refine, clamped at 0 — in serial
// execution it is the merge/dispatch overhead, under fan-out the clamp
// makes it a lower bound.
obs::Histogram* const g_stage_queue_us =
    obs::MetricsRegistry::Global().GetHistogram("service.stage_queue_us");
obs::Histogram* const g_stage_selection_us =
    obs::MetricsRegistry::Global().GetHistogram(
        "service.stage_selection_us");
obs::Histogram* const g_stage_refine_us =
    obs::MetricsRegistry::Global().GetHistogram("service.stage_refine_us");
obs::Histogram* const g_stage_other_us =
    obs::MetricsRegistry::Global().GetHistogram("service.stage_other_us");

double MillisSince(std::chrono::steady_clock::time_point since,
                   std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - since).count();
}

}  // namespace

const BatchResult& BatchHandle::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return done_; });
  return result_;
}

bool BatchHandle::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

void BatchHandle::Complete(BatchResult result) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    result_ = std::move(result);
    done_ = true;
  }
  done_cv_.notify_all();
}

QueryService::QueryService(const ShardedSearcher* searcher,
                           const core::DistortionModel* model,
                           const QueryServiceOptions& options)
    : searcher_(searcher), model_(model), options_(options) {
  options_.num_workers = std::max(1, options_.num_workers);
  options_.threads_per_batch = std::max(1, options_.threads_per_batch);
  options_.max_queue_depth = std::max<size_t>(1, options_.max_queue_depth);
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<SelectionCache>(options_.cache_capacity);
  }
  if (options_.slow_batch_threshold_ms >= 0 &&
      options_.slow_log_capacity > 0) {
    slow_log_ = std::make_unique<SlowBatchLog>(
        options_.slow_batch_threshold_ms, options_.slow_log_capacity);
  }
  paused_ = options_.start_paused;
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

Result<BatchTicket> QueryService::Submit(std::vector<fp::Fingerprint> queries,
                                         const BatchOptions& options) {
  const auto now = std::chrono::steady_clock::now();
  auto ticket = std::make_shared<BatchHandle>();
  ticket->queries_ = std::move(queries);
  ticket->options_ = options;
  ticket->submit_time_ = now;
  ticket->has_deadline_ = options.deadline_ms > 0;
  if (ticket->has_deadline_) {
    ticket->deadline_ =
        now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(
                      options.deadline_ms));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
      return Status::FailedPrecondition(
          "query service is shut down; no new batches accepted");
    }
    if (queue_.size() >= options_.max_queue_depth) {
      g_admission_rejects->Increment();
      return Status::Unavailable(
          "admission queue full (depth " +
          std::to_string(options_.max_queue_depth) +
          "); retry after draining");
    }
    queue_.push_back(ticket);
    g_queue_depth->Set(static_cast<int64_t>(queue_.size()));
  }
  g_batches_submitted->Increment();
  work_cv_.notify_one();
  return ticket;
}

void QueryService::Pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void QueryService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return;
    }
    accepting_ = false;
    shutdown_ = true;
    paused_ = false;  // a paused service still drains on shutdown
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
}

size_t QueryService::pending_batches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void QueryService::WorkerLoop() {
  // Each worker owns its fan-out pool, so ThreadPool::Wait() (which waits
  // for *every* submitted task) never entangles two batches.
  std::unique_ptr<ThreadPool> pool;
  if (options_.threads_per_batch > 1) {
    pool = std::make_unique<ThreadPool>(options_.threads_per_batch);
  }
  for (;;) {
    BatchTicket batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) {
        return;  // shutdown with nothing left to drain
      }
      batch = queue_.front();
      queue_.pop_front();
      g_queue_depth->Set(static_cast<int64_t>(queue_.size()));
    }
    ExecuteBatch(batch.get(), pool.get());
  }
}

namespace {

/// Synthesizes the exemplar's span tree from the measured batch times:
/// the queue and execute spans are real wall-clock intervals on the
/// TraceRecorder's process epoch; the selection/refine children are laid
/// out sequentially from the start of execution with their CPU-sum
/// durations (under fan-out they are a schematic of where the time went,
/// not a literal timeline).
SlowBatchExemplar MakeExemplar(size_t queries, const BatchResult& out) {
  SlowBatchExemplar exemplar;
  exemplar.total_ms = out.queue_wait_ms + out.execute_ms;
  exemplar.queue_wait_ms = out.queue_wait_ms;
  exemplar.execute_ms = out.execute_ms;
  exemplar.selection_ms = out.selection_ns * 1e-6;
  exemplar.refine_ms = out.refine_ns * 1e-6;
  exemplar.queries = queries;
  exemplar.queries_executed = out.queries_executed;
  exemplar.status = out.status.ok() ? "OK" : out.status.ToString();

  const uint64_t end_ns = obs::TraceRecorder::NowNanos();
  const auto back = [end_ns](double ms) {
    const uint64_t span = static_cast<uint64_t>(ms * 1e6);
    return span > end_ns ? 0 : end_ns - span;
  };
  const uint64_t execute_start = back(out.execute_ms);
  const uint64_t queue_start = back(out.execute_ms + out.queue_wait_ms);
  exemplar.spans.push_back(
      {"service.batch", 0, queue_start, end_ns});
  exemplar.spans.push_back(
      {"service.stage_queue", 0, queue_start, execute_start});
  exemplar.spans.push_back(
      {"service.stage_execute", 0, execute_start, end_ns});
  uint64_t cursor = execute_start;
  exemplar.spans.push_back({"service.stage_selection", 1, cursor,
                            cursor + out.selection_ns});
  cursor += out.selection_ns;
  exemplar.spans.push_back(
      {"service.stage_refine", 1, cursor, cursor + out.refine_ns});
  return exemplar;
}

}  // namespace

void QueryService::ExecuteBatch(BatchHandle* batch, ThreadPool* pool) {
  S3VCD_TRACE_SPAN("service.execute_batch");
  const auto start = std::chrono::steady_clock::now();
  BatchResult out;
  out.queue_wait_ms = MillisSince(batch->submit_time_, start);
  g_queue_wait_us->Record(out.queue_wait_ms * 1e3);
  g_stage_queue_us->Record(out.queue_wait_ms * 1e3);

  const size_t n = batch->queries_.size();
  out.results.resize(n);
  const bool is_range =
      batch->options_.paradigm == core::SearchParadigm::kRange;

  const auto finish = [this, batch, n](BatchResult result) {
    g_batches_completed->Increment();
    if (slow_log_ != nullptr) {
      SlowBatchExemplar exemplar = MakeExemplar(n, result);
      exemplar.batch_ordinal =
          batch_ordinal_.fetch_add(1, std::memory_order_relaxed) + 1;
      slow_log_->Observe(std::move(exemplar));
    }
    batch->Complete(std::move(result));
  };

  if (batch->has_deadline_ && start >= batch->deadline_) {
    g_deadline_expirations->Increment();
    g_deadline_expired_queued->Increment();
    out.status = Status::DeadlineExceeded(
        "deadline expired after " + std::to_string(out.queue_wait_ms) +
        " ms in the admission queue");
    out.results.clear();
    // Expired batches still report both halves of their latency: the
    // (near-zero) execute leg keeps the histograms' batch counts equal
    // across stages, so rates computed from them agree.
    out.execute_ms = MillisSince(start, std::chrono::steady_clock::now());
    g_execute_us->Record(out.execute_ms * 1e3);
    finish(std::move(out));
    return;
  }

  const auto run_query = [this, batch, is_range](size_t i) {
    return is_range
               ? searcher_->RangeQuery(batch->queries_[i],
                                       batch->options_.epsilon,
                                       options_.query.filter.depth)
               : searcher_->StatisticalQuery(batch->queries_[i], *model_,
                                             options_.query, cache_.get());
  };

  size_t executed = 0;
  if (!batch->has_deadline_ && pool != nullptr && n > 1 && !is_range) {
    // No deadline to police: use the searcher's two-stage fan-out (one
    // selection task per query, one scan task per (query, shard)), which
    // keeps the pool full even for small batches on many shards.
    out.results = searcher_->BatchStatisticalQuery(
        batch->queries_, *model_, options_.query, pool, cache_.get());
    executed = n;
  } else if (pool == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      if (batch->has_deadline_ &&
          std::chrono::steady_clock::now() >= batch->deadline_) {
        break;
      }
      out.results[i] = run_query(i);
      ++executed;
    }
  } else {
    // Tasks that start after expiry skip their query; already-running
    // scans finish (per-query latency bounds the overshoot).
    std::atomic<size_t> completed{0};
    for (size_t i = 0; i < n; ++i) {
      pool->Submit([batch, &completed, &out, &run_query, i] {
        if (batch->has_deadline_ &&
            std::chrono::steady_clock::now() >= batch->deadline_) {
          return;
        }
        out.results[i] = run_query(i);
        completed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool->Wait();
    executed = completed.load(std::memory_order_relaxed);
  }

  out.queries_executed = executed;
  g_batch_queries->Increment(executed);
  if (executed < n) {
    g_deadline_expirations->Increment();
    g_deadline_expired_executing->Increment();
    out.status = Status::DeadlineExceeded(
        "deadline expired after " + std::to_string(executed) + " of " +
        std::to_string(n) + " queries");
  }
  // Stage breakdown: unexecuted slots carry default (zero) stats, so the
  // sums cover exactly the work that happened.
  for (const core::QueryResult& r : out.results) {
    out.selection_ns += r.stats.selection_ns;
    out.refine_ns += r.stats.refine_ns;
  }
  out.execute_ms = MillisSince(start, std::chrono::steady_clock::now());
  g_execute_us->Record(out.execute_ms * 1e3);
  const double selection_us = static_cast<double>(out.selection_ns) * 1e-3;
  const double refine_us = static_cast<double>(out.refine_ns) * 1e-3;
  g_stage_selection_us->Record(selection_us);
  g_stage_refine_us->Record(refine_us);
  g_stage_other_us->Record(
      std::max(0.0, out.execute_ms * 1e3 - selection_us - refine_us));
  finish(std::move(out));
}

}  // namespace s3vcd::service
