#include "service/query_service.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace s3vcd::service {

namespace {

using Clock = std::chrono::steady_clock;

obs::Gauge* const g_queue_depth =
    obs::MetricsRegistry::Global().GetGauge("service.queue_depth");
obs::Counter* const g_batches_submitted =
    obs::MetricsRegistry::Global().GetCounter("service.batches_submitted");
obs::Counter* const g_batches_completed =
    obs::MetricsRegistry::Global().GetCounter("service.batches_completed");
obs::Counter* const g_admission_rejects =
    obs::MetricsRegistry::Global().GetCounter("service.admission_rejects");
obs::Counter* const g_deadline_expirations =
    obs::MetricsRegistry::Global().GetCounter(
        "service.deadline_expirations");
// The queued/executing split of deadline_expirations: queue starvation
// (raise workers / shed load) reads very differently from slow execution
// (shrink batches / tighten the filter).
obs::Counter* const g_deadline_expired_queued =
    obs::MetricsRegistry::Global().GetCounter(
        "service.deadline_expired_queued");
obs::Counter* const g_deadline_expired_executing =
    obs::MetricsRegistry::Global().GetCounter(
        "service.deadline_expired_executing");
obs::Counter* const g_batch_queries =
    obs::MetricsRegistry::Global().GetCounter("service.batch_queries");
obs::Histogram* const g_queue_wait_us =
    obs::MetricsRegistry::Global().GetHistogram("service.queue_wait_us");
obs::Histogram* const g_execute_us =
    obs::MetricsRegistry::Global().GetHistogram("service.execute_us");
// Per-stage breakdown of a batch's end-to-end latency. stage_queue_us
// duplicates queue_wait_us bucket-for-bucket so the stage_* family is
// self-contained; selection/refine sum the per-query QueryStats CPU times
// (can exceed wall time under fan-out); stage_other_us is the wall-clock
// residual execute - selection - refine, clamped at 0 — in serial
// execution it is the merge/dispatch overhead, under fan-out the clamp
// makes it a lower bound.
obs::Histogram* const g_stage_queue_us =
    obs::MetricsRegistry::Global().GetHistogram("service.stage_queue_us");
obs::Histogram* const g_stage_selection_us =
    obs::MetricsRegistry::Global().GetHistogram(
        "service.stage_selection_us");
obs::Histogram* const g_stage_refine_us =
    obs::MetricsRegistry::Global().GetHistogram("service.stage_refine_us");
obs::Histogram* const g_stage_other_us =
    obs::MetricsRegistry::Global().GetHistogram("service.stage_other_us");
// Lane / quota / hedge accounting (docs/query_service.md).
obs::Counter* const g_lane_submitted[2] = {
    obs::MetricsRegistry::Global().GetCounter(
        "service.lane_interactive_submitted"),
    obs::MetricsRegistry::Global().GetCounter(
        "service.lane_bulk_submitted"),
};
obs::Counter* const g_lane_rejects[2] = {
    obs::MetricsRegistry::Global().GetCounter(
        "service.lane_interactive_rejects"),
    obs::MetricsRegistry::Global().GetCounter(
        "service.lane_bulk_rejects"),
};
obs::Gauge* const g_lane_depth[2] = {
    obs::MetricsRegistry::Global().GetGauge(
        "service.lane_interactive_depth"),
    obs::MetricsRegistry::Global().GetGauge("service.lane_bulk_depth"),
};
obs::Counter* const g_quota_rejects =
    obs::MetricsRegistry::Global().GetCounter("service.quota_rejects");
obs::Counter* const g_hedges_armed =
    obs::MetricsRegistry::Global().GetCounter("service.hedges_armed");
obs::Counter* const g_hedges_fired =
    obs::MetricsRegistry::Global().GetCounter("service.hedges_fired");
obs::Counter* const g_hedge_wins =
    obs::MetricsRegistry::Global().GetCounter("service.hedge_wins");
obs::Counter* const g_hedge_cancelled_queries =
    obs::MetricsRegistry::Global().GetCounter(
        "service.hedge_cancelled_queries");

// End-to-end samples retained for the hedge-delay quantile; recomputed
// every kRequantileEvery completions (a 256-sample nth_element is
// microseconds, not worth paying per batch).
constexpr size_t kLatencyRing = 256;
constexpr size_t kRequantileEvery = 16;
// Completions required before the quantile trigger arms.
constexpr size_t kQuantileArmAfter = 32;

double MillisSince(Clock::time_point since, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - since).count();
}

Clock::duration MillisDuration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

const char* LaneName(int lane) {
  return lane == 0 ? "interactive" : "bulk";
}

}  // namespace

const BatchResult& BatchHandle::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return done_; });
  return result_;
}

bool BatchHandle::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

void BatchHandle::Complete(BatchResult result) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(!done_ && "batch completed twice — TryClaim contract violated");
    result_ = std::move(result);
    done_ = true;
  }
  done_cv_.notify_all();
}

QueryService::QueryService(const ShardedSearcher* searcher,
                           const core::DistortionModel* model,
                           const QueryServiceOptions& options)
    : replicas_{searcher}, model_(model), options_(options) {
  Start();
}

QueryService::QueryService(const ReplicatedSearcher* replicas,
                           const core::DistortionModel* model,
                           const QueryServiceOptions& options)
    : model_(model), options_(options) {
  replicas_.reserve(static_cast<size_t>(replicas->num_replicas()));
  for (int r = 0; r < replicas->num_replicas(); ++r) {
    replicas_.push_back(&replicas->replica(r));
  }
  Start();
}

void QueryService::Start() {
  options_.num_workers = std::max(1, options_.num_workers);
  options_.threads_per_batch = std::max(1, options_.threads_per_batch);
  options_.max_queue_depth = std::max<size_t>(1, options_.max_queue_depth);
  options_.bulk_queue_depth = std::max<size_t>(1, options_.bulk_queue_depth);
  hedging_enabled_ =
      replicas_.size() > 1 &&
      (options_.hedge_delay_ms > 0 || options_.hedge_quantile > 0);
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<SelectionCache>(options_.cache_capacity);
  }
  if (options_.slow_batch_threshold_ms >= 0 &&
      options_.slow_log_capacity > 0) {
    slow_log_ = std::make_unique<SlowBatchLog>(
        options_.slow_batch_threshold_ms, options_.slow_log_capacity);
  }
  paused_ = options_.start_paused;
  run_queues_.resize(replicas_.size());
  replica_load_.assign(replicas_.size(), 0);
  workers_.reserve(replicas_.size() *
                   static_cast<size_t>(options_.num_workers));
  for (size_t r = 0; r < replicas_.size(); ++r) {
    for (int i = 0; i < options_.num_workers; ++i) {
      workers_.emplace_back(
          [this, r] { WorkerLoop(static_cast<int>(r)); });
    }
  }
  if (hedging_enabled_) {
    hedge_thread_ = std::thread([this] { HedgeLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

Result<BatchTicket> QueryService::Submit(std::vector<fp::Fingerprint> queries,
                                         const BatchOptions& options) {
  const auto now = Clock::now();
  auto ticket = std::make_shared<BatchHandle>();
  ticket->queries_ = std::move(queries);
  ticket->options_ = options;
  ticket->submit_time_ = now;
  ticket->has_deadline_ = options.deadline_ms > 0;
  if (ticket->has_deadline_) {
    ticket->deadline_ = now + MillisDuration(options.deadline_ms);
    ticket->tokens_ = {std::make_shared<CancelToken>(ticket->deadline_),
                       std::make_shared<CancelToken>(ticket->deadline_)};
  } else {
    ticket->tokens_ = {std::make_shared<CancelToken>(),
                       std::make_shared<CancelToken>()};
  }
  const int lane = static_cast<int>(options.lane);
  std::vector<BatchTicket> expired;
  Status reject = Status::OK();
  bool armed_hedge = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
      return Status::FailedPrecondition(
          "query service is shut down; no new batches accepted");
    }
    if (options_.quota_batches_per_s > 0 && !options.client_tag.empty()) {
      // Quota before occupancy: an over-quota client must not consume an
      // admission slot that a within-quota client could use.
      const double burst = options_.quota_burst > 0
                               ? options_.quota_burst
                               : std::max(1.0, options_.quota_batches_per_s);
      auto [it, inserted] =
          quota_.try_emplace(options.client_tag, TokenBucket{burst, now});
      TokenBucket& bucket = it->second;
      if (!inserted) {
        const double dt_s =
            std::chrono::duration<double>(now - bucket.last).count();
        bucket.tokens = std::min(
            burst, bucket.tokens + dt_s * options_.quota_batches_per_s);
        bucket.last = now;
      }
      if (bucket.tokens < 1.0) {
        g_quota_rejects->Increment();
        return Status::ResourceExhausted(
            "client '" + options.client_tag + "' over quota (" +
            std::to_string(options_.quota_batches_per_s) +
            " batches/s, burst " + std::to_string(burst) + ")");
      }
      bucket.tokens -= 1.0;
    }
    // Expired-but-queued batches are dead weight: fail them now so they
    // stop holding admission slots (the satellite-1 bug was exactly that
    // they were only discovered at pop time, causing spurious
    // kUnavailable rejects under saturation).
    PurgeExpiredLocked(now, &expired);
    const size_t bound = lane == 0 ? options_.max_queue_depth
                                   : options_.bulk_queue_depth;
    if (lane_depth_[static_cast<size_t>(lane)] >= bound) {
      g_admission_rejects->Increment();
      g_lane_rejects[lane]->Increment();
      reject = Status::Unavailable(
          "admission queue full (" + std::string(LaneName(lane)) +
          " lane, depth " + std::to_string(bound) +
          "); retry after draining");
    } else {
      const int primary = PickReplicaLocked(/*exclude=*/-1);
      next_replica_ = (next_replica_ + 1) % replicas_.size();
      ticket->primary_replica_ = primary;
      run_queues_[static_cast<size_t>(primary)][static_cast<size_t>(lane)]
          .push_back(WorkItem{ticket, 0});
      ++replica_load_[static_cast<size_t>(primary)];
      ++lane_depth_[static_cast<size_t>(lane)];
      g_lane_depth[lane]->Set(
          static_cast<int64_t>(lane_depth_[static_cast<size_t>(lane)]));
      g_queue_depth->Set(
          static_cast<int64_t>(lane_depth_[0] + lane_depth_[1]));
      g_lane_submitted[lane]->Increment();
      if (hedging_enabled_) {
        const double delay_ms = HedgeDelayMsLocked();
        if (delay_ms >= 0) {
          const auto fire_at = now + MillisDuration(delay_ms);
          // A hedge that could only fire after the deadline is pointless.
          if (!ticket->has_deadline_ || fire_at < ticket->deadline_) {
            ticket->hedge_it_ = hedge_schedule_.emplace(fire_at, ticket);
            ticket->hedge_scheduled_ = true;
            hedges_armed_.fetch_add(1, std::memory_order_relaxed);
            g_hedges_armed->Increment();
            // Wake the timer only when this entry moved the earliest fire
            // time forward; for the (typical) insert-at-the-back case the
            // thread's current wait deadline is already right, and waking
            // it once per submit costs a context switch per batch.
            armed_hedge = ticket->hedge_it_ == hedge_schedule_.begin();
          }
        }
      }
    }
  }
  for (BatchTicket& dead : expired) {
    CompleteExpiredQueued(dead.get());
  }
  if (!reject.ok()) {
    return reject;
  }
  g_batches_submitted->Increment();
  // notify_all, not notify_one: workers are pinned to replicas, and a
  // notify_one could wake a worker of a replica with nothing queued.
  work_cv_.notify_all();
  if (armed_hedge) {
    hedge_cv_.notify_one();
  }
  return ticket;
}

void QueryService::Pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void QueryService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return;
    }
    accepting_ = false;
    shutdown_ = true;
    paused_ = false;  // a paused service still drains on shutdown
    // Pending hedges are dropped: every batch's primary attempt is still
    // queued (or running) and will complete it. Clear the back-pointers
    // first so the draining workers don't erase through stale iterators.
    for (auto& entry : hedge_schedule_) {
      entry.second->hedge_scheduled_ = false;
    }
    hedge_schedule_.clear();
  }
  work_cv_.notify_all();
  hedge_cv_.notify_all();
  if (hedge_thread_.joinable()) {
    hedge_thread_.join();
  }
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
}

size_t QueryService::pending_batches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lane_depth_[0] + lane_depth_[1];
}

size_t QueryService::pending_batches(Lane lane) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lane_depth_[static_cast<size_t>(lane)];
}

QueryService::HedgeStats QueryService::hedge_stats() const {
  HedgeStats stats;
  stats.armed = hedges_armed_.load(std::memory_order_relaxed);
  stats.fired = hedges_fired_.load(std::memory_order_relaxed);
  stats.wins = hedge_wins_.load(std::memory_order_relaxed);
  stats.cancelled_queries =
      hedge_cancelled_queries_.load(std::memory_order_relaxed);
  return stats;
}

double QueryService::current_hedge_delay_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return HedgeDelayMsLocked();
}

bool QueryService::HasWorkLocked(int replica) const {
  const auto& queues = run_queues_[static_cast<size_t>(replica)];
  return !queues[0].empty() || !queues[1].empty();
}

QueryService::WorkItem QueryService::PopLocked(int replica) {
  auto& queues = run_queues_[static_cast<size_t>(replica)];
  for (int lane = 0; lane < 2; ++lane) {
    auto& q = queues[static_cast<size_t>(lane)];
    if (q.empty()) {
      continue;
    }
    WorkItem item = std::move(q.front());
    q.pop_front();
    if (item.attempt == 0) {
      --lane_depth_[static_cast<size_t>(lane)];
      g_lane_depth[lane]->Set(
          static_cast<int64_t>(lane_depth_[static_cast<size_t>(lane)]));
      g_queue_depth->Set(
          static_cast<int64_t>(lane_depth_[0] + lane_depth_[1]));
    }
    return item;
  }
  return {};
}

void QueryService::PurgeExpiredLocked(Clock::time_point now,
                                      std::vector<BatchTicket>* expired) {
  for (size_t r = 0; r < run_queues_.size(); ++r) {
    for (size_t lane = 0; lane < 2; ++lane) {
      auto& q = run_queues_[r][lane];
      for (auto it = q.begin(); it != q.end();) {
        BatchHandle* b = it->ticket.get();
        // Claimed entries are leftover hedge duplicates of finished
        // batches; expired ones are claimed here so exactly one side
        // completes them.
        const bool dead = b->claimed() ||
                          (b->has_deadline_ && now >= b->deadline_);
        if (!dead) {
          ++it;
          continue;
        }
        if (it->attempt == 0) {
          --lane_depth_[lane];
        }
        --replica_load_[r];
        if (b->hedge_scheduled_) {
          hedge_schedule_.erase(b->hedge_it_);
          b->hedge_scheduled_ = false;
        }
        if (b->TryClaim()) {
          expired->push_back(std::move(it->ticket));
        }
        it = q.erase(it);
      }
    }
  }
  g_lane_depth[0]->Set(static_cast<int64_t>(lane_depth_[0]));
  g_lane_depth[1]->Set(static_cast<int64_t>(lane_depth_[1]));
  g_queue_depth->Set(static_cast<int64_t>(lane_depth_[0] + lane_depth_[1]));
}

double QueryService::HedgeDelayMsLocked() const {
  if (!hedging_enabled_) {
    return -1;
  }
  if (options_.hedge_quantile > 0 && quantile_delay_ms_ >= 0) {
    // The fixed delay acts as a floor so a fast-warm cache cannot drive
    // the trigger down to "hedge everything".
    return std::max(quantile_delay_ms_, options_.hedge_delay_ms);
  }
  return options_.hedge_delay_ms > 0 ? options_.hedge_delay_ms : -1;
}

int QueryService::PickReplicaLocked(int exclude) const {
  int best = -1;
  size_t best_load = 0;
  const size_t count = replicas_.size();
  for (size_t i = 0; i < count; ++i) {
    const size_t r = (next_replica_ + i) % count;
    if (static_cast<int>(r) == exclude) {
      continue;
    }
    if (best < 0 || replica_load_[r] < best_load) {
      best = static_cast<int>(r);
      best_load = replica_load_[r];
    }
  }
  return best;
}

void QueryService::WorkerLoop(int replica) {
  // Each worker owns its fan-out pool, so ThreadPool::Wait() (which waits
  // for *every* submitted task) never entangles two batches.
  std::unique_ptr<ThreadPool> pool;
  if (options_.threads_per_batch > 1) {
    pool = std::make_unique<ThreadPool>(options_.threads_per_batch);
  }
  uint64_t popped = 0;
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this, replica] {
        return shutdown_ || (!paused_ && HasWorkLocked(replica));
      });
      if (!HasWorkLocked(replica)) {
        return;  // shutdown with nothing left to drain on this replica
      }
      item = PopLocked(replica);
    }
    BatchHandle* batch = item.ticket.get();
    const auto now = Clock::now();
    if (batch->claimed()) {
      // The other attempt (or the purge) already finished this batch.
    } else if (batch->has_deadline_ && now >= batch->deadline_) {
      if (batch->TryClaim()) {
        CompleteExpiredQueued(batch);
      }
    } else {
      if (options_.stall_every_n > 0 && options_.stall_ms > 0 &&
          ++popped % static_cast<uint64_t>(options_.stall_every_n) == 0) {
        // Injected replica-local pause; the batch's hedge (if armed) fires
        // meanwhile and the duplicate completes on the other replica,
        // after which the stalled attempt cancels at its first
        // per-query CancelToken check.
        std::this_thread::sleep_for(MillisDuration(options_.stall_ms));
      }
      ProcessAttempt(item, replica, pool.get());
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --replica_load_[static_cast<size_t>(replica)];
      // The batch is claimed by now whichever branch ran, so a still-
      // pending hedge entry is dead weight: deschedule it here rather
      // than letting the timer thread wake up just to discard it.
      BatchHandle* finished = item.ticket.get();
      if (finished->hedge_scheduled_) {
        hedge_schedule_.erase(finished->hedge_it_);
        finished->hedge_scheduled_ = false;
      }
    }
  }
}

void QueryService::HedgeLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (shutdown_) {
      return;
    }
    if (hedge_schedule_.empty()) {
      hedge_cv_.wait(lock);
      continue;
    }
    const auto next_fire = hedge_schedule_.begin()->first;
    if (Clock::now() < next_fire) {
      hedge_cv_.wait_until(lock, next_fire);
      continue;
    }
    const auto now = Clock::now();
    bool fired_any = false;
    while (!hedge_schedule_.empty() &&
           hedge_schedule_.begin()->first <= now) {
      BatchTicket ticket = std::move(hedge_schedule_.begin()->second);
      hedge_schedule_.erase(hedge_schedule_.begin());
      ticket->hedge_scheduled_ = false;
      BatchHandle* batch = ticket.get();
      if (batch->claimed()) {
        continue;  // finished before the hedge was due — the common case
      }
      if (batch->has_deadline_ && now >= batch->deadline_) {
        continue;  // dead either way; the purge/pop path completes it
      }
      const int second = PickReplicaLocked(batch->primary_replica_);
      if (second < 0) {
        continue;
      }
      const size_t lane = static_cast<size_t>(batch->options_.lane);
      // Front of the lane: the batch is already a delay-quantile late,
      // making the duplicate queue behind fresh work would defeat it.
      run_queues_[static_cast<size_t>(second)][lane].push_front(
          WorkItem{std::move(ticket), 1});
      ++replica_load_[static_cast<size_t>(second)];
      hedges_fired_.fetch_add(1, std::memory_order_relaxed);
      g_hedges_fired->Increment();
      fired_any = true;
    }
    if (fired_any) {
      work_cv_.notify_all();
    }
  }
}

namespace {

/// Synthesizes the exemplar's span tree from the measured batch times:
/// the queue and execute spans are real wall-clock intervals on the
/// TraceRecorder's process epoch; the selection/refine children are laid
/// out sequentially from the start of execution with their CPU-sum
/// durations (under fan-out they are a schematic of where the time went,
/// not a literal timeline).
SlowBatchExemplar MakeExemplar(size_t queries, const BatchResult& out) {
  SlowBatchExemplar exemplar;
  exemplar.total_ms = out.queue_wait_ms + out.execute_ms;
  exemplar.queue_wait_ms = out.queue_wait_ms;
  exemplar.execute_ms = out.execute_ms;
  exemplar.selection_ms = out.selection_ns * 1e-6;
  exemplar.refine_ms = out.refine_ns * 1e-6;
  exemplar.queries = queries;
  exemplar.queries_executed = out.queries_executed;
  exemplar.status = out.status.ok() ? "OK" : out.status.ToString();

  const uint64_t end_ns = obs::TraceRecorder::NowNanos();
  const auto back = [end_ns](double ms) {
    const uint64_t span = static_cast<uint64_t>(ms * 1e6);
    return span > end_ns ? 0 : end_ns - span;
  };
  const uint64_t execute_start = back(out.execute_ms);
  const uint64_t queue_start = back(out.execute_ms + out.queue_wait_ms);
  exemplar.spans.push_back(
      {"service.batch", 0, queue_start, end_ns});
  exemplar.spans.push_back(
      {"service.stage_queue", 0, queue_start, execute_start});
  exemplar.spans.push_back(
      {"service.stage_execute", 0, execute_start, end_ns});
  uint64_t cursor = execute_start;
  exemplar.spans.push_back({"service.stage_selection", 1, cursor,
                            cursor + out.selection_ns});
  cursor += out.selection_ns;
  exemplar.spans.push_back(
      {"service.stage_refine", 1, cursor, cursor + out.refine_ns});
  return exemplar;
}

}  // namespace

void QueryService::ProcessAttempt(const WorkItem& item, int replica,
                                  ThreadPool* pool) {
  BatchHandle* batch = item.ticket.get();
  CancelToken* token = batch->tokens_[static_cast<size_t>(item.attempt)].get();
  if (token->cancelled()) {
    return;  // lost before starting — no work wasted
  }
  BatchResult out = ExecuteAttempt(batch, *replicas_[static_cast<size_t>(
                                              replica)],
                                   pool, token);
  out.replica = replica;
  out.hedge_won = item.attempt == 1;
  if (batch->TryClaim()) {
    // First finisher wins: stop the other attempt at its next poll and
    // publish this result. Replica parity makes the two attempts'
    // results interchangeable bit for bit.
    batch->tokens_[static_cast<size_t>(1 - item.attempt)]->Cancel();
    if (item.attempt == 1) {
      hedge_wins_.fetch_add(1, std::memory_order_relaxed);
      g_hedge_wins->Increment();
    }
    FinishBatch(batch, std::move(out), /*queued_expiry=*/false);
  } else {
    // Lost the race: this attempt's queries were duplicate work.
    hedge_cancelled_queries_.fetch_add(out.queries_executed,
                                       std::memory_order_relaxed);
    g_hedge_cancelled_queries->Increment(out.queries_executed);
  }
}

BatchResult QueryService::ExecuteAttempt(BatchHandle* batch,
                                         const ShardedSearcher& searcher,
                                         ThreadPool* pool,
                                         CancelToken* token) {
  S3VCD_TRACE_SPAN("service.execute_batch");
  const auto start = Clock::now();
  BatchResult out;
  out.queue_wait_ms = MillisSince(batch->submit_time_, start);

  const size_t n = batch->queries_.size();
  out.results.resize(n);
  const bool is_range =
      batch->options_.paradigm == core::SearchParadigm::kRange;

  size_t executed = 0;
  if (pool != nullptr && n > 1 && !is_range) {
    // The searcher's two-stage fan-out (one selection task per query, one
    // scan task per (query, shard)) keeps the pool full even for small
    // batches on many shards; the token makes it deadline- and
    // cancellation-aware, so deadlined batches fan out too instead of
    // silently serializing.
    out.results =
        searcher.BatchStatisticalQuery(batch->queries_, *model_,
                                       options_.query, pool, cache_.get(),
                                       token, &executed);
    out.fanned_out = true;
  } else if (pool != nullptr && n > 1) {
    // Pooled range batch: one task per query. Tasks that start after the
    // token fires skip their query; already-running ones finish (per-query
    // latency bounds the overshoot).
    std::atomic<size_t> completed{0};
    for (size_t i = 0; i < n; ++i) {
      pool->Submit([this, batch, &searcher, token, &completed, &out, i] {
        if (token->ShouldStop()) {
          return;
        }
        out.results[i] =
            searcher.RangeQuery(batch->queries_[i],
                                batch->options_.epsilon,
                                options_.query.filter.depth);
        completed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool->Wait();
    executed = completed.load(std::memory_order_relaxed);
    out.fanned_out = true;
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (token->ShouldStop()) {
        break;
      }
      out.results[i] =
          is_range
              ? searcher.RangeQuery(batch->queries_[i],
                                    batch->options_.epsilon,
                                    options_.query.filter.depth)
              : searcher.StatisticalQuery(batch->queries_[i], *model_,
                                          options_.query, cache_.get());
      ++executed;
    }
  }

  out.queries_executed = executed;
  if (executed < n) {
    // For a winning attempt an early stop can only mean the deadline (the
    // loser's token is the only one ever explicitly cancelled, and losers'
    // results are discarded).
    out.status = Status::DeadlineExceeded(
        "deadline expired after " + std::to_string(executed) + " of " +
        std::to_string(n) + " queries");
  }
  // Stage breakdown: unexecuted slots carry default (zero) stats, so the
  // sums cover exactly the work that happened.
  for (const core::QueryResult& r : out.results) {
    out.selection_ns += r.stats.selection_ns;
    out.refine_ns += r.stats.refine_ns;
  }
  out.execute_ms = MillisSince(start, Clock::now());
  return out;
}

void QueryService::CompleteExpiredQueued(BatchHandle* batch) {
  const auto now = Clock::now();
  BatchResult out;
  out.queue_wait_ms = MillisSince(batch->submit_time_, now);
  out.status = Status::DeadlineExceeded(
      "deadline expired after " + std::to_string(out.queue_wait_ms) +
      " ms in the admission queue");
  out.replica = batch->primary_replica_;
  // Expired batches still report both halves of their latency: the
  // (zero) execute leg keeps the histograms' batch counts equal across
  // stages, so rates computed from them agree.
  out.execute_ms = 0;
  FinishBatch(batch, std::move(out), /*queued_expiry=*/true);
}

void QueryService::FinishBatch(BatchHandle* batch, BatchResult result,
                               bool queued_expiry) {
  g_queue_wait_us->Record(result.queue_wait_ms * 1e3);
  g_stage_queue_us->Record(result.queue_wait_ms * 1e3);
  g_execute_us->Record(result.execute_ms * 1e3);
  if (queued_expiry) {
    g_deadline_expirations->Increment();
    g_deadline_expired_queued->Increment();
  } else {
    g_batch_queries->Increment(result.queries_executed);
    if (!result.status.ok()) {
      g_deadline_expirations->Increment();
      g_deadline_expired_executing->Increment();
    }
    const double selection_us =
        static_cast<double>(result.selection_ns) * 1e-3;
    const double refine_us = static_cast<double>(result.refine_ns) * 1e-3;
    g_stage_selection_us->Record(selection_us);
    g_stage_refine_us->Record(refine_us);
    g_stage_other_us->Record(std::max(
        0.0, result.execute_ms * 1e3 - selection_us - refine_us));
  }
  g_batches_completed->Increment();
  if (hedging_enabled_ && options_.hedge_quantile > 0) {
    // Feed the hedge-delay quantile. Every completion counts — including
    // expired ones; excluding them would bias the trigger optimistic
    // exactly when the tail is worst.
    std::lock_guard<std::mutex> lock(mutex_);
    const double e2e_ms = result.queue_wait_ms + result.execute_ms;
    if (recent_e2e_ms_.size() < kLatencyRing) {
      recent_e2e_ms_.push_back(e2e_ms);
    } else {
      recent_e2e_ms_[recent_idx_] = e2e_ms;
      recent_idx_ = (recent_idx_ + 1) % kLatencyRing;
    }
    if (++samples_since_requantile_ >= kRequantileEvery &&
        recent_e2e_ms_.size() >= kQuantileArmAfter) {
      samples_since_requantile_ = 0;
      std::vector<double> sorted(recent_e2e_ms_);
      const double rank =
          std::ceil(options_.hedge_quantile *
                    static_cast<double>(sorted.size()));
      const size_t idx = std::min(
          sorted.size() - 1,
          rank < 1 ? 0 : static_cast<size_t>(rank) - 1);
      std::nth_element(sorted.begin(),
                       sorted.begin() + static_cast<ptrdiff_t>(idx),
                       sorted.end());
      quantile_delay_ms_ = sorted[idx];
    }
  }
  if (slow_log_ != nullptr) {
    SlowBatchExemplar exemplar =
        MakeExemplar(batch->queries_.size(), result);
    exemplar.batch_ordinal =
        batch_ordinal_.fetch_add(1, std::memory_order_relaxed) + 1;
    slow_log_->Observe(std::move(exemplar));
  }
  batch->Complete(std::move(result));
}

}  // namespace s3vcd::service
