#include "service/sharded_searcher.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "obs/trace.h"
#include "util/timer.h"

namespace s3vcd::service {

namespace {

obs::Counter* const g_queries =
    obs::MetricsRegistry::Global().GetCounter("service.sharded_queries");

// Mixes the 32-bit video id into an unbiased 64-bit hash (splitmix64
// finalizer) so consecutive ids spread across shards.
uint64_t HashId(uint32_t id) {
  uint64_t z = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

ShardedSearcher::ShardedSearcher(
    ShardedSearcherOptions options,
    std::vector<std::unique_ptr<core::Searcher>> shards,
    std::vector<BitKey> boundaries, int order)
    : options_(std::move(options)),
      shards_(std::move(shards)),
      boundaries_(std::move(boundaries)),
      encoder_(order) {
  shard_scan_us_.reserve(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    shard_scan_us_.push_back(obs::MetricsRegistry::Global().GetHistogram(
        "service.shard" + std::to_string(k) + ".scan_us"));
  }
}

Result<ShardedSearcher> ShardedSearcher::Build(
    core::FingerprintDatabase db, const ShardedSearcherOptions& options) {
  if (options.num_shards < 1 || options.num_shards > 1024) {
    return Status::InvalidArgument("num_shards must be in [1, 1024]");
  }
  core::SearcherRegistry& registry = core::SearcherRegistry::Global();
  if (!registry.Contains(options.backend)) {
    return Status::InvalidArgument("unknown searcher backend '" +
                                   options.backend +
                                   "'; registered backends: " +
                                   registry.NamesCsv());
  }
  const size_t num_shards = static_cast<size_t>(options.num_shards);
  const int order = db.order();
  const size_t n = db.size();

  std::vector<core::DatabaseBuilder> builders;
  builders.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    builders.emplace_back(order);
  }

  std::vector<BitKey> boundaries;
  if (options.policy == ShardingPolicy::kHilbertRange) {
    // Records are already Hilbert-sorted; cut them into K contiguous
    // near-equal chunks and remember each cut's first key so inserts
    // route to the chunk covering their key.
    const size_t chunk = (n + num_shards - 1) / std::max<size_t>(1, num_shards);
    for (size_t i = 0; i < n; ++i) {
      const size_t k =
          chunk == 0 ? 0 : std::min(num_shards - 1, i / chunk);
      const core::FingerprintRecord& r = db.record(i);
      builders[k].Add(r.descriptor, r.id, r.time_code, r.x, r.y);
    }
    for (size_t k = 1; k < num_shards; ++k) {
      const size_t first = std::min(n, k * std::max<size_t>(1, chunk));
      // Shards past the data get an unreachable (maximal) bound so empty
      // tails never steal routed inserts from the last occupied shard.
      boundaries.push_back(first < n
                               ? db.key(first)
                               : BitKey::LowMask(db.curve().key_bits()));
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const core::FingerprintRecord& r = db.record(i);
      builders[HashId(r.id) % num_shards].Add(r.descriptor, r.id, r.time_code,
                                              r.x, r.y);
    }
  }

  std::vector<std::unique_ptr<core::Searcher>> shards;
  shards.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    Result<std::unique_ptr<core::Searcher>> shard =
        registry.Create(options.backend, builders[k].Build(), options.config);
    if (!shard.ok()) {
      return shard.status();
    }
    shards.push_back(std::move(*shard));
  }
  return ShardedSearcher(options, std::move(shards), std::move(boundaries),
                         order);
}

size_t ShardedSearcher::total_size() const {
  size_t total = 0;
  for (const std::unique_ptr<core::Searcher>& shard : shards_) {
    total += shard->Stats().records;
  }
  return total;
}

size_t ShardedSearcher::pending_inserts() const {
  size_t total = 0;
  for (const std::unique_ptr<core::Searcher>& shard : shards_) {
    total += shard->Stats().pending_inserts;
  }
  return total;
}

size_t ShardedSearcher::RouteShard(const BitKey& key, uint32_t id) const {
  if (options_.policy == ShardingPolicy::kRefIdHash) {
    return HashId(id) % shards_.size();
  }
  for (size_t k = 0; k < boundaries_.size(); ++k) {
    if (key < boundaries_[k]) {
      return k;
    }
  }
  return shards_.size() - 1;
}

bool ShardedSearcher::Insert(const fp::Fingerprint& fingerprint, uint32_t id,
                             uint32_t time_code, float x, float y) {
  const BitKey key = encoder_.EncodeFingerprint(fingerprint);
  return shards_[RouteShard(key, id)]->TryInsert(fingerprint, id, time_code, x,
                                                 y);
}

void ShardedSearcher::CompactAll() {
  for (std::unique_ptr<core::Searcher>& shard : shards_) {
    shard->Compact();
  }
}

std::shared_ptr<const core::BlockSelection> ShardedSearcher::GetSelection(
    const fp::Fingerprint& query, const core::DistortionModel& model,
    const core::QueryOptions& options, SelectionCache* cache,
    uint64_t* selection_ns, bool* cached) const {
  // One selection serves every shard: it depends only on the query, the
  // model and the filter options (see class comment). Shard 0's filter is
  // the canonical one (all shards share the curve geometry). Backends
  // without block structure have no filter — callers fall back to
  // per-shard statistical queries.
  *cached = false;
  const core::BlockFilter* filter = shards_[0]->selection_filter();
  if (filter == nullptr) {
    return nullptr;
  }
  Stopwatch watch;
  std::shared_ptr<const core::BlockSelection> selection;
  if (cache != nullptr) {
    const SelectionCache::Key key =
        SelectionCache::MakeKey(query, options.filter, &model);
    selection = cache->Lookup(key);
    if (selection != nullptr) {
      *cached = true;
    } else {
      selection = std::make_shared<const core::BlockSelection>(
          filter->SelectStatistical(query, model, options.filter,
                                    &core::ThreadLocalSelectionScratch()));
      cache->Insert(key, selection);
    }
  } else {
    selection = std::make_shared<const core::BlockSelection>(
        filter->SelectStatistical(query, model, options.filter,
                                  &core::ThreadLocalSelectionScratch()));
  }
  *selection_ns = watch.ElapsedNanos();
  return selection;
}

core::QueryResult ShardedSearcher::ScanShard(
    size_t k, const fp::Fingerprint& query,
    const core::BlockSelection& selection, const core::DistortionModel& model,
    const core::QueryOptions& options) const {
  Stopwatch watch;
  core::QueryResult partial;
  shards_[k]->ScanSelection(query, selection, options.refinement,
                            options.radius, &model, &partial);
  partial.stats.refine_ns = watch.ElapsedNanos();
  partial.stats.refine_seconds = partial.stats.refine_ns * 1e-9;
  shard_scan_us_[k]->Record(partial.stats.refine_ns * 1e-3);
  return partial;
}

core::QueryResult ShardedSearcher::StatShard(
    size_t k, const fp::Fingerprint& query, const core::DistortionModel& model,
    const core::QueryOptions& options) const {
  Stopwatch watch;
  core::QueryResult partial = shards_[k]->StatQuery(query, model, options);
  shard_scan_us_[k]->Record(watch.ElapsedMicros());
  return partial;
}

core::QueryResult ShardedSearcher::MergeShardResults(
    const core::BlockSelection* selection, uint64_t selection_ns,
    bool selection_cached, std::vector<core::QueryResult> partials) const {
  core::QueryResult result;
  if (selection != nullptr) {
    result.stats.selection_ns = selection_ns;
    result.stats.filter_seconds = selection_ns * 1e-9;
    result.stats.selection_cached = selection_cached;
    result.stats.blocks_selected = selection->num_blocks;
    // A cached hit ran no tree walk: re-reporting the stored walk's
    // nodes_visited would double-count selection work in # METRICS blocks.
    // blocks_selected / probability_mass stay — they describe the region
    // actually scanned, cached or not.
    result.stats.nodes_visited = selection_cached ? 0 : selection->nodes_visited;
    result.stats.probability_mass = selection->probability_mass;
  }
  for (core::QueryResult& partial : partials) {
    result.matches.insert(result.matches.end(),
                          std::make_move_iterator(partial.matches.begin()),
                          std::make_move_iterator(partial.matches.end()));
    // Summed across shards: CPU time, not wall time, under fan-out.
    result.stats.refine_seconds += partial.stats.refine_seconds;
    result.stats.refine_ns += partial.stats.refine_ns;
    result.stats.ranges_scanned += partial.stats.ranges_scanned;
    result.stats.records_scanned += partial.stats.records_scanned;
    result.stats.descriptor_bytes_scanned +=
        partial.stats.descriptor_bytes_scanned;
    if (selection == nullptr) {
      result.stats.filter_seconds += partial.stats.filter_seconds;
      result.stats.selection_ns += partial.stats.selection_ns;
      result.stats.blocks_selected += partial.stats.blocks_selected;
      result.stats.nodes_visited += partial.stats.nodes_visited;
      result.stats.probability_mass =
          std::max(result.stats.probability_mass,
                   partial.stats.probability_mass);
    }
  }
  g_queries->Increment();
  if (selection != nullptr) {
    // Without a shared selection the per-shard StatQuery calls already
    // published their own metrics; publishing the merge again would double
    // count the scan work.
    core::RecordQueryMetrics(core::QueryKind::kStatistical, result.stats,
                             result.matches.size());
  }
  return result;
}

core::QueryResult ShardedSearcher::StatisticalQuery(
    const fp::Fingerprint& query, const core::DistortionModel& model,
    const core::QueryOptions& options, SelectionCache* cache) const {
  S3VCD_TRACE_SPAN("service.sharded_query");
  uint64_t selection_ns = 0;
  bool cached = false;
  const auto selection =
      GetSelection(query, model, options, cache, &selection_ns, &cached);
  std::vector<core::QueryResult> partials;
  partials.reserve(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    partials.push_back(selection != nullptr
                           ? ScanShard(k, query, *selection, model, options)
                           : StatShard(k, query, model, options));
  }
  return MergeShardResults(selection.get(), selection_ns, cached,
                           std::move(partials));
}

core::QueryResult ShardedSearcher::RangeQuery(const fp::Fingerprint& query,
                                              double epsilon,
                                              int depth) const {
  S3VCD_TRACE_SPAN("service.sharded_range");
  std::vector<core::QueryResult> partials;
  partials.reserve(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    Stopwatch watch;
    partials.push_back(shards_[k]->RangeQuery(query, epsilon, depth));
    shard_scan_us_[k]->Record(watch.ElapsedMicros());
  }
  // Merged like the no-selection statistical fallback: the per-shard
  // queries already published their metrics, the merge only aggregates.
  return MergeShardResults(nullptr, 0, false, std::move(partials));
}

std::vector<core::QueryResult> ShardedSearcher::BatchStatisticalQuery(
    const std::vector<fp::Fingerprint>& queries,
    const core::DistortionModel& model, const core::QueryOptions& options,
    ThreadPool* pool, SelectionCache* cache, const CancelToken* cancel,
    size_t* executed) const {
  S3VCD_TRACE_SPAN("service.sharded_batch");
  const size_t n = queries.size();
  std::vector<core::QueryResult> results(n);
  size_t done = 0;
  if (pool == nullptr || n == 0) {
    for (size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->ShouldStop()) {
        break;
      }
      results[i] = StatisticalQuery(queries[i], model, options, cache);
      ++done;
    }
    if (executed != nullptr) {
      *executed = done;
    }
    return results;
  }

  const size_t num_shards = shards_.size();
  const bool has_selection = shards_[0]->selection_filter() != nullptr;
  std::vector<std::shared_ptr<const core::BlockSelection>> selections(n);
  std::vector<uint64_t> selection_ns(n, 0);
  // uint8_t, not bool: concurrent writers of distinct vector<bool>
  // elements would race on the shared word.
  std::vector<uint8_t> cached(n, 0);
  // Per-(query, shard) skip flags: a task that observes the cancel token
  // fired marks its slot instead of scanning. Written by pool workers,
  // read only after pool->Wait().
  std::vector<uint8_t> skipped(n * num_shards, 0);
  if (has_selection) {
    // Stage 1: block selections, one task per query (cache-aware). Each
    // pool worker reuses its own thread-local SelectionScratch, so a warm
    // batch allocates nothing in this stage.
    for (size_t i = 0; i < n; ++i) {
      pool->Submit([this, &queries, &model, &options, cache, &selections,
                    &selection_ns, &cached, cancel, i] {
        if (cancel != nullptr && cancel->ShouldStop()) {
          return;  // selections[i] stays null; stage 2 skips the query
        }
        bool hit = false;
        selections[i] = GetSelection(queries[i], model, options, cache,
                                     &selection_ns[i], &hit);
        cached[i] = hit ? 1 : 0;
      });
    }
    pool->Wait();
  }

  // Stage 2: one task per (query, shard) — the unit the throughput of the
  // service scales by: K shards turn one long scan into K shorter
  // independent ones, so small batches still fill the pool. Refinement
  // scans under the shared selection, or per-shard statistical queries on
  // backends without block structure.
  std::vector<std::vector<core::QueryResult>> partials(n);
  for (size_t i = 0; i < n; ++i) {
    partials[i].resize(num_shards);
    const bool selection_missing = has_selection && selections[i] == nullptr;
    for (size_t k = 0; k < num_shards; ++k) {
      if (selection_missing) {
        skipped[i * num_shards + k] = 1;
        continue;
      }
      pool->Submit([this, &queries, &model, &options, &selections, &partials,
                    &skipped, has_selection, cancel, num_shards, i, k] {
        if (cancel != nullptr && cancel->ShouldStop()) {
          skipped[i * num_shards + k] = 1;
          return;
        }
        partials[i][k] =
            has_selection
                ? ScanShard(k, queries[i], *selections[i], model, options)
                : StatShard(k, queries[i], model, options);
      });
    }
  }
  pool->Wait();

  for (size_t i = 0; i < n; ++i) {
    bool complete = !(has_selection && selections[i] == nullptr);
    for (size_t k = 0; complete && k < num_shards; ++k) {
      complete = skipped[i * num_shards + k] == 0;
    }
    if (!complete) {
      // A partially-scanned query would look like a complete result with
      // silently missing matches; return the default (empty) result and
      // leave it out of the executed count instead.
      results[i] = core::QueryResult();
      continue;
    }
    results[i] = MergeShardResults(selections[i].get(), selection_ns[i],
                                   cached[i] != 0, std::move(partials[i]));
    ++done;
  }
  if (executed != nullptr) {
    *executed = done;
  }
  return results;
}

}  // namespace s3vcd::service
