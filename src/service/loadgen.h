#ifndef S3VCD_SERVICE_LOADGEN_H_
#define S3VCD_SERVICE_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fingerprint/fingerprint.h"
#include "service/query_service.h"

// Load generator for the QueryService: drives a ramp of phases against a
// live service and reports, per phase, offered load vs. goodput, reject
// and deadline-miss rates, exact end-to-end latency percentiles and the
// per-stage latency breakdown. Two modes:
//
//  * Closed loop — K concurrent clients, each submit -> wait -> think.
//    Offered load self-limits to what the service sustains; the phase
//    multiplier scales the client count. Measures capacity.
//  * Open loop — submissions arrive on their own schedule (Poisson or
//    uniform inter-arrival jitter around a target rate) regardless of
//    completions; the phase multiplier scales the target rate. Measures
//    behavior under offered load the service does not control, which is
//    where the overload knee (goodput flattens, rejects climb, p99
//    explodes) becomes visible.
//
// Open-loop latencies are coordinated-omission safe: a batch's end-to-end
// latency is measured from its *scheduled* arrival (send lag — the
// dispatcher running late because the system is saturated — counts), as
// send_lag + queue_wait + execute from the BatchResult.
//
// The workload is a weighted mix of single-query statistical batches,
// single-query range batches and multi-query statistical batches, drawn
// per submission from a deterministic seed.

namespace s3vcd::service {

enum class LoadMode { kClosedLoop, kOpenLoop };

/// Inter-arrival distribution of the open-loop schedule.
enum class ArrivalJitter {
  kPoisson,  ///< exponential gaps — bursty, the classic telecom model
  kUniform,  ///< gaps uniform in [0.5, 1.5] / rate — mildly jittered
};

/// Relative weights of the request types (normalized internally; types
/// with weight 0 never occur).
struct WorkloadMix {
  double stat_single = 1.0;
  double range_single = 0.0;
  double stat_batch = 0.0;  ///< batch_size statistical queries per batch
};

struct LoadGenOptions {
  LoadMode mode = LoadMode::kOpenLoop;
  ArrivalJitter jitter = ArrivalJitter::kPoisson;

  /// Open loop: batch arrival rate of the 1.0x phase, batches/s. <= 0
  /// runs a closed-loop calibration first and uses its goodput, so the
  /// default ramp straddles the knee by construction.
  double base_qps = 0;
  /// Closed loop (and calibration): concurrent clients of the 1.0x phase.
  int base_clients = 4;
  /// Closed loop: per-client pause between a completion and the next
  /// submission, ms.
  double think_ms = 0;

  /// One phase per multiplier; open loop multiplies base_qps, closed loop
  /// multiplies base_clients (rounded, min 1).
  std::vector<double> ramp = {0.5, 1.0, 2.0, 4.0};
  double phase_seconds = 5.0;
  /// Length of the closed-loop calibration run when base_qps <= 0.
  double calibrate_seconds = 2.0;

  WorkloadMix mix;
  size_t batch_size = 8;
  /// Range radius for range batches; <= 0 derives the equal-expectation
  /// radius from the service's model and alpha.
  double epsilon = 0;
  double deadline_ms = 0;  ///< per-batch deadline; 0 = none
  /// Probability a request goes to the bulk lane (Lane::kBulk); the rest
  /// are interactive.
  double bulk_fraction = 0;
  /// > 0: requests carry round-robin client tags "client0" ..
  /// "client<N-1>", exercising the service's per-client quotas; 0 leaves
  /// the tag empty (quota-exempt).
  int quota_clients = 0;
  uint64_t seed = 42;

  /// Max completions in flight awaiting harvest (open loop); dispatcher
  /// stalls above this (counted as send lag, not dropped).
  size_t max_outstanding = 4096;
};

/// Exact-sample latency summary, milliseconds.
struct LatencySummary {
  uint64_t samples = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double max_ms = 0;
};

/// Mean per-completed-batch stage times, milliseconds. queue/execute are
/// wall time; selection/refine are CPU sums from the per-query stats;
/// other is the wall residual execute - selection - refine clamped at 0.
struct StageBreakdown {
  double queue_ms = 0;
  double execute_ms = 0;
  double selection_ms = 0;
  double refine_ms = 0;
  double other_ms = 0;
};

struct PhaseReport {
  double multiplier = 1;
  bool calibration = false;
  double target_qps = 0;  ///< open loop only
  int clients = 0;        ///< closed loop only
  double duration_s = 0;  ///< dispatch window
  double elapsed_s = 0;   ///< dispatch window + drain

  uint64_t offered = 0;   ///< submission attempts (retries count)
  uint64_t accepted = 0;
  uint64_t rejected = 0;  ///< kUnavailable + kResourceExhausted rejects
  uint64_t quota_rejected = 0;  ///< the kResourceExhausted subset
  /// Closed loop: rejected submissions that were retried after a pause
  /// (every reject except a client giving up at phase end).
  uint64_t retries = 0;
  /// Closed loop: total client wall time spent in reject-retry pauses,
  /// ms. This time is inside the reported e2e samples — a client's clock
  /// starts at its FIRST submission attempt, so backpressure shows up as
  /// client-observed latency instead of silently vanishing.
  double retry_wait_ms = 0;
  uint64_t completed_ok = 0;
  uint64_t deadline_expired = 0;
  uint64_t queries_executed = 0;
  /// Lane split of completed-OK batches.
  uint64_t completed_interactive = 0;
  uint64_t completed_bulk = 0;
  /// Service hedge-machinery deltas over this phase (zero when hedging
  /// is off or the service has a single replica).
  uint64_t hedges_fired = 0;
  uint64_t hedge_wins = 0;
  uint64_t cancelled_queries = 0;

  double offered_qps = 0;    ///< offered / duration_s
  double goodput_qps = 0;    ///< completed_ok / elapsed_s
  double reject_rate = 0;    ///< rejected / offered
  double deadline_miss_rate = 0;  ///< expired / accepted

  /// End-to-end latency of OK batches (scheduled arrival to completion).
  LatencySummary e2e;
  StageBreakdown stages;
};

struct LoadGenReport {
  LoadMode mode = LoadMode::kOpenLoop;
  ArrivalJitter jitter = ArrivalJitter::kPoisson;
  double base_qps = 0;  ///< after calibration, when one ran
  int base_clients = 0;
  double deadline_ms = 0;
  uint64_t seed = 0;
  /// Service topology / tail-control configuration (from the service the
  /// run drove), so a saved report is attributable to it.
  int replicas = 1;
  double hedge_delay_ms = 0;
  double hedge_quantile = 0;
  /// Dispatched refinement kernel (core::ActiveScanKernelName()) and the
  /// descriptor codec of shard 0's backend — recorded so a saved report is
  /// attributable to the ISA/codec configuration that produced it.
  std::string scan_kernel = "scalar";
  std::string codec = "exact";
  std::vector<PhaseReport> phases;

  std::string ToJson() const;
};

/// Runs the full ramp (plus calibration when needed) against `service`.
/// `query_pool` supplies the fingerprints (sampled with replacement,
/// deterministically from options.seed) and must be non-empty. `model` is
/// only consulted for the equal-expectation epsilon default. The service
/// must be running (not paused, not shut down).
LoadGenReport RunLoadGen(QueryService& service,
                         const std::vector<fp::Fingerprint>& query_pool,
                         const core::DistortionModel& model,
                         const LoadGenOptions& options);

}  // namespace s3vcd::service

#endif  // S3VCD_SERVICE_LOADGEN_H_
