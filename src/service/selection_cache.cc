#include "service/selection_cache.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "fingerprint/fingerprint.h"
#include "obs/metrics.h"

namespace s3vcd::service {

namespace {

obs::Counter* const g_cache_hits =
    obs::MetricsRegistry::Global().GetCounter("service.cache_hits");
obs::Counter* const g_cache_misses =
    obs::MetricsRegistry::Global().GetCounter("service.cache_misses");
obs::Gauge* const g_cache_size =
    obs::MetricsRegistry::Global().GetGauge("service.cache_size");

}  // namespace

SelectionCache::SelectionCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

namespace {

inline void FnvMix(uint64_t* h, uint64_t v) {
  *h ^= v;
  *h *= 1099511628211ull;
}

}  // namespace

uint64_t SelectionCache::ModelDigest(const core::DistortionModel* model) {
  if (model == nullptr) {
    return 0;
  }
  uint64_t h = 1469598103934665603ull;
  for (int j = 0; j < fp::kDims; ++j) {
    FnvMix(&h, std::bit_cast<uint64_t>(model->ComponentScale(j)));
  }
  return h;
}

SelectionCache::Key SelectionCache::MakeKey(
    const fp::Fingerprint& query, const core::FilterOptions& filter,
    const core::DistortionModel* model) {
  Key key;
  key.descriptor = query;
  key.alpha_micro = static_cast<int64_t>(std::llround(filter.alpha * 1e6));
  key.depth = filter.depth;
  // The selection also depends on the filter's algorithm and expansion
  // caps; fold them into the digest alongside the model scales so two
  // filter configurations never share an entry.
  uint64_t digest = ModelDigest(model);
  FnvMix(&digest, static_cast<uint64_t>(filter.algorithm));
  FnvMix(&digest, static_cast<uint64_t>(filter.max_blocks));
  FnvMix(&digest, static_cast<uint64_t>(filter.max_nodes));
  key.model_digest = digest;
  return key;
}

size_t SelectionCache::KeyHash::operator()(const Key& key) const {
  // FNV-1a over the descriptor bytes, then mix in the scalar fields.
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (uint8_t b : key.descriptor) {
    mix(b);
  }
  mix(static_cast<uint64_t>(key.alpha_micro));
  mix(static_cast<uint64_t>(static_cast<uint32_t>(key.depth)));
  mix(key.model_digest);
  return static_cast<size_t>(h);
}

std::shared_ptr<const core::BlockSelection> SelectionCache::Lookup(
    const Key& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    g_cache_misses->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  g_cache_hits->Increment();
  return it->second->selection;
}

void SelectionCache::Insert(
    const Key& key, std::shared_ptr<const core::BlockSelection> selection) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->selection = std::move(selection);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Entry{key, std::move(selection)});
  map_[key] = lru_.begin();
  g_cache_size->Set(static_cast<int64_t>(lru_.size()));
}

size_t SelectionCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

uint64_t SelectionCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t SelectionCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

double SelectionCache::HitRate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
}

}  // namespace s3vcd::service
