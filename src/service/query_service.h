#ifndef S3VCD_SERVICE_QUERY_SERVICE_H_
#define S3VCD_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/distortion_model.h"
#include "core/searcher.h"
#include "fingerprint/fingerprint.h"
#include "service/selection_cache.h"
#include "service/sharded_searcher.h"
#include "service/slow_batch_log.h"
#include "util/status.h"

namespace s3vcd::service {

/// Per-batch submission options.
struct BatchOptions {
  /// Deadline relative to submission, in milliseconds; 0 = none. A batch
  /// whose deadline elapses while queued is failed without executing; one
  /// that expires mid-execution stops early and returns the results
  /// completed so far with a kDeadlineExceeded status.
  double deadline_ms = 0;
  /// Which paradigm this batch runs. kStatistical uses the service-level
  /// QueryOptions (and the selection cache); kRange runs exact
  /// epsilon-range queries at `epsilon` (no selection to cache — the
  /// geometric selection is not keyed by the cache).
  core::SearchParadigm paradigm = core::SearchParadigm::kStatistical;
  /// Range radius in byte-space distance units (kRange only).
  double epsilon = 0;
};

/// Outcome of one batch.
struct BatchResult {
  /// OK, or kDeadlineExceeded. A batch that expired while still queued
  /// carries empty results; one that expired mid-execution carries the
  /// queries that finished in time (a prefix under serial execution, any
  /// subset under pooled fan-out) with the rest default-constructed.
  Status status;
  /// results[i] corresponds to queries[i] of the submission.
  std::vector<core::QueryResult> results;
  /// Number of queries actually executed (== results.size() when OK).
  size_t queries_executed = 0;
  /// Both are populated for every completed batch, including ones that
  /// expired in the queue (execute_ms ~ 0) or mid-execution — unsuccessful
  /// batches must not vanish from the latency accounting.
  double queue_wait_ms = 0;
  double execute_ms = 0;
  /// Stage CPU totals summed over the executed queries' QueryStats, in
  /// nanoseconds (under fan-out these sum worker CPU time and can exceed
  /// the execute_ms wall time).
  uint64_t selection_ns = 0;
  uint64_t refine_ns = 0;
};

/// Completion handle of a submitted batch. Obtained from
/// QueryService::Submit; Wait() blocks until the service finishes (or
/// rejects) the batch and returns the result by reference (valid for the
/// handle's lifetime).
class BatchHandle {
 public:
  const BatchResult& Wait();
  bool done() const;

 private:
  friend class QueryService;

  void Complete(BatchResult result);

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  bool done_ = false;
  BatchResult result_;

  // Fields below are owned by the service (guarded by its queue mutex
  // until the batch is popped, then touched only by its worker).
  std::vector<fp::Fingerprint> queries_;
  BatchOptions options_;
  std::chrono::steady_clock::time_point submit_time_;
  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_ = false;
};

using BatchTicket = std::shared_ptr<BatchHandle>;

/// Configuration of a QueryService.
struct QueryServiceOptions {
  /// Worker threads draining the admission queue (one batch each at a
  /// time).
  int num_workers = 2;
  /// Fan-out width inside one batch: each worker owns a ThreadPool of this
  /// many threads and spreads its batch's queries across them (1 = the
  /// worker executes its batch serially).
  int threads_per_batch = 1;
  /// Bound of the admission queue, in batches. Submit rejects with
  /// kUnavailable once this many batches are waiting — the backpressure
  /// contract (docs/query_service.md).
  size_t max_queue_depth = 64;
  /// Capacity of the shared selection cache; 0 disables caching.
  size_t cache_capacity = 4096;
  /// Query options applied to every query of every batch.
  core::QueryOptions query;
  /// Start with workers paused (they enqueue but do not execute until
  /// Resume()); used by tests to make admission-control behavior
  /// deterministic, and operationally for drain control.
  bool start_paused = false;
  /// End-to-end (queue wait + execute) latency above which a finished
  /// batch is captured into the slow-batch exemplar log, in milliseconds.
  /// 0 = adaptive: capture batches slower than the rolling p99 of recent
  /// batches (armed once enough samples accrue). Negative disables the
  /// log entirely.
  double slow_batch_threshold_ms = 0;
  /// Exemplars retained by the slow-batch log (oldest evicted first).
  size_t slow_log_capacity = 32;
};

/// Asynchronous batch front end over a ShardedSearcher: a bounded
/// admission queue (reject-with-Status backpressure), per-request
/// deadlines, worker fan-out and a shared selection cache.
///
/// The service is backend-agnostic: it only speaks the ShardedSearcher
/// API, which in turn speaks core::Searcher, so any registry backend
/// works. The selection cache is an optimization that engages only when
/// the backend exposes block structure (selection_filter() != nullptr);
/// on other backends the service degrades gracefully — queries fan out
/// per shard exactly the same, just without cached selections.
///
/// Thread model: Submit may be called from any number of producer
/// threads. Workers only read the searcher (queries are const); the
/// searcher must not be mutated (Insert/CompactAll) while the service is
/// running.
class QueryService {
 public:
  /// `searcher` and `model` must outlive the service.
  QueryService(const ShardedSearcher* searcher,
               const core::DistortionModel* model,
               const QueryServiceOptions& options);

  /// Drains and joins (equivalent to Shutdown()).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits a batch. Returns a ticket to Wait() on, or:
  ///  * kUnavailable when the admission queue is full (backpressure —
  ///    retry after draining, typically by waiting on an earlier ticket);
  ///  * kFailedPrecondition after Shutdown().
  Result<BatchTicket> Submit(std::vector<fp::Fingerprint> queries,
                             const BatchOptions& options = {});

  /// Suspends / resumes batch execution (submissions still enqueue).
  void Pause();
  void Resume();

  /// Stops accepting, executes everything already queued, joins workers.
  /// Idempotent.
  void Shutdown();

  /// Batches currently waiting in the admission queue.
  size_t pending_batches() const;

  /// The shared selection cache; nullptr when cache_capacity was 0.
  const SelectionCache* cache() const { return cache_.get(); }

  /// The slow-batch exemplar log; nullptr when slow_batch_threshold_ms
  /// was negative.
  const SlowBatchLog* slow_log() const { return slow_log_.get(); }

  const QueryServiceOptions& options() const { return options_; }

  /// The searcher the service executes against (never null).
  const ShardedSearcher* searcher() const { return searcher_; }

 private:
  void WorkerLoop();
  void ExecuteBatch(BatchHandle* batch, ThreadPool* pool);

  const ShardedSearcher* searcher_;
  const core::DistortionModel* model_;
  QueryServiceOptions options_;
  std::unique_ptr<SelectionCache> cache_;
  std::unique_ptr<SlowBatchLog> slow_log_;
  std::atomic<uint64_t> batch_ordinal_{0};

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<BatchTicket> queue_;
  bool paused_ = false;
  bool accepting_ = true;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace s3vcd::service

#endif  // S3VCD_SERVICE_QUERY_SERVICE_H_
