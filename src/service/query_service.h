#ifndef S3VCD_SERVICE_QUERY_SERVICE_H_
#define S3VCD_SERVICE_QUERY_SERVICE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/distortion_model.h"
#include "core/searcher.h"
#include "fingerprint/fingerprint.h"
#include "service/cancel_token.h"
#include "service/replicated_searcher.h"
#include "service/selection_cache.h"
#include "service/sharded_searcher.h"
#include "service/slow_batch_log.h"
#include "util/status.h"

namespace s3vcd::service {

/// Admission lane of a batch. Lanes have separate queue bounds, and
/// workers always drain interactive work first, so a flood of bulk
/// submissions can neither starve interactive admission (separate slots)
/// nor delay interactive execution (strict priority at pop).
enum class Lane {
  kInteractive = 0,  ///< latency-sensitive lookups (default)
  kBulk = 1,         ///< bulk monitoring / backfill traffic
};

/// Per-batch submission options.
struct BatchOptions {
  /// Deadline relative to submission, in milliseconds; 0 = none. A batch
  /// whose deadline elapses while queued is failed without executing; one
  /// that expires mid-execution stops early and returns the results
  /// completed so far with a kDeadlineExceeded status.
  double deadline_ms = 0;
  /// Which paradigm this batch runs. kStatistical uses the service-level
  /// QueryOptions (and the selection cache); kRange runs exact
  /// epsilon-range queries at `epsilon` (no selection to cache — the
  /// geometric selection is not keyed by the cache).
  core::SearchParadigm paradigm = core::SearchParadigm::kStatistical;
  /// Range radius in byte-space distance units (kRange only).
  double epsilon = 0;
  /// Admission lane (see Lane).
  Lane lane = Lane::kInteractive;
  /// Client identity for per-client token-bucket quotas; empty = exempt.
  /// Only consulted when QueryServiceOptions::quota_batches_per_s > 0.
  std::string client_tag;
};

/// Outcome of one batch.
struct BatchResult {
  /// OK, or kDeadlineExceeded. A batch that expired while still queued
  /// carries empty results; one that expired mid-execution carries the
  /// queries that finished in time (a prefix under serial execution, any
  /// subset under pooled fan-out) with the rest default-constructed.
  Status status;
  /// results[i] corresponds to queries[i] of the submission.
  std::vector<core::QueryResult> results;
  /// Number of queries actually executed (== results.size() when OK).
  size_t queries_executed = 0;
  /// Both are populated for every completed batch, including ones that
  /// expired in the queue (execute_ms ~ 0) or mid-execution — unsuccessful
  /// batches must not vanish from the latency accounting.
  double queue_wait_ms = 0;
  double execute_ms = 0;
  /// Stage CPU totals summed over the executed queries' QueryStats, in
  /// nanoseconds (under fan-out these sum worker CPU time and can exceed
  /// the execute_ms wall time).
  uint64_t selection_ns = 0;
  uint64_t refine_ns = 0;
  /// True when the batch ran through the pooled two-stage fan-out
  /// (threads_per_batch > 1 and more than one query) — including
  /// deadlined batches, whose fan-out polls the attempt's CancelToken.
  bool fanned_out = false;
  /// True when the hedged duplicate (not the primary attempt) won.
  bool hedge_won = false;
  /// Replica index that produced the result.
  int replica = 0;
};

/// Completion handle of a submitted batch. Obtained from
/// QueryService::Submit; Wait() blocks until the service finishes (or
/// rejects) the batch and returns the result by reference (valid for the
/// handle's lifetime).
class BatchHandle {
 public:
  const BatchResult& Wait();
  bool done() const;

 private:
  friend class QueryService;

  void Complete(BatchResult result);

  /// First-wins claim between the primary and hedged attempts (and the
  /// queued-expiry purge): exactly one caller sees true and must Complete
  /// the batch; everyone else discards their work.
  bool TryClaim() { return !claimed_.exchange(true); }
  bool claimed() const { return claimed_.load(); }

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  bool done_ = false;
  BatchResult result_;

  // Fields below are owned by the service (guarded by its queue mutex
  // until the batch is popped, then touched only by its workers; the
  // claim flag and the tokens' cancel flags are the only cross-attempt
  // state and are atomic).
  std::atomic<bool> claimed_{false};
  std::vector<fp::Fingerprint> queries_;
  BatchOptions options_;
  std::chrono::steady_clock::time_point submit_time_;
  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_ = false;
  int primary_replica_ = 0;
  /// Back-pointer into the service's hedge schedule so completion can
  /// deschedule the pending hedge eagerly (guarded by the service mutex;
  /// without this the timer thread wakes once per *submitted* batch to
  /// discard already-finished entries instead of once per *fired* hedge).
  bool hedge_scheduled_ = false;
  std::multimap<std::chrono::steady_clock::time_point,
                std::shared_ptr<BatchHandle>>::iterator hedge_it_;
  /// tokens_[0] polices the primary attempt, tokens_[1] the hedged one;
  /// both carry the batch deadline, and the winner cancels the loser's.
  std::array<CancelTokenPtr, 2> tokens_;
};

using BatchTicket = std::shared_ptr<BatchHandle>;

/// Configuration of a QueryService.
struct QueryServiceOptions {
  /// Worker threads draining the admission queue (one batch each at a
  /// time), per replica — a service over R replicas runs R * num_workers
  /// workers, each pinned to one replica's run queue.
  int num_workers = 2;
  /// Fan-out width inside one batch: each worker owns a ThreadPool of this
  /// many threads and spreads its batch's queries across them (1 = the
  /// worker executes its batch serially).
  int threads_per_batch = 1;
  /// Bound of the interactive admission lane, in batches. Submit rejects
  /// with kUnavailable once this many interactive batches are waiting —
  /// the backpressure contract (docs/query_service.md). Hedged duplicates
  /// are internal work items and do not count against admission.
  size_t max_queue_depth = 64;
  /// Bound of the bulk admission lane (same semantics, separate slots, so
  /// bulk floods cannot starve interactive admission).
  size_t bulk_queue_depth = 64;
  /// Capacity of the shared selection cache; 0 disables caching. The one
  /// cache serves every replica: selections depend only on query + model,
  /// so a hit warmed by replica A is equally valid on replica B.
  size_t cache_capacity = 4096;
  /// Query options applied to every query of every batch.
  core::QueryOptions query;
  /// Start with workers paused (they enqueue but do not execute until
  /// Resume()); used by tests to make admission-control behavior
  /// deterministic, and operationally for drain control. A paused service
  /// still fires due hedges (they only enqueue duplicates).
  bool start_paused = false;
  /// End-to-end (queue wait + execute) latency above which a finished
  /// batch is captured into the slow-batch exemplar log, in milliseconds.
  /// 0 = adaptive: capture batches slower than the rolling p99 of recent
  /// batches (armed once enough samples accrue). Negative disables the
  /// log entirely.
  double slow_batch_threshold_ms = 0;
  /// Exemplars retained by the slow-batch log (oldest evicted first).
  size_t slow_log_capacity = 32;

  /// --- Hedged requests (need >= 2 replicas; otherwise ignored) ---
  /// Fixed hedge delay: a duplicate of a still-unfinished batch is sent
  /// to a second replica this many ms after submission. With
  /// hedge_quantile set it acts as a floor under the adaptive delay.
  /// 0 with hedge_quantile 0 disables hedging.
  double hedge_delay_ms = 0;
  /// Adaptive hedge delay: hedge once a batch has been outstanding longer
  /// than this quantile (e.g. 0.95) of recently completed batches'
  /// end-to-end latency. Arms after 32 completions; until then only
  /// hedge_delay_ms (if set) hedges.
  double hedge_quantile = 0;

  /// --- Per-client quotas (0 disables) ---
  /// Token-bucket refill rate per client_tag, in accepted batches/s.
  /// Batches with an empty client_tag are exempt.
  double quota_batches_per_s = 0;
  /// Bucket capacity (burst); <= 0 defaults to max(1, quota_batches_per_s).
  double quota_burst = 0;

  /// --- Fault injection (benchmarks / replica-failure drills; 0 = off) ---
  /// Every stall_every_n-th batch a worker pops, it sleeps stall_ms before
  /// executing — emulating a replica-local pause (compaction, page-cache
  /// miss, CPU steal). This is the server-side latency variance hedged
  /// requests exist to absorb; run_benchmarks.sh uses it for the
  /// hedged-vs-unhedged comparison so the effect is reproducible instead
  /// of riding on scheduler noise.
  int stall_every_n = 0;
  double stall_ms = 0;
};

/// Asynchronous batch front end over one or more replicas of a
/// ShardedSearcher: a bounded two-lane admission queue (reject-with-Status
/// backpressure), per-request deadlines, per-client token-bucket quotas,
/// worker fan-out, hedged requests across replicas and a shared selection
/// cache.
///
/// The service is backend-agnostic: it only speaks the ShardedSearcher
/// API, which in turn speaks core::Searcher, so any registry backend
/// works. The selection cache is an optimization that engages only when
/// the backend exposes block structure (selection_filter() != nullptr);
/// on other backends the service degrades gracefully — queries fan out
/// per shard exactly the same, just without cached selections.
///
/// Hedging (Dean & Barroso's "tied/hedged requests"): a submitted batch
/// goes to the least-loaded replica; if it has not finished after the
/// hedge delay (fixed, or the rolling latency quantile), an identical
/// attempt is pushed to the FRONT of a second replica's queue. The first
/// attempt to finish claims the batch and cancels the other through its
/// CancelToken; the loser stops at the next per-query poll and its
/// partial work is discarded (counted in hedge_stats). Replica parity
/// makes either result THE result, bit for bit.
///
/// Thread model: Submit may be called from any number of producer
/// threads. Workers only read the searcher (queries are const); the
/// searcher must not be mutated (Insert/CompactAll) while the service is
/// running.
class QueryService {
 public:
  /// Single-replica service. `searcher` and `model` must outlive the
  /// service. Hedging options are ignored (nowhere to hedge to).
  QueryService(const ShardedSearcher* searcher,
               const core::DistortionModel* model,
               const QueryServiceOptions& options);

  /// Replicated service: batches route to the least-loaded replica and
  /// hedge to a second one. `replicas` and `model` must outlive the
  /// service.
  QueryService(const ReplicatedSearcher* replicas,
               const core::DistortionModel* model,
               const QueryServiceOptions& options);

  /// Drains and joins (equivalent to Shutdown()).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits a batch. Returns a ticket to Wait() on, or:
  ///  * kUnavailable when the batch's admission lane is full
  ///    (backpressure — retry after draining, typically by waiting on an
  ///    earlier ticket);
  ///  * kResourceExhausted when the batch's client_tag is over quota
  ///    (the caller must slow down; retrying immediately cannot help);
  ///  * kFailedPrecondition after Shutdown().
  /// Expired-but-queued batches are purged (completed with
  /// kDeadlineExceeded) before the lane bound is checked, so dead batches
  /// never hold admission slots.
  Result<BatchTicket> Submit(std::vector<fp::Fingerprint> queries,
                             const BatchOptions& options = {});

  /// Suspends / resumes batch execution (submissions still enqueue).
  void Pause();
  void Resume();

  /// Stops accepting, executes everything already queued, joins workers.
  /// Idempotent.
  void Shutdown();

  /// Batches currently waiting for a worker (primary attempts only —
  /// hedged duplicates are not separate batches), over all lanes or one.
  size_t pending_batches() const;
  size_t pending_batches(Lane lane) const;

  /// Duplicate-work accounting of the hedging machinery. Monotonic over
  /// the service lifetime; sample before/after a window for rates.
  struct HedgeStats {
    uint64_t armed = 0;   ///< batches scheduled for a possible hedge
    uint64_t fired = 0;   ///< duplicates actually enqueued
    uint64_t wins = 0;    ///< batches whose hedged attempt finished first
    /// Queries executed by losing attempts — the duplicate work bought.
    uint64_t cancelled_queries = 0;
  };
  HedgeStats hedge_stats() const;

  /// The hedge delay Submit would arm right now, ms (the fixed delay, or
  /// the rolling quantile once armed); < 0 when hedging is off or the
  /// quantile has not armed yet.
  double current_hedge_delay_ms() const;

  int num_replicas() const { return static_cast<int>(replicas_.size()); }

  /// The shared selection cache; nullptr when cache_capacity was 0.
  const SelectionCache* cache() const { return cache_.get(); }

  /// The slow-batch exemplar log; nullptr when slow_batch_threshold_ms
  /// was negative.
  const SlowBatchLog* slow_log() const { return slow_log_.get(); }

  const QueryServiceOptions& options() const { return options_; }

  /// Replica 0's searcher (never null) — the canonical copy.
  const ShardedSearcher* searcher() const { return replicas_[0]; }

 private:
  /// One queued execution attempt; attempt 0 = primary, 1 = hedged
  /// duplicate.
  struct WorkItem {
    BatchTicket ticket;
    int attempt = 0;
  };

  struct TokenBucket {
    double tokens = 0;
    std::chrono::steady_clock::time_point last;
  };

  void Start();
  void WorkerLoop(int replica);
  void HedgeLoop();
  bool HasWorkLocked(int replica) const;
  WorkItem PopLocked(int replica);
  /// Removes every expired-and-still-queued batch from every run queue;
  /// claimed tickets (ours to complete) are appended to *expired.
  void PurgeExpiredLocked(std::chrono::steady_clock::time_point now,
                          std::vector<BatchTicket>* expired);
  /// The delay Submit would arm, ms; < 0 = do not arm.
  double HedgeDelayMsLocked() const;
  int PickReplicaLocked(int exclude) const;
  void ProcessAttempt(const WorkItem& item, int replica, ThreadPool* pool);
  BatchResult ExecuteAttempt(BatchHandle* batch,
                             const ShardedSearcher& searcher,
                             ThreadPool* pool, CancelToken* token);
  /// Completes an expired-in-queue batch (claim already won by caller).
  void CompleteExpiredQueued(BatchHandle* batch);
  /// Winner-side completion: records metrics, the hedge-delay sample, the
  /// slow-log exemplar, then Complete()s the handle. queued_expiry skips
  /// the execution-stage accounting (nothing executed).
  void FinishBatch(BatchHandle* batch, BatchResult result,
                   bool queued_expiry);

  std::vector<const ShardedSearcher*> replicas_;
  const core::DistortionModel* model_;
  QueryServiceOptions options_;
  std::unique_ptr<SelectionCache> cache_;
  std::unique_ptr<SlowBatchLog> slow_log_;
  std::atomic<uint64_t> batch_ordinal_{0};
  bool hedging_enabled_ = false;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable hedge_cv_;
  /// run_queues_[replica][lane]; hedged duplicates are pushed to the
  /// front of their lane (they are already late).
  std::vector<std::array<std::deque<WorkItem>, 2>> run_queues_;
  /// Queued primary batches per lane (admission accounting).
  std::array<size_t, 2> lane_depth_{{0, 0}};
  /// Queued + executing attempts per replica ("least loaded" routing).
  std::vector<size_t> replica_load_;
  /// Round-robin tiebreak for replica routing.
  size_t next_replica_ = 0;
  /// Hedge timer state: fire time -> ticket, drained by HedgeLoop.
  std::multimap<std::chrono::steady_clock::time_point, BatchTicket>
      hedge_schedule_;
  /// Rolling end-to-end samples feeding the hedge-delay quantile.
  std::vector<double> recent_e2e_ms_;
  size_t recent_idx_ = 0;
  size_t samples_since_requantile_ = 0;
  double quantile_delay_ms_ = -1;  ///< < 0 until armed
  std::unordered_map<std::string, TokenBucket> quota_;
  bool paused_ = false;
  bool accepting_ = true;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
  std::thread hedge_thread_;

  std::atomic<uint64_t> hedges_armed_{0};
  std::atomic<uint64_t> hedges_fired_{0};
  std::atomic<uint64_t> hedge_wins_{0};
  std::atomic<uint64_t> hedge_cancelled_queries_{0};
};

}  // namespace s3vcd::service

#endif  // S3VCD_SERVICE_QUERY_SERVICE_H_
