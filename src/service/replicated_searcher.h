#ifndef S3VCD_SERVICE_REPLICATED_SEARCHER_H_
#define S3VCD_SERVICE_REPLICATED_SEARCHER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/database.h"
#include "fingerprint/fingerprint.h"
#include "service/sharded_searcher.h"
#include "util/status.h"

namespace s3vcd::service {

/// R identical copies of one sharded index: the unit the QueryService
/// hedges across.
///
/// Every replica is built from the same records with the same
/// ShardedSearcherOptions, so the sharded parity invariant extends
/// replica-wise: any replica answers any query with bit-identical
/// results (pinned by tests/service_test.cc). That is what makes hedged
/// requests safe (either attempt's result is THE result) and lets warm
/// SelectionCache entries be shared across replicas for free — a
/// selection depends only on the query, the model and the filter
/// options, never on which copy scans it.
///
/// With the `segment` backend, each replica persists under its own
/// `<segment_store_dir>/replica<r>` subtree, so one replica's directory
/// is a complete snapshot-shippable copy of the index (the PR 7 segment
/// store's manifest + segments), matching how a real deployment would
/// seed a new replica.
///
/// Concurrency: queries are const and safe to fan out across replicas;
/// Insert/CompactAll mutate every replica and require external exclusion,
/// same as ShardedSearcher.
class ReplicatedSearcher {
 public:
  /// Consumes `db` and builds `num_replicas` identical ShardedSearchers
  /// from its records. num_replicas is clamped to [1, 64].
  static Result<ReplicatedSearcher> Build(
      core::FingerprintDatabase db, const ShardedSearcherOptions& options,
      int num_replicas);

  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  const ShardedSearcher& replica(int r) const { return *replicas_[r]; }

  /// Records per replica (identical across replicas by construction).
  size_t total_size() const { return replicas_[0]->total_size(); }

  /// Applies one insert to every replica (keeping them identical).
  /// Returns false — and inserts nowhere — when the backend does not
  /// support dynamic insertion.
  bool Insert(const fp::Fingerprint& fingerprint, uint32_t id,
              uint32_t time_code, float x = 0, float y = 0);

  /// Compacts every replica.
  void CompactAll();

 private:
  explicit ReplicatedSearcher(
      std::vector<std::unique_ptr<ShardedSearcher>> replicas)
      : replicas_(std::move(replicas)) {}

  std::vector<std::unique_ptr<ShardedSearcher>> replicas_;
};

}  // namespace s3vcd::service

#endif  // S3VCD_SERVICE_REPLICATED_SEARCHER_H_
