#include "service/replicated_searcher.h"

#include <algorithm>
#include <string>
#include <utility>

namespace s3vcd::service {

Result<ReplicatedSearcher> ReplicatedSearcher::Build(
    core::FingerprintDatabase db, const ShardedSearcherOptions& options,
    int num_replicas) {
  const int r_count = std::clamp(num_replicas, 1, 64);
  const int order = db.order();
  const size_t n = db.size();

  std::vector<std::unique_ptr<ShardedSearcher>> replicas;
  replicas.reserve(static_cast<size_t>(r_count));
  for (int r = 0; r < r_count; ++r) {
    // The database is move-only, so every replica after the first is
    // rebuilt from the records. Records are appended in stored (Hilbert)
    // order, so each rebuild reproduces the exact same database — and
    // therefore the exact same shard cuts — as the original.
    core::FingerprintDatabase copy = [&] {
      if (r + 1 == r_count) {
        return std::move(db);  // last replica takes the original
      }
      core::DatabaseBuilder builder(order);
      for (size_t i = 0; i < n; ++i) {
        const core::FingerprintRecord& rec = db.record(i);
        builder.Add(rec.descriptor, rec.id, rec.time_code, rec.x, rec.y);
      }
      return builder.Build();
    }();
    ShardedSearcherOptions replica_options = options;
    if (!replica_options.config.segment_store_dir.empty() && r_count > 1) {
      // Persistent backends get one store tree per replica; each tree is
      // an independent, snapshot-shippable copy of the whole index.
      replica_options.config.segment_store_dir +=
          "/replica" + std::to_string(r);
    }
    Result<ShardedSearcher> built =
        ShardedSearcher::Build(std::move(copy), replica_options);
    if (!built.ok()) {
      return built.status();
    }
    replicas.push_back(
        std::make_unique<ShardedSearcher>(std::move(*built)));
  }
  return ReplicatedSearcher(std::move(replicas));
}

bool ReplicatedSearcher::Insert(const fp::Fingerprint& fingerprint,
                                uint32_t id, uint32_t time_code, float x,
                                float y) {
  // All-or-nothing across replicas: probe the first replica, then apply
  // everywhere. TryInsert only fails for backends without dynamic insert,
  // which is a property of the backend (shared by all replicas), not of
  // the record.
  if (!replicas_[0]->Insert(fingerprint, id, time_code, x, y)) {
    return false;
  }
  for (size_t r = 1; r < replicas_.size(); ++r) {
    replicas_[r]->Insert(fingerprint, id, time_code, x, y);
  }
  return true;
}

void ReplicatedSearcher::CompactAll() {
  for (std::unique_ptr<ShardedSearcher>& replica : replicas_) {
    replica->CompactAll();
  }
}

}  // namespace s3vcd::service
