#include "service/slow_batch_log.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace s3vcd::service {

namespace {

constexpr size_t kRollingWindow = 256;
/// The adaptive trigger stays disarmed until the window holds this many
/// samples: a p99 over a handful of batches is noise, and capturing the
/// first batches of a run (cold caches) as "slow" would be misleading.
constexpr size_t kMinSamplesForP99 = 32;

obs::Counter* const g_slow_batches =
    obs::MetricsRegistry::Global().GetCounter(
        "service.slow_batches_captured");

std::string FormatMs(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

SlowBatchLog::SlowBatchLog(double threshold_ms, size_t capacity)
    : threshold_ms_(threshold_ms), capacity_(std::max<size_t>(1, capacity)) {}

double SlowBatchLog::RollingP99Locked() const {
  if (recent_total_ms_.size() < kMinSamplesForP99) {
    return std::numeric_limits<double>::infinity();
  }
  std::vector<double> window(recent_total_ms_.begin(),
                             recent_total_ms_.end());
  const size_t rank = (window.size() * 99) / 100;
  std::nth_element(window.begin(), window.begin() + rank, window.end());
  return window[rank];
}

bool SlowBatchLog::Observe(SlowBatchExemplar exemplar) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double trigger =
      threshold_ms_ > 0 ? threshold_ms_ : RollingP99Locked();
  // The window updates after the trigger evaluation, so a batch is judged
  // against its predecessors, never against itself.
  recent_total_ms_.push_back(exemplar.total_ms);
  if (recent_total_ms_.size() > kRollingWindow) {
    recent_total_ms_.pop_front();
  }
  if (exemplar.total_ms <= trigger) {
    return false;
  }
  exemplar.threshold_ms = trigger;
  exemplars_.push_back(std::move(exemplar));
  if (exemplars_.size() > capacity_) {
    exemplars_.pop_front();
  }
  ++captured_;
  g_slow_batches->Increment();
  return true;
}

std::vector<SlowBatchExemplar> SlowBatchLog::Exemplars() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {exemplars_.begin(), exemplars_.end()};
}

uint64_t SlowBatchLog::captured() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return captured_;
}

double SlowBatchLog::CurrentThresholdMs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return threshold_ms_ > 0 ? threshold_ms_ : RollingP99Locked();
}

std::string SlowBatchLog::ToChromeJson() const {
  const std::vector<SlowBatchExemplar> exemplars = Exemplars();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  char buf[160];
  for (const SlowBatchExemplar& e : exemplars) {
    const uint64_t pid = e.batch_ordinal;
    // A process-name metadata event per exemplar keeps the viewer's
    // sidebar readable when several slow batches land in one dump.
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"ph\": \"M\", \"pid\": " + std::to_string(pid) +
           ", \"name\": \"process_name\", \"args\": {\"name\": \"batch #" +
           std::to_string(e.batch_ordinal) + " (" + FormatMs(e.total_ms) +
           " ms)\"}}";
    for (size_t i = 0; i < e.spans.size(); ++i) {
      const obs::TraceEvent& span = e.spans[i];
      out += ",\n";
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\": \"X\", \"pid\": %llu, \"tid\": %d, "
                    "\"ts\": %.3f, \"dur\": %.3f, \"name\": \"%s\"",
                    static_cast<unsigned long long>(pid), span.tid,
                    static_cast<double>(span.start_ns) / 1e3,
                    static_cast<double>(span.end_ns - span.start_ns) / 1e3,
                    span.name != nullptr ? span.name : "");
      out += buf;
      if (i == 0) {
        // The root span carries the full breakdown as args.
        out += ", \"args\": {\"queue_wait_ms\": " + FormatMs(e.queue_wait_ms) +
               ", \"execute_ms\": " + FormatMs(e.execute_ms) +
               ", \"selection_ms\": " + FormatMs(e.selection_ms) +
               ", \"refine_ms\": " + FormatMs(e.refine_ms) +
               ", \"queries\": " + std::to_string(e.queries) +
               ", \"queries_executed\": " +
               std::to_string(e.queries_executed) +
               ", \"threshold_ms\": " + FormatMs(e.threshold_ms) +
               ", \"status\": \"" + e.status + "\"}";
      }
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

bool SlowBatchLog::WriteChromeJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToChromeJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace s3vcd::service
