#ifndef S3VCD_SERVICE_CANCEL_TOKEN_H_
#define S3VCD_SERVICE_CANCEL_TOKEN_H_

#include <atomic>
#include <chrono>
#include <memory>

namespace s3vcd::service {

/// Cooperative stop signal for one execution attempt of a batch.
///
/// A token folds the two reasons an attempt should stop early into one
/// cheap check: an explicit Cancel() (the hedged duplicate lost the race
/// — its work is pure waste) and the batch deadline (the caller stopped
/// caring). Execution loops poll ShouldStop() between queries / scan
/// tasks; already-running per-shard scans finish, so the overshoot is
/// bounded by one scan's latency.
///
/// Thread model: Cancel() may be called from any thread (typically the
/// winning attempt's worker) while the owning attempt polls; the flag is
/// a relaxed atomic — cancellation is advisory, not a synchronization
/// edge, and the winner never reads the loser's partial results.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(std::chrono::steady_clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True when the attempt should stop: explicitly cancelled, or past the
  /// deadline this token was armed with.
  bool ShouldStop() const {
    return cancelled() ||
           (has_deadline_ && std::chrono::steady_clock::now() >= deadline_);
  }

  bool has_deadline() const { return has_deadline_; }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

using CancelTokenPtr = std::shared_ptr<CancelToken>;

}  // namespace s3vcd::service

#endif  // S3VCD_SERVICE_CANCEL_TOKEN_H_
