#ifndef S3VCD_SERVICE_SELECTION_CACHE_H_
#define S3VCD_SERVICE_SELECTION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/distortion_model.h"
#include "core/filter.h"
#include "fingerprint/fingerprint.h"

namespace s3vcd::service {

/// Thread-safe LRU cache for the α-region p-block assembly
/// (core::BlockSelection). The selection of a statistical query depends
/// only on the query descriptor, the filter options (α, depth, algorithm
/// caps) and the distortion model — never on database contents — so
/// repeated or near-duplicate probes (the dominant traffic pattern of a
/// monitoring deployment, where consecutive key-frames produce nearly
/// identical fingerprints that quantize to the same bytes) can skip the
/// block-tree walk entirely.
///
/// Key semantics: (descriptor bytes, α quantized to 1e-6, partition depth,
/// model identity). Descriptors are already byte-quantized, so equality on
/// the raw bytes is the "quantized descriptor" of the design. The model
/// enters the key by *pointer identity*: two model objects with equal
/// parameters occupy separate cache lines, and a model must outlive every
/// cached selection derived from it (the service owns one model per
/// deployment, so this holds trivially; see docs/query_service.md).
///
/// Values are shared_ptr<const BlockSelection>: hits hand out a reference
/// without copying the range vector, and an entry evicted while a reader
/// still scans with it stays alive until that reader drops it.
class SelectionCache {
 public:
  struct Key {
    fp::Fingerprint descriptor{};
    int64_t alpha_micro = 0;  ///< round(alpha * 1e6)
    int32_t depth = 0;
    const core::DistortionModel* model = nullptr;

    bool operator==(const Key& other) const {
      return descriptor == other.descriptor &&
             alpha_micro == other.alpha_micro && depth == other.depth &&
             model == other.model;
    }
  };

  /// `capacity` = maximum retained entries (>= 1).
  explicit SelectionCache(size_t capacity);

  /// Builds the lookup key for one statistical query.
  static Key MakeKey(const fp::Fingerprint& query,
                     const core::FilterOptions& filter,
                     const core::DistortionModel* model);

  /// Returns the cached selection and refreshes its recency, or nullptr on
  /// a miss. Hits/misses are counted both locally and in the global
  /// metrics registry (service.cache_hits / service.cache_misses).
  std::shared_ptr<const core::BlockSelection> Lookup(const Key& key);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry when full.
  void Insert(const Key& key,
              std::shared_ptr<const core::BlockSelection> selection);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t hits() const;
  uint64_t misses() const;

  /// Fraction of lookups served from cache (0 when no lookups yet).
  double HitRate() const;

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  struct Entry {
    Key key;
    std::shared_ptr<const core::BlockSelection> selection;
  };

  size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace s3vcd::service

#endif  // S3VCD_SERVICE_SELECTION_CACHE_H_
