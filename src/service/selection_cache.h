#ifndef S3VCD_SERVICE_SELECTION_CACHE_H_
#define S3VCD_SERVICE_SELECTION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/distortion_model.h"
#include "core/filter.h"
#include "fingerprint/fingerprint.h"

namespace s3vcd::service {

/// Thread-safe LRU cache for the α-region p-block assembly
/// (core::BlockSelection). The selection of a statistical query depends
/// only on the query descriptor, the filter options (α, depth, algorithm
/// caps) and the distortion model — never on database contents — so
/// repeated or near-duplicate probes (the dominant traffic pattern of a
/// monitoring deployment, where consecutive key-frames produce nearly
/// identical fingerprints that quantize to the same bytes) can skip the
/// block-tree walk entirely.
///
/// Key semantics: (descriptor bytes, α quantized to 1e-6, partition depth,
/// model/filter digest). Descriptors are already byte-quantized, so
/// equality on the raw bytes is the "quantized descriptor" of the design.
/// The model enters the key through a digest of its per-component scales
/// — its actual selection-relevant content — never through its address: a
/// model destroyed and reallocated at the same address (ABA), or mutated
/// in place, changes the digest and misses instead of silently serving a
/// selection computed for different sigmas. The digest also folds in the
/// filter's algorithm choice and expansion caps, which equally shape the
/// selection.
///
/// Values are shared_ptr<const BlockSelection>: hits hand out a reference
/// without copying the range vector, and an entry evicted while a reader
/// still scans with it stays alive until that reader drops it.
class SelectionCache {
 public:
  struct Key {
    fp::Fingerprint descriptor{};
    int64_t alpha_micro = 0;  ///< round(alpha * 1e6)
    int32_t depth = 0;
    /// Digest of the model's per-component scales and the filter's
    /// algorithm/caps (see MakeKey). Collisions only cause extra misses —
    /// never a stale hit for a different model — because equality includes
    /// the full 64-bit digest.
    uint64_t model_digest = 0;

    bool operator==(const Key& other) const {
      return descriptor == other.descriptor &&
             alpha_micro == other.alpha_micro && depth == other.depth &&
             model_digest == other.model_digest;
    }
  };

  /// `capacity` = maximum retained entries (>= 1).
  explicit SelectionCache(size_t capacity);

  /// Builds the lookup key for one statistical query.
  static Key MakeKey(const fp::Fingerprint& query,
                     const core::FilterOptions& filter,
                     const core::DistortionModel* model);

  /// Digest of a model's per-component scales (FNV-1a over their bit
  /// patterns); 0 for nullptr. Exposed for the key-stability tests.
  static uint64_t ModelDigest(const core::DistortionModel* model);

  /// Returns the cached selection and refreshes its recency, or nullptr on
  /// a miss. Hits/misses are counted both locally and in the global
  /// metrics registry (service.cache_hits / service.cache_misses).
  std::shared_ptr<const core::BlockSelection> Lookup(const Key& key);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry when full.
  void Insert(const Key& key,
              std::shared_ptr<const core::BlockSelection> selection);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t hits() const;
  uint64_t misses() const;

  /// Fraction of lookups served from cache (0 when no lookups yet).
  double HitRate() const;

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  struct Entry {
    Key key;
    std::shared_ptr<const core::BlockSelection> selection;
  };

  size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace s3vcd::service

#endif  // S3VCD_SERVICE_SELECTION_CACHE_H_
