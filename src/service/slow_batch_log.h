#ifndef S3VCD_SERVICE_SLOW_BATCH_LOG_H_
#define S3VCD_SERVICE_SLOW_BATCH_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

// Ring buffer of slow-batch exemplars: when a batch's end-to-end latency
// (queue wait + execution) crosses a threshold, the QueryService captures
// its full per-stage timing breakdown plus a synthesized span tree, so an
// operator looking at a bad p99 can open a concrete offending batch in
// chrome://tracing instead of re-running the workload with tracing on.
//
// The threshold is either fixed (threshold_ms > 0) or adaptive
// (threshold_ms == 0): the log keeps a rolling window of recent batch
// latencies and captures anything above the window's p99 once the window
// has enough samples to make that estimate meaningful. Either way the
// newest `capacity` exemplars are retained.

namespace s3vcd::service {

/// One captured slow batch.
struct SlowBatchExemplar {
  /// 1-based completion ordinal of the batch within its service.
  uint64_t batch_ordinal = 0;
  /// Threshold (ms) that was in effect when this batch was captured.
  double threshold_ms = 0;
  double total_ms = 0;  ///< queue_wait_ms + execute_ms
  double queue_wait_ms = 0;
  double execute_ms = 0;
  /// Stage CPU totals summed over the batch's queries (under fan-out these
  /// can exceed execute_ms wall time).
  double selection_ms = 0;
  double refine_ms = 0;
  size_t queries = 0;
  size_t queries_executed = 0;
  std::string status;  ///< "OK" or the batch's error message
  /// Span tree synthesized from the measured stage times (nanoseconds on
  /// the obs::TraceRecorder process epoch): queue span, execute span, and
  /// selection/refine children laid out sequentially inside execute.
  std::vector<obs::TraceEvent> spans;
};

class SlowBatchLog {
 public:
  /// `threshold_ms` > 0: fixed end-to-end trigger. == 0: adaptive, trigger
  /// at the rolling p99 of recent batch latencies. `capacity` bounds the
  /// retained exemplars (oldest evicted first).
  SlowBatchLog(double threshold_ms, size_t capacity);

  /// Feeds one finished batch. Always updates the rolling latency window;
  /// captures the exemplar when its total_ms crosses the trigger. Returns
  /// true when captured. Thread-safe.
  bool Observe(SlowBatchExemplar exemplar);

  /// Captured exemplars, oldest first (a copy; the log keeps evolving).
  std::vector<SlowBatchExemplar> Exemplars() const;

  /// Total exemplars ever captured (>= Exemplars().size() after eviction).
  uint64_t captured() const;

  /// The trigger currently in effect: the fixed threshold, the rolling-p99
  /// estimate, or +inf while the adaptive window is still warming up.
  double CurrentThresholdMs() const;

  /// All captured exemplars as one Chrome trace-event JSON: each exemplar
  /// is its own pid (named by batch ordinal), stages are "X" complete
  /// events, and the execute event's args carry the stage breakdown.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`; returns false on I/O failure.
  bool WriteChromeJsonFile(const std::string& path) const;

 private:
  double RollingP99Locked() const;

  const double threshold_ms_;
  const size_t capacity_;

  mutable std::mutex mutex_;
  std::deque<SlowBatchExemplar> exemplars_;
  uint64_t captured_ = 0;
  /// Rolling window of recent batch latencies for the adaptive trigger.
  std::deque<double> recent_total_ms_;
};

}  // namespace s3vcd::service

#endif  // S3VCD_SERVICE_SLOW_BATCH_LOG_H_
