#include "service/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "core/searcher.h"
#include "util/rng.h"
#include "util/timer.h"

namespace s3vcd::service {

namespace {

using Clock = std::chrono::steady_clock;

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

double MillisBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Exact percentiles over the collected samples (sorts in place).
LatencySummary Summarize(std::vector<double>& samples) {
  LatencySummary s;
  s.samples = samples.size();
  if (samples.empty()) {
    return s;
  }
  std::sort(samples.begin(), samples.end());
  double sum = 0;
  for (double v : samples) {
    sum += v;
  }
  const auto at = [&samples](double q) {
    const double rank = std::ceil(q * static_cast<double>(samples.size()));
    const size_t idx = rank < 1 ? 0 : static_cast<size_t>(rank) - 1;
    return samples[std::min(idx, samples.size() - 1)];
  };
  s.mean_ms = sum / static_cast<double>(samples.size());
  s.p50_ms = at(0.50);
  s.p95_ms = at(0.95);
  s.p99_ms = at(0.99);
  s.p999_ms = at(0.999);
  s.max_ms = samples.back();
  return s;
}

/// One request drawn from the workload mix.
struct Request {
  std::vector<fp::Fingerprint> queries;
  BatchOptions options;
};

/// Per-phase completion collector; client/harvester threads feed it under
/// the mutex, the phase assembles the report after they join.
struct Collector {
  std::mutex mutex;
  uint64_t completed_ok = 0;
  uint64_t deadline_expired = 0;
  uint64_t queries_executed = 0;
  uint64_t completed_interactive = 0;
  uint64_t completed_bulk = 0;
  std::vector<double> latencies_ms;  ///< OK batches only
  double queue_sum_ms = 0;
  double execute_sum_ms = 0;
  double selection_sum_ms = 0;
  double refine_sum_ms = 0;

  void Record(const BatchResult& result, double latency_ms, Lane lane) {
    std::lock_guard<std::mutex> lock(mutex);
    queries_executed += result.queries_executed;
    if (!result.status.ok()) {
      ++deadline_expired;
      return;
    }
    ++completed_ok;
    if (lane == Lane::kBulk) {
      ++completed_bulk;
    } else {
      ++completed_interactive;
    }
    latencies_ms.push_back(latency_ms);
    queue_sum_ms += result.queue_wait_ms;
    execute_sum_ms += result.execute_ms;
    selection_sum_ms += result.selection_ns * 1e-6;
    refine_sum_ms += result.refine_ns * 1e-6;
  }
};

class WorkloadDrawer {
 public:
  WorkloadDrawer(const std::vector<fp::Fingerprint>& pool,
                 const LoadGenOptions& options, double epsilon, Rng rng)
      : pool_(pool), options_(options), epsilon_(epsilon), rng_(rng) {
    const double total = std::max(1e-12, options.mix.stat_single +
                                             options.mix.range_single +
                                             options.mix.stat_batch);
    stat_single_ = options.mix.stat_single / total;
    range_single_ = options.mix.range_single / total;
  }

  Request Draw() {
    Request request;
    request.options.deadline_ms = options_.deadline_ms;
    if (options_.bulk_fraction > 0 &&
        rng_.Uniform(0, 1) < options_.bulk_fraction) {
      request.options.lane = Lane::kBulk;
    }
    if (options_.quota_clients > 0) {
      request.options.client_tag =
          "client" + std::to_string(draw_ordinal_++ %
                                    static_cast<uint64_t>(
                                        options_.quota_clients));
    }
    const double u = rng_.Uniform(0, 1);
    size_t count = 1;
    if (u < stat_single_) {
      // statistical single: defaults
    } else if (u < stat_single_ + range_single_) {
      request.options.paradigm = core::SearchParadigm::kRange;
      request.options.epsilon = epsilon_;
    } else {
      count = std::max<size_t>(1, options_.batch_size);
    }
    request.queries.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      request.queries.push_back(pool_[static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(pool_.size()) - 1))]);
    }
    return request;
  }

 private:
  const std::vector<fp::Fingerprint>& pool_;
  const LoadGenOptions& options_;
  double epsilon_;
  double stat_single_ = 1;
  double range_single_ = 0;
  uint64_t draw_ordinal_ = 0;
  Rng rng_;
};

void FinishPhaseRates(PhaseReport* phase, Collector* collector) {
  phase->completed_ok = collector->completed_ok;
  phase->deadline_expired = collector->deadline_expired;
  phase->queries_executed = collector->queries_executed;
  phase->completed_interactive = collector->completed_interactive;
  phase->completed_bulk = collector->completed_bulk;
  phase->offered_qps =
      phase->duration_s > 0
          ? static_cast<double>(phase->offered) / phase->duration_s
          : 0;
  phase->goodput_qps =
      phase->elapsed_s > 0
          ? static_cast<double>(phase->completed_ok) / phase->elapsed_s
          : 0;
  phase->reject_rate =
      phase->offered > 0
          ? static_cast<double>(phase->rejected) / phase->offered
          : 0;
  phase->deadline_miss_rate =
      phase->accepted > 0
          ? static_cast<double>(phase->deadline_expired) / phase->accepted
          : 0;
  phase->e2e = Summarize(collector->latencies_ms);
  if (collector->completed_ok > 0) {
    const double n = static_cast<double>(collector->completed_ok);
    phase->stages.queue_ms = collector->queue_sum_ms / n;
    phase->stages.execute_ms = collector->execute_sum_ms / n;
    phase->stages.selection_ms = collector->selection_sum_ms / n;
    phase->stages.refine_ms = collector->refine_sum_ms / n;
    phase->stages.other_ms =
        std::max(0.0, phase->stages.execute_ms - phase->stages.selection_ms -
                          phase->stages.refine_ms);
  }
}

/// Closed loop: `clients` threads in submit -> wait -> think lockstep with
/// the service; rejected submissions retry after a short pause, so offered
/// load self-limits to sustained capacity.
PhaseReport RunClosedLoopPhase(QueryService& service,
                               const std::vector<fp::Fingerprint>& pool,
                               const LoadGenOptions& options, double epsilon,
                               double multiplier, double seconds,
                               uint64_t phase_seed) {
  PhaseReport phase;
  phase.multiplier = multiplier;
  phase.clients = std::max(
      1, static_cast<int>(std::lround(options.base_clients * multiplier)));
  phase.duration_s = seconds;

  Collector collector;
  std::mutex counts_mutex;
  uint64_t offered = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t quota_rejected = 0;
  uint64_t retries = 0;
  double retry_wait_ms = 0;

  const auto phase_start = Clock::now();
  const auto phase_end =
      phase_start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(seconds));

  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(phase.clients));
  for (int c = 0; c < phase.clients; ++c) {
    clients.emplace_back([&, c] {
      WorkloadDrawer drawer(pool, options, epsilon,
                            Rng(phase_seed * 1315423911u + c));
      uint64_t my_offered = 0, my_accepted = 0, my_rejected = 0;
      uint64_t my_quota_rejected = 0, my_retries = 0;
      double my_retry_wait_ms = 0;
      while (Clock::now() < phase_end) {
        Request request = drawer.Draw();
        // The e2e clock starts at the FIRST submission attempt, so the
        // reject-retry pauses below are inside the reported sample — the
        // client-observed latency under backpressure, not just the lucky
        // accepted-first-try path (coordinated-omission safety for the
        // closed loop).
        Stopwatch watch;
        BatchTicket ticket;
        bool gave_up = false;
        for (;;) {
          ++my_offered;
          Result<BatchTicket> submitted =
              service.Submit(request.queries, request.options);
          if (submitted.ok()) {
            ticket = *submitted;
            ++my_accepted;
            break;
          }
          ++my_rejected;
          if (submitted.status().code() ==
              StatusCode::kResourceExhausted) {
            ++my_quota_rejected;
          }
          if (Clock::now() >= phase_end) {
            gave_up = true;
            break;
          }
          ++my_retries;
          Stopwatch pause;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          my_retry_wait_ms += pause.ElapsedMillis();
        }
        if (gave_up) {
          break;
        }
        const BatchResult& result = ticket->Wait();
        collector.Record(result, watch.ElapsedMillis(),
                         request.options.lane);
        if (options.think_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(options.think_ms));
        }
      }
      std::lock_guard<std::mutex> lock(counts_mutex);
      offered += my_offered;
      accepted += my_accepted;
      rejected += my_rejected;
      quota_rejected += my_quota_rejected;
      retries += my_retries;
      retry_wait_ms += my_retry_wait_ms;
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  phase.elapsed_s =
      std::chrono::duration<double>(Clock::now() - phase_start).count();
  phase.offered = offered;
  phase.accepted = accepted;
  phase.rejected = rejected;
  phase.quota_rejected = quota_rejected;
  phase.retries = retries;
  phase.retry_wait_ms = retry_wait_ms;
  FinishPhaseRates(&phase, &collector);
  return phase;
}

/// Bounded FIFO handoff from the open-loop dispatcher to the harvester.
struct HarvestQueue {
  struct Item {
    BatchTicket ticket;
    double send_lag_ms = 0;
    Lane lane = Lane::kInteractive;
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Item> items;
  bool closed = false;

  void Push(Item item, size_t cap) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return items.size() < cap; });
    items.push_back(std::move(item));
    cv.notify_all();
  }

  bool Pop(Item* item) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return closed || !items.empty(); });
    if (items.empty()) {
      return false;
    }
    *item = std::move(items.front());
    items.pop_front();
    cv.notify_all();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mutex);
    closed = true;
    cv.notify_all();
  }
};

/// Open loop: submissions fire on a precomputed arrival schedule whether
/// or not earlier ones completed; rejected arrivals are dropped (counted),
/// not retried — the point is to observe the service under an offered
/// load it does not control.
PhaseReport RunOpenLoopPhase(QueryService& service,
                             const std::vector<fp::Fingerprint>& pool,
                             const LoadGenOptions& options, double epsilon,
                             double multiplier, double target_qps,
                             double seconds, uint64_t phase_seed) {
  PhaseReport phase;
  phase.multiplier = multiplier;
  phase.target_qps = target_qps;
  phase.duration_s = seconds;

  Collector collector;
  HarvestQueue harvest;
  std::thread harvester([&] {
    HarvestQueue::Item item;
    while (harvest.Pop(&item)) {
      const BatchResult& result = item.ticket->Wait();
      // Coordinated-omission-safe end to end: scheduled arrival to
      // completion = dispatcher lateness + queue wait + execution.
      collector.Record(result,
                       item.send_lag_ms + result.queue_wait_ms +
                           result.execute_ms,
                       item.lane);
    }
  });

  WorkloadDrawer drawer(pool, options, epsilon, Rng(phase_seed));
  Rng arrival_rng(phase_seed ^ 0x9e3779b97f4a7c15ull);
  const double mean_gap_s = 1.0 / std::max(1e-6, target_qps);
  const auto draw_gap = [&] {
    if (options.jitter == ArrivalJitter::kPoisson) {
      return -std::log(1.0 - arrival_rng.Uniform(0, 1)) * mean_gap_s;
    }
    return arrival_rng.Uniform(0.5, 1.5) * mean_gap_s;
  };

  const auto phase_start = Clock::now();
  const auto phase_end =
      phase_start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(seconds));
  double next_arrival_s = 0;
  for (;;) {
    next_arrival_s += draw_gap();
    const auto scheduled =
        phase_start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(next_arrival_s));
    if (scheduled >= phase_end) {
      break;
    }
    std::this_thread::sleep_until(scheduled);
    Request request = drawer.Draw();
    const double send_lag_ms = MillisBetween(scheduled, Clock::now());
    ++phase.offered;
    Result<BatchTicket> submitted =
        service.Submit(std::move(request.queries), request.options);
    if (!submitted.ok()) {
      ++phase.rejected;
      if (submitted.status().code() == StatusCode::kResourceExhausted) {
        ++phase.quota_rejected;
      }
      continue;
    }
    ++phase.accepted;
    harvest.Push({*submitted, send_lag_ms, request.options.lane},
                 options.max_outstanding);
  }
  harvest.Close();
  harvester.join();
  phase.elapsed_s =
      std::chrono::duration<double>(Clock::now() - phase_start).count();
  FinishPhaseRates(&phase, &collector);
  return phase;
}

std::string PhaseToJson(const PhaseReport& p) {
  std::string out = "    {";
  out += "\"multiplier\": " + FormatDouble(p.multiplier);
  out += ", \"calibration\": " + std::string(p.calibration ? "true"
                                                           : "false");
  out += ", \"target_qps\": " + FormatDouble(p.target_qps);
  out += ", \"clients\": " + std::to_string(p.clients);
  out += ", \"duration_s\": " + FormatDouble(p.duration_s);
  out += ", \"elapsed_s\": " + FormatDouble(p.elapsed_s);
  out += ", \"offered\": " + std::to_string(p.offered);
  out += ", \"accepted\": " + std::to_string(p.accepted);
  out += ", \"rejected\": " + std::to_string(p.rejected);
  out += ", \"quota_rejected\": " + std::to_string(p.quota_rejected);
  out += ", \"retries\": " + std::to_string(p.retries);
  out += ", \"retry_wait_ms\": " + FormatDouble(p.retry_wait_ms);
  out += ", \"completed_ok\": " + std::to_string(p.completed_ok);
  out += ", \"deadline_expired\": " + std::to_string(p.deadline_expired);
  out += ", \"queries_executed\": " + std::to_string(p.queries_executed);
  out += ", \"completed_interactive\": " +
         std::to_string(p.completed_interactive);
  out += ", \"completed_bulk\": " + std::to_string(p.completed_bulk);
  out += ", \"hedges_fired\": " + std::to_string(p.hedges_fired);
  out += ", \"hedge_wins\": " + std::to_string(p.hedge_wins);
  out += ", \"cancelled_queries\": " + std::to_string(p.cancelled_queries);
  out += ", \"offered_qps\": " + FormatDouble(p.offered_qps);
  out += ", \"goodput_qps\": " + FormatDouble(p.goodput_qps);
  out += ", \"reject_rate\": " + FormatDouble(p.reject_rate);
  out += ", \"deadline_miss_rate\": " + FormatDouble(p.deadline_miss_rate);
  out += ",\n     \"latency_ms\": {\"samples\": " +
         std::to_string(p.e2e.samples) +
         ", \"mean\": " + FormatDouble(p.e2e.mean_ms) +
         ", \"p50\": " + FormatDouble(p.e2e.p50_ms) +
         ", \"p95\": " + FormatDouble(p.e2e.p95_ms) +
         ", \"p99\": " + FormatDouble(p.e2e.p99_ms) +
         ", \"p999\": " + FormatDouble(p.e2e.p999_ms) +
         ", \"max\": " + FormatDouble(p.e2e.max_ms) + "}";
  out += ",\n     \"stages_ms\": {\"queue\": " +
         FormatDouble(p.stages.queue_ms) +
         ", \"execute\": " + FormatDouble(p.stages.execute_ms) +
         ", \"selection\": " + FormatDouble(p.stages.selection_ms) +
         ", \"refine\": " + FormatDouble(p.stages.refine_ms) +
         ", \"other\": " + FormatDouble(p.stages.other_ms) + "}";
  out += "}";
  return out;
}

}  // namespace

std::string LoadGenReport::ToJson() const {
  std::string out = "{\n";
  out += "  \"tool\": \"loadgen\",\n";
  out += std::string("  \"mode\": \"") +
         (mode == LoadMode::kOpenLoop ? "open" : "closed") + "\",\n";
  out += std::string("  \"jitter\": \"") +
         (jitter == ArrivalJitter::kPoisson ? "poisson" : "uniform") +
         "\",\n";
  out += "  \"base_qps\": " + FormatDouble(base_qps) + ",\n";
  out += "  \"base_clients\": " + std::to_string(base_clients) + ",\n";
  out += "  \"deadline_ms\": " + FormatDouble(deadline_ms) + ",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"replicas\": " + std::to_string(replicas) + ",\n";
  out += "  \"hedge_delay_ms\": " + FormatDouble(hedge_delay_ms) + ",\n";
  out += "  \"hedge_quantile\": " + FormatDouble(hedge_quantile) + ",\n";
  out += "  \"scan_kernel\": \"" + scan_kernel + "\",\n";
  out += "  \"codec\": \"" + codec + "\",\n";
  out += "  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    out += PhaseToJson(phases[i]);
    out += i + 1 < phases.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

LoadGenReport RunLoadGen(QueryService& service,
                         const std::vector<fp::Fingerprint>& query_pool,
                         const core::DistortionModel& model,
                         const LoadGenOptions& options) {
  LoadGenReport report;
  report.mode = options.mode;
  report.jitter = options.jitter;
  report.base_clients = options.base_clients;
  report.deadline_ms = options.deadline_ms;
  report.seed = options.seed;
  report.replicas = service.num_replicas();
  report.hedge_delay_ms = service.options().hedge_delay_ms;
  report.hedge_quantile = service.options().hedge_quantile;
  report.scan_kernel = core::ActiveScanKernelName();
  if (service.searcher() != nullptr && service.searcher()->num_shards() > 0) {
    // Shards share one SearcherConfig, so shard 0's codec speaks for all.
    report.codec = service.searcher()->shard(0).Stats().codec;
  }
  if (query_pool.empty()) {
    return report;
  }
  const double epsilon =
      options.epsilon > 0
          ? options.epsilon
          : core::EqualExpectationRadius(
                model, service.options().query.filter.alpha);

  // Per-phase hedge deltas: the service counters are monotonic, so each
  // phase's duplicate-work bill is the before/after difference.
  const auto with_hedge_delta = [&service](auto run_phase) {
    const QueryService::HedgeStats before = service.hedge_stats();
    PhaseReport phase = run_phase();
    const QueryService::HedgeStats after = service.hedge_stats();
    phase.hedges_fired = after.fired - before.fired;
    phase.hedge_wins = after.wins - before.wins;
    phase.cancelled_queries =
        after.cancelled_queries - before.cancelled_queries;
    return phase;
  };

  double base_qps = options.base_qps;
  if (options.mode == LoadMode::kOpenLoop && base_qps <= 0) {
    // Calibrate: a short closed-loop run measures sustained capacity, so
    // the ramp multipliers straddle the knee instead of guessing at it.
    PhaseReport calibration = with_hedge_delta([&] {
      return RunClosedLoopPhase(
          service, query_pool, options, epsilon, 1.0,
          std::max(0.5, options.calibrate_seconds), options.seed + 1);
    });
    calibration.calibration = true;
    base_qps = std::max(1.0, calibration.goodput_qps);
    report.phases.push_back(std::move(calibration));
  }
  report.base_qps = base_qps;

  for (size_t i = 0; i < options.ramp.size(); ++i) {
    const double multiplier = options.ramp[i];
    const uint64_t phase_seed = options.seed + 100 * (i + 1);
    report.phases.push_back(with_hedge_delta([&] {
      return options.mode == LoadMode::kOpenLoop
                 ? RunOpenLoopPhase(service, query_pool, options, epsilon,
                                    multiplier, base_qps * multiplier,
                                    options.phase_seconds, phase_seed)
                 : RunClosedLoopPhase(service, query_pool, options,
                                      epsilon, multiplier,
                                      options.phase_seconds, phase_seed);
    }));
  }
  return report;
}

}  // namespace s3vcd::service
