#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace s3vcd::obs {

namespace {

// Span names are string literals under our control, but keep the export
// valid JSON even if one ever carries a quote or backslash.
std::string EscapeJson(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') {
      out += '\\';
    }
    out += *s;
  }
  return out;
}

}  // namespace

std::vector<TraceEvent> TraceRecorder::Collect() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return events;
}

std::string TraceRecorder::ToChromeJson() const {
  const std::vector<TraceEvent> events = Collect();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[128];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += i == 0 ? "\n" : ",\n";
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f, "
                  "\"dur\": %.3f, \"name\": \"",
                  e.tid, static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.end_ns - e.start_ns) / 1e3);
    out += buf;
    out += EscapeJson(e.name);
    out += "\"}";
  }
  out += "\n]}\n";
  return out;
}

bool TraceRecorder::WriteChromeJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToChromeJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace s3vcd::obs
