#ifndef S3VCD_OBS_THREAD_ID_H_
#define S3VCD_OBS_THREAD_ID_H_

#include <atomic>

namespace s3vcd::obs {

/// Dense per-thread identifier, assigned on first use in thread creation
/// order. Shared by the logger (log lines), the metrics registry (shard
/// selection) and the tracer (per-thread event buffers), so the ids agree
/// across all three outputs.
inline int SmallThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace s3vcd::obs

#endif  // S3VCD_OBS_THREAD_ID_H_
