#ifndef S3VCD_OBS_INTERVAL_REPORTER_H_
#define S3VCD_OBS_INTERVAL_REPORTER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

// Periodic delta reporter over the metrics registry: snapshots every
// interval and emits what changed *since the previous snapshot* — event
// rates per second rather than lifetime totals — as JSONL (one object per
// line, greppable / plottable) or a live text table. Counters and
// histogram bucket counts are monotone, so per-interval deltas are exact
// even under concurrent writers: the sum of all interval deltas equals the
// final counter value minus the baseline, no matter how the writes
// interleave with the snapshots.
//
//   obs::IntervalReporter::Options opts;
//   opts.interval_ms = 1000;
//   opts.prefix_filter = "service.";
//   obs::IntervalReporter reporter(opts);
//   reporter.Start();          // background thread; Stop() or dtor joins
//   ...
//   reporter.Stop();
//
// Tests and single-threaded drivers call Tick() directly instead of
// Start(): it performs one snapshot/diff/emit cycle deterministically and
// returns the structured delta.

namespace s3vcd::obs {

/// What changed between two consecutive snapshots.
struct IntervalDelta {
  struct CounterDelta {
    std::string name;
    uint64_t delta = 0;
    double rate_per_sec = 0;
  };
  /// Gauges are instantaneous, so the report carries the current value.
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramDelta {
    std::string name;
    uint64_t delta_count = 0;
    double rate_per_sec = 0;
    double interval_mean = 0;  ///< delta_sum / delta_count
    /// Interval percentiles, interpolated from the delta bucket counts
    /// (extrema clamp uses the lifetime min/max — the per-interval extrema
    /// are not tracked separately).
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
  };

  uint64_t sequence = 0;        ///< tick number, starting at 1
  double interval_seconds = 0;  ///< measured wall time since previous tick
  std::vector<CounterDelta> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramDelta> histograms;

  /// One compact JSON object, no trailing newline (JSONL-ready).
  std::string ToJsonl() const;

  /// Aligned tables (util/table.h) for live terminal consumption.
  std::string ToText() const;
};

class IntervalReporter {
 public:
  enum class Format { kJsonl, kText };

  struct Options {
    int interval_ms = 1000;
    Format format = Format::kJsonl;
    /// When non-empty, only metrics whose name starts with this prefix are
    /// reported (e.g. "service.").
    std::string prefix_filter;
    /// Receives the formatted report each tick. Defaults to stderr.
    std::function<void(const std::string&)> sink;
    /// Metrics that did not change this interval are omitted from the
    /// report (gauges are always kept).
    bool skip_idle = true;
  };

  explicit IntervalReporter(Options options);
  ~IntervalReporter();

  IntervalReporter(const IntervalReporter&) = delete;
  IntervalReporter& operator=(const IntervalReporter&) = delete;

  /// Launches the background reporting thread. No-op if already running.
  void Start();

  /// Stops and joins the background thread; emits nothing further. Safe to
  /// call repeatedly or without Start().
  void Stop();

  /// One synchronous snapshot/diff/emit cycle against the global registry.
  /// Feeds the sink exactly like a background tick and returns the
  /// structured delta. `interval_seconds_override` > 0 substitutes for the
  /// measured elapsed time (deterministic rate assertions in tests).
  IntervalDelta Tick(double interval_seconds_override = 0);

 private:
  void RunLoop();

  Options options_;
  MetricsSnapshot previous_;
  std::chrono::steady_clock::time_point previous_time_;
  uint64_t sequence_ = 0;
  std::mutex tick_mutex_;  ///< serializes Tick() against the loop thread

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace s3vcd::obs

#endif  // S3VCD_OBS_INTERVAL_REPORTER_H_
