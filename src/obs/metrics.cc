#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "util/table.h"

namespace s3vcd::obs {

namespace {

// Shortest-ish round-trippable double for JSON (never inf/nan: callers
// sanitize extrema of empty histograms before formatting).
std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

double MetricsSnapshot::HistogramValue::Percentile(double p) const {
  if (count == 0) {
    return 0;
  }
  const double target = p * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    const uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target) {
      // Interpolate linearly within the containing bucket, assuming the
      // bucket's mass is spread uniformly over [lo, hi). The first bucket
      // starts at the observed min; the overflow bucket ends at the
      // observed max. Clamping to [min, max] makes single-value and
      // single-bucket histograms collapse to the value itself rather than
      // a bucket edge.
      const double lo = i == 0 ? min : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : max;
      const double frac = (target - static_cast<double>(before)) /
                          static_cast<double>(counts[i]);
      const double v = lo + frac * (hi - lo);
      return std::min(max, std::max(min, v));
    }
  }
  return max;
}

uint64_t MetricsSnapshot::CounterOr0(std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) {
      return c.value;
    }
  }
  return 0;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + counters[i].name +
           "\": " + std::to_string(counters[i].value);
  }
  out += "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + gauges[i].name +
           "\": " + std::to_string(gauges[i].value);
  }
  out += "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    const bool empty = h.count == 0;
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + h.name + "\": {";
    out += "\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + FormatDouble(h.sum);
    out += ", \"min\": " + FormatDouble(empty ? 0 : h.min);
    out += ", \"max\": " + FormatDouble(empty ? 0 : h.max);
    out += ", \"mean\": " + FormatDouble(h.Mean());
    out += ", \"p50\": " + FormatDouble(h.Percentile(0.5));
    out += ", \"p90\": " + FormatDouble(h.Percentile(0.9));
    out += ", \"p95\": " + FormatDouble(h.Percentile(0.95));
    out += ", \"p99\": " + FormatDouble(h.Percentile(0.99));
    out += ", \"p999\": " + FormatDouble(h.Percentile(0.999));
    out += ", \"bounds\": [";
    for (size_t j = 0; j < h.bounds.size(); ++j) {
      if (j > 0) {
        out += ", ";
      }
      out += FormatDouble(h.bounds[j]);
    }
    out += "], \"bucket_counts\": [";
    for (size_t j = 0; j < h.counts.size(); ++j) {
      if (j > 0) {
        out += ", ";
      }
      out += std::to_string(h.counts[j]);
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  if (!counters.empty() || !gauges.empty()) {
    Table table({"metric", "value"});
    for (const CounterValue& c : counters) {
      table.AddRow().Add(c.name).Add(c.value);
    }
    for (const GaugeValue& g : gauges) {
      table.AddRow().Add(g.name).Add(g.value);
    }
    out += table.ToText();
  }
  if (!histograms.empty()) {
    Table table({"histogram", "count", "mean", "p50", "p90", "p95", "p99",
                 "p99.9", "max"});
    for (const HistogramValue& h : histograms) {
      table.AddRow()
          .Add(h.name)
          .Add(h.count)
          .Add(h.Mean(), 4)
          .Add(h.Percentile(0.5), 4)
          .Add(h.Percentile(0.9), 4)
          .Add(h.Percentile(0.95), 4)
          .Add(h.Percentile(0.99), 4)
          .Add(h.Percentile(0.999), 4)
          .Add(h.count == 0 ? 0.0 : h.max, 4);
    }
    if (!out.empty()) {
      out += "\n";
    }
    out += table.ToText();
  }
  return out;
}

}  // namespace s3vcd::obs
