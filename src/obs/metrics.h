#ifndef S3VCD_OBS_METRICS_H_
#define S3VCD_OBS_METRICS_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <mutex>
#include <vector>

#include "obs/thread_id.h"

// Process-wide metrics registry: monotonic counters, instantaneous gauges
// and fixed-bucket value/latency histograms, all safe for concurrent use.
//
// Hot-path writes are sharded: every metric keeps kNumShards cache-line
// padded atomic cells and a thread writes only the cell selected by its
// SmallThreadId, so increments from the per-descriptor query loop never
// contend on one cache line. Reads (Snapshot) sum the shards; they are
// exact for quiescent metrics and monotone under concurrent writers.
//
// Handles returned by the registry are stable for the process lifetime;
// the intended call-site pattern hoists the name lookup out of hot loops:
//
//   namespace {
//   obs::Counter* const g_records_scanned =
//       obs::MetricsRegistry::Global().GetCounter("index.records_scanned");
//   }
//   ...
//   g_records_scanned->Increment(n);
//
// Naming scheme (see docs/observability.md): "subsystem.noun", lowercase,
// dot-separated; histograms carry a unit suffix ("_us").

namespace s3vcd::obs {

inline constexpr int kNumShards = 16;

namespace metrics_internal {

inline int ShardIndex() { return SmallThreadId() & (kNumShards - 1); }

/// A cache-line padded atomic cell; one per shard per metric.
struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

/// Doubles stored as bit patterns in atomic<uint64_t> so the accumulation
/// works on toolchains without lock-free std::atomic<double> RMW.
inline double LoadDouble(const std::atomic<uint64_t>& bits) {
  return std::bit_cast<double>(bits.load(std::memory_order_relaxed));
}

inline void StoreDouble(std::atomic<uint64_t>& bits, double v) {
  bits.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
}

inline void AtomicDoubleAdd(std::atomic<uint64_t>& bits, double v) {
  uint64_t expected = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      expected, std::bit_cast<uint64_t>(std::bit_cast<double>(expected) + v),
      std::memory_order_relaxed)) {
  }
}

inline void AtomicDoubleMin(std::atomic<uint64_t>& bits, double v) {
  uint64_t expected = bits.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(expected) > v &&
         !bits.compare_exchange_weak(expected, std::bit_cast<uint64_t>(v),
                                     std::memory_order_relaxed)) {
  }
}

inline void AtomicDoubleMax(std::atomic<uint64_t>& bits, double v) {
  uint64_t expected = bits.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(expected) < v &&
         !bits.compare_exchange_weak(expected, std::bit_cast<uint64_t>(v),
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace metrics_internal

/// Monotonically increasing event count.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Increment(uint64_t n = 1) {
    cells_[metrics_internal::ShardIndex()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& cell : cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  metrics_internal::ShardCell cells_[kNumShards];
};

/// Instantaneous signed value (queue depths, buffer sizes). Unsharded:
/// gauges are set/adjusted at structural events, not in per-record loops.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Subtract(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: bucket i counts values v <= bounds[i] (first
/// matching bound); one extra overflow bucket catches the rest. Bucket
/// counts and the count/sum accumulators are sharded like Counter.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds)
      : name_(std::move(name)), bounds_(std::move(bounds)) {
    const size_t buckets = bounds_.size() + 1;
    for (auto& shard : shards_) {
      shard.counts = std::make_unique<std::atomic<uint64_t>[]>(buckets);
      for (size_t i = 0; i < buckets; ++i) {
        shard.counts[i].store(0, std::memory_order_relaxed);
      }
    }
    ResetExtrema();
  }

  void Record(double v) {
    const size_t bucket = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    Shard& shard = shards_[metrics_internal::ShardIndex()];
    shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
    shard.count.value.fetch_add(1, std::memory_order_relaxed);
    metrics_internal::AtomicDoubleAdd(shard.sum_bits.value, v);
    metrics_internal::AtomicDoubleMin(min_bits_, v);
    metrics_internal::AtomicDoubleMax(max_bits_, v);
  }

  uint64_t Count() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.count.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  double Sum() const {
    double total = 0;
    for (const auto& shard : shards_) {
      total += metrics_internal::LoadDouble(shard.sum_bits.value);
    }
    return total;
  }

  /// Bucket counts summed over shards; size bounds().size() + 1.
  std::vector<uint64_t> BucketCounts() const {
    std::vector<uint64_t> counts(bounds_.size() + 1, 0);
    for (const auto& shard : shards_) {
      for (size_t i = 0; i < counts.size(); ++i) {
        counts[i] += shard.counts[i].load(std::memory_order_relaxed);
      }
    }
    return counts;
  }

  double Min() const { return metrics_internal::LoadDouble(min_bits_); }
  double Max() const { return metrics_internal::LoadDouble(max_bits_); }

  void Reset() {
    for (auto& shard : shards_) {
      for (size_t i = 0; i < bounds_.size() + 1; ++i) {
        shard.counts[i].store(0, std::memory_order_relaxed);
      }
      shard.count.value.store(0, std::memory_order_relaxed);
      metrics_internal::StoreDouble(shard.sum_bits.value, 0);
    }
    ResetExtrema();
  }

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    metrics_internal::ShardCell count;
    metrics_internal::ShardCell sum_bits;  ///< double bits
  };

  void ResetExtrema() {
    metrics_internal::StoreDouble(min_bits_,
                                  std::numeric_limits<double>::infinity());
    metrics_internal::StoreDouble(max_bits_,
                                  -std::numeric_limits<double>::infinity());
  }

  std::string name_;
  std::vector<double> bounds_;
  Shard shards_[kNumShards];
  std::atomic<uint64_t> min_bits_;
  std::atomic<uint64_t> max_bits_;
};

/// Roughly logarithmic microsecond buckets, 1us .. 1s; the default for
/// latency histograms.
inline std::vector<double> DefaultLatencyBucketsUs() {
  return {1,    2,    5,    10,   20,   50,   100,  200,  500, 1e3,
          2e3,  5e3,  1e4,  2e4,  5e4,  1e5,  2e5,  5e5,  1e6};
}

/// Point-in-time view of every registered metric; see metrics.cc for the
/// JSON / table renderings.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  ///< bounds.size() + 1 entries
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;

    double Mean() const { return count == 0 ? 0.0 : sum / count; }
    /// The p-quantile (p in [0, 1]): linearly interpolated within the
    /// bucket containing the target rank (uniform-mass assumption) and
    /// clamped to the observed [min, max], so coarse log buckets do not
    /// quantize the estimate to a bucket edge.
    double Percentile(double p) const;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of a counter by name; 0 when absent (snapshots are dense over
  /// everything registered, so absent means never created).
  uint64_t CounterOr0(std::string_view name) const;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}.
  std::string ToJson() const;

  /// Aligned tables (util/table.h) for human consumption.
  std::string ToText() const;
};

/// Name -> metric map. Registration locks; recording never does.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
  }

  Counter* GetCounter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[std::string(name)];
    if (slot == nullptr) {
      slot = std::make_unique<Counter>(std::string(name));
    }
    return slot.get();
  }

  Gauge* GetGauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[std::string(name)];
    if (slot == nullptr) {
      slot = std::make_unique<Gauge>(std::string(name));
    }
    return slot.get();
  }

  /// Creates with the given bounds on first use; later calls return the
  /// existing histogram regardless of `bounds`.
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds = {}) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[std::string(name)];
    if (slot == nullptr) {
      if (bounds.empty()) {
        bounds = DefaultLatencyBucketsUs();
      }
      slot = std::make_unique<Histogram>(std::string(name),
                                         std::move(bounds));
    }
    return slot.get();
  }

  MetricsSnapshot Snapshot() const {
    MetricsSnapshot snapshot;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, counter] : counters_) {
      snapshot.counters.push_back({name, counter->Value()});
    }
    for (const auto& [name, gauge] : gauges_) {
      snapshot.gauges.push_back({name, gauge->Value()});
    }
    for (const auto& [name, histogram] : histograms_) {
      snapshot.histograms.push_back({name, histogram->bounds(),
                                     histogram->BucketCounts(),
                                     histogram->Count(), histogram->Sum(),
                                     histogram->Min(), histogram->Max()});
    }
    return snapshot;
  }

  /// Zeroes every metric (registrations and handles stay valid). Meant for
  /// tools/tests bracketing a measured run; concurrent writers during the
  /// reset land in either the old or new epoch.
  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, counter] : counters_) {
      counter->Reset();
    }
    for (const auto& [name, gauge] : gauges_) {
      gauge->Reset();
    }
    for (const auto& [name, histogram] : histograms_) {
      histogram->Reset();
    }
  }

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Records the elapsed time of a scope into a latency histogram, in
/// microseconds.
class ScopedLatencyUs {
 public:
  explicit ScopedLatencyUs(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}

  ScopedLatencyUs(const ScopedLatencyUs&) = delete;
  ScopedLatencyUs& operator=(const ScopedLatencyUs&) = delete;

  ~ScopedLatencyUs() {
    histogram_->Record(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace s3vcd::obs

#endif  // S3VCD_OBS_METRICS_H_
