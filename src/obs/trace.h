#ifndef S3VCD_OBS_TRACE_H_
#define S3VCD_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/thread_id.h"

// Scoped trace spans on per-thread ring buffers, exportable as Chrome
// trace-event JSON (open chrome://tracing or https://ui.perfetto.dev and
// load the file).
//
//   obs::TraceRecorder::Global().Enable();
//   { S3VCD_TRACE_SPAN("index.query"); ... }    // one complete event
//   obs::TraceRecorder::Global().WriteChromeJsonFile("trace.json");
//
// Tracing is off by default: a disabled S3VCD_TRACE_SPAN costs one relaxed
// atomic load and no clock reads. When enabled, each span performs two
// steady_clock reads and one short uncontended lock on its own thread's
// buffer. Span names must be string literals (the recorder stores the
// pointer, not a copy). Buffers are rings: once a thread has recorded
// `capacity` spans, new spans overwrite its oldest ones.

namespace s3vcd::obs {

/// One completed span. Times are nanoseconds since the recorder's process
/// epoch (first use of the clock).
struct TraceEvent {
  const char* name = nullptr;
  int tid = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
};

class TraceRecorder {
 public:
  static TraceRecorder& Global() {
    static TraceRecorder* recorder = new TraceRecorder();
    return *recorder;
  }

  /// Nanoseconds since the process trace epoch.
  static uint64_t NowNanos() {
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
  }

  /// Starts recording. `capacity_per_thread` bounds memory: each thread
  /// that records spans owns one ring of that many events.
  void Enable(size_t capacity_per_thread = 1 << 16) {
    capacity_.store(capacity_per_thread, std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_release);
  }

  /// Stops recording; already-recorded events stay collectable.
  void Disable() { enabled_.store(false, std::memory_order_release); }

  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Discards every recorded event (buffers stay registered).
  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      buffer->events.clear();
      buffer->next = 0;
    }
  }

  void Record(const char* name, uint64_t start_ns, uint64_t end_ns) {
    ThreadBuffer* buffer = LocalBuffer();
    const size_t capacity = capacity_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(buffer->mutex);
    const TraceEvent event{name, buffer->tid, start_ns, end_ns};
    if (buffer->events.size() < capacity) {
      buffer->events.push_back(event);
    } else {
      // Ring wrap: overwrite the oldest slot.
      buffer->events[buffer->next % capacity] = event;
    }
    ++buffer->next;
  }

  /// All recorded events, merged across threads, sorted by start time.
  std::vector<TraceEvent> Collect() const;

  /// Chrome trace-event JSON ("X" complete events, ts/dur in microseconds).
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`; returns false on I/O failure.
  bool WriteChromeJsonFile(const std::string& path) const;

 private:
  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<TraceEvent> events;
    size_t next = 0;  ///< total spans recorded; next % capacity = oldest
    int tid = 0;
  };

  TraceRecorder() = default;

  ThreadBuffer* LocalBuffer() {
    thread_local ThreadBuffer* buffer = nullptr;
    if (buffer == nullptr) {
      auto owned = std::make_unique<ThreadBuffer>();
      owned->tid = SmallThreadId();
      buffer = owned.get();
      std::lock_guard<std::mutex> lock(mutex_);
      buffers_.push_back(std::move(owned));
    }
    return buffer;
  }

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> capacity_{1 << 16};
  mutable std::mutex mutex_;
  /// Owned forever (threads may die while their events are still wanted).
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: samples the clock on construction and records on
/// destruction. Spans started while tracing is disabled record nothing,
/// even if tracing is enabled before they close.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(TraceRecorder::Global().enabled() ? name : nullptr),
        start_ns_(name_ != nullptr ? TraceRecorder::NowNanos() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (name_ != nullptr) {
      TraceRecorder::Global().Record(name_, start_ns_,
                                     TraceRecorder::NowNanos());
    }
  }

 private:
  const char* name_;
  uint64_t start_ns_;
};

}  // namespace s3vcd::obs

#define S3VCD_TRACE_CONCAT_INNER_(a, b) a##b
#define S3VCD_TRACE_CONCAT_(a, b) S3VCD_TRACE_CONCAT_INNER_(a, b)

/// Opens a span covering the rest of the enclosing scope. `name` must be a
/// string literal, conventionally "subsystem.stage" (see
/// docs/observability.md).
#define S3VCD_TRACE_SPAN(name)               \
  ::s3vcd::obs::ScopedSpan S3VCD_TRACE_CONCAT_(s3vcd_trace_span_, \
                                               __COUNTER__)(name)

#endif  // S3VCD_OBS_TRACE_H_
