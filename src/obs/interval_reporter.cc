#include "obs/interval_reporter.h"

#include <cstdio>
#include <utility>

#include "util/table.h"

namespace s3vcd::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

bool HasPrefix(const std::string& name, const std::string& prefix) {
  return prefix.empty() ||
         (name.size() >= prefix.size() &&
          name.compare(0, prefix.size(), prefix) == 0);
}

void DefaultSink(const std::string& line) {
  std::fputs(line.c_str(), stderr);
  std::fputc('\n', stderr);
}

/// Finds `name` in a name-sorted snapshot vector via a resumable cursor
/// (both snapshots iterate the same sorted registry, so lookups are a
/// two-pointer merge, not a quadratic scan). Returns nullptr when the name
/// was not yet registered at the previous snapshot.
template <typename T>
const T* FindSorted(const std::vector<T>& values, size_t& cursor,
                    const std::string& name) {
  while (cursor < values.size() && values[cursor].name < name) {
    ++cursor;
  }
  if (cursor < values.size() && values[cursor].name == name) {
    return &values[cursor];
  }
  return nullptr;
}

}  // namespace

std::string IntervalDelta::ToJsonl() const {
  std::string out = "{\"seq\": " + std::to_string(sequence) +
                    ", \"interval_s\": " + FormatDouble(interval_seconds);
  out += ", \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "" : ", ";
    out += "\"" + counters[i].name +
           "\": {\"delta\": " + std::to_string(counters[i].delta) +
           ", \"rate\": " + FormatDouble(counters[i].rate_per_sec) + "}";
  }
  out += "}, \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "" : ", ";
    out += "\"" + gauges[i].name +
           "\": " + std::to_string(gauges[i].value);
  }
  out += "}, \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramDelta& h = histograms[i];
    out += i == 0 ? "" : ", ";
    out += "\"" + h.name +
           "\": {\"count\": " + std::to_string(h.delta_count) +
           ", \"rate\": " + FormatDouble(h.rate_per_sec) +
           ", \"mean\": " + FormatDouble(h.interval_mean) +
           ", \"p50\": " + FormatDouble(h.p50) +
           ", \"p95\": " + FormatDouble(h.p95) +
           ", \"p99\": " + FormatDouble(h.p99) + "}";
  }
  out += "}}";
  return out;
}

std::string IntervalDelta::ToText() const {
  std::string out = "interval #" + std::to_string(sequence) + " (" +
                    FormatDouble(interval_seconds) + "s)\n";
  if (!counters.empty() || !gauges.empty()) {
    Table table({"metric", "delta", "rate/s"});
    for (const CounterDelta& c : counters) {
      table.AddRow().Add(c.name).Add(c.delta).Add(c.rate_per_sec, 1);
    }
    for (const GaugeValue& g : gauges) {
      table.AddRow().Add(g.name).Add(g.value).Add("-");
    }
    out += table.ToText();
  }
  if (!histograms.empty()) {
    Table table({"histogram", "count", "rate/s", "mean", "p50", "p95",
                 "p99"});
    for (const HistogramDelta& h : histograms) {
      table.AddRow()
          .Add(h.name)
          .Add(h.delta_count)
          .Add(h.rate_per_sec, 1)
          .Add(h.interval_mean, 2)
          .Add(h.p50, 2)
          .Add(h.p95, 2)
          .Add(h.p99, 2);
    }
    out += table.ToText();
  }
  return out;
}

IntervalReporter::IntervalReporter(Options options)
    : options_(std::move(options)) {
  if (!options_.sink) {
    options_.sink = DefaultSink;
  }
  // The baseline snapshot: the first tick reports activity since
  // construction, not since process start.
  previous_ = MetricsRegistry::Global().Snapshot();
  previous_time_ = std::chrono::steady_clock::now();
}

IntervalReporter::~IntervalReporter() { Stop(); }

void IntervalReporter::Start() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (thread_.joinable()) {
    return;
  }
  stop_requested_ = false;
  thread_ = std::thread([this] { RunLoop(); });
}

void IntervalReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void IntervalReporter::RunLoop() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!stop_requested_) {
    if (stop_cv_.wait_for(lock,
                          std::chrono::milliseconds(options_.interval_ms),
                          [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    Tick();
    lock.lock();
  }
}

IntervalDelta IntervalReporter::Tick(double interval_seconds_override) {
  std::lock_guard<std::mutex> lock(tick_mutex_);
  const auto now = std::chrono::steady_clock::now();
  MetricsSnapshot current = MetricsRegistry::Global().Snapshot();

  IntervalDelta delta;
  delta.sequence = ++sequence_;
  delta.interval_seconds =
      interval_seconds_override > 0
          ? interval_seconds_override
          : std::chrono::duration<double>(now - previous_time_).count();
  // Guard the rate division; a zero interval reports raw deltas as rates.
  const double seconds =
      delta.interval_seconds > 0 ? delta.interval_seconds : 1.0;

  size_t counter_cursor = 0;
  for (const auto& c : current.counters) {
    if (!HasPrefix(c.name, options_.prefix_filter)) {
      continue;
    }
    const auto* prev =
        FindSorted(previous_.counters, counter_cursor, c.name);
    const uint64_t d = c.value - (prev != nullptr ? prev->value : 0);
    if (d == 0 && options_.skip_idle) {
      continue;
    }
    delta.counters.push_back(
        {c.name, d, static_cast<double>(d) / seconds});
  }

  for (const auto& g : current.gauges) {
    if (!HasPrefix(g.name, options_.prefix_filter)) {
      continue;
    }
    delta.gauges.push_back({g.name, g.value});
  }

  size_t histogram_cursor = 0;
  for (const auto& h : current.histograms) {
    if (!HasPrefix(h.name, options_.prefix_filter)) {
      continue;
    }
    const auto* prev =
        FindSorted(previous_.histograms, histogram_cursor, h.name);
    // The interval view is itself a HistogramValue (bucket-count deltas),
    // so the interpolated Percentile applies unchanged. Bucket counts are
    // monotone per shard, so current >= previous holds bucket-wise even
    // with writers mid-flight.
    MetricsSnapshot::HistogramValue window;
    window.name = h.name;
    window.bounds = h.bounds;
    window.counts = h.counts;
    window.count = h.count - (prev != nullptr ? prev->count : 0);
    window.sum = h.sum - (prev != nullptr ? prev->sum : 0);
    window.min = h.min;
    window.max = h.max;
    if (prev != nullptr) {
      for (size_t i = 0; i < window.counts.size() && i < prev->counts.size();
           ++i) {
        window.counts[i] -= prev->counts[i];
      }
    }
    if (window.count == 0 && options_.skip_idle) {
      continue;
    }
    delta.histograms.push_back(
        {h.name, window.count, static_cast<double>(window.count) / seconds,
         window.count == 0 ? 0.0 : window.sum / window.count,
         window.Percentile(0.5), window.Percentile(0.95),
         window.Percentile(0.99)});
  }

  previous_ = std::move(current);
  previous_time_ = now;

  options_.sink(options_.format == Format::kJsonl ? delta.ToJsonl()
                                                  : delta.ToText());
  return delta;
}

}  // namespace s3vcd::obs
