#ifndef S3VCD_OBS_LOG_H_
#define S3VCD_OBS_LOG_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>

#include "obs/thread_id.h"

// Leveled logger with a compile-time minimum level. Header-only on purpose:
// it sits below every library in the stack (util/logging.h routes CHECK
// failures through the FATAL path), so it must not introduce a link-time
// dependency of s3vcd_util on the obs library.
//
//   S3VCD_LOG(INFO) << "loaded " << n << " records";
//   S3VCD_LOG(ERROR) << "checksum mismatch in " << path;
//
// Lines go to stderr as:  I 12:34:56.789012 t03 file.cc:42] message
// Levels below S3VCD_MIN_LOG_LEVEL compile to nothing (the stream operands
// are never evaluated). FATAL messages abort after printing.

namespace s3vcd::obs {

enum class LogLevel : int {
  kDEBUG = 0,
  kINFO = 1,
  kWARN = 2,
  kERROR = 3,
  kFATAL = 4,
};

#ifndef S3VCD_MIN_LOG_LEVEL
#define S3VCD_MIN_LOG_LEVEL 1 /* INFO */
#endif

inline constexpr int kMinLogLevel = S3VCD_MIN_LOG_LEVEL;

inline char LogLevelLetter(LogLevel level) {
  switch (level) {
    case LogLevel::kDEBUG:
      return 'D';
    case LogLevel::kINFO:
      return 'I';
    case LogLevel::kWARN:
      return 'W';
    case LogLevel::kERROR:
      return 'E';
    case LogLevel::kFATAL:
      return 'F';
  }
  return '?';
}

/// One log line; the destructor formats and writes it atomically (single
/// fwrite) so concurrent threads do not interleave partial lines.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    using namespace std::chrono;
    const auto now = system_clock::now();
    const auto since_epoch = now.time_since_epoch();
    const auto secs = duration_cast<seconds>(since_epoch);
    const auto micros = duration_cast<microseconds>(since_epoch - secs);
    const std::time_t t = system_clock::to_time_t(now);
    std::tm tm_buf{};
#if defined(_WIN32)
    localtime_s(&tm_buf, &t);
#else
    localtime_r(&t, &tm_buf);
#endif
    // Strip the directory part of __FILE__ for compact lines.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    char prefix[96];
    std::snprintf(prefix, sizeof(prefix),
                  "%c %02d:%02d:%02d.%06d t%02d %s:%d] ",
                  LogLevelLetter(level), tm_buf.tm_hour, tm_buf.tm_min,
                  tm_buf.tm_sec, static_cast<int>(micros.count()),
                  SmallThreadId(), base, line);
    stream_ << prefix;
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << '\n';
    const std::string line = stream_.str();
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
    if (level_ == LogLevel::kFATAL) {
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
  LogLevel level_;
};

namespace log_internal {

/// Lets the macro's ternary discard the stream expression with type void.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace log_internal
}  // namespace s3vcd::obs

#define S3VCD_LOG(severity)                                                  \
  (static_cast<int>(::s3vcd::obs::LogLevel::k##severity) <                   \
   ::s3vcd::obs::kMinLogLevel)                                               \
      ? (void)0                                                              \
      : ::s3vcd::obs::log_internal::Voidify() &                              \
            ::s3vcd::obs::LogMessage(::s3vcd::obs::LogLevel::k##severity,    \
                                     __FILE__, __LINE__)                     \
                .stream()

#endif  // S3VCD_OBS_LOG_H_
