#ifndef S3VCD_STORE_SEGMENT_FORMAT_H_
#define S3VCD_STORE_SEGMENT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/descriptor_block.h"
#include "core/descriptor_codec.h"
#include "core/record.h"
#include "fingerprint/fingerprint.h"
#include "util/bitkey.h"
#include "util/status.h"

namespace s3vcd::store {

/// The immutable on-disk segment format (`.s3seg`): one Hilbert-sorted
/// run of fingerprint records stored *columnar*, so the refinement kernels
/// (core/scan_kernel) run directly over the mapped arrays through a
/// core::DescriptorView — no deserialization on the query path. Byte-level
/// spec: docs/segment_format.md. The `.s3db` single-file format
/// (docs/file_format.md) remains the interchange format; segments are the
/// serving format written and compacted by SegmentStore.
///
/// Layout summary (every section 64-byte aligned, lengths in the footer):
///   [0, 64)    header: magic, version, dims, order, count, segment id,
///              descriptor codec tag, CRC
///   sections   keys (32 B/rec) | coded descriptors (codec code bytes/rec)
///              | ids | times | xs | ys | codec params (0 B exact, 96 B
///              quantized)
///   [end-252, end)  footer: section table with per-section CRCs, min/max
///                   key, footer offset, footer CRC, trailing magic
inline constexpr uint32_t kSegmentMagic = 0x53335347;  // "S3SG"
/// Version 2 added the descriptor codec tag and the codec-params section
/// (version 1 files, which predate pluggable codecs, are rejected).
inline constexpr uint32_t kSegmentVersion = 2;
/// Alignment of every section start (and of the header block), so mapped
/// column pointers satisfy the alignment of their element types.
inline constexpr size_t kSectionAlign = 64;
inline constexpr size_t kSegmentHeaderBytes = 64;
/// keys, descriptors, ids, time_codes, xs, ys, codec params — in file
/// order.
inline constexpr uint32_t kNumSections = 7;
/// Serialized BitKey: 4 little-endian u64 words, least significant first.
inline constexpr size_t kKeyBytes = 32;
/// Header field offsets (byte-level spec: docs/segment_format.md). The
/// codec tag sits inside the CRC-covered prefix, so flipping it without
/// resealing the header is caught as a checksum mismatch — and a resealed
/// flip still fails the descriptor/params section length checks.
inline constexpr size_t kHeaderCodecOff = 32;
inline constexpr size_t kHeaderCrcOff = 40;
/// Footer field offsets, all derived from the section count.
inline constexpr size_t kFooterMinKeyOff = 4 + kNumSections * 24;
inline constexpr size_t kFooterMaxKeyOff = kFooterMinKeyOff + kKeyBytes;
inline constexpr size_t kFooterOffsetOff = kFooterMaxKeyOff + kKeyBytes;
inline constexpr size_t kFooterCrcOff = kFooterOffsetOff + 8;
inline constexpr size_t kFooterMagicOff = kFooterCrcOff + 4;
/// section_count u32 + 7 * {offset u64, length u64, crc u32, reserved u32}
/// + min_key + max_key + footer_offset u64 + footer_crc u32 + magic u32.
inline constexpr size_t kSegmentFooterBytes = kFooterMagicOff + 4;

struct SegmentWriteOptions {
  /// fsync the segment file before returning (the caller still owns
  /// durability of the *name* via rename + directory sync).
  bool sync = true;
  /// Descriptor codec the segment is encoded with. Quantized codecs train
  /// their per-axis parameters on the block being written and store them
  /// in the codec-params section.
  core::DescriptorCodecKind codec = core::DescriptorCodecKind::kExactU8;
};

/// Writes one complete segment file at `path` from a sorted record block
/// and its parallel key array (keys[i] = Hilbert key of block record i,
/// non-decreasing). Fails with kInvalidArgument on unsorted keys or a
/// size mismatch; any error leaves no file behind.
Status WriteSegmentFile(const std::string& path, uint64_t segment_id,
                        int order, const core::DescriptorBlock& block,
                        const std::vector<BitKey>& keys,
                        const SegmentWriteOptions& options = {});

struct SegmentReadOptions {
  /// Map the file (shared, read-only) instead of reading it resident.
  /// When mapping fails (e.g. filesystem without mmap) Open falls back to
  /// a resident read.
  bool use_mmap = true;
  /// Verify every section CRC at open. Opening is O(file) either way; with
  /// verification off only the header/footer structure is checked.
  bool verify_checksums = true;
};

/// A validated, immutable, opened segment. All accessors are const and
/// thread-safe; the object owns the mapping (or the resident copy) and
/// releases it on destruction. Open() performs the full corruption screen
/// of docs/segment_format.md — any structural violation, CRC mismatch or
/// key-order violation returns kCorruption and constructs nothing, so a
/// reader either sees the entire segment or none of it.
class SegmentReader {
 public:
  static Result<std::shared_ptr<SegmentReader>> Open(
      const std::string& path, const SegmentReadOptions& options = {});

  ~SegmentReader();
  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  const std::string& path() const { return path_; }
  uint64_t segment_id() const { return segment_id_; }
  int order() const { return order_; }
  /// Record count.
  uint64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  uint64_t file_bytes() const { return file_bytes_; }
  /// Whether the columns are served from a shared file mapping (true) or
  /// from a resident copy (false).
  bool mapped() const { return map_base_ != nullptr; }
  /// Bytes of process-resident copy (0 when mapped).
  uint64_t resident_bytes() const { return mapped() ? 0 : resident_.size(); }

  /// Descriptor codec the segment's descriptor column is encoded with
  /// (parameters deserialized from the codec-params section at open).
  const core::DescriptorCodec& codec() const { return codec_; }
  core::DescriptorCodecKind codec_kind() const { return codec_.kind; }
  /// Stored bytes per descriptor record (codec code bytes).
  size_t descriptor_code_bytes() const { return codec_.code_bytes(); }

  /// Hilbert key of record i (decoded from the mapped key column).
  BitKey key(size_t i) const;
  const BitKey& min_key() const { return min_key_; }
  const BitKey& max_key() const { return max_key_; }

  /// The SoA columns as a view the scan kernels consume directly. On a
  /// quantized segment the view carries the codec, which routes scans
  /// through the fused decode kernels (see core/scan_kernel.h).
  core::DescriptorView View() const {
    core::DescriptorView view{descriptors_, ids_, time_codes_, xs_, ys_,
                              static_cast<size_t>(count_)};
    view.desc_bytes = codec_.code_bytes();
    if (!codec_.is_exact()) {
      view.codec = &codec_;
    }
    return view;
  }

  /// Record i in array-of-structs form (merges, tools; not the scan path).
  /// Decoded through the codec on quantized segments.
  core::FingerprintRecord Record(size_t i) const;

  /// Index of the first record with key >= `key` (binary search).
  size_t LowerBound(const BitKey& key) const;

  /// Resolves a curve-key range [begin, end) to record indices
  /// [first, last); a numerically zero `end` wraps to the top of the key
  /// space (same convention as core::S3Index::ResolveRange).
  std::pair<size_t, size_t> ResolveRange(const BitKey& begin,
                                         const BitKey& end) const;

 private:
  SegmentReader() = default;
  Status Init(const std::string& path, const SegmentReadOptions& options);

  std::string path_;
  uint64_t segment_id_ = 0;
  int order_ = 0;
  uint64_t count_ = 0;
  uint64_t file_bytes_ = 0;
  core::DescriptorCodec codec_;  ///< identity codec on exact segments
  BitKey min_key_;
  BitKey max_key_;

  /// Backing bytes: either a shared read-only mapping or a resident copy.
  void* map_base_ = nullptr;
  size_t map_len_ = 0;
  std::vector<uint8_t> resident_;

  /// Column pointers into the backing bytes (64-byte aligned in-file).
  const uint8_t* key_bytes_ = nullptr;  ///< count_ * kKeyBytes
  const uint8_t* descriptors_ = nullptr;
  const uint32_t* ids_ = nullptr;
  const uint32_t* time_codes_ = nullptr;
  const float* xs_ = nullptr;
  const float* ys_ = nullptr;
};

}  // namespace s3vcd::store

#endif  // S3VCD_STORE_SEGMENT_FORMAT_H_
