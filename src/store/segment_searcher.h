#ifndef S3VCD_STORE_SEGMENT_SEARCHER_H_
#define S3VCD_STORE_SEGMENT_SEARCHER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/descriptor_block.h"
#include "core/distortion_model.h"
#include "core/filter.h"
#include "core/searcher.h"
#include "hilbert/hilbert_curve.h"
#include "store/segment_store.h"
#include "util/bitkey.h"

namespace s3vcd::store {

struct SegmentSearcherOptions {
  /// Store directory. Empty means a fresh private directory under the
  /// system temp dir, removed when the searcher is destroyed (ephemeral
  /// mode — used when the backend is selected without --store-dir).
  std::string store_dir;
  /// Memtable records that trigger a spill into a new segment.
  size_t spill_threshold = 64 * 1024;
  /// Store tuning (fan-in, mmap, checksums, sync). tier_base_records is
  /// overwritten with spill_threshold so fresh spills land in tier 0.
  SegmentStoreOptions store;
};

/// The "segment" registry backend: the persistent, disk-backed counterpart
/// of DynamicIndex. Queries select curve sections once through the shared
/// BlockFilter, then refine each section over every on-disk segment (the
/// SoA scan kernels run directly on the mapped columns — SegmentReader
/// hands ScanRecords a DescriptorView into the mapping) and post-filter
/// the in-memory memtable by key membership, so results are identical to
/// an in-memory index over the same records (tests/segment_parity_test.cc
/// pins bit-identical parity with the "dynamic" backend, including across
/// a close/reopen cycle).
///
/// Inserts append to the memtable and spill into immutable segments at
/// spill_threshold; Compact() spills whatever is buffered and runs the
/// store's tiered compaction to completion. Reopening the same store_dir
/// resumes from the manifest in milliseconds — nothing is re-ingested.
///
/// Single-writer like DynamicIndex: queries are const and may fan out;
/// TryInsert/Compact require external exclusion.
class SegmentSearcher : public core::Searcher {
 public:
  /// Opens (or creates) the store and ingests `db` as the first segment
  /// when the store is empty. A non-empty store is authoritative: `db`
  /// must then be empty (kFailedPrecondition otherwise) — reopen with an
  /// empty database, the segments already hold the records.
  static Result<std::unique_ptr<SegmentSearcher>> Open(
      core::FingerprintDatabase db, const SegmentSearcherOptions& options);

  ~SegmentSearcher() override;

  const SegmentStore& segment_store() const { return *store_; }
  /// Directory the store lives in (the private temp dir in ephemeral
  /// mode). Distinct across concurrently opened ephemeral searchers —
  /// pinned by tests/store_test.cc.
  const std::string& store_dir() const { return store_->dir(); }
  size_t pending_inserts() const { return memtable_.size(); }

  // ---- Searcher interface ----
  const char* backend_name() const override { return "segment"; }
  core::QueryResult StatQuery(const fp::Fingerprint& query,
                              const core::DistortionModel& model,
                              const core::QueryOptions& options) const override;
  core::QueryResult RangeQuery(const fp::Fingerprint& query, double epsilon,
                               int depth) const override;
  core::SearcherStats Stats() const override;
  uint64_t ApproxBytes() const override;
  const core::BlockFilter* selection_filter() const override {
    return &filter_;
  }
  void ScanSelection(const fp::Fingerprint& query,
                     const core::BlockSelection& selection,
                     core::RefinementMode mode, double radius,
                     const core::DistortionModel* model,
                     core::QueryResult* result) const override;
  bool TryInsert(const fp::Fingerprint& fingerprint, uint32_t id,
                 uint32_t time_code, float x = 0, float y = 0) override;
  /// Spills the memtable and compacts the store to a steady state.
  void Compact() override;

 private:
  SegmentSearcher(std::unique_ptr<SegmentStore> store, bool owns_dir);

  /// Writes the memtable out as one segment (no-op when empty).
  Status Spill();
  void ScanStore(const fp::Fingerprint& query,
                 const core::BlockSelection& selection,
                 core::RefinementMode mode, double radius,
                 const core::DistortionModel* model,
                 core::QueryResult* result) const;

  std::unique_ptr<SegmentStore> store_;
  /// True when the searcher created a private temp store dir and must
  /// remove it on destruction.
  bool owns_dir_;
  hilbert::HilbertCurve curve_;
  core::BlockFilter filter_;
  /// LSM memtable: unsorted recent inserts + parallel Hilbert keys.
  core::DescriptorBlock memtable_;
  std::vector<BitKey> memtable_keys_;
  size_t spill_threshold_;
};

/// Registers the "segment" backend in core::SearcherRegistry::Global()
/// (idempotent). Linked binaries that want `--backend segment` call this
/// once at startup; the SearcherConfig fields segment_store_dir,
/// segment_spill_threshold, segment_tier_fanin, segment_use_mmap and
/// segment_codec feed the factory.
void EnsureSegmentBackendRegistered();

}  // namespace s3vcd::store

#endif  // S3VCD_STORE_SEGMENT_SEARCHER_H_
