#include "store/segment_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <queue>
#include <set>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/io.h"

namespace s3vcd::store {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kManifestMagic = 0x53334D46;  // "S3MF"
constexpr uint32_t kManifestVersion = 1;
constexpr char kCurrentName[] = "CURRENT";

obs::Counter* const g_segments_written =
    obs::MetricsRegistry::Global().GetCounter("store.segments_written");
obs::Counter* const g_bytes_written =
    obs::MetricsRegistry::Global().GetCounter("store.bytes_written");
obs::Counter* const g_compactions =
    obs::MetricsRegistry::Global().GetCounter("store.compactions");
obs::Counter* const g_compaction_inputs =
    obs::MetricsRegistry::Global().GetCounter("store.compaction_inputs");
obs::Counter* const g_compaction_records =
    obs::MetricsRegistry::Global().GetCounter("store.compaction_records");
obs::Gauge* const g_segments =
    obs::MetricsRegistry::Global().GetGauge("store.segments");
obs::Gauge* const g_records =
    obs::MetricsRegistry::Global().GetGauge("store.records");
obs::Gauge* const g_generation =
    obs::MetricsRegistry::Global().GetGauge("store.generation");

std::string ManifestName(uint64_t generation) {
  return "MANIFEST-" + std::to_string(generation);
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError("rename failed: " + from + " -> " + to);
  }
  return Status::OK();
}

/// Size tier of a segment: tier 0 holds up to `base` records, each higher
/// tier `fanin` times more.
int SegmentTier(uint64_t records, uint64_t base, int fanin) {
  int tier = 0;
  uint64_t cap = std::max<uint64_t>(base, 1);
  while (records > cap && tier < 62) {
    cap *= static_cast<uint64_t>(fanin);
    ++tier;
  }
  return tier;
}

}  // namespace

SegmentStore::SegmentStore(std::string dir, SegmentStoreOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {}

Result<std::unique_ptr<SegmentStore>> SegmentStore::Open(
    const std::string& dir, int order, const SegmentStoreOptions& options) {
  if (options.tier_fanin < 2) {
    return Status::InvalidArgument("tier_fanin must be >= 2");
  }
  std::unique_ptr<SegmentStore> store(new SegmentStore(dir, options));
  S3VCD_RETURN_IF_ERROR(store->Load(order));
  return store;
}

Status SegmentStore::Load(int requested_order) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("cannot create store directory: " + dir_);
  }

  auto view = std::make_shared<View>();
  const std::string current_path = dir_ + "/" + kCurrentName;
  if (fs::exists(current_path)) {
    // Reopen: CURRENT names the live manifest.
    S3VCD_ASSIGN_OR_RETURN(const std::vector<uint8_t> current_bytes,
                           ReadFileBytes(current_path));
    std::string manifest_name(current_bytes.begin(), current_bytes.end());
    while (!manifest_name.empty() &&
           (manifest_name.back() == '\n' || manifest_name.back() == '\r')) {
      manifest_name.pop_back();
    }
    if (manifest_name.empty() ||
        manifest_name.find('/') != std::string::npos) {
      return Status::Corruption("CURRENT does not name a manifest: " + dir_);
    }

    BinaryReader reader;
    if (!reader.Open(dir_ + "/" + manifest_name).ok()) {
      return Status::Corruption("CURRENT names a missing manifest '" +
                                manifest_name + "': " + dir_);
    }
    uint32_t magic = 0;
    uint32_t version = 0;
    uint32_t order = 0;
    uint32_t segment_count = 0;
    S3VCD_RETURN_IF_ERROR(reader.ReadU32(&magic));
    if (magic != kManifestMagic) {
      return Status::Corruption("bad manifest magic: " + manifest_name);
    }
    S3VCD_RETURN_IF_ERROR(reader.ReadU32(&version));
    if (version != kManifestVersion) {
      return Status::Corruption("unsupported manifest version: " +
                                manifest_name);
    }
    S3VCD_RETURN_IF_ERROR(reader.ReadU64(&view->generation));
    S3VCD_RETURN_IF_ERROR(reader.ReadU32(&order));
    S3VCD_RETURN_IF_ERROR(reader.ReadU64(&next_segment_id_));
    S3VCD_RETURN_IF_ERROR(reader.ReadU32(&segment_count));
    if (order < 1 || order > 8 || segment_count > (1u << 20)) {
      return Status::Corruption("manifest fields out of range: " +
                                manifest_name);
    }
    order_ = static_cast<int>(order);

    struct Entry {
      uint64_t id;
      uint64_t records;
      std::string name;
    };
    std::vector<Entry> entries(segment_count);
    for (Entry& e : entries) {
      S3VCD_RETURN_IF_ERROR(reader.ReadU64(&e.id));
      S3VCD_RETURN_IF_ERROR(reader.ReadU64(&e.records));
      S3VCD_RETURN_IF_ERROR(reader.ReadString(&e.name));
      if (e.name.empty() || e.name.find('/') != std::string::npos) {
        return Status::Corruption("manifest entry names invalid path: " +
                                  manifest_name);
      }
    }
    const uint32_t computed_crc = reader.crc();
    uint32_t stored_crc = 0;
    S3VCD_RETURN_IF_ERROR(reader.ReadU32(&stored_crc));
    if (stored_crc != computed_crc) {
      return Status::Corruption("manifest checksum mismatch: " +
                                manifest_name);
    }
    S3VCD_RETURN_IF_ERROR(reader.Close());

    const SegmentReadOptions read_options{options_.use_mmap,
                                          options_.verify_checksums};
    for (const Entry& e : entries) {
      S3VCD_ASSIGN_OR_RETURN(
          std::shared_ptr<SegmentReader> segment,
          SegmentReader::Open(dir_ + "/" + e.name, read_options));
      if (segment->order() != order_) {
        return Status::Corruption("segment order disagrees with manifest: " +
                                  e.name);
      }
      if (segment->segment_id() != e.id || segment->size() != e.records) {
        return Status::Corruption(
            "segment identity disagrees with manifest: " + e.name);
      }
      view->total_records += segment->size();
      view->segments.push_back(std::move(segment));
    }
    if (requested_order != 0 && requested_order != order_) {
      return Status::FailedPrecondition(
          "store " + dir_ + " has curve order " + std::to_string(order_) +
          ", not the requested " + std::to_string(requested_order));
    }
  } else {
    // Fresh store: nothing durable until the first commit.
    if (requested_order < 1 || requested_order > 8) {
      return Status::InvalidArgument("curve order out of range [1, 8]");
    }
    order_ = requested_order;
  }

  {
    std::lock_guard<std::mutex> lock(view_mu_);
    view_ = std::move(view);
  }
  g_segments->Set(static_cast<int64_t>(num_segments()));
  g_records->Set(static_cast<int64_t>(total_records()));
  g_generation->Set(static_cast<int64_t>(generation()));
  RemoveUnreferenced();
  return Status::OK();
}

void SegmentStore::RemoveUnreferenced() {
  const std::shared_ptr<const View> view = this->view();
  std::set<std::string> keep = {kCurrentName};
  if (view->generation > 0 || !view->segments.empty()) {
    keep.insert(ManifestName(view->generation));
  }
  for (const auto& segment : view->segments) {
    keep.insert(fs::path(segment->path()).filename().string());
  }
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (keep.count(name) > 0) {
      continue;
    }
    // Only touch files this store wrote: segments, manifests, temporaries.
    const bool ours = name.rfind("seg-", 0) == 0 ||
                      name.rfind("MANIFEST-", 0) == 0 ||
                      name.rfind("CURRENT.tmp", 0) == 0;
    if (ours) {
      S3VCD_LOG(INFO) << "segment store gc: removing unreferenced " << name;
      fs::remove(entry.path(), ec);
    }
  }
}

std::string SegmentStore::SegmentName(uint64_t id) const {
  return "seg-" + std::to_string(id) + ".s3seg";
}

std::string SegmentStore::SegmentPath(uint64_t id) const {
  return dir_ + "/" + SegmentName(id);
}

std::shared_ptr<const SegmentStore::View> SegmentStore::view() const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return view_;
}

uint64_t SegmentStore::DiskBytes() const {
  uint64_t bytes = 0;
  for (const auto& segment : view()->segments) {
    bytes += segment->file_bytes();
  }
  return bytes;
}

Status SegmentStore::WriteCurrent(const std::string& manifest_name) {
  const std::string tmp = dir_ + "/CURRENT.tmp";
  BinaryWriter writer;
  S3VCD_RETURN_IF_ERROR(writer.Open(tmp));
  const std::string line = manifest_name + "\n";
  S3VCD_RETURN_IF_ERROR(writer.WriteBytes(line.data(), line.size()));
  if (options_.sync_writes) {
    S3VCD_RETURN_IF_ERROR(writer.Sync());
  }
  S3VCD_RETURN_IF_ERROR(writer.Close());
  S3VCD_RETURN_IF_ERROR(RenameFile(tmp, dir_ + "/" + kCurrentName));
  if (options_.sync_writes) {
    S3VCD_RETURN_IF_ERROR(SyncDir(dir_));
  }
  return Status::OK();
}

Status SegmentStore::CommitGeneration(
    uint64_t generation,
    const std::vector<std::shared_ptr<SegmentReader>>& segments) {
  const std::string name = ManifestName(generation);
  BinaryWriter writer;
  S3VCD_RETURN_IF_ERROR(writer.Open(dir_ + "/" + name));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(kManifestMagic));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(kManifestVersion));
  S3VCD_RETURN_IF_ERROR(writer.WriteU64(generation));
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(static_cast<uint32_t>(order_)));
  S3VCD_RETURN_IF_ERROR(writer.WriteU64(next_segment_id_));
  S3VCD_RETURN_IF_ERROR(
      writer.WriteU32(static_cast<uint32_t>(segments.size())));
  for (const auto& segment : segments) {
    S3VCD_RETURN_IF_ERROR(writer.WriteU64(segment->segment_id()));
    S3VCD_RETURN_IF_ERROR(writer.WriteU64(segment->size()));
    S3VCD_RETURN_IF_ERROR(writer.WriteString(
        fs::path(segment->path()).filename().string()));
  }
  S3VCD_RETURN_IF_ERROR(writer.WriteU32(writer.crc()));
  if (options_.sync_writes) {
    S3VCD_RETURN_IF_ERROR(writer.Sync());
  }
  S3VCD_RETURN_IF_ERROR(writer.Close());
  // The point of no return: CURRENT flips to the new generation.
  return WriteCurrent(name);
}

Status SegmentStore::AppendSegment(const core::DescriptorBlock& block,
                                   const std::vector<BitKey>& keys) {
  if (block.empty()) {
    return Status::OK();
  }
  S3VCD_TRACE_SPAN("store.spill");
  std::lock_guard<std::mutex> lock(writer_mu_);

  const uint64_t id = next_segment_id_++;
  const std::string path = SegmentPath(id);
  const std::string tmp = path + ".tmp";
  S3VCD_RETURN_IF_ERROR(WriteSegmentFile(
      tmp, id, order_, block, keys, {options_.sync_writes, options_.codec}));
  S3VCD_RETURN_IF_ERROR(RenameFile(tmp, path));

  const SegmentReadOptions read_options{options_.use_mmap,
                                        options_.verify_checksums};
  auto opened = SegmentReader::Open(path, read_options);
  if (!opened.ok()) {
    std::remove(path.c_str());
    return opened.status();
  }

  const std::shared_ptr<const View> old_view = view();
  auto next = std::make_shared<View>();
  next->generation = old_view->generation + 1;
  next->segments = old_view->segments;
  next->segments.push_back(*opened);
  next->total_records = old_view->total_records + (*opened)->size();
  const Status commit = CommitGeneration(next->generation, next->segments);
  if (!commit.ok()) {
    std::remove(path.c_str());
    return commit;
  }
  {
    std::lock_guard<std::mutex> view_lock(view_mu_);
    view_ = next;
  }
  g_segments_written->Increment();
  g_bytes_written->Increment((*opened)->file_bytes());
  g_segments->Set(static_cast<int64_t>(next->segments.size()));
  g_records->Set(static_cast<int64_t>(next->total_records));
  g_generation->Set(static_cast<int64_t>(next->generation));
  return Status::OK();
}

Status SegmentStore::Compact(bool* merged) {
  if (merged != nullptr) {
    *merged = false;
  }
  std::lock_guard<std::mutex> lock(writer_mu_);
  const std::shared_ptr<const View> old_view = view();

  // Bucket the current generation by size tier; merge the smallest
  // qualifying tier (ties broken toward fewer records first, so repeated
  // rounds drain the small end before touching big segments).
  std::vector<std::vector<size_t>> tiers;
  for (size_t i = 0; i < old_view->segments.size(); ++i) {
    const int tier = SegmentTier(old_view->segments[i]->size(),
                                 options_.tier_base_records,
                                 options_.tier_fanin);
    if (tiers.size() <= static_cast<size_t>(tier)) {
      tiers.resize(tier + 1);
    }
    tiers[tier].push_back(i);
  }
  std::vector<size_t> group;
  for (auto& tier : tiers) {
    if (tier.size() < static_cast<size_t>(options_.tier_fanin)) {
      continue;
    }
    std::sort(tier.begin(), tier.end(), [&](size_t a, size_t b) {
      return old_view->segments[a]->size() < old_view->segments[b]->size();
    });
    uint64_t records = 0;
    for (const size_t i : tier) {
      if (group.size() >= static_cast<size_t>(options_.tier_fanin)) {
        break;
      }
      const uint64_t n = old_view->segments[i]->size();
      if (!group.empty() && records + n > options_.max_compaction_records) {
        break;
      }
      group.push_back(i);
      records += n;
    }
    if (group.size() >= 2) {
      break;
    }
    group.clear();
  }
  if (group.empty()) {
    return Status::OK();
  }

  S3VCD_TRACE_SPAN("store.compact");

  // K-way merge of the chosen segments into one sorted run. The merged
  // run is accumulated in memory (bounded by max_compaction_records)
  // before it is written out.
  struct Source {
    const SegmentReader* segment;
    size_t pos = 0;
  };
  std::vector<Source> sources;
  uint64_t total = 0;
  for (const size_t i : group) {
    sources.push_back({old_view->segments[i].get(), 0});
    total += old_view->segments[i]->size();
  }
  struct HeapEntry {
    BitKey key;
    int source;
  };
  const auto greater = [](const HeapEntry& a, const HeapEntry& b) {
    return b.key < a.key;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(greater)>
      heap(greater);
  for (size_t s = 0; s < sources.size(); ++s) {
    if (sources[s].segment->size() > 0) {
      heap.push({sources[s].segment->key(0), static_cast<int>(s)});
    }
  }
  core::DescriptorBlock block;
  block.Reserve(total);
  std::vector<BitKey> keys;
  keys.reserve(total);
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    Source& src = sources[static_cast<size_t>(top.source)];
    block.AppendRecord(src.segment->Record(src.pos));
    keys.push_back(top.key);
    if (++src.pos < src.segment->size()) {
      heap.push({src.segment->key(src.pos), top.source});
    }
  }

  const uint64_t id = next_segment_id_++;
  const std::string path = SegmentPath(id);
  const std::string tmp = path + ".tmp";
  S3VCD_RETURN_IF_ERROR(WriteSegmentFile(
      tmp, id, order_, block, keys, {options_.sync_writes, options_.codec}));
  S3VCD_RETURN_IF_ERROR(RenameFile(tmp, path));

  if (fail_before_manifest_swap_) {
    // Crash-safety hook: the merged segment exists on disk but the
    // manifest still names the old generation — exactly the window a real
    // crash would hit. Reopen must serve the old generation and gc the
    // orphan (tests/store_test.cc).
    fail_before_manifest_swap_ = false;
    return Status::Internal("injected failure before manifest swap");
  }

  const SegmentReadOptions read_options{options_.use_mmap,
                                        options_.verify_checksums};
  auto opened = SegmentReader::Open(path, read_options);
  if (!opened.ok()) {
    std::remove(path.c_str());
    return opened.status();
  }

  auto next = std::make_shared<View>();
  next->generation = old_view->generation + 1;
  std::set<size_t> merged_set(group.begin(), group.end());
  for (size_t i = 0; i < old_view->segments.size(); ++i) {
    if (merged_set.count(i) == 0) {
      next->segments.push_back(old_view->segments[i]);
      next->total_records += old_view->segments[i]->size();
    }
  }
  next->segments.push_back(*opened);
  next->total_records += (*opened)->size();
  const Status commit = CommitGeneration(next->generation, next->segments);
  if (!commit.ok()) {
    std::remove(path.c_str());
    return commit;
  }
  {
    std::lock_guard<std::mutex> view_lock(view_mu_);
    view_ = next;
  }
  // The inputs are unreferenced by the new generation; queries holding the
  // old view keep the mappings alive until their snapshot drops.
  for (const size_t i : group) {
    std::remove(old_view->segments[i]->path().c_str());
  }
  g_segments_written->Increment();
  g_bytes_written->Increment((*opened)->file_bytes());
  g_compactions->Increment();
  g_compaction_inputs->Increment(group.size());
  g_compaction_records->Increment(total);
  g_segments->Set(static_cast<int64_t>(next->segments.size()));
  g_records->Set(static_cast<int64_t>(next->total_records));
  g_generation->Set(static_cast<int64_t>(next->generation));
  if (merged != nullptr) {
    *merged = true;
  }
  return Status::OK();
}

Status SegmentStore::CompactAll() {
  bool merged = true;
  while (merged) {
    S3VCD_RETURN_IF_ERROR(Compact(&merged));
  }
  return Status::OK();
}

}  // namespace s3vcd::store
