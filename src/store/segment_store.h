#ifndef S3VCD_STORE_SEGMENT_STORE_H_
#define S3VCD_STORE_SEGMENT_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/descriptor_block.h"
#include "store/segment_format.h"
#include "util/bitkey.h"
#include "util/status.h"

namespace s3vcd::store {

/// Tuning of a SegmentStore (see docs/tuning.md, segment-store table).
struct SegmentStoreOptions {
  /// Segments per size tier that trigger a merge of that tier (the LSM
  /// fan-in). Minimum 2.
  int tier_fanin = 4;
  /// Record count that anchors tier 0: a segment of <= this many records
  /// is tier 0, fanin times more is tier 1, and so on. SegmentSearcher
  /// passes its spill threshold here so freshly spilled memtables land in
  /// tier 0.
  uint64_t tier_base_records = 64 * 1024;
  /// Upper bound on the records a single compaction may merge (bounds the
  /// transient memory of the merge, which accumulates the merged run
  /// in memory before writing it out).
  uint64_t max_compaction_records = uint64_t{64} << 20;
  /// Serve segments from shared read-only mappings (fall back to resident
  /// reads when mapping fails).
  bool use_mmap = true;
  /// Verify per-section CRCs when opening segments.
  bool verify_checksums = true;
  /// fsync segment files and manifests before installing them. Turning
  /// this off trades crash durability for ingest speed (tests).
  bool sync_writes = true;
  /// Descriptor codec newly written segments (spills and compaction
  /// outputs) are encoded with. Existing segments keep the codec recorded
  /// in their headers, so a store may legitimately hold mixed codecs while
  /// compaction migrates it. See core/descriptor_codec.h.
  core::DescriptorCodecKind codec = core::DescriptorCodecKind::kExactU8;
};

/// A durable, crash-consistent collection of immutable segments under one
/// directory, with LSM-style size-tiered compaction. On-disk state:
///
///   seg-<id>.s3seg       immutable segments (SegmentReader format)
///   MANIFEST-<gen>       the segment list of generation <gen>
///   CURRENT              text file naming the live manifest
///
/// Every mutation (append, compaction) builds the *complete* next
/// generation on disk — new segment files first, then a new manifest,
/// fsynced — and only then swaps CURRENT via atomic rename. Readers hold a
/// shared_ptr<const View> snapshot, so an in-flight query keeps its
/// generation alive while the store moves on; a crash at any point leaves
/// the previous CURRENT intact (verified by the crash-safety test in
/// tests/store_test.cc). Lifecycle diagram: docs/segment_format.md.
///
/// Concurrency: view() is safe from any thread; AppendSegment/Compact are
/// single-writer (internally serialized, but callers must not assume
/// concurrent appends make progress in a defined order).
class SegmentStore {
 public:
  /// An immutable snapshot of one generation.
  struct View {
    uint64_t generation = 0;
    std::vector<std::shared_ptr<SegmentReader>> segments;
    uint64_t total_records = 0;
  };

  /// Opens (or creates) the store in `dir`. `order` is the Hilbert curve
  /// order of new stores; reopening an existing store takes the order from
  /// the manifest and fails with kFailedPrecondition if a different
  /// nonzero order is requested. Stale temporaries and unreferenced
  /// segment files (e.g. from a crash mid-compaction) are removed.
  static Result<std::unique_ptr<SegmentStore>> Open(
      const std::string& dir, int order, const SegmentStoreOptions& options = {});

  const std::string& dir() const { return dir_; }
  int order() const { return order_; }
  const SegmentStoreOptions& options() const { return options_; }

  /// The current generation's snapshot (lock-free after the shared_ptr
  /// copy; never null, possibly empty).
  std::shared_ptr<const View> view() const;

  uint64_t generation() const { return view()->generation; }
  size_t num_segments() const { return view()->segments.size(); }
  uint64_t total_records() const { return view()->total_records; }
  /// Total bytes of the current generation's segment files.
  uint64_t DiskBytes() const;

  /// Writes `block` (key-sorted, with `keys` parallel) as one new segment
  /// and installs it under a new generation. Empty blocks are a no-op.
  Status AppendSegment(const core::DescriptorBlock& block,
                       const std::vector<BitKey>& keys);

  /// One round of size-tiered compaction: if any tier holds >= tier_fanin
  /// segments, k-way merges the smallest qualifying group into one segment
  /// and installs the new generation. Sets *merged (optional) to whether a
  /// merge happened.
  Status Compact(bool* merged = nullptr);

  /// Runs Compact until no tier qualifies.
  Status CompactAll();

  /// Test hook for the crash-safety test: the next compaction does all of
  /// its work (merged segment written, renamed into place) but returns
  /// kInternal *instead of* swapping the manifest — the moment a crash
  /// would be most tempted to tear the store.
  void set_fail_before_manifest_swap_for_test(bool fail) {
    fail_before_manifest_swap_ = fail;
  }

 private:
  SegmentStore(std::string dir, SegmentStoreOptions options);

  Status Load(int requested_order);
  /// Writes MANIFEST-<generation> for `segments` and swaps CURRENT to it.
  Status CommitGeneration(
      uint64_t generation,
      const std::vector<std::shared_ptr<SegmentReader>>& segments);
  Status WriteCurrent(const std::string& manifest_name);
  std::string SegmentPath(uint64_t id) const;
  std::string SegmentName(uint64_t id) const;
  /// Removes files in dir_ that the live generation does not reference.
  void RemoveUnreferenced();

  const std::string dir_;
  const SegmentStoreOptions options_;
  int order_ = 0;

  /// Serializes mutations (append/compact). Held for the full operation.
  std::mutex writer_mu_;
  /// Guards only the view_ pointer swap/copy, so readers never wait on a
  /// running compaction.
  mutable std::mutex view_mu_;
  std::shared_ptr<const View> view_;
  uint64_t next_segment_id_ = 1;
  bool fail_before_manifest_swap_ = false;
};

}  // namespace s3vcd::store

#endif  // S3VCD_STORE_SEGMENT_STORE_H_
