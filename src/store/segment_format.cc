#include "store/segment_format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/io.h"

namespace s3vcd::store {

namespace {

inline void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
inline uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void PutKey(uint8_t* p, const BitKey& k) {
  for (int w = 0; w < BitKey::kWords; ++w) {
    PutU64(p + w * 8, k.word(w));
  }
}

inline BitKey GetKey(const uint8_t* p) {
  BitKey k;
  for (int w = 0; w < BitKey::kWords; ++w) {
    k.set_word(w, GetU64(p + w * 8));
  }
  return k;
}

inline uint64_t Align64(uint64_t off) {
  return (off + (kSectionAlign - 1)) & ~uint64_t{kSectionAlign - 1};
}

struct SectionLayout {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
};

/// Required byte length of section `s` for `n` records under `kind`.
/// Sections 0-5 are per-record columns (the descriptor column's width is
/// the codec's code bytes); section 6 is the fixed-size codec-params blob,
/// present exactly when the codec is quantized. These lengths are what the
/// reader re-derives and checks, so a segment whose header codec tag does
/// not match its actual payload widths fails validation structurally.
uint64_t SectionLength(uint32_t s, uint64_t n,
                       core::DescriptorCodecKind kind) {
  switch (s) {
    case 0:
      return n * kKeyBytes;
    case 1:
      return n * core::DescriptorCodeBytes(kind);
    case 2:
    case 3:
      return n * sizeof(uint32_t);
    case 4:
    case 5:
      return n * sizeof(float);
    case 6:
      return kind == core::DescriptorCodecKind::kExactU8
                 ? 0
                 : core::kDescriptorCodecParamsBytes;
  }
  return 0;
}

Status PadTo(BinaryWriter* writer, uint64_t target) {
  static const uint8_t kZeros[kSectionAlign] = {};
  while (writer->bytes_written() < target) {
    const size_t n = std::min<uint64_t>(target - writer->bytes_written(),
                                        kSectionAlign);
    S3VCD_RETURN_IF_ERROR(writer->WriteBytes(kZeros, n));
  }
  return Status::OK();
}

Status WriteSegmentFileImpl(const std::string& path, uint64_t segment_id,
                            int order, const core::DescriptorBlock& block,
                            const std::vector<BitKey>& keys,
                            const SegmentWriteOptions& options) {
  const uint64_t n = block.size();
  if (keys.size() != n) {
    return Status::InvalidArgument("key array size != record count");
  }
  for (size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] < keys[i - 1]) {
      return Status::InvalidArgument("segment records must be key-sorted");
    }
  }
  if (order < 1 || order > 8) {
    return Status::InvalidArgument("curve order out of range [1, 8]");
  }

  // Train the codec on the block being written; quantized parameters are
  // per-segment (spills and compactions re-train on their merged input).
  const core::DescriptorCodec codec = core::TrainDescriptorCodec(
      options.codec, block.descriptors(), block.size());
  const size_t code_bytes = codec.code_bytes();

  SectionLayout sections[kNumSections];
  uint64_t offset = kSegmentHeaderBytes;
  for (uint32_t s = 0; s < kNumSections; ++s) {
    sections[s].offset = offset;
    sections[s].length = SectionLength(s, n, options.codec);
    offset = Align64(offset + sections[s].length);
  }
  const uint64_t footer_offset = offset;

  BinaryWriter writer;
  S3VCD_RETURN_IF_ERROR(writer.Open(path));

  uint8_t header[kSegmentHeaderBytes] = {};
  PutU32(header + 0, kSegmentMagic);
  PutU32(header + 4, kSegmentVersion);
  PutU32(header + 8, static_cast<uint32_t>(fp::kDims));
  PutU32(header + 12, static_cast<uint32_t>(order));
  PutU64(header + 16, n);
  PutU64(header + 24, segment_id);
  header[kHeaderCodecOff] = static_cast<uint8_t>(options.codec);
  PutU32(header + kHeaderCrcOff, Crc32(header, kHeaderCrcOff));
  S3VCD_RETURN_IF_ERROR(writer.WriteBytes(header, sizeof(header)));

  const core::DescriptorView view = block.View();

  // Section 0: keys, serialized in chunks.
  S3VCD_RETURN_IF_ERROR(PadTo(&writer, sections[0].offset));
  {
    constexpr size_t kChunkKeys = 512;
    uint8_t chunk[kChunkKeys * kKeyBytes];
    uint32_t crc = 0;
    for (size_t i = 0; i < n; i += kChunkKeys) {
      const size_t count = std::min<size_t>(kChunkKeys, n - i);
      for (size_t k = 0; k < count; ++k) {
        PutKey(chunk + k * kKeyBytes, keys[i + k]);
      }
      crc = Crc32(chunk, count * kKeyBytes, crc);
      S3VCD_RETURN_IF_ERROR(writer.WriteBytes(chunk, count * kKeyBytes));
    }
    sections[0].crc = crc;
  }

  // Section 1: the descriptor column — written straight from the block on
  // the exact codec, encoded in chunks otherwise.
  S3VCD_RETURN_IF_ERROR(PadTo(&writer, sections[1].offset));
  if (codec.is_exact()) {
    sections[1].crc = Crc32(view.descriptors, sections[1].length);
    S3VCD_RETURN_IF_ERROR(
        writer.WriteBytes(view.descriptors, sections[1].length));
  } else {
    constexpr size_t kChunkRecords = 512;
    std::vector<uint8_t> chunk(kChunkRecords * code_bytes);
    uint32_t crc = 0;
    for (size_t i = 0; i < n; i += kChunkRecords) {
      const size_t count = std::min<size_t>(kChunkRecords, n - i);
      for (size_t k = 0; k < count; ++k) {
        core::EncodeDescriptor(codec, block.descriptor(i + k),
                               chunk.data() + k * code_bytes);
      }
      crc = Crc32(chunk.data(), count * code_bytes, crc);
      S3VCD_RETURN_IF_ERROR(
          writer.WriteBytes(chunk.data(), count * code_bytes));
    }
    sections[1].crc = crc;
  }

  // Sections 2-5: the remaining SoA columns are contiguous already.
  const void* columns[6] = {nullptr, nullptr,  view.ids,
                            view.time_codes, view.xs, view.ys};
  for (uint32_t s = 2; s < 6; ++s) {
    S3VCD_RETURN_IF_ERROR(PadTo(&writer, sections[s].offset));
    sections[s].crc = Crc32(columns[s], sections[s].length);
    S3VCD_RETURN_IF_ERROR(writer.WriteBytes(columns[s], sections[s].length));
  }

  // Section 6: trained codec parameters (quantized segments only).
  S3VCD_RETURN_IF_ERROR(PadTo(&writer, sections[6].offset));
  if (!codec.is_exact()) {
    uint8_t params[core::kDescriptorCodecParamsBytes];
    core::SerializeCodecParams(codec, params);
    sections[6].crc = Crc32(params, sizeof(params));
    S3VCD_RETURN_IF_ERROR(writer.WriteBytes(params, sizeof(params)));
  }

  S3VCD_RETURN_IF_ERROR(PadTo(&writer, footer_offset));
  uint8_t footer[kSegmentFooterBytes] = {};
  PutU32(footer + 0, kNumSections);
  for (uint32_t s = 0; s < kNumSections; ++s) {
    uint8_t* e = footer + 4 + s * 24;
    PutU64(e + 0, sections[s].offset);
    PutU64(e + 8, sections[s].length);
    PutU32(e + 16, sections[s].crc);
    PutU32(e + 20, 0);  // reserved
  }
  PutKey(footer + kFooterMinKeyOff, n > 0 ? keys.front() : BitKey::Zero());
  PutKey(footer + kFooterMaxKeyOff, n > 0 ? keys.back() : BitKey::Zero());
  PutU64(footer + kFooterOffsetOff, footer_offset);
  PutU32(footer + kFooterCrcOff, Crc32(footer, kFooterCrcOff));
  PutU32(footer + kFooterMagicOff, kSegmentMagic);
  S3VCD_RETURN_IF_ERROR(writer.WriteBytes(footer, sizeof(footer)));

  if (options.sync) {
    S3VCD_RETURN_IF_ERROR(writer.Sync());
  }
  return writer.Close();
}

}  // namespace

Status WriteSegmentFile(const std::string& path, uint64_t segment_id,
                        int order, const core::DescriptorBlock& block,
                        const std::vector<BitKey>& keys,
                        const SegmentWriteOptions& options) {
  const Status status =
      WriteSegmentFileImpl(path, segment_id, order, block, keys, options);
  if (!status.ok()) {
    std::remove(path.c_str());
  }
  return status;
}

SegmentReader::~SegmentReader() {
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_len_);
  }
}

Result<std::shared_ptr<SegmentReader>> SegmentReader::Open(
    const std::string& path, const SegmentReadOptions& options) {
  std::shared_ptr<SegmentReader> reader(new SegmentReader());
  S3VCD_RETURN_IF_ERROR(reader->Init(path, options));
  return reader;
}

Status SegmentReader::Init(const std::string& path,
                           const SegmentReadOptions& options) {
  path_ = path;
  const uint8_t* data = nullptr;
  uint64_t size = 0;
  if (options.use_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st;
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        void* m = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                         MAP_SHARED, fd, 0);
        if (m != MAP_FAILED) {
          map_base_ = m;
          map_len_ = static_cast<size_t>(st.st_size);
        }
      }
      ::close(fd);
    }
  }
  if (map_base_ != nullptr) {
    data = static_cast<const uint8_t*>(map_base_);
    size = map_len_;
  } else {
    // Resident fallback (also the explicit use_mmap=false path).
    S3VCD_ASSIGN_OR_RETURN(resident_, ReadFileBytes(path));
    data = resident_.data();
    size = resident_.size();
  }
  file_bytes_ = size;

  // Structural screen, outside in: sizes, trailing magic, footer CRC,
  // header, section table, then payload CRCs. Everything is kCorruption —
  // the reader never serves a partially validated file.
  if (size < kSegmentHeaderBytes + kSegmentFooterBytes) {
    return Status::Corruption("segment file truncated: " + path);
  }
  const uint8_t* footer = data + (size - kSegmentFooterBytes);
  if (GetU32(footer + kFooterMagicOff) != kSegmentMagic) {
    return Status::Corruption("segment trailing magic mismatch: " + path);
  }
  if (GetU32(footer + kFooterCrcOff) != Crc32(footer, kFooterCrcOff)) {
    return Status::Corruption("segment footer checksum mismatch: " + path);
  }
  if (GetU64(footer + kFooterOffsetOff) != size - kSegmentFooterBytes) {
    return Status::Corruption("segment footer offset mismatch: " + path);
  }

  const uint8_t* header = data;
  if (GetU32(header + 0) != kSegmentMagic) {
    return Status::Corruption("not a segment file: " + path);
  }
  if (GetU32(header + 4) != kSegmentVersion) {
    return Status::Corruption("unsupported segment version " +
                              std::to_string(GetU32(header + 4)) + ": " +
                              path);
  }
  if (GetU32(header + kHeaderCrcOff) != Crc32(header, kHeaderCrcOff)) {
    return Status::Corruption("segment header checksum mismatch: " + path);
  }
  if (GetU32(header + 8) != static_cast<uint32_t>(fp::kDims)) {
    return Status::Corruption("segment dims mismatch: " + path);
  }
  const uint32_t order = GetU32(header + 12);
  if (order < 1 || order > 8) {
    return Status::Corruption("segment curve order out of range: " + path);
  }
  order_ = static_cast<int>(order);
  count_ = GetU64(header + 16);
  segment_id_ = GetU64(header + 24);
  const uint8_t codec_tag = header[kHeaderCodecOff];
  if (codec_tag > static_cast<uint8_t>(core::DescriptorCodecKind::kLvq4)) {
    return Status::Corruption("segment descriptor codec tag unknown: " +
                              path);
  }
  const auto codec_kind = static_cast<core::DescriptorCodecKind>(codec_tag);

  if (GetU32(footer + 0) != kNumSections) {
    return Status::Corruption("segment section count mismatch: " + path);
  }
  const uint64_t footer_offset = size - kSegmentFooterBytes;
  uint64_t prev_end = kSegmentHeaderBytes;
  SectionLayout sections[kNumSections];
  for (uint32_t s = 0; s < kNumSections; ++s) {
    const uint8_t* e = footer + 4 + s * 24;
    sections[s].offset = GetU64(e + 0);
    sections[s].length = GetU64(e + 8);
    sections[s].crc = GetU32(e + 16);
    // Re-derived from the header's count and codec tag: a segment whose
    // tag was flipped to a different codec (even with resealed checksums)
    // fails here, because the descriptor/params payloads have the wrong
    // byte widths for the claimed codec.
    if (sections[s].length != SectionLength(s, count_, codec_kind)) {
      return Status::Corruption("segment section length inconsistent with "
                                "record count and codec: " + path);
    }
    if (sections[s].offset % kSectionAlign != 0 ||
        sections[s].offset < prev_end ||
        sections[s].offset + sections[s].length > footer_offset) {
      return Status::Corruption(
          "segment section table overlapping or out of bounds: " + path);
    }
    prev_end = sections[s].offset + sections[s].length;
  }
  if (options.verify_checksums) {
    for (uint32_t s = 0; s < kNumSections; ++s) {
      if (Crc32(data + sections[s].offset, sections[s].length) !=
          sections[s].crc) {
        return Status::Corruption("segment section " + std::to_string(s) +
                                  " checksum mismatch: " + path);
      }
    }
  }
  if (!core::DeserializeCodecParams(codec_kind, data + sections[6].offset,
                                    &codec_)) {
    return Status::Corruption("segment codec parameters invalid: " + path);
  }

  key_bytes_ = data + sections[0].offset;
  descriptors_ = data + sections[1].offset;
  ids_ = reinterpret_cast<const uint32_t*>(data + sections[2].offset);
  time_codes_ = reinterpret_cast<const uint32_t*>(data + sections[3].offset);
  xs_ = reinterpret_cast<const float*>(data + sections[4].offset);
  ys_ = reinterpret_cast<const float*>(data + sections[5].offset);

  // Key order and footer min/max agreement.
  BitKey prev;
  for (uint64_t i = 0; i < count_; ++i) {
    const BitKey k = key(i);
    if (i > 0 && k < prev) {
      return Status::Corruption("segment keys out of order: " + path);
    }
    prev = k;
  }
  min_key_ = count_ > 0 ? key(0) : BitKey::Zero();
  max_key_ = count_ > 0 ? key(count_ - 1) : BitKey::Zero();
  if (GetKey(footer + kFooterMinKeyOff) != min_key_ ||
      GetKey(footer + kFooterMaxKeyOff) != max_key_) {
    return Status::Corruption("segment min/max key mismatch: " + path);
  }
  return Status::OK();
}

BitKey SegmentReader::key(size_t i) const {
  return GetKey(key_bytes_ + i * kKeyBytes);
}

core::FingerprintRecord SegmentReader::Record(size_t i) const {
  core::FingerprintRecord r;
  core::DecodeDescriptor(codec_, descriptors_ + i * codec_.code_bytes(),
                         r.descriptor.data());
  r.id = ids_[i];
  r.time_code = time_codes_[i];
  r.x = xs_[i];
  r.y = ys_[i];
  return r;
}

size_t SegmentReader::LowerBound(const BitKey& target) const {
  size_t lo = 0;
  size_t hi = static_cast<size_t>(count_);
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (key(mid) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::pair<size_t, size_t> SegmentReader::ResolveRange(
    const BitKey& begin, const BitKey& end) const {
  const size_t first = LowerBound(begin);
  const size_t last =
      end.is_zero() ? static_cast<size_t>(count_) : LowerBound(end);
  return {first, last};
}

}  // namespace s3vcd::store
