#include "store/segment_searcher.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <numeric>
#include <set>
#include <utility>

#include "core/scan_kernel.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace s3vcd::store {

namespace {

namespace fs = std::filesystem;

obs::Counter* const g_spills =
    obs::MetricsRegistry::Global().GetCounter("index.segment_spills");
obs::Counter* const g_inserts =
    obs::MetricsRegistry::Global().GetCounter("index.segment_inserts");
obs::Gauge* const g_segments =
    obs::MetricsRegistry::Global().GetGauge("index.segment_segments");
obs::Gauge* const g_pending =
    obs::MetricsRegistry::Global().GetGauge("index.segment_pending_inserts");

/// A fresh private store directory for ephemeral (no --store-dir) use.
/// ::mkdtemp rewrites the XXXXXX placeholder in place (std::string::data()
/// is a contiguous writable NUL-terminated buffer since C++17) and creates
/// the directory atomically, so concurrent ephemeral searchers always get
/// distinct directories; tests/store_test.cc pins both properties.
Result<std::string> MakeTempStoreDir() {
  std::string templ =
      (fs::temp_directory_path() / "s3vcd_segstore_XXXXXX").string();
  if (::mkdtemp(templ.data()) == nullptr) {
    return Status::IOError("cannot create temp store directory");
  }
  // Belt and braces: the template must have been materialized into an
  // existing directory (a libc that returned the unmodified template
  // would make every ephemeral searcher share — and delete — one path).
  if (templ.find("XXXXXX") != std::string::npos || !fs::is_directory(templ)) {
    return Status::IOError("temp store template was not materialized: " +
                           templ);
  }
  return templ;
}

}  // namespace

SegmentSearcher::SegmentSearcher(std::unique_ptr<SegmentStore> store,
                                 bool owns_dir)
    : store_(std::move(store)),
      owns_dir_(owns_dir),
      curve_(fp::kDims, store_->order()),
      filter_(curve_),
      spill_threshold_(0) {}

SegmentSearcher::~SegmentSearcher() {
  if (owns_dir_) {
    const std::string dir = store_->dir();
    store_.reset();  // release the mappings before removing the files
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
}

Result<std::unique_ptr<SegmentSearcher>> SegmentSearcher::Open(
    core::FingerprintDatabase db, const SegmentSearcherOptions& options) {
  std::string dir = options.store_dir;
  bool owns_dir = false;
  if (dir.empty()) {
    S3VCD_ASSIGN_OR_RETURN(dir, MakeTempStoreDir());
    owns_dir = true;
  }
  SegmentStoreOptions store_options = options.store;
  store_options.tier_base_records =
      std::max<uint64_t>(options.spill_threshold, 1);

  // An empty database means "whatever the store holds": resolve the curve
  // order from the manifest (0), falling back to the database's default
  // order when the directory turns out to be fresh.
  const int requested_order = db.empty() ? 0 : db.order();
  auto store = SegmentStore::Open(dir, requested_order, store_options);
  if (!store.ok() && db.empty() &&
      store.status().code() == StatusCode::kInvalidArgument) {
    store = SegmentStore::Open(dir, db.order(), store_options);
  }
  S3VCD_RETURN_IF_ERROR(store.status());

  if (!db.empty()) {
    if ((*store)->total_records() > 0) {
      return Status::FailedPrecondition(
          "segment store " + dir + " already holds records; reopen it with "
          "an empty database (the segments are authoritative)");
    }
    std::vector<BitKey> keys;
    keys.reserve(db.size());
    for (size_t i = 0; i < db.size(); ++i) {
      keys.push_back(db.key(i));
    }
    S3VCD_RETURN_IF_ERROR((*store)->AppendSegment(db.block(), keys));
  }

  std::unique_ptr<SegmentSearcher> searcher(
      new SegmentSearcher(std::move(*store), owns_dir));
  searcher->spill_threshold_ = std::max<size_t>(options.spill_threshold, 1);
  g_segments->Set(static_cast<int64_t>(searcher->store_->num_segments()));
  return searcher;
}

void SegmentSearcher::ScanStore(const fp::Fingerprint& query,
                                const core::BlockSelection& selection,
                                core::RefinementMode mode, double radius,
                                const core::DistortionModel* model,
                                core::QueryResult* result) const {
  const core::RefineSpec spec(mode, radius, model);
  const std::shared_ptr<const SegmentStore::View> view = store_->view();
  for (const auto& [begin, end] : selection.ranges) {
    ++result->stats.ranges_scanned;
    for (const auto& segment : view->segments) {
      // Per-segment Hilbert-range pruning before the binary search: a
      // section entirely below min_key or above max_key touches nothing.
      if (segment->empty() || segment->max_key() < begin ||
          (!end.is_zero() && !(segment->min_key() < end))) {
        continue;
      }
      const auto [first, last] = segment->ResolveRange(begin, end);
      if (first < last) {
        core::ScanRecords(query, segment->View(), first, last, spec, result);
      }
    }
  }
  // Memtable post-filter, same wrapped-end membership as the segments.
  for (size_t i = 0; i < memtable_.size(); ++i) {
    if (core::KeyInSelection(memtable_keys_[i], selection.ranges)) {
      core::RefineRecord(query, memtable_, i, spec, result);
    }
  }
}

void SegmentSearcher::ScanSelection(const fp::Fingerprint& query,
                                    const core::BlockSelection& selection,
                                    core::RefinementMode mode, double radius,
                                    const core::DistortionModel* model,
                                    core::QueryResult* result) const {
  ScanStore(query, selection, mode, radius, model, result);
}

core::QueryResult SegmentSearcher::StatQuery(
    const fp::Fingerprint& query, const core::DistortionModel& model,
    const core::QueryOptions& options) const {
  S3VCD_TRACE_SPAN("segment_searcher.query.statistical");
  core::QueryResult result;
  Stopwatch watch;
  const core::BlockSelection selection = filter_.SelectStatistical(
      query, model, options.filter, &core::ThreadLocalSelectionScratch());
  result.stats.selection_ns = watch.ElapsedNanos();
  result.stats.filter_seconds = result.stats.selection_ns * 1e-9;
  result.stats.blocks_selected = selection.num_blocks;
  result.stats.nodes_visited = selection.nodes_visited;
  result.stats.probability_mass = selection.probability_mass;

  watch.Reset();
  ScanStore(query, selection, options.refinement, options.radius, &model,
            &result);
  result.stats.refine_ns = watch.ElapsedNanos();
  result.stats.refine_seconds = result.stats.refine_ns * 1e-9;
  core::RecordQueryMetrics(core::QueryKind::kStatistical, result.stats,
                           result.matches.size());
  return result;
}

core::QueryResult SegmentSearcher::RangeQuery(const fp::Fingerprint& query,
                                              double epsilon,
                                              int depth) const {
  S3VCD_TRACE_SPAN("segment_searcher.query.range");
  core::QueryResult result;
  Stopwatch watch;
  const core::BlockSelection selection = filter_.SelectRange(
      query, epsilon, depth, 1 << 20, 1 << 18,
      &core::ThreadLocalSelectionScratch());
  result.stats.selection_ns = watch.ElapsedNanos();
  result.stats.filter_seconds = result.stats.selection_ns * 1e-9;
  result.stats.blocks_selected = selection.num_blocks;
  result.stats.nodes_visited = selection.nodes_visited;

  watch.Reset();
  ScanStore(query, selection, core::RefinementMode::kRadiusFilter, epsilon,
            nullptr, &result);
  result.stats.refine_ns = watch.ElapsedNanos();
  result.stats.refine_seconds = result.stats.refine_ns * 1e-9;
  core::RecordQueryMetrics(core::QueryKind::kRange, result.stats,
                           result.matches.size());
  return result;
}

core::SearcherStats SegmentSearcher::Stats() const {
  core::SearcherStats stats;
  stats.records = store_->total_records() + memtable_.size();
  stats.pending_inserts = memtable_.size();
  // Report what the store actually holds, not the write-option codec: a
  // reopened quantized store serves quantized segments no matter what new
  // segments would be encoded with. Mixed stores (mid-migration) list
  // every codec present, e.g. "exact+lvq4"; an empty store reports the
  // codec its first spill will use.
  std::set<core::DescriptorCodecKind> kinds;
  for (const auto& segment : store_->view()->segments) {
    kinds.insert(segment->codec_kind());
    stats.codec_max_error =
        std::max(stats.codec_max_error, segment->codec().max_error);
  }
  if (kinds.empty()) {
    stats.codec = core::DescriptorCodecName(store_->options().codec);
  } else {
    stats.codec.clear();
    for (const auto kind : kinds) {
      if (!stats.codec.empty()) stats.codec += '+';
      stats.codec += core::DescriptorCodecName(kind);
    }
  }
  return stats;
}

uint64_t SegmentSearcher::ApproxBytes() const {
  uint64_t bytes =
      memtable_.MemoryBytes() + memtable_keys_.size() * sizeof(BitKey);
  for (const auto& segment : store_->view()->segments) {
    // Mapped segments count their full file: a scan touches every column
    // page, so that is the working-set contribution for capacity planning.
    // Quantized segments store their descriptor column at the codec's code
    // width, so both the mapped and the resident figures here are the
    // codec-compressed footprint, not a decoded size.
    bytes += segment->mapped() ? segment->file_bytes()
                               : segment->resident_bytes();
  }
  return bytes;
}

bool SegmentSearcher::TryInsert(const fp::Fingerprint& fingerprint,
                                uint32_t id, uint32_t time_code, float x,
                                float y) {
  memtable_.Append(fingerprint, id, time_code, x, y);
  uint32_t coords[fp::kDims];
  const int shift = 8 - curve_.order();
  for (int j = 0; j < fp::kDims; ++j) {
    coords[j] = static_cast<uint32_t>(fingerprint[j]) >> shift;
  }
  memtable_keys_.push_back(curve_.Encode(coords));
  g_inserts->Increment();
  g_pending->Set(static_cast<int64_t>(memtable_.size()));
  if (memtable_.size() >= spill_threshold_) {
    const Status status = Spill();
    if (!status.ok()) {
      // The records stay queryable in the memtable; the next spill (or
      // Compact) retries.
      S3VCD_LOG(ERROR) << "segment spill failed: " << status.ToString();
    }
  }
  return true;
}

Status SegmentSearcher::Spill() {
  if (memtable_.empty()) {
    return Status::OK();
  }
  // Sort the memtable by key (stable, so equal-key inserts keep arrival
  // order) and write it out as one tier-0 segment.
  std::vector<size_t> perm(memtable_.size());
  std::iota(perm.begin(), perm.end(), size_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    return memtable_keys_[a] < memtable_keys_[b];
  });
  core::DescriptorBlock sorted;
  sorted.Reserve(perm.size());
  std::vector<BitKey> keys;
  keys.reserve(perm.size());
  for (const size_t i : perm) {
    sorted.AppendRecord(memtable_.Record(i));
    keys.push_back(memtable_keys_[i]);
  }
  S3VCD_RETURN_IF_ERROR(store_->AppendSegment(sorted, keys));
  memtable_.Clear();
  memtable_keys_.clear();
  g_spills->Increment();
  g_pending->Set(0);
  g_segments->Set(static_cast<int64_t>(store_->num_segments()));
  return Status::OK();
}

void SegmentSearcher::Compact() {
  Status status = Spill();
  if (status.ok()) {
    status = store_->CompactAll();
  }
  if (!status.ok()) {
    S3VCD_LOG(ERROR) << "segment compaction failed: " << status.ToString();
  }
  g_segments->Set(static_cast<int64_t>(store_->num_segments()));
}

void EnsureSegmentBackendRegistered() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    core::SearcherRegistry::Global().Register(
        "segment",
        [](core::FingerprintDatabase db, const core::SearcherConfig& config)
            -> std::unique_ptr<core::Searcher> {
          SegmentSearcherOptions options;
          options.store_dir = config.segment_store_dir;
          options.spill_threshold = config.segment_spill_threshold;
          options.store.tier_fanin = config.segment_tier_fanin;
          options.store.use_mmap = config.segment_use_mmap;
          if (!core::DescriptorCodecFromName(config.segment_codec,
                                             &options.store.codec)) {
            S3VCD_LOG(ERROR)
                << "unknown segment codec '" << config.segment_codec
                << "' (expected " << core::DescriptorCodecNamesCsv() << ")";
            return nullptr;
          }
          auto searcher = SegmentSearcher::Open(std::move(db), options);
          if (!searcher.ok()) {
            S3VCD_LOG(ERROR) << "segment backend construction failed: "
                             << searcher.status().ToString();
            return nullptr;
          }
          return std::move(*searcher);
        });
  });
}

}  // namespace s3vcd::store
