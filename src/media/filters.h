#ifndef S3VCD_MEDIA_FILTERS_H_
#define S3VCD_MEDIA_FILTERS_H_

#include <vector>

#include "media/frame.h"

namespace s3vcd::media {

/// Normalized 1-D Gaussian kernel of standard deviation `sigma`, truncated
/// at 3 sigma (radius = ceil(3 sigma), always odd length).
std::vector<float> GaussianKernel1D(double sigma);

/// Separable Gaussian blur with replicate border handling.
Frame GaussianBlur(const Frame& frame, double sigma);

/// Smooths a 1-D signal with a Gaussian kernel (replicate borders); used by
/// the key-frame detector on the intensity-of-motion signal.
std::vector<double> GaussianSmooth1D(const std::vector<double>& signal,
                                     double sigma);

/// The five Gaussian-derivative images used by the paper's local
/// fingerprints: the differential decomposition of the graylevel signal up
/// to second order (Section III).
struct DerivativeImages {
  Frame ix;   ///< dI/dx
  Frame iy;   ///< dI/dy
  Frame ixy;  ///< d2I/dxdy
  Frame ixx;  ///< d2I/dx2
  Frame iyy;  ///< d2I/dy2
};

/// Computes central-difference derivatives of the Gaussian-smoothed frame.
/// `sigma` is the smoothing scale; the returned images have the same size
/// as the input.
DerivativeImages ComputeDerivatives(const Frame& frame, double sigma);

/// First-order derivatives only (cheaper; used by the Harris detector).
void ComputeFirstDerivatives(const Frame& smoothed, Frame* ix, Frame* iy);

}  // namespace s3vcd::media

#endif  // S3VCD_MEDIA_FILTERS_H_
