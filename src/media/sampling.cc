#include "media/sampling.h"

#include <cmath>

#include "util/logging.h"

namespace s3vcd::media {

float BilinearSample(const Frame& frame, double x, double y) {
  const int x0 = static_cast<int>(std::floor(x));
  const int y0 = static_cast<int>(std::floor(y));
  const double fx = x - x0;
  const double fy = y - y0;
  const double top = (1 - fx) * frame.at_clamped(x0, y0) +
                     fx * frame.at_clamped(x0 + 1, y0);
  const double bottom = (1 - fx) * frame.at_clamped(x0, y0 + 1) +
                        fx * frame.at_clamped(x0 + 1, y0 + 1);
  return static_cast<float>((1 - fy) * top + fy * bottom);
}

Frame ResizeBilinear(const Frame& frame, int new_width, int new_height) {
  S3VCD_CHECK(new_width > 0 && new_height > 0);
  Frame out(new_width, new_height);
  // Pixel-center alignment: output center maps to input center.
  const double sx = static_cast<double>(frame.width()) / new_width;
  const double sy = static_cast<double>(frame.height()) / new_height;
  for (int y = 0; y < new_height; ++y) {
    const double src_y = (y + 0.5) * sy - 0.5;
    for (int x = 0; x < new_width; ++x) {
      const double src_x = (x + 0.5) * sx - 0.5;
      out.at(x, y) = BilinearSample(frame, src_x, src_y);
    }
  }
  return out;
}

}  // namespace s3vcd::media
