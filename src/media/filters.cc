#include "media/filters.h"

#include <cmath>

#include "util/logging.h"

namespace s3vcd::media {

std::vector<float> GaussianKernel1D(double sigma) {
  S3VCD_CHECK(sigma > 0);
  const int radius = static_cast<int>(std::ceil(3.0 * sigma));
  std::vector<float> kernel(2 * radius + 1);
  double sum = 0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-0.5 * (i * i) / (sigma * sigma));
    kernel[i + radius] = static_cast<float>(v);
    sum += v;
  }
  for (float& v : kernel) {
    v = static_cast<float>(v / sum);
  }
  return kernel;
}

namespace {

// Convolves horizontally with replicate borders.
Frame ConvolveRows(const Frame& in, const std::vector<float>& kernel) {
  const int radius = static_cast<int>(kernel.size()) / 2;
  Frame out(in.width(), in.height());
  for (int y = 0; y < in.height(); ++y) {
    for (int x = 0; x < in.width(); ++x) {
      float acc = 0;
      for (int k = -radius; k <= radius; ++k) {
        acc += kernel[k + radius] * in.at_clamped(x + k, y);
      }
      out.at(x, y) = acc;
    }
  }
  return out;
}

// Convolves vertically with replicate borders.
Frame ConvolveCols(const Frame& in, const std::vector<float>& kernel) {
  const int radius = static_cast<int>(kernel.size()) / 2;
  Frame out(in.width(), in.height());
  for (int y = 0; y < in.height(); ++y) {
    for (int x = 0; x < in.width(); ++x) {
      float acc = 0;
      for (int k = -radius; k <= radius; ++k) {
        acc += kernel[k + radius] * in.at_clamped(x, y + k);
      }
      out.at(x, y) = acc;
    }
  }
  return out;
}

}  // namespace

Frame GaussianBlur(const Frame& frame, double sigma) {
  const std::vector<float> kernel = GaussianKernel1D(sigma);
  return ConvolveCols(ConvolveRows(frame, kernel), kernel);
}

std::vector<double> GaussianSmooth1D(const std::vector<double>& signal,
                                     double sigma) {
  const std::vector<float> kernel = GaussianKernel1D(sigma);
  const int radius = static_cast<int>(kernel.size()) / 2;
  const int n = static_cast<int>(signal.size());
  std::vector<double> out(signal.size());
  for (int i = 0; i < n; ++i) {
    double acc = 0;
    for (int k = -radius; k <= radius; ++k) {
      const int j = std::clamp(i + k, 0, n - 1);
      acc += kernel[k + radius] * signal[j];
    }
    out[i] = acc;
  }
  return out;
}

DerivativeImages ComputeDerivatives(const Frame& frame, double sigma) {
  const Frame smoothed = GaussianBlur(frame, sigma);
  const int w = frame.width();
  const int h = frame.height();
  DerivativeImages d{Frame(w, h), Frame(w, h), Frame(w, h), Frame(w, h),
                     Frame(w, h)};
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const float c = smoothed.at_clamped(x, y);
      const float xm = smoothed.at_clamped(x - 1, y);
      const float xp = smoothed.at_clamped(x + 1, y);
      const float ym = smoothed.at_clamped(x, y - 1);
      const float yp = smoothed.at_clamped(x, y + 1);
      d.ix.at(x, y) = 0.5f * (xp - xm);
      d.iy.at(x, y) = 0.5f * (yp - ym);
      d.ixx.at(x, y) = xp - 2 * c + xm;
      d.iyy.at(x, y) = yp - 2 * c + ym;
      d.ixy.at(x, y) = 0.25f * (smoothed.at_clamped(x + 1, y + 1) -
                                smoothed.at_clamped(x - 1, y + 1) -
                                smoothed.at_clamped(x + 1, y - 1) +
                                smoothed.at_clamped(x - 1, y - 1));
    }
  }
  return d;
}

void ComputeFirstDerivatives(const Frame& smoothed, Frame* ix, Frame* iy) {
  const int w = smoothed.width();
  const int h = smoothed.height();
  *ix = Frame(w, h);
  *iy = Frame(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      ix->at(x, y) = 0.5f * (smoothed.at_clamped(x + 1, y) -
                             smoothed.at_clamped(x - 1, y));
      iy->at(x, y) = 0.5f * (smoothed.at_clamped(x, y + 1) -
                             smoothed.at_clamped(x, y - 1));
    }
  }
}

}  // namespace s3vcd::media
