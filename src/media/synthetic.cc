#include "media/synthetic.h"

#include <cmath>
#include <vector>

#include "media/sampling.h"
#include "util/logging.h"

namespace s3vcd::media {

Frame ValueNoiseTexture(int width, int height, double cell_size, double mean,
                        double amplitude, Rng* rng) {
  S3VCD_CHECK(cell_size >= 1.0);
  Frame out(width, height, 0.0f);
  // Three octaves of bilinearly interpolated random lattices.
  double octave_cell = cell_size;
  double octave_amp = amplitude;
  double total_amp = 0;
  for (int octave = 0; octave < 3; ++octave) {
    const int gw = static_cast<int>(std::ceil(width / octave_cell)) + 2;
    const int gh = static_cast<int>(std::ceil(height / octave_cell)) + 2;
    Frame lattice(gw, gh);
    for (float& v : lattice.pixels()) {
      v = static_cast<float>(rng->Uniform(-1.0, 1.0));
    }
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        out.at(x, y) += static_cast<float>(
            octave_amp *
            BilinearSample(lattice, x / octave_cell, y / octave_cell));
      }
    }
    total_amp += octave_amp;
    octave_cell = std::max(1.0, octave_cell * 0.5);
    octave_amp *= 0.55;
  }
  // Normalize the amplitude sum and recenter on `mean`.
  const float scale = static_cast<float>(amplitude / total_amp);
  for (float& v : out.pixels()) {
    v = static_cast<float>(mean) + v * scale;
  }
  return out;
}

namespace {

// A moving textured object with a soft elliptical profile.
struct SceneObject {
  double x0;
  double y0;
  double vx;
  double vy;
  double radius;
  double intensity;  // signed brightness offset vs background
  Frame texture;     // small noise patch modulating the object
};

// One shot: a panning background plus moving objects; `motion_phase`
// modulates speeds over time so the intensity-of-motion signal has the
// extrema the key-frame detector looks for.
struct Shot {
  Frame background;  // larger than the frame, cropped with a moving offset
  double pan_dir_x;
  double pan_dir_y;
  std::vector<SceneObject> objects;
  double motion_phase;
  double motion_period;
};

Shot MakeShot(const SyntheticVideoConfig& config, int max_shot_frames,
              Rng* rng) {
  Shot shot;
  const double max_pan = config.pan_speed * max_shot_frames;
  const int margin = static_cast<int>(std::ceil(max_pan)) + 4;
  shot.background =
      ValueNoiseTexture(config.width + 2 * margin, config.height + 2 * margin,
                        config.texture_scale, 128.0, 55.0, rng);
  const double angle = rng->Uniform(0, 2 * M_PI);
  shot.pan_dir_x = std::cos(angle);
  shot.pan_dir_y = std::sin(angle);
  shot.motion_phase = rng->Uniform(0, 2 * M_PI);
  shot.motion_period = rng->Uniform(30.0, 80.0);
  for (int i = 0; i < config.num_objects; ++i) {
    SceneObject obj;
    obj.x0 = rng->Uniform(0.15, 0.85) * config.width;
    obj.y0 = rng->Uniform(0.15, 0.85) * config.height;
    const double speed = rng->Uniform(0.3, 1.0) * config.object_speed;
    const double dir = rng->Uniform(0, 2 * M_PI);
    obj.vx = speed * std::cos(dir);
    obj.vy = speed * std::sin(dir);
    obj.radius = rng->Uniform(0.06, 0.14) * config.height;
    obj.intensity = rng->Uniform(35.0, 75.0) * (rng->Bernoulli(0.5) ? 1 : -1);
    const int tex_size = static_cast<int>(2 * obj.radius) + 2;
    obj.texture = ValueNoiseTexture(tex_size, tex_size,
                                    std::max(2.0, obj.radius / 2.5), 0.0,
                                    30.0, rng);
    shot.objects.push_back(std::move(obj));
  }
  return shot;
}

void RenderFrame(const SyntheticVideoConfig& config, const Shot& shot,
                 int frame_in_shot, int margin, Frame* out) {
  // Motion speed modulation: integrate a raised cosine so motion intensity
  // has smooth maxima and minima within the shot.
  const double t = frame_in_shot;
  const double phase =
      2 * M_PI * t / shot.motion_period + shot.motion_phase;
  const double travel =
      t + 0.8 * shot.motion_period / (2 * M_PI) * std::sin(phase);

  const double off_x = margin + shot.pan_dir_x * config.pan_speed * travel;
  const double off_y = margin + shot.pan_dir_y * config.pan_speed * travel;
  for (int y = 0; y < config.height; ++y) {
    for (int x = 0; x < config.width; ++x) {
      out->at(x, y) = BilinearSample(shot.background, x + off_x, y + off_y);
    }
  }
  for (const SceneObject& obj : shot.objects) {
    const double cx = obj.x0 + obj.vx * travel;
    const double cy = obj.y0 + obj.vy * travel;
    const double r = obj.radius;
    const int x_lo = std::max(0, static_cast<int>(cx - 2 * r));
    const int x_hi = std::min(config.width - 1, static_cast<int>(cx + 2 * r));
    const int y_lo = std::max(0, static_cast<int>(cy - 2 * r));
    const int y_hi = std::min(config.height - 1, static_cast<int>(cy + 2 * r));
    for (int y = y_lo; y <= y_hi; ++y) {
      for (int x = x_lo; x <= x_hi; ++x) {
        const double dx = x - cx;
        const double dy = y - cy;
        const double d2 = (dx * dx + dy * dy) / (r * r);
        if (d2 > 4.0) {
          continue;
        }
        const double alpha = std::exp(-1.2 * d2);
        const double tex =
            BilinearSample(obj.texture, dx + r, dy + r);
        out->at(x, y) += static_cast<float>(alpha * (obj.intensity + tex));
      }
    }
  }
  out->ClampToByteRange();
}

}  // namespace

VideoSequence GenerateSyntheticVideo(const SyntheticVideoConfig& config) {
  S3VCD_CHECK(config.width > 8 && config.height > 8);
  S3VCD_CHECK(config.num_frames > 0);
  Rng rng(config.seed);
  VideoSequence video;
  video.fps = config.fps;
  video.frames.reserve(config.num_frames);

  const int max_shot_frames = 2 * config.mean_shot_length;
  Shot shot = MakeShot(config, max_shot_frames, &rng);
  int shot_length = static_cast<int>(
      rng.UniformInt(config.mean_shot_length / 2,
                     std::max(config.mean_shot_length / 2 + 1,
                              3 * config.mean_shot_length / 2)));
  int frame_in_shot = 0;
  const int margin =
      static_cast<int>(std::ceil(config.pan_speed * max_shot_frames)) + 4;

  for (int f = 0; f < config.num_frames; ++f) {
    if (frame_in_shot >= shot_length || frame_in_shot >= max_shot_frames) {
      shot = MakeShot(config, max_shot_frames, &rng);
      shot_length = static_cast<int>(
          rng.UniformInt(config.mean_shot_length / 2,
                         std::max(config.mean_shot_length / 2 + 1,
                                  3 * config.mean_shot_length / 2)));
      frame_in_shot = 0;
    }
    Frame frame(config.width, config.height);
    RenderFrame(config, shot, frame_in_shot, margin, &frame);
    video.frames.push_back(std::move(frame));
    ++frame_in_shot;
  }
  return video;
}

}  // namespace s3vcd::media
