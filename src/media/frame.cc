#include "media/frame.h"

#include <cmath>

namespace s3vcd::media {

double Frame::Mean() const {
  if (pixels_.empty()) {
    return 0.0;
  }
  double sum = 0;
  for (float v : pixels_) {
    sum += v;
  }
  return sum / static_cast<double>(pixels_.size());
}

double Frame::MeanAbsDifference(const Frame& other) const {
  S3VCD_CHECK(width_ == other.width_ && height_ == other.height_);
  if (pixels_.empty()) {
    return 0.0;
  }
  double sum = 0;
  for (size_t i = 0; i < pixels_.size(); ++i) {
    sum += std::abs(pixels_[i] - other.pixels_[i]);
  }
  return sum / static_cast<double>(pixels_.size());
}

void Frame::ClampToByteRange() {
  for (float& v : pixels_) {
    v = std::clamp(v, 0.0f, 255.0f);
  }
}

}  // namespace s3vcd::media
