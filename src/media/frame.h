#ifndef S3VCD_MEDIA_FRAME_H_
#define S3VCD_MEDIA_FRAME_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace s3vcd::media {

/// A single grayscale video frame. Pixels are stored row-major as floats in
/// the nominal range [0, 255]; intermediate processing may exceed the range
/// and is clamped when a transform requires it.
class Frame {
 public:
  Frame() = default;

  /// Creates a width x height frame filled with `fill`.
  Frame(int width, int height, float fill = 0.0f)
      : width_(width),
        height_(height),
        pixels_(static_cast<size_t>(width) * height, fill) {
    S3VCD_CHECK(width > 0 && height > 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }
  size_t size() const { return pixels_.size(); }

  /// Unchecked pixel access; (x, y) must be inside the frame.
  float at(int x, int y) const {
    S3VCD_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }
  float& at(int x, int y) {
    S3VCD_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }

  /// Pixel access with coordinates clamped to the frame border (replicate
  /// padding); safe for any (x, y).
  float at_clamped(int x, int y) const {
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }

  const std::vector<float>& pixels() const { return pixels_; }
  std::vector<float>& pixels() { return pixels_; }

  /// Mean intensity over all pixels (0 for an empty frame).
  double Mean() const;

  /// Mean absolute difference against another frame of identical size: the
  /// paper's "intensity of motion" building block.
  double MeanAbsDifference(const Frame& other) const;

  /// Clamps every pixel into [0, 255].
  void ClampToByteRange();

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> pixels_;
};

/// A sequence of equally sized frames with a frame rate. Time codes used in
/// the CBCD pipeline are frame indices within the reference sequence.
struct VideoSequence {
  std::vector<Frame> frames;
  double fps = 25.0;

  int num_frames() const { return static_cast<int>(frames.size()); }
  int width() const { return frames.empty() ? 0 : frames[0].width(); }
  int height() const { return frames.empty() ? 0 : frames[0].height(); }
  double duration_seconds() const {
    return fps > 0 ? num_frames() / fps : 0.0;
  }
};

}  // namespace s3vcd::media

#endif  // S3VCD_MEDIA_FRAME_H_
