#ifndef S3VCD_MEDIA_TRANSFORMS_H_
#define S3VCD_MEDIA_TRANSFORMS_H_

#include <string>
#include <vector>

#include "media/frame.h"
#include "util/rng.h"

namespace s3vcd::media {

/// The five kinds of transformations studied in the paper's experiments
/// (Figure 4), i.e. the distortions a pirated/rebroadcast copy may have
/// undergone relative to the referenced original.
enum class TransformType {
  kIdentity,
  kResize,         ///< param = wscale (e.g. 0.75)
  kVerticalShift,  ///< param = wshift, percent of image height (e.g. 30)
  kGamma,          ///< param = wgamma: I' = 255 (I/255)^wgamma
  kContrast,       ///< param = wcontrast: I' = clamp(wcontrast * I)
  kNoise,          ///< param = wnoise: additive N(0, wnoise), clamped
  /// MPEG-style compression artifacts: 8x8 block DCT with
  /// frequency-weighted coefficient quantization (the paper's reference
  /// corpus is MPEG1, so re-encoded copies carry this distortion).
  /// param = quantizer scale (~1 transparent, ~10 strongly blocky).
  kMpegQuantize,
  /// Opaque logo overlay in the top-right corner ("inserting", one of the
  /// frequent TV operations the paper's local fingerprints are designed to
  /// survive). param = logo side as a fraction of the frame height
  /// (e.g. 0.2). Points under the logo are destroyed; the rest survive.
  kLogoOverlay,
  /// Picture-in-picture: the content is shrunk by factor param and
  /// centered over a dark background of the original size (another classic
  /// insertion; a pure similarity on point positions).
  kPictureInPicture,
};

std::string TransformTypeToString(TransformType type);

/// One transformation with its strength parameter.
struct TransformStep {
  TransformType type = TransformType::kIdentity;
  double param = 0.0;
};

/// An ordered chain of transformations applied to a video copy. Supports
/// both applying the distortion to frames and analytically mapping interest
/// point positions from the original into the transformed geometry (the
/// paper's "simulated perfect interest point detector", Section IV-C).
class TransformChain {
 public:
  TransformChain() = default;
  explicit TransformChain(std::vector<TransformStep> steps)
      : steps_(std::move(steps)) {}

  /// Fluent builders.
  static TransformChain Identity() { return TransformChain(); }
  static TransformChain Resize(double wscale);
  static TransformChain VerticalShift(double wshift_percent);
  static TransformChain Gamma(double wgamma);
  static TransformChain Contrast(double wcontrast);
  static TransformChain Noise(double wnoise);
  static TransformChain MpegQuantize(double quantizer_scale);
  static TransformChain LogoOverlay(double size_fraction);
  static TransformChain PictureInPicture(double scale);
  TransformChain& Then(TransformType type, double param);

  const std::vector<TransformStep>& steps() const { return steps_; }
  bool is_identity() const { return steps_.empty(); }

  /// Applies the chain to one frame. `rng` is only consumed by kNoise.
  Frame ApplyToFrame(const Frame& frame, Rng* rng) const;

  /// Applies the chain to every frame of a sequence.
  VideoSequence Apply(const VideoSequence& video, Rng* rng) const;

  /// Maps a point from original-frame coordinates to transformed-frame
  /// coordinates through every geometric step (photometric steps are
  /// identity on positions). `width`/`height` are the original frame size.
  void MapPoint(double x, double y, int width, int height, double* out_x,
                double* out_y) const;

  /// Size of the transformed frame, given the original size.
  void MapSize(int width, int height, int* out_width, int* out_height) const;

  /// e.g. "resize(0.8)+noise(10)".
  std::string ToString() const;

 private:
  std::vector<TransformStep> steps_;
};

/// Applies one step to a frame; exposed for tests.
Frame ApplyTransformStep(const Frame& frame, const TransformStep& step,
                         Rng* rng);

}  // namespace s3vcd::media

#endif  // S3VCD_MEDIA_TRANSFORMS_H_
