#ifndef S3VCD_MEDIA_SAMPLING_H_
#define S3VCD_MEDIA_SAMPLING_H_

#include "media/frame.h"

namespace s3vcd::media {

/// Bilinear interpolation at the continuous position (x, y); coordinates
/// outside the frame are clamped to the border.
float BilinearSample(const Frame& frame, double x, double y);

/// Bilinear resize to new_width x new_height.
Frame ResizeBilinear(const Frame& frame, int new_width, int new_height);

}  // namespace s3vcd::media

#endif  // S3VCD_MEDIA_SAMPLING_H_
