#ifndef S3VCD_MEDIA_SYNTHETIC_H_
#define S3VCD_MEDIA_SYNTHETIC_H_

#include <cstdint>

#include "media/frame.h"
#include "util/rng.h"

namespace s3vcd::media {

/// Parameters of the synthetic TV-like video generator that stands in for
/// the paper's INA SNC archive (see DESIGN.md, substitutions). The content
/// is deterministic in `seed`: textured panning backgrounds, several moving
/// textured objects, and scene cuts — enough structure for the Harris
/// detector and key-frame detector to behave as on natural video.
struct SyntheticVideoConfig {
  int width = 176;
  int height = 144;
  int num_frames = 250;  ///< 10 seconds at 25 fps, the paper's clip length
  double fps = 25.0;
  int num_objects = 4;
  /// Average shot length in frames; cuts re-randomize the scene.
  int mean_shot_length = 70;
  /// Coarse texture cell size in pixels (value-noise lattice spacing).
  double texture_scale = 11.0;
  /// Background pan speed in pixels per frame.
  double pan_speed = 0.8;
  /// Peak object speed in pixels per frame.
  double object_speed = 2.0;
  uint64_t seed = 1;
};

/// Multi-octave value-noise texture: values roughly in [0, 255] with mean
/// `mean` and spread `amplitude`. Exposed for tests and for object textures.
Frame ValueNoiseTexture(int width, int height, double cell_size, double mean,
                        double amplitude, Rng* rng);

/// Generates a deterministic synthetic video clip.
VideoSequence GenerateSyntheticVideo(const SyntheticVideoConfig& config);

}  // namespace s3vcd::media

#endif  // S3VCD_MEDIA_SYNTHETIC_H_
