#include "media/transforms.h"

#include <cmath>
#include <cstdio>

#include "media/sampling.h"
#include "util/logging.h"

namespace s3vcd::media {

std::string TransformTypeToString(TransformType type) {
  switch (type) {
    case TransformType::kIdentity:
      return "identity";
    case TransformType::kResize:
      return "resize";
    case TransformType::kVerticalShift:
      return "shift";
    case TransformType::kGamma:
      return "gamma";
    case TransformType::kContrast:
      return "contrast";
    case TransformType::kNoise:
      return "noise";
    case TransformType::kMpegQuantize:
      return "mpeg";
    case TransformType::kLogoOverlay:
      return "logo";
    case TransformType::kPictureInPicture:
      return "pip";
  }
  return "unknown";
}

TransformChain TransformChain::Resize(double wscale) {
  return TransformChain({{TransformType::kResize, wscale}});
}
TransformChain TransformChain::VerticalShift(double wshift_percent) {
  return TransformChain({{TransformType::kVerticalShift, wshift_percent}});
}
TransformChain TransformChain::Gamma(double wgamma) {
  return TransformChain({{TransformType::kGamma, wgamma}});
}
TransformChain TransformChain::Contrast(double wcontrast) {
  return TransformChain({{TransformType::kContrast, wcontrast}});
}
TransformChain TransformChain::Noise(double wnoise) {
  return TransformChain({{TransformType::kNoise, wnoise}});
}
TransformChain TransformChain::MpegQuantize(double quantizer_scale) {
  return TransformChain({{TransformType::kMpegQuantize, quantizer_scale}});
}
TransformChain TransformChain::LogoOverlay(double size_fraction) {
  return TransformChain({{TransformType::kLogoOverlay, size_fraction}});
}
TransformChain TransformChain::PictureInPicture(double scale) {
  return TransformChain({{TransformType::kPictureInPicture, scale}});
}

TransformChain& TransformChain::Then(TransformType type, double param) {
  steps_.push_back({type, param});
  return *this;
}

namespace {

// 8x8 DCT-II basis, basis_[u][x] = c(u) cos((2x+1) u pi / 16).
struct DctBasis {
  float b[8][8];
  DctBasis() {
    for (int u = 0; u < 8; ++u) {
      const double cu = (u == 0) ? std::sqrt(0.125) : 0.5;
      for (int x = 0; x < 8; ++x) {
        b[u][x] = static_cast<float>(
            cu * std::cos((2 * x + 1) * u * M_PI / 16.0));
      }
    }
  }
};

const DctBasis& Basis() {
  static const DctBasis kBasis;
  return kBasis;
}

// Quantizes one 8x8 block in place: forward DCT, frequency-weighted
// uniform quantization, inverse DCT. `block` is row-major with replicate
// padding already applied by the caller.
void QuantizeBlock(float block[8][8], double quantizer_scale) {
  const DctBasis& basis = Basis();
  float coeff[8][8];
  // Separable forward DCT: rows then columns.
  float tmp[8][8];
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float acc = 0;
      for (int x = 0; x < 8; ++x) {
        acc += block[y][x] * basis.b[u][x];
      }
      tmp[y][u] = acc;
    }
  }
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      float acc = 0;
      for (int y = 0; y < 8; ++y) {
        acc += tmp[y][u] * basis.b[v][y];
      }
      coeff[v][u] = acc;
    }
  }
  // Frequency-weighted quantization, MPEG-flavored: the step grows with
  // the coefficient frequency (u + v).
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      const double step = quantizer_scale * (2.0 + u + v);
      coeff[v][u] = static_cast<float>(
          std::round(coeff[v][u] / step) * step);
    }
  }
  // Inverse DCT (transpose of the orthonormal forward).
  for (int v = 0; v < 8; ++v) {
    for (int x = 0; x < 8; ++x) {
      float acc = 0;
      for (int u = 0; u < 8; ++u) {
        acc += coeff[v][u] * basis.b[u][x];
      }
      tmp[v][x] = acc;
    }
  }
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      float acc = 0;
      for (int v = 0; v < 8; ++v) {
        acc += tmp[v][x] * basis.b[v][y];
      }
      block[y][x] = acc;
    }
  }
}

Frame MpegQuantizeFrame(const Frame& frame, double quantizer_scale) {
  Frame out(frame.width(), frame.height());
  float block[8][8];
  for (int by = 0; by < frame.height(); by += 8) {
    for (int bx = 0; bx < frame.width(); bx += 8) {
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          block[y][x] = frame.at_clamped(bx + x, by + y);
        }
      }
      QuantizeBlock(block, quantizer_scale);
      for (int y = 0; y < 8 && by + y < frame.height(); ++y) {
        for (int x = 0; x < 8 && bx + x < frame.width(); ++x) {
          out.at(bx + x, by + y) = std::clamp(block[y][x], 0.0f, 255.0f);
        }
      }
    }
  }
  return out;
}

}  // namespace

Frame ApplyTransformStep(const Frame& frame, const TransformStep& step,
                         Rng* rng) {
  switch (step.type) {
    case TransformType::kIdentity:
      return frame;
    case TransformType::kResize: {
      S3VCD_CHECK(step.param > 0);
      const int nw =
          std::max(1, static_cast<int>(std::lround(frame.width() * step.param)));
      const int nh = std::max(
          1, static_cast<int>(std::lround(frame.height() * step.param)));
      return ResizeBilinear(frame, nw, nh);
    }
    case TransformType::kVerticalShift: {
      const int shift =
          static_cast<int>(std::lround(frame.height() * step.param / 100.0));
      Frame out(frame.width(), frame.height(), 0.0f);
      for (int y = 0; y < frame.height(); ++y) {
        const int src_y = y - shift;
        if (src_y < 0 || src_y >= frame.height()) {
          continue;  // black fill where the shift exposed the border
        }
        for (int x = 0; x < frame.width(); ++x) {
          out.at(x, y) = frame.at(x, src_y);
        }
      }
      return out;
    }
    case TransformType::kGamma: {
      S3VCD_CHECK(step.param > 0);
      Frame out = frame;
      for (float& v : out.pixels()) {
        const double normalized = std::clamp(v / 255.0f, 0.0f, 1.0f);
        v = static_cast<float>(255.0 * std::pow(normalized, step.param));
      }
      return out;
    }
    case TransformType::kContrast: {
      Frame out = frame;
      for (float& v : out.pixels()) {
        v = std::clamp(static_cast<float>(step.param) * v, 0.0f, 255.0f);
      }
      return out;
    }
    case TransformType::kMpegQuantize: {
      S3VCD_CHECK(step.param > 0);
      return MpegQuantizeFrame(frame, step.param);
    }
    case TransformType::kLogoOverlay: {
      S3VCD_CHECK(step.param > 0 && step.param < 1);
      Frame out = frame;
      const int side =
          std::max(1, static_cast<int>(std::lround(frame.height() *
                                                   step.param)));
      const int x0 = frame.width() - side - 2;
      const int y0 = 2;
      for (int y = y0; y < y0 + side && y < frame.height(); ++y) {
        for (int x = std::max(0, x0); x < x0 + side && x < frame.width();
             ++x) {
          // A high-contrast synthetic "logo": bright frame, dark interior.
          const bool border = (y - y0 < 2) || (y0 + side - 1 - y < 2) ||
                              (x - x0 < 2) || (x0 + side - 1 - x < 2);
          out.at(x, y) = border ? 250.0f : 40.0f;
        }
      }
      return out;
    }
    case TransformType::kPictureInPicture: {
      S3VCD_CHECK(step.param > 0 && step.param <= 1);
      const int inner_w =
          std::max(1, static_cast<int>(std::lround(frame.width() *
                                                   step.param)));
      const int inner_h =
          std::max(1, static_cast<int>(std::lround(frame.height() *
                                                   step.param)));
      const Frame inner = ResizeBilinear(frame, inner_w, inner_h);
      Frame out(frame.width(), frame.height(), 16.0f);  // dark background
      const int x0 = (frame.width() - inner_w) / 2;
      const int y0 = (frame.height() - inner_h) / 2;
      for (int y = 0; y < inner_h; ++y) {
        for (int x = 0; x < inner_w; ++x) {
          out.at(x0 + x, y0 + y) = inner.at(x, y);
        }
      }
      return out;
    }
    case TransformType::kNoise: {
      S3VCD_CHECK(rng != nullptr);
      Frame out = frame;
      for (float& v : out.pixels()) {
        v = std::clamp(
            v + static_cast<float>(rng->Gaussian(0.0, step.param)), 0.0f,
            255.0f);
      }
      return out;
    }
  }
  return frame;
}

Frame TransformChain::ApplyToFrame(const Frame& frame, Rng* rng) const {
  Frame out = frame;
  for (const TransformStep& step : steps_) {
    out = ApplyTransformStep(out, step, rng);
  }
  return out;
}

VideoSequence TransformChain::Apply(const VideoSequence& video,
                                    Rng* rng) const {
  VideoSequence out;
  out.fps = video.fps;
  out.frames.reserve(video.frames.size());
  for (const Frame& frame : video.frames) {
    out.frames.push_back(ApplyToFrame(frame, rng));
  }
  return out;
}

void TransformChain::MapPoint(double x, double y, int width, int height,
                              double* out_x, double* out_y) const {
  double cx = x;
  double cy = y;
  int w = width;
  int h = height;
  for (const TransformStep& step : steps_) {
    switch (step.type) {
      case TransformType::kResize: {
        const int nw =
            std::max(1, static_cast<int>(std::lround(w * step.param)));
        const int nh =
            std::max(1, static_cast<int>(std::lround(h * step.param)));
        // Matches ResizeBilinear's pixel-center alignment.
        cx = (cx + 0.5) * nw / w - 0.5;
        cy = (cy + 0.5) * nh / h - 0.5;
        w = nw;
        h = nh;
        break;
      }
      case TransformType::kVerticalShift: {
        const int shift =
            static_cast<int>(std::lround(h * step.param / 100.0));
        cy += shift;
        break;
      }
      case TransformType::kPictureInPicture: {
        const int inner_w =
            std::max(1, static_cast<int>(std::lround(w * step.param)));
        const int inner_h =
            std::max(1, static_cast<int>(std::lround(h * step.param)));
        // The inner picture is a resize followed by a centered paste.
        cx = (cx + 0.5) * inner_w / w - 0.5 + (w - inner_w) / 2;
        cy = (cy + 0.5) * inner_h / h - 0.5 + (h - inner_h) / 2;
        break;
      }
      default:
        break;  // photometric steps do not move points
    }
  }
  *out_x = cx;
  *out_y = cy;
}

void TransformChain::MapSize(int width, int height, int* out_width,
                             int* out_height) const {
  int w = width;
  int h = height;
  for (const TransformStep& step : steps_) {
    if (step.type == TransformType::kResize) {
      w = std::max(1, static_cast<int>(std::lround(w * step.param)));
      h = std::max(1, static_cast<int>(std::lround(h * step.param)));
    }
  }
  *out_width = w;
  *out_height = h;
}

std::string TransformChain::ToString() const {
  if (steps_.empty()) {
    return "identity";
  }
  std::string out;
  char buf[64];
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (i != 0) {
      out += "+";
    }
    std::snprintf(buf, sizeof(buf), "%s(%g)",
                  TransformTypeToString(steps_[i].type).c_str(),
                  steps_[i].param);
    out += buf;
  }
  return out;
}

}  // namespace s3vcd::media
