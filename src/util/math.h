#ifndef S3VCD_UTIL_MATH_H_
#define S3VCD_UTIL_MATH_H_

#include <cstdint>

namespace s3vcd {

/// Probability density of N(mean, sigma) at x. sigma > 0.
double GaussianPdf(double x, double mean, double sigma);

/// Cumulative distribution of N(mean, sigma) at x. sigma > 0.
double GaussianCdf(double x, double mean, double sigma);

/// Probability that a N(mean, sigma) variate falls in [lo, hi].
double GaussianMass(double lo, double hi, double mean, double sigma);

/// Regularized lower incomplete gamma function P(a, x) = gamma(a, x) /
/// Gamma(a), for a > 0, x >= 0. Accurate to ~1e-12 (series expansion for
/// x < a + 1, continued fraction otherwise).
double RegularizedGammaP(double a, double x);

/// Distribution of the L2 norm of a D-dimensional vector whose components
/// are i.i.d. N(0, sigma): a scaled chi distribution. This is the
/// p_{||Delta S||}(r) of the paper (Section V-A), used to pick the eps-range
/// radius with the same expectation alpha as a statistical query.
class ChiNormDistribution {
 public:
  /// dims >= 1, sigma > 0.
  ChiNormDistribution(int dims, double sigma);

  /// Density at radius r (0 for r < 0).
  double Pdf(double r) const;

  /// P(||Delta S|| <= r).
  double Cdf(double r) const;

  /// Smallest r with Cdf(r) >= alpha, alpha in (0, 1). Solved by bisection;
  /// accurate to ~1e-9 relative.
  double Quantile(double alpha) const;

  /// Mean of the distribution: sigma * sqrt(2) * Gamma((D+1)/2) / Gamma(D/2).
  double Mean() const;

  int dims() const { return dims_; }
  double sigma() const { return sigma_; }

 private:
  int dims_;
  double sigma_;
  double log_norm_;  // log of the pdf normalization constant
};

/// Density at radius r of the distance from the center for points uniformly
/// distributed in a D-dimensional ball of radius `radius`:
/// p(r) = D * r^(D-1) / radius^D for r in [0, radius]. This is the
/// "spherical uniform distribution" curve of the paper's Figure 1.
double UniformBallRadiusPdf(double r, int dims, double radius);

/// Rounds up to the next power of two (returns 1 for 0).
uint64_t NextPowerOfTwo(uint64_t v);

/// Integer log2 of a power of two.
int Log2Exact(uint64_t pow2);

}  // namespace s3vcd

#endif  // S3VCD_UTIL_MATH_H_
