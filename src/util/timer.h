#ifndef S3VCD_UTIL_TIMER_H_
#define S3VCD_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace s3vcd {

/// Monotonic wall-clock stopwatch. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  /// Integer nanoseconds, for counters that must survive aggregation of
  /// many sub-microsecond intervals (e.g. the selection/refine split).
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates the total of several timed intervals, e.g. per-query search
/// time summed over a batch.
class TimeAccumulator {
 public:
  /// Adds `seconds` to the total and bumps the event count.
  void Add(double seconds) {
    total_seconds_ += seconds;
    ++count_;
  }

  double total_seconds() const { return total_seconds_; }
  uint64_t count() const { return count_; }

  /// Average per event in milliseconds (0 when empty).
  double AverageMillis() const {
    return count_ == 0 ? 0.0 : total_seconds_ * 1e3 / count_;
  }

 private:
  double total_seconds_ = 0.0;
  uint64_t count_ = 0;
};

}  // namespace s3vcd

#endif  // S3VCD_UTIL_TIMER_H_
