#include "util/table.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace s3vcd {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::AddRow() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::Add(std::string cell) {
  assert(!rows_.empty());
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::Add(const char* cell) { return Add(std::string(cell)); }

Table& Table::Add(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return Add(std::string(buf));
}

Table& Table::Add(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return Add(std::string(buf));
}

Table& Table::Add(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return Add(std::string(buf));
}

std::string Table::ToText() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (row[c].size() > widths[c]) {
        widths[c] = row[c].size();
      }
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += "| ";
      line += cell;
      line.append(widths[c] - cell.size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += "|";
    rule.append(widths[c] + 2, '-');
  }
  rule += "|\n";
  out += rule;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        out += ',';
      }
      out += row[c];
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) {
    append_row(row);
  }
  return out;
}

void Table::Print(const std::string& name) const {
  std::printf("%s", ToText().c_str());
  std::printf("# CSV %s begin\n%s# CSV %s end\n", name.c_str(),
              ToCsv().c_str(), name.c_str());
  std::fflush(stdout);
}

}  // namespace s3vcd
