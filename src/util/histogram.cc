#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace s3vcd {

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / bins),
      counts_(bins, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::Add(double value) {
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  int bin = static_cast<int>((value - lo_) / width_);
  bin = std::min(bin, num_bins() - 1);  // guard rounding at the top edge
  ++counts_[bin];
}

double Histogram::Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

double Histogram::StdDev() const {
  if (count_ < 2) {
    return 0.0;
  }
  const double mean = Mean();
  const double var =
      (sum_sq_ - count_ * mean * mean) / static_cast<double>(count_ - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

double Histogram::bin_center(int i) const { return lo_ + (i + 0.5) * width_; }

double Histogram::Density(int i) const {
  if (count_ == 0) {
    return 0.0;
  }
  return static_cast<double>(counts_[i]) /
         (static_cast<double>(count_) * width_);
}

double Histogram::Quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (count_ == 0) {
    return lo_;
  }
  const double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) {
    return lo_;
  }
  for (int i = 0; i < num_bins(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (i + frac) * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToAscii(int max_width) const {
  uint64_t peak = 0;
  for (uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char line[160];
  for (int i = 0; i < num_bins(); ++i) {
    const int bar =
        peak == 0 ? 0
                  : static_cast<int>(static_cast<double>(counts_[i]) *
                                     max_width / static_cast<double>(peak));
    std::snprintf(line, sizeof(line), "%10.3f | ", bin_center(i));
    out += line;
    out.append(static_cast<size_t>(bar), '#');
    std::snprintf(line, sizeof(line), " %llu\n",
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

}  // namespace s3vcd
