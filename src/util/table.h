#ifndef S3VCD_UTIL_TABLE_H_
#define S3VCD_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace s3vcd {

/// Small helper that collects rows of strings/numbers and renders them both
/// as an aligned text table (human-readable bench output) and as CSV (for
/// replotting the paper's figures).
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Subsequent Add* calls fill it left to right.
  Table& AddRow();
  Table& Add(std::string cell);
  Table& Add(const char* cell);
  /// Formats with %g-style shortest representation, `digits` significant.
  Table& Add(double value, int digits = 6);
  Table& Add(int64_t value);
  Table& Add(uint64_t value);
  Table& Add(int value) { return Add(static_cast<int64_t>(value)); }

  size_t num_rows() const { return rows_.size(); }

  /// Aligned, pipe-separated rendering with a header underline.
  std::string ToText() const;

  /// RFC-ish CSV (no quoting needed for our numeric content).
  std::string ToCsv() const;

  /// Prints ToText() to stdout, then the CSV block bracketed by
  /// "# CSV <name>" markers so downstream scripts can extract it.
  void Print(const std::string& name) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace s3vcd

#endif  // S3VCD_UTIL_TABLE_H_
