#include "util/rng.h"

#include <cassert>
#include <numeric>

namespace s3vcd {

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected insertions, no O(n) shuffle.
  std::vector<size_t> out;
  out.reserve(k);
  std::vector<bool> taken;
  if (k * 4 >= n) {
    // Dense case: partial Fisher-Yates over an index array.
    std::vector<size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    for (size_t i = 0; i < k; ++i) {
      const size_t j =
          i + static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n - i - 1)));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  taken.assign(n, false);
  for (size_t j = n - k; j < n; ++j) {
    const size_t t =
        static_cast<size_t>(UniformInt(0, static_cast<int64_t>(j)));
    if (!taken[t]) {
      taken[t] = true;
      out.push_back(t);
    } else {
      taken[j] = true;
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace s3vcd
