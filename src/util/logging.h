#ifndef S3VCD_UTIL_LOGGING_H_
#define S3VCD_UTIL_LOGGING_H_

#include <cstdlib>

#include "obs/log.h"
#include "util/status.h"

namespace s3vcd::internal {

/// CHECK failures go through the obs logger's FATAL path so they carry a
/// timestamp, thread id and source location like every other log line.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  {
    obs::LogMessage message(obs::LogLevel::kFATAL, file, line);
    message.stream() << "CHECK failed: " << expr;
  }  // the FATAL LogMessage aborts in its destructor
  std::abort();
}

[[noreturn]] inline void CheckOkFailed(const char* file, int line,
                                       const char* expr,
                                       const Status& status) {
  {
    obs::LogMessage message(obs::LogLevel::kFATAL, file, line);
    message.stream() << "CHECK_OK failed: " << expr << " -> "
                     << status.ToString();
  }
  std::abort();
}

}  // namespace s3vcd::internal

/// Invariant check that stays active in release builds; used for conditions
/// whose violation means memory corruption or an unusable index, where
/// continuing would produce silently wrong search results.
#define S3VCD_CHECK(expr)                                          \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::s3vcd::internal::CheckFailed(__FILE__, __LINE__, #expr);   \
    }                                                              \
  } while (false)

/// Aborts when a Status-returning expression fails, logging the status.
/// For call sites where an error is a programming bug, not an I/O outcome.
#define S3VCD_CHECK_OK(expr)                                          \
  do {                                                                \
    const ::s3vcd::Status s3vcd_check_ok_status_ = (expr);            \
    if (!s3vcd_check_ok_status_.ok()) {                               \
      ::s3vcd::internal::CheckOkFailed(__FILE__, __LINE__, #expr,     \
                                       s3vcd_check_ok_status_);       \
    }                                                                 \
  } while (false)

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define S3VCD_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define S3VCD_DCHECK(expr) S3VCD_CHECK(expr)
#endif

#endif  // S3VCD_UTIL_LOGGING_H_
