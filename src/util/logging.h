#ifndef S3VCD_UTIL_LOGGING_H_
#define S3VCD_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace s3vcd::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace s3vcd::internal

/// Invariant check that stays active in release builds; used for conditions
/// whose violation means memory corruption or an unusable index, where
/// continuing would produce silently wrong search results.
#define S3VCD_CHECK(expr)                                          \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::s3vcd::internal::CheckFailed(__FILE__, __LINE__, #expr);   \
    }                                                              \
  } while (false)

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define S3VCD_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define S3VCD_DCHECK(expr) S3VCD_CHECK(expr)
#endif

#endif  // S3VCD_UTIL_LOGGING_H_
