#ifndef S3VCD_UTIL_IO_H_
#define S3VCD_UTIL_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace s3vcd {

/// CRC-32 (IEEE polynomial, reflected) of `data`; `seed` allows chaining.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Buffered sequential writer for the little-endian binary formats used by
/// the fingerprint database file. Keeps a running CRC of everything written
/// so the file can embed an integrity checksum.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  /// Opens (truncates) `path` for writing.
  Status Open(const std::string& path);

  Status WriteBytes(const void* data, size_t size);
  Status WriteU32(uint32_t v);
  Status WriteU64(uint64_t v);
  Status WriteDouble(double v);
  /// Length-prefixed (u32) byte string.
  Status WriteString(const std::string& s);

  /// CRC-32 of all bytes written so far.
  uint32_t crc() const { return crc_; }
  uint64_t bytes_written() const { return bytes_written_; }

  /// Flushes userspace buffers and fsyncs the file to stable storage.
  /// Call before Close when the file must survive a crash (note that
  /// durability of the *name* additionally needs SyncDir on the parent).
  Status Sync();

  /// Flushes and closes; returns any deferred I/O error.
  Status Close();

 private:
  std::FILE* file_ = nullptr;
  uint32_t crc_ = 0;
  uint64_t bytes_written_ = 0;
};

/// Sequential/positional reader mirroring BinaryWriter.
class BinaryReader {
 public:
  BinaryReader() = default;
  ~BinaryReader();

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  Status Open(const std::string& path);

  Status ReadBytes(void* data, size_t size);
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadDouble(double* v);
  Status ReadString(std::string* s);

  /// Absolute seek from the start of the file.
  Status Seek(uint64_t offset);
  /// Total file size in bytes.
  Result<uint64_t> Size();

  /// CRC-32 of all bytes read so far through the Read* calls (reset by
  /// Seek so ranged verification is possible).
  uint32_t crc() const { return crc_; }
  void ResetCrc() { crc_ = 0; }

  Status Close();

 private:
  std::FILE* file_ = nullptr;
  uint32_t crc_ = 0;
};

/// Reads a whole file into a byte vector.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

/// fsyncs a directory so renames/creates/unlinks inside it are durable
/// (the second half of the write-fsync-rename-fsyncdir pattern).
Status SyncDir(const std::string& dir_path);

/// The directory component of `path` ("." when there is no slash).
std::string DirName(const std::string& path);

}  // namespace s3vcd

#endif  // S3VCD_UTIL_IO_H_
