#ifndef S3VCD_UTIL_RNG_H_
#define S3VCD_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace s3vcd {

/// Deterministic random number generator used everywhere in the library so
/// that experiments and tests are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled: N(mean, sigma).
  double Gaussian(double mean, double sigma) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Picks k distinct indices uniformly from [0, n). k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; convenient for giving each
  /// subsystem its own stream from one master seed.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace s3vcd

#endif  // S3VCD_UTIL_RNG_H_
