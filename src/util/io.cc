#include "util/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstring>

namespace s3vcd {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  return kTable;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const auto& table = CrcTable();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status BinaryWriter::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("writer already open");
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open for write: " + path);
  }
  crc_ = 0;
  bytes_written_ = 0;
  return Status::OK();
}

Status BinaryWriter::WriteBytes(const void* data, size_t size) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("writer not open");
  }
  if (size != 0 && std::fwrite(data, 1, size, file_) != size) {
    return Status::IOError("short write");
  }
  crc_ = Crc32(data, size, crc_);
  bytes_written_ += size;
  return Status::OK();
}

Status BinaryWriter::WriteU32(uint32_t v) { return WriteBytes(&v, sizeof(v)); }
Status BinaryWriter::WriteU64(uint64_t v) { return WriteBytes(&v, sizeof(v)); }
Status BinaryWriter::WriteDouble(double v) { return WriteBytes(&v, sizeof(v)); }

Status BinaryWriter::WriteString(const std::string& s) {
  S3VCD_RETURN_IF_ERROR(WriteU32(static_cast<uint32_t>(s.size())));
  return WriteBytes(s.data(), s.size());
}

Status BinaryWriter::Sync() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("writer not open");
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush failed");
  }
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError("fsync failed");
  }
  return Status::OK();
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) {
    return Status::OK();
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    return Status::IOError("close failed");
  }
  return Status::OK();
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status BinaryReader::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("reader already open");
  }
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  crc_ = 0;
  return Status::OK();
}

Status BinaryReader::ReadBytes(void* data, size_t size) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("reader not open");
  }
  if (size != 0 && std::fread(data, 1, size, file_) != size) {
    return Status::IOError("short read (truncated or corrupt file)");
  }
  crc_ = Crc32(data, size, crc_);
  return Status::OK();
}

Status BinaryReader::ReadU32(uint32_t* v) { return ReadBytes(v, sizeof(*v)); }
Status BinaryReader::ReadU64(uint64_t* v) { return ReadBytes(v, sizeof(*v)); }
Status BinaryReader::ReadDouble(double* v) { return ReadBytes(v, sizeof(*v)); }

Status BinaryReader::ReadString(std::string* s) {
  uint32_t len = 0;
  S3VCD_RETURN_IF_ERROR(ReadU32(&len));
  if (len > (1u << 30)) {
    return Status::Corruption("unreasonable string length");
  }
  s->resize(len);
  return ReadBytes(s->data(), len);
}

Status BinaryReader::Seek(uint64_t offset) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("reader not open");
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  crc_ = 0;
  return Status::OK();
}

Result<uint64_t> BinaryReader::Size() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("reader not open");
  }
  const long pos = std::ftell(file_);
  if (pos < 0 || std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IOError("size query failed");
  }
  const long end = std::ftell(file_);
  if (end < 0 || std::fseek(file_, pos, SEEK_SET) != 0) {
    return Status::IOError("size query failed");
  }
  return static_cast<uint64_t>(end);
}

Status BinaryReader::Close() {
  if (file_ == nullptr) {
    return Status::OK();
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    return Status::IOError("close failed");
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir_path) {
  const int fd = ::open(dir_path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("cannot open directory for sync: " + dir_path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("directory fsync failed: " + dir_path);
  }
  return Status::OK();
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  BinaryReader reader;
  S3VCD_RETURN_IF_ERROR(reader.Open(path));
  S3VCD_ASSIGN_OR_RETURN(const uint64_t size, reader.Size());
  std::vector<uint8_t> bytes(size);
  S3VCD_RETURN_IF_ERROR(reader.ReadBytes(bytes.data(), bytes.size()));
  S3VCD_RETURN_IF_ERROR(reader.Close());
  return bytes;
}

}  // namespace s3vcd
