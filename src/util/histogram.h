#ifndef S3VCD_UTIL_HISTOGRAM_H_
#define S3VCD_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace s3vcd {

/// Fixed-range, equal-width histogram with running moments. Used to estimate
/// the empirical distortion distributions of the paper (Figure 1) and to
/// summarize timing data.
class Histogram {
 public:
  /// Bins the range [lo, hi) into `bins` equal cells; values outside the
  /// range are counted in underflow/overflow.
  Histogram(double lo, double hi, int bins);

  void Add(double value);

  /// Number of values added (including under/overflow).
  uint64_t count() const { return count_; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }

  double Mean() const;
  /// Unbiased sample standard deviation (0 when count < 2).
  double StdDev() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

  int num_bins() const { return static_cast<int>(counts_.size()); }
  uint64_t bin_count(int i) const { return counts_[i]; }
  /// Center of bin i.
  double bin_center(int i) const;
  double bin_width() const { return width_; }

  /// Empirical density at bin i: count / (total * bin_width); comparable to
  /// a pdf so it can be printed next to model curves.
  double Density(int i) const;

  /// Approximate quantile from the binned counts, q in [0,1].
  double Quantile(double q) const;

  /// Multi-line ASCII rendering (for example programs).
  std::string ToAscii(int max_width = 60) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_;
  double max_;
};

}  // namespace s3vcd

#endif  // S3VCD_UTIL_HISTOGRAM_H_
