#ifndef S3VCD_UTIL_THREAD_POOL_H_
#define S3VCD_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace s3vcd {

/// A fixed-size worker pool for read-only fan-out work (batch queries over
/// an immutable index). Tasks are plain callables; exceptions must not
/// escape them (the library is exception-free by convention).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Process-wide count of ThreadPool constructions (also mirrored in the
  /// thread_pool.pools_created metric). Timing-independent observable for
  /// pool-reuse regression tests: a code path that reuses a shared pool
  /// leaves this counter unchanged across calls.
  static uint64_t TotalPoolsCreated();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace s3vcd

#endif  // S3VCD_UTIL_THREAD_POOL_H_
