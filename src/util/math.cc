#include "util/math.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace s3vcd {

namespace {

constexpr double kSqrt2 = 1.4142135623730951;
constexpr int kMaxIterations = 400;
constexpr double kEps = 1e-15;

// glibc's lgamma writes the global `signgam`, which is a data race when
// distributions are constructed concurrently (e.g. per-shard fallback
// queries). All arguments here are positive, where Gamma > 0, so the
// sign output of the reentrant variant can be discarded.
double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

// Lower incomplete gamma via its power series; converges fast for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEps) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Upper incomplete gamma Q(a, x) via Lentz continued fraction; converges
// fast for x > a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = std::numeric_limits<double>::min() / kEps;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEps) {
      break;
    }
  }
  return h * std::exp(-x + a * std::log(x) - LogGamma(a));
}

}  // namespace

double GaussianPdf(double x, double mean, double sigma) {
  assert(sigma > 0);
  const double z = (x - mean) / sigma;
  return std::exp(-0.5 * z * z) / (sigma * std::sqrt(2.0 * M_PI));
}

double GaussianCdf(double x, double mean, double sigma) {
  assert(sigma > 0);
  return 0.5 * std::erfc(-(x - mean) / (sigma * kSqrt2));
}

double GaussianMass(double lo, double hi, double mean, double sigma) {
  if (hi <= lo) {
    return 0.0;
  }
  return GaussianCdf(hi, mean, sigma) - GaussianCdf(lo, mean, sigma);
}

double RegularizedGammaP(double a, double x) {
  assert(a > 0);
  assert(x >= 0);
  if (x == 0.0) {
    return 0.0;
  }
  if (x < a + 1.0) {
    return GammaPSeries(a, x);
  }
  return 1.0 - GammaQContinuedFraction(a, x);
}

ChiNormDistribution::ChiNormDistribution(int dims, double sigma)
    : dims_(dims), sigma_(sigma) {
  assert(dims >= 1);
  assert(sigma > 0);
  // pdf(r) = r^(D-1) exp(-r^2 / (2 sigma^2)) / (2^(D/2 - 1) Gamma(D/2) sigma^D)
  log_norm_ = -(0.5 * dims_ - 1.0) * std::log(2.0) -
              LogGamma(0.5 * dims_) - dims_ * std::log(sigma_);
}

double ChiNormDistribution::Pdf(double r) const {
  if (r < 0) {
    return 0.0;
  }
  if (r == 0) {
    return dims_ == 1 ? std::exp(log_norm_) : 0.0;
  }
  const double z = r / sigma_;
  return std::exp(log_norm_ + (dims_ - 1) * std::log(r) - 0.5 * z * z);
}

double ChiNormDistribution::Cdf(double r) const {
  if (r <= 0) {
    return 0.0;
  }
  const double z = r / sigma_;
  return RegularizedGammaP(0.5 * dims_, 0.5 * z * z);
}

double ChiNormDistribution::Quantile(double alpha) const {
  assert(alpha > 0 && alpha < 1);
  // Bracket: mean +- a generous multiple of the sd; expand upper as needed.
  double lo = 0.0;
  double hi = sigma_ * (std::sqrt(static_cast<double>(dims_)) + 10.0);
  while (Cdf(hi) < alpha) {
    hi *= 2.0;
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (Cdf(mid) < alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-10 * (1.0 + hi)) {
      break;
    }
  }
  return 0.5 * (lo + hi);
}

double ChiNormDistribution::Mean() const {
  return sigma_ * kSqrt2 *
         std::exp(LogGamma(0.5 * (dims_ + 1)) - LogGamma(0.5 * dims_));
}

double UniformBallRadiusPdf(double r, int dims, double radius) {
  assert(dims >= 1);
  assert(radius > 0);
  if (r < 0 || r > radius) {
    return 0.0;
  }
  return dims * std::pow(r / radius, dims - 1) / radius;
}

uint64_t NextPowerOfTwo(uint64_t v) {
  if (v <= 1) {
    return 1;
  }
  return uint64_t{1} << (64 - __builtin_clzll(v - 1));
}

int Log2Exact(uint64_t pow2) {
  assert(pow2 != 0 && (pow2 & (pow2 - 1)) == 0);
  return 63 - __builtin_clzll(pow2);
}

}  // namespace s3vcd
