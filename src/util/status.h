#ifndef S3VCD_UTIL_STATUS_H_
#define S3VCD_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace s3vcd {

/// Canonical error space used across the library. The library does not throw
/// exceptions; every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kCorruption,
  kUnimplemented,
  kInternal,
  /// Transient overload: the caller may retry later (admission-queue
  /// backpressure in the query service).
  kUnavailable,
  /// The request's deadline elapsed before (or during) execution.
  kDeadlineExceeded,
  /// A per-client budget (token-bucket quota in the query service) is
  /// spent. Unlike kUnavailable this is not a global-overload signal: the
  /// caller must slow down, not merely retry after a drain.
  kResourceExhausted,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type carrying success or an error code plus message.
///
/// The OK status carries no allocation. Statuses are copyable and movable;
/// prefer returning them by value.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor (or OK()) for success.
  Status(StatusCode code, std::string_view message)
      : code_(code), message_(message) {
    assert(code != StatusCode::kOk);
  }

  /// Named constructors, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(StatusCode::kDeadlineExceeded, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogous to absl::StatusOr.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value (success case).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit conversion from an error status. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }

  /// The carried status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Value accessors; require ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK when value_ holds a value.
  std::optional<T> value_;
};

}  // namespace s3vcd

/// Propagates an error Status from the current function.
#define S3VCD_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::s3vcd::Status s3vcd_status_tmp_ = (expr);     \
    if (!s3vcd_status_tmp_.ok()) {                  \
      return s3vcd_status_tmp_;                     \
    }                                               \
  } while (false)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise assigns the value to `lhs` (which may include a declaration).
#define S3VCD_ASSIGN_OR_RETURN(lhs, expr)                       \
  S3VCD_ASSIGN_OR_RETURN_IMPL_(                                 \
      S3VCD_STATUS_CONCAT_(s3vcd_result_, __LINE__), lhs, expr)

#define S3VCD_STATUS_CONCAT_INNER_(a, b) a##b
#define S3VCD_STATUS_CONCAT_(a, b) S3VCD_STATUS_CONCAT_INNER_(a, b)
#define S3VCD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

#endif  // S3VCD_UTIL_STATUS_H_
