#include "util/thread_pool.h"

#include <atomic>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace s3vcd {

namespace {

obs::Gauge* const g_queue_depth =
    obs::MetricsRegistry::Global().GetGauge("thread_pool.queue_depth");
obs::Counter* const g_tasks_completed =
    obs::MetricsRegistry::Global().GetCounter("thread_pool.tasks_completed");
obs::Histogram* const g_task_us =
    obs::MetricsRegistry::Global().GetHistogram("thread_pool.task_us");
obs::Counter* const g_pools_created =
    obs::MetricsRegistry::Global().GetCounter("thread_pool.pools_created");

// Static mirror of thread_pool.pools_created: the metrics registry can be
// Reset() between experiment brackets, the regression tests need a counter
// that only ever moves forward.
std::atomic<uint64_t> g_total_pools_created{0};

}  // namespace

uint64_t ThreadPool::TotalPoolsCreated() {
  return g_total_pools_created.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int num_threads) {
  S3VCD_CHECK(num_threads >= 1);
  g_pools_created->Increment();
  g_total_pools_created.fetch_add(1, std::memory_order_relaxed);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    S3VCD_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    g_queue_depth->Set(static_cast<int64_t>(queue_.size()));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      g_queue_depth->Set(static_cast<int64_t>(queue_.size()));
    }
    {
      S3VCD_TRACE_SPAN("thread_pool.task");
      obs::ScopedLatencyUs latency(g_task_us);
      task();
    }
    g_tasks_completed->Increment();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace s3vcd
