#include "util/bitkey.h"

#include <cassert>

namespace s3vcd {

BitKey BitKey::OneBit(int pos) {
  assert(pos >= 0 && pos < kBits);
  BitKey k;
  k.set_bit(pos, true);
  return k;
}

BitKey BitKey::LowMask(int n) {
  assert(n >= 0 && n <= kBits);
  BitKey k;
  int full = n >> 6;
  for (int i = 0; i < full; ++i) {
    k.words_[i] = ~uint64_t{0};
  }
  int rem = n & 63;
  if (rem != 0) {
    k.words_[full] = (uint64_t{1} << rem) - 1;
  }
  return k;
}

void BitKey::AppendBits(uint64_t value, int nbits) {
  assert(nbits >= 0 && nbits <= 64);
  if (nbits == 0) {
    return;
  }
  *this <<= nbits;
  const uint64_t mask =
      nbits == 64 ? ~uint64_t{0} : ((uint64_t{1} << nbits) - 1);
  words_[0] |= value & mask;
}

uint64_t BitKey::ExtractBits(int pos, int nbits) const {
  assert(nbits >= 0 && nbits <= 64);
  assert(pos >= 0 && pos + nbits <= kBits);
  if (nbits == 0) {
    return 0;
  }
  const int w = pos >> 6;
  const int off = pos & 63;
  uint64_t out = words_[w] >> off;
  if (off + nbits > 64 && w + 1 < kWords) {
    out |= words_[w + 1] << (64 - off);
  }
  const uint64_t mask =
      nbits == 64 ? ~uint64_t{0} : ((uint64_t{1} << nbits) - 1);
  return out & mask;
}

BitKey BitKey::operator<<(int n) const {
  assert(n >= 0);
  BitKey out;
  if (n >= kBits) {
    return out;
  }
  const int wshift = n >> 6;
  const int bshift = n & 63;
  for (int i = kWords - 1; i >= wshift; --i) {
    uint64_t v = words_[i - wshift] << bshift;
    if (bshift != 0 && i - wshift - 1 >= 0) {
      v |= words_[i - wshift - 1] >> (64 - bshift);
    }
    out.words_[i] = v;
  }
  return out;
}

BitKey BitKey::operator>>(int n) const {
  assert(n >= 0);
  BitKey out;
  if (n >= kBits) {
    return out;
  }
  const int wshift = n >> 6;
  const int bshift = n & 63;
  for (int i = 0; i + wshift < kWords; ++i) {
    uint64_t v = words_[i + wshift] >> bshift;
    if (bshift != 0 && i + wshift + 1 < kWords) {
      v |= words_[i + wshift + 1] << (64 - bshift);
    }
    out.words_[i] = v;
  }
  return out;
}

BitKey BitKey::operator|(const BitKey& o) const {
  BitKey out;
  for (int i = 0; i < kWords; ++i) {
    out.words_[i] = words_[i] | o.words_[i];
  }
  return out;
}

BitKey BitKey::operator&(const BitKey& o) const {
  BitKey out;
  for (int i = 0; i < kWords; ++i) {
    out.words_[i] = words_[i] & o.words_[i];
  }
  return out;
}

BitKey BitKey::operator^(const BitKey& o) const {
  BitKey out;
  for (int i = 0; i < kWords; ++i) {
    out.words_[i] = words_[i] ^ o.words_[i];
  }
  return out;
}

BitKey BitKey::operator+(const BitKey& o) const {
  BitKey out;
  unsigned __int128 carry = 0;
  for (int i = 0; i < kWords; ++i) {
    unsigned __int128 sum =
        static_cast<unsigned __int128>(words_[i]) + o.words_[i] + carry;
    out.words_[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
  return out;
}

BitKey BitKey::operator-(const BitKey& o) const {
  BitKey out;
  unsigned __int128 borrow = 0;
  for (int i = 0; i < kWords; ++i) {
    unsigned __int128 lhs = words_[i];
    unsigned __int128 rhs = static_cast<unsigned __int128>(o.words_[i]) + borrow;
    if (lhs >= rhs) {
      out.words_[i] = static_cast<uint64_t>(lhs - rhs);
      borrow = 0;
    } else {
      const unsigned __int128 two64 = static_cast<unsigned __int128>(1) << 64;
      out.words_[i] = static_cast<uint64_t>(two64 + lhs - rhs);
      borrow = 1;
    }
  }
  return out;
}

BitKey& BitKey::Increment() {
  for (int i = 0; i < kWords; ++i) {
    if (++words_[i] != 0) {
      break;
    }
  }
  return *this;
}

std::string BitKey::ToHex(int nbits) const {
  assert(nbits > 0 && nbits <= kBits);
  const int nibbles = (nbits + 3) / 4;
  std::string out = "0x";
  out.reserve(2 + nibbles);
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int i = nibbles - 1; i >= 0; --i) {
    out += kDigits[ExtractBits(i * 4, 4)];
  }
  return out;
}

}  // namespace s3vcd
