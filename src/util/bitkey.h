#ifndef S3VCD_UTIL_BITKEY_H_
#define S3VCD_UTIL_BITKEY_H_

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace s3vcd {

/// Fixed-capacity 256-bit unsigned integer used as a Hilbert-curve derived
/// key. A D-dimensional order-K Hilbert index needs D*K bits (the paper's
/// configuration D=20, K=8 needs 160); 256 bits cover every configuration
/// this library supports (D <= 32, K <= 8 or D <= 21, K <= 12, etc.).
///
/// The value is stored little-endian: words_[0] holds bits 0..63. Comparison
/// is numeric. Shifts with counts >= 256 yield zero, as for built-in widths
/// this would be UB; BitKey defines it for convenience of prefix arithmetic.
class BitKey {
 public:
  static constexpr int kBits = 256;
  static constexpr int kWords = 4;

  /// Zero-initialized key.
  constexpr BitKey() : words_{} {}

  /// Key holding a small value.
  constexpr explicit BitKey(uint64_t low) : words_{low, 0, 0, 0} {}

  static constexpr BitKey Zero() { return BitKey(); }

  /// Key with the single bit `pos` (0 = least significant) set.
  static BitKey OneBit(int pos);

  /// Key equal to 2^n - 1 (n low bits set). n in [0, 256].
  static BitKey LowMask(int n);

  /// Bit access, pos in [0, 256).
  bool bit(int pos) const {
    return (words_[pos >> 6] >> (pos & 63)) & 1u;
  }
  void set_bit(int pos, bool value) {
    const uint64_t mask = uint64_t{1} << (pos & 63);
    if (value) {
      words_[pos >> 6] |= mask;
    } else {
      words_[pos >> 6] &= ~mask;
    }
  }

  /// Raw word access (word 0 is least significant).
  uint64_t word(int i) const { return words_[i]; }
  void set_word(int i, uint64_t w) { words_[i] = w; }

  /// Low 64 bits of the value.
  uint64_t low64() const { return words_[0]; }

  bool is_zero() const {
    return (words_[0] | words_[1] | words_[2] | words_[3]) == 0;
  }

  /// Appends `nbits` bits of `value` at the low end: *this = (*this << nbits)
  /// | (value & mask). Used to assemble keys digit by digit. nbits in [0,64].
  void AppendBits(uint64_t value, int nbits);

  /// Extracts `nbits` bits starting at bit `pos` (low end), as a uint64.
  /// nbits in [0, 64], pos + nbits <= 256.
  uint64_t ExtractBits(int pos, int nbits) const;

  BitKey operator<<(int n) const;
  BitKey operator>>(int n) const;
  BitKey& operator<<=(int n) { return *this = *this << n; }
  BitKey& operator>>=(int n) { return *this = *this >> n; }

  BitKey operator|(const BitKey& o) const;
  BitKey operator&(const BitKey& o) const;
  BitKey operator^(const BitKey& o) const;

  /// Addition / subtraction with wrap-around at 2^256.
  BitKey operator+(const BitKey& o) const;
  BitKey operator-(const BitKey& o) const;
  BitKey& operator+=(const BitKey& o) { return *this = *this + o; }

  /// Increments by one (wraps at 2^256).
  BitKey& Increment();

  bool operator==(const BitKey& o) const { return words_ == o.words_; }
  std::strong_ordering operator<=>(const BitKey& o) const {
    for (int i = kWords - 1; i >= 0; --i) {
      if (words_[i] != o.words_[i]) {
        return words_[i] < o.words_[i] ? std::strong_ordering::less
                                       : std::strong_ordering::greater;
      }
    }
    return std::strong_ordering::equal;
  }

  /// Hex string of the low `nbits` bits (rounded up to a nibble), most
  /// significant digit first, e.g. "0x00ff...".
  std::string ToHex(int nbits = kBits) const;

 private:
  std::array<uint64_t, kWords> words_;
};

}  // namespace s3vcd

#endif  // S3VCD_UTIL_BITKEY_H_
