file(REMOVE_RECURSE
  "CMakeFiles/db_fuzz_test.dir/db_fuzz_test.cc.o"
  "CMakeFiles/db_fuzz_test.dir/db_fuzz_test.cc.o.d"
  "db_fuzz_test"
  "db_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
