# Empty compiler generated dependencies file for db_fuzz_test.
# This may be replaced when dependencies are built.
