file(REMOVE_RECURSE
  "CMakeFiles/media_filters_test.dir/media_filters_test.cc.o"
  "CMakeFiles/media_filters_test.dir/media_filters_test.cc.o.d"
  "media_filters_test"
  "media_filters_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
