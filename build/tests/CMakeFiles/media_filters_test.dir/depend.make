# Empty dependencies file for media_filters_test.
# This may be replaced when dependencies are built.
