# Empty compiler generated dependencies file for mpeg_transform_test.
# This may be replaced when dependencies are built.
