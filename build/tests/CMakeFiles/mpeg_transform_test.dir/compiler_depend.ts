# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mpeg_transform_test.
