file(REMOVE_RECURSE
  "CMakeFiles/mpeg_transform_test.dir/mpeg_transform_test.cc.o"
  "CMakeFiles/mpeg_transform_test.dir/mpeg_transform_test.cc.o.d"
  "mpeg_transform_test"
  "mpeg_transform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpeg_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
