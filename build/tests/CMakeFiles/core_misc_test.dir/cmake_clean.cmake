file(REMOVE_RECURSE
  "CMakeFiles/core_misc_test.dir/core_misc_test.cc.o"
  "CMakeFiles/core_misc_test.dir/core_misc_test.cc.o.d"
  "core_misc_test"
  "core_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
