file(REMOVE_RECURSE
  "CMakeFiles/media_transforms_test.dir/media_transforms_test.cc.o"
  "CMakeFiles/media_transforms_test.dir/media_transforms_test.cc.o.d"
  "media_transforms_test"
  "media_transforms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_transforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
