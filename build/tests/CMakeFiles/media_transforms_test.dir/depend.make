# Empty dependencies file for media_transforms_test.
# This may be replaced when dependencies are built.
