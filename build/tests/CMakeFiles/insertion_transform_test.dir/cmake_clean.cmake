file(REMOVE_RECURSE
  "CMakeFiles/insertion_transform_test.dir/insertion_transform_test.cc.o"
  "CMakeFiles/insertion_transform_test.dir/insertion_transform_test.cc.o.d"
  "insertion_transform_test"
  "insertion_transform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insertion_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
