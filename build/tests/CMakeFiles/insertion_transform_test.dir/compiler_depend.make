# Empty compiler generated dependencies file for insertion_transform_test.
# This may be replaced when dependencies are built.
