file(REMOVE_RECURSE
  "CMakeFiles/hilbert_curve_test.dir/hilbert_curve_test.cc.o"
  "CMakeFiles/hilbert_curve_test.dir/hilbert_curve_test.cc.o.d"
  "hilbert_curve_test"
  "hilbert_curve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilbert_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
