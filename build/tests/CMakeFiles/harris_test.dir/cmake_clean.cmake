file(REMOVE_RECURSE
  "CMakeFiles/harris_test.dir/harris_test.cc.o"
  "CMakeFiles/harris_test.dir/harris_test.cc.o.d"
  "harris_test"
  "harris_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harris_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
