# Empty compiler generated dependencies file for harris_test.
# This may be replaced when dependencies are built.
