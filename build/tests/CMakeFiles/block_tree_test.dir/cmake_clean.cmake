file(REMOVE_RECURSE
  "CMakeFiles/block_tree_test.dir/block_tree_test.cc.o"
  "CMakeFiles/block_tree_test.dir/block_tree_test.cc.o.d"
  "block_tree_test"
  "block_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
