file(REMOVE_RECURSE
  "CMakeFiles/anisotropic_model_test.dir/anisotropic_model_test.cc.o"
  "CMakeFiles/anisotropic_model_test.dir/anisotropic_model_test.cc.o.d"
  "anisotropic_model_test"
  "anisotropic_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anisotropic_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
