file(REMOVE_RECURSE
  "CMakeFiles/bitkey_test.dir/bitkey_test.cc.o"
  "CMakeFiles/bitkey_test.dir/bitkey_test.cc.o.d"
  "bitkey_test"
  "bitkey_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitkey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
