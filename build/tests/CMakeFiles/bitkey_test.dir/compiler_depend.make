# Empty compiler generated dependencies file for bitkey_test.
# This may be replaced when dependencies are built.
