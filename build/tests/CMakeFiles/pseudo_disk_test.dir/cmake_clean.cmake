file(REMOVE_RECURSE
  "CMakeFiles/pseudo_disk_test.dir/pseudo_disk_test.cc.o"
  "CMakeFiles/pseudo_disk_test.dir/pseudo_disk_test.cc.o.d"
  "pseudo_disk_test"
  "pseudo_disk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pseudo_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
