# Empty compiler generated dependencies file for pseudo_disk_test.
# This may be replaced when dependencies are built.
