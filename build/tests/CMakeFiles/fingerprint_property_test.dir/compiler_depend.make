# Empty compiler generated dependencies file for fingerprint_property_test.
# This may be replaced when dependencies are built.
