file(REMOVE_RECURSE
  "CMakeFiles/fingerprint_property_test.dir/fingerprint_property_test.cc.o"
  "CMakeFiles/fingerprint_property_test.dir/fingerprint_property_test.cc.o.d"
  "fingerprint_property_test"
  "fingerprint_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fingerprint_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
