file(REMOVE_RECURSE
  "CMakeFiles/external_builder_test.dir/external_builder_test.cc.o"
  "CMakeFiles/external_builder_test.dir/external_builder_test.cc.o.d"
  "external_builder_test"
  "external_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
