# Empty dependencies file for external_builder_test.
# This may be replaced when dependencies are built.
