# Empty dependencies file for low_order_test.
# This may be replaced when dependencies are built.
