file(REMOVE_RECURSE
  "CMakeFiles/low_order_test.dir/low_order_test.cc.o"
  "CMakeFiles/low_order_test.dir/low_order_test.cc.o.d"
  "low_order_test"
  "low_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
