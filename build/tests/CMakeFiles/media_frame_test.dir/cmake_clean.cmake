file(REMOVE_RECURSE
  "CMakeFiles/media_frame_test.dir/media_frame_test.cc.o"
  "CMakeFiles/media_frame_test.dir/media_frame_test.cc.o.d"
  "media_frame_test"
  "media_frame_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_frame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
