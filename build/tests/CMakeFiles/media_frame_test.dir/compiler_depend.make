# Empty compiler generated dependencies file for media_frame_test.
# This may be replaced when dependencies are built.
