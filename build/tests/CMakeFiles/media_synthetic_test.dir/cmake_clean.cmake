file(REMOVE_RECURSE
  "CMakeFiles/media_synthetic_test.dir/media_synthetic_test.cc.o"
  "CMakeFiles/media_synthetic_test.dir/media_synthetic_test.cc.o.d"
  "media_synthetic_test"
  "media_synthetic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
