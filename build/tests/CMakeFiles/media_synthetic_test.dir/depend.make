# Empty dependencies file for media_synthetic_test.
# This may be replaced when dependencies are built.
