file(REMOVE_RECURSE
  "CMakeFiles/cbcd_test.dir/cbcd_test.cc.o"
  "CMakeFiles/cbcd_test.dir/cbcd_test.cc.o.d"
  "cbcd_test"
  "cbcd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbcd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
