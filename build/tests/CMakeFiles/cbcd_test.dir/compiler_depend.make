# Empty compiler generated dependencies file for cbcd_test.
# This may be replaced when dependencies are built.
