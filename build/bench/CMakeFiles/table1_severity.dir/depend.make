# Empty dependencies file for table1_severity.
# This may be replaced when dependencies are built.
