file(REMOVE_RECURSE
  "CMakeFiles/table1_severity.dir/table1_severity.cc.o"
  "CMakeFiles/table1_severity.dir/table1_severity.cc.o.d"
  "table1_severity"
  "table1_severity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_severity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
