file(REMOVE_RECURSE
  "CMakeFiles/fig2_partition_illustration.dir/fig2_partition_illustration.cc.o"
  "CMakeFiles/fig2_partition_illustration.dir/fig2_partition_illustration.cc.o.d"
  "fig2_partition_illustration"
  "fig2_partition_illustration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_partition_illustration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
