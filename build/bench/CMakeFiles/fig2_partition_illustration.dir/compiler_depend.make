# Empty compiler generated dependencies file for fig2_partition_illustration.
# This may be replaced when dependencies are built.
