# Empty compiler generated dependencies file for false_alarm_calibration.
# This may be replaced when dependencies are built.
