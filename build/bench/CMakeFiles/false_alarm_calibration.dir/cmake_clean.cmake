file(REMOVE_RECURSE
  "CMakeFiles/false_alarm_calibration.dir/false_alarm_calibration.cc.o"
  "CMakeFiles/false_alarm_calibration.dir/false_alarm_calibration.cc.o.d"
  "false_alarm_calibration"
  "false_alarm_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/false_alarm_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
