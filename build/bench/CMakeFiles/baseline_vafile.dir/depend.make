# Empty dependencies file for baseline_vafile.
# This may be replaced when dependencies are built.
