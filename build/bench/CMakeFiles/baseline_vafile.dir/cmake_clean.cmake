file(REMOVE_RECURSE
  "CMakeFiles/baseline_vafile.dir/baseline_vafile.cc.o"
  "CMakeFiles/baseline_vafile.dir/baseline_vafile.cc.o.d"
  "baseline_vafile"
  "baseline_vafile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_vafile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
