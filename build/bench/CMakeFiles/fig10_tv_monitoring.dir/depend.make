# Empty dependencies file for fig10_tv_monitoring.
# This may be replaced when dependencies are built.
