file(REMOVE_RECURSE
  "CMakeFiles/fig10_tv_monitoring.dir/fig10_tv_monitoring.cc.o"
  "CMakeFiles/fig10_tv_monitoring.dir/fig10_tv_monitoring.cc.o.d"
  "fig10_tv_monitoring"
  "fig10_tv_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tv_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
