# Empty compiler generated dependencies file for fig3_model_validation.
# This may be replaced when dependencies are built.
