file(REMOVE_RECURSE
  "CMakeFiles/fig3_model_validation.dir/fig3_model_validation.cc.o"
  "CMakeFiles/fig3_model_validation.dir/fig3_model_validation.cc.o.d"
  "fig3_model_validation"
  "fig3_model_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
