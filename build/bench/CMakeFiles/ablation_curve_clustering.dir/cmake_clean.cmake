file(REMOVE_RECURSE
  "CMakeFiles/ablation_curve_clustering.dir/ablation_curve_clustering.cc.o"
  "CMakeFiles/ablation_curve_clustering.dir/ablation_curve_clustering.cc.o.d"
  "ablation_curve_clustering"
  "ablation_curve_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_curve_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
