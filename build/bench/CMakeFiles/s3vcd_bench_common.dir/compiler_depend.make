# Empty compiler generated dependencies file for s3vcd_bench_common.
# This may be replaced when dependencies are built.
