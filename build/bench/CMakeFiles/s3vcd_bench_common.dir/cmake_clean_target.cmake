file(REMOVE_RECURSE
  "libs3vcd_bench_common.a"
)
