file(REMOVE_RECURSE
  "CMakeFiles/s3vcd_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/s3vcd_bench_common.dir/bench_common.cc.o.d"
  "libs3vcd_bench_common.a"
  "libs3vcd_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3vcd_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
