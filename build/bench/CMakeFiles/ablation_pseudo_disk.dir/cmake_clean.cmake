file(REMOVE_RECURSE
  "CMakeFiles/ablation_pseudo_disk.dir/ablation_pseudo_disk.cc.o"
  "CMakeFiles/ablation_pseudo_disk.dir/ablation_pseudo_disk.cc.o.d"
  "ablation_pseudo_disk"
  "ablation_pseudo_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pseudo_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
