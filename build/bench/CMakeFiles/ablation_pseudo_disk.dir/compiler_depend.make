# Empty compiler generated dependencies file for ablation_pseudo_disk.
# This may be replaced when dependencies are built.
