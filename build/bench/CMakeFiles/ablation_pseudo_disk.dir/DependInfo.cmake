
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_pseudo_disk.cc" "bench/CMakeFiles/ablation_pseudo_disk.dir/ablation_pseudo_disk.cc.o" "gcc" "bench/CMakeFiles/ablation_pseudo_disk.dir/ablation_pseudo_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/s3vcd_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cbcd/CMakeFiles/s3vcd_cbcd.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/s3vcd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/s3vcd_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/s3vcd_media.dir/DependInfo.cmake"
  "/root/repo/build/src/hilbert/CMakeFiles/s3vcd_hilbert.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/s3vcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
