# Empty dependencies file for fig9_alpha_abacus.
# This may be replaced when dependencies are built.
