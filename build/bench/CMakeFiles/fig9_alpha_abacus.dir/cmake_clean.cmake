file(REMOVE_RECURSE
  "CMakeFiles/fig9_alpha_abacus.dir/fig9_alpha_abacus.cc.o"
  "CMakeFiles/fig9_alpha_abacus.dir/fig9_alpha_abacus.cc.o.d"
  "fig9_alpha_abacus"
  "fig9_alpha_abacus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_alpha_abacus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
