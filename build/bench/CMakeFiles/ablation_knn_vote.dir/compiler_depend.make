# Empty compiler generated dependencies file for ablation_knn_vote.
# This may be replaced when dependencies are built.
