file(REMOVE_RECURSE
  "CMakeFiles/ablation_knn_vote.dir/ablation_knn_vote.cc.o"
  "CMakeFiles/ablation_knn_vote.dir/ablation_knn_vote.cc.o.d"
  "ablation_knn_vote"
  "ablation_knn_vote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_knn_vote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
