file(REMOVE_RECURSE
  "CMakeFiles/fig8_dbsize_abacus.dir/fig8_dbsize_abacus.cc.o"
  "CMakeFiles/fig8_dbsize_abacus.dir/fig8_dbsize_abacus.cc.o.d"
  "fig8_dbsize_abacus"
  "fig8_dbsize_abacus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dbsize_abacus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
