# Empty compiler generated dependencies file for fig8_dbsize_abacus.
# This may be replaced when dependencies are built.
