file(REMOVE_RECURSE
  "CMakeFiles/fig6_time_stat_vs_range.dir/fig6_time_stat_vs_range.cc.o"
  "CMakeFiles/fig6_time_stat_vs_range.dir/fig6_time_stat_vs_range.cc.o.d"
  "fig6_time_stat_vs_range"
  "fig6_time_stat_vs_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_time_stat_vs_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
