# Empty dependencies file for fig6_time_stat_vs_range.
# This may be replaced when dependencies are built.
