file(REMOVE_RECURSE
  "CMakeFiles/fig1_distortion_distribution.dir/fig1_distortion_distribution.cc.o"
  "CMakeFiles/fig1_distortion_distribution.dir/fig1_distortion_distribution.cc.o.d"
  "fig1_distortion_distribution"
  "fig1_distortion_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_distortion_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
