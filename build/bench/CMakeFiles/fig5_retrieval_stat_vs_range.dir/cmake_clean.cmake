file(REMOVE_RECURSE
  "CMakeFiles/fig5_retrieval_stat_vs_range.dir/fig5_retrieval_stat_vs_range.cc.o"
  "CMakeFiles/fig5_retrieval_stat_vs_range.dir/fig5_retrieval_stat_vs_range.cc.o.d"
  "fig5_retrieval_stat_vs_range"
  "fig5_retrieval_stat_vs_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_retrieval_stat_vs_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
