# Empty dependencies file for fig5_retrieval_stat_vs_range.
# This may be replaced when dependencies are built.
