file(REMOVE_RECURSE
  "CMakeFiles/s3vcd_tool.dir/s3vcd_tool.cc.o"
  "CMakeFiles/s3vcd_tool.dir/s3vcd_tool.cc.o.d"
  "s3vcd_tool"
  "s3vcd_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3vcd_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
