# Empty dependencies file for s3vcd_tool.
# This may be replaced when dependencies are built.
