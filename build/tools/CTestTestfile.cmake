# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_build "/root/repo/build/tools/s3vcd_tool" "build" "--output" "/root/repo/build/cli_smoke.s3db" "--videos" "2" "--frames" "120" "--distractors" "20000" "--seed" "5")
set_tests_properties(cli_build PROPERTIES  FIXTURES_SETUP "cli_db" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_build_external "/root/repo/build/tools/s3vcd_tool" "build" "--output" "/root/repo/build/cli_smoke_ext.s3db" "--videos" "1" "--frames" "100" "--distractors" "15000" "--seed" "5" "--memory-records" "4000" "--external")
set_tests_properties(cli_build_external PROPERTIES  FIXTURES_SETUP "cli_db" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_verify "/root/repo/build/tools/s3vcd_tool" "verify" "--db" "/root/repo/build/cli_smoke.s3db")
set_tests_properties(cli_verify PROPERTIES  DEPENDS "cli_build" FIXTURES_REQUIRED "cli_db" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_inspect "/root/repo/build/tools/s3vcd_tool" "inspect" "--db" "/root/repo/build/cli_smoke.s3db")
set_tests_properties(cli_inspect PROPERTIES  DEPENDS "cli_build" FIXTURES_REQUIRED "cli_db" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_query "/root/repo/build/tools/s3vcd_tool" "query" "--db" "/root/repo/build/cli_smoke.s3db" "--count" "40" "--sigma" "12")
set_tests_properties(cli_query PROPERTIES  DEPENDS "cli_build" FIXTURES_REQUIRED "cli_db" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_monitor "/root/repo/build/tools/s3vcd_tool" "monitor" "--db" "/root/repo/build/cli_smoke.s3db" "--seed" "5" "--stream-frames" "120")
set_tests_properties(cli_monitor PROPERTIES  DEPENDS "cli_build" FIXTURES_REQUIRED "cli_db" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
