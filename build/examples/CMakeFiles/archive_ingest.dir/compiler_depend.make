# Empty compiler generated dependencies file for archive_ingest.
# This may be replaced when dependencies are built.
