file(REMOVE_RECURSE
  "CMakeFiles/archive_ingest.dir/archive_ingest.cc.o"
  "CMakeFiles/archive_ingest.dir/archive_ingest.cc.o.d"
  "archive_ingest"
  "archive_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archive_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
