# Empty dependencies file for tv_monitoring.
# This may be replaced when dependencies are built.
