file(REMOVE_RECURSE
  "CMakeFiles/tv_monitoring.dir/tv_monitoring.cc.o"
  "CMakeFiles/tv_monitoring.dir/tv_monitoring.cc.o.d"
  "tv_monitoring"
  "tv_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
