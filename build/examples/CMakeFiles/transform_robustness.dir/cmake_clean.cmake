file(REMOVE_RECURSE
  "CMakeFiles/transform_robustness.dir/transform_robustness.cc.o"
  "CMakeFiles/transform_robustness.dir/transform_robustness.cc.o.d"
  "transform_robustness"
  "transform_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
