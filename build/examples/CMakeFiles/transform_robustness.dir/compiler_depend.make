# Empty compiler generated dependencies file for transform_robustness.
# This may be replaced when dependencies are built.
