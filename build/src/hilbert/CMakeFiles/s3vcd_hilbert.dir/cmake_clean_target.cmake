file(REMOVE_RECURSE
  "libs3vcd_hilbert.a"
)
