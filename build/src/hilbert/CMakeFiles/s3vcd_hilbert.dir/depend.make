# Empty dependencies file for s3vcd_hilbert.
# This may be replaced when dependencies are built.
