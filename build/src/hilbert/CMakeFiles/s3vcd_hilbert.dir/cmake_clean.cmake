file(REMOVE_RECURSE
  "CMakeFiles/s3vcd_hilbert.dir/block_tree.cc.o"
  "CMakeFiles/s3vcd_hilbert.dir/block_tree.cc.o.d"
  "CMakeFiles/s3vcd_hilbert.dir/hilbert_curve.cc.o"
  "CMakeFiles/s3vcd_hilbert.dir/hilbert_curve.cc.o.d"
  "CMakeFiles/s3vcd_hilbert.dir/zorder.cc.o"
  "CMakeFiles/s3vcd_hilbert.dir/zorder.cc.o.d"
  "libs3vcd_hilbert.a"
  "libs3vcd_hilbert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3vcd_hilbert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
