
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hilbert/block_tree.cc" "src/hilbert/CMakeFiles/s3vcd_hilbert.dir/block_tree.cc.o" "gcc" "src/hilbert/CMakeFiles/s3vcd_hilbert.dir/block_tree.cc.o.d"
  "/root/repo/src/hilbert/hilbert_curve.cc" "src/hilbert/CMakeFiles/s3vcd_hilbert.dir/hilbert_curve.cc.o" "gcc" "src/hilbert/CMakeFiles/s3vcd_hilbert.dir/hilbert_curve.cc.o.d"
  "/root/repo/src/hilbert/zorder.cc" "src/hilbert/CMakeFiles/s3vcd_hilbert.dir/zorder.cc.o" "gcc" "src/hilbert/CMakeFiles/s3vcd_hilbert.dir/zorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/s3vcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
