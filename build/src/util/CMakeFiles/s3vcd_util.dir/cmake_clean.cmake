file(REMOVE_RECURSE
  "CMakeFiles/s3vcd_util.dir/bitkey.cc.o"
  "CMakeFiles/s3vcd_util.dir/bitkey.cc.o.d"
  "CMakeFiles/s3vcd_util.dir/histogram.cc.o"
  "CMakeFiles/s3vcd_util.dir/histogram.cc.o.d"
  "CMakeFiles/s3vcd_util.dir/io.cc.o"
  "CMakeFiles/s3vcd_util.dir/io.cc.o.d"
  "CMakeFiles/s3vcd_util.dir/math.cc.o"
  "CMakeFiles/s3vcd_util.dir/math.cc.o.d"
  "CMakeFiles/s3vcd_util.dir/rng.cc.o"
  "CMakeFiles/s3vcd_util.dir/rng.cc.o.d"
  "CMakeFiles/s3vcd_util.dir/status.cc.o"
  "CMakeFiles/s3vcd_util.dir/status.cc.o.d"
  "CMakeFiles/s3vcd_util.dir/table.cc.o"
  "CMakeFiles/s3vcd_util.dir/table.cc.o.d"
  "CMakeFiles/s3vcd_util.dir/thread_pool.cc.o"
  "CMakeFiles/s3vcd_util.dir/thread_pool.cc.o.d"
  "libs3vcd_util.a"
  "libs3vcd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3vcd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
