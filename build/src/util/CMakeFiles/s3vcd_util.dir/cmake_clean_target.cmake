file(REMOVE_RECURSE
  "libs3vcd_util.a"
)
