# Empty dependencies file for s3vcd_util.
# This may be replaced when dependencies are built.
