
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bitkey.cc" "src/util/CMakeFiles/s3vcd_util.dir/bitkey.cc.o" "gcc" "src/util/CMakeFiles/s3vcd_util.dir/bitkey.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/util/CMakeFiles/s3vcd_util.dir/histogram.cc.o" "gcc" "src/util/CMakeFiles/s3vcd_util.dir/histogram.cc.o.d"
  "/root/repo/src/util/io.cc" "src/util/CMakeFiles/s3vcd_util.dir/io.cc.o" "gcc" "src/util/CMakeFiles/s3vcd_util.dir/io.cc.o.d"
  "/root/repo/src/util/math.cc" "src/util/CMakeFiles/s3vcd_util.dir/math.cc.o" "gcc" "src/util/CMakeFiles/s3vcd_util.dir/math.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/util/CMakeFiles/s3vcd_util.dir/rng.cc.o" "gcc" "src/util/CMakeFiles/s3vcd_util.dir/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/s3vcd_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/s3vcd_util.dir/status.cc.o.d"
  "/root/repo/src/util/table.cc" "src/util/CMakeFiles/s3vcd_util.dir/table.cc.o" "gcc" "src/util/CMakeFiles/s3vcd_util.dir/table.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/util/CMakeFiles/s3vcd_util.dir/thread_pool.cc.o" "gcc" "src/util/CMakeFiles/s3vcd_util.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
