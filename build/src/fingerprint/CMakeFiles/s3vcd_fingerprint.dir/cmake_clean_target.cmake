file(REMOVE_RECURSE
  "libs3vcd_fingerprint.a"
)
