file(REMOVE_RECURSE
  "CMakeFiles/s3vcd_fingerprint.dir/descriptor.cc.o"
  "CMakeFiles/s3vcd_fingerprint.dir/descriptor.cc.o.d"
  "CMakeFiles/s3vcd_fingerprint.dir/distortion.cc.o"
  "CMakeFiles/s3vcd_fingerprint.dir/distortion.cc.o.d"
  "CMakeFiles/s3vcd_fingerprint.dir/extractor.cc.o"
  "CMakeFiles/s3vcd_fingerprint.dir/extractor.cc.o.d"
  "CMakeFiles/s3vcd_fingerprint.dir/fingerprint.cc.o"
  "CMakeFiles/s3vcd_fingerprint.dir/fingerprint.cc.o.d"
  "CMakeFiles/s3vcd_fingerprint.dir/harris.cc.o"
  "CMakeFiles/s3vcd_fingerprint.dir/harris.cc.o.d"
  "CMakeFiles/s3vcd_fingerprint.dir/keyframe.cc.o"
  "CMakeFiles/s3vcd_fingerprint.dir/keyframe.cc.o.d"
  "libs3vcd_fingerprint.a"
  "libs3vcd_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3vcd_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
