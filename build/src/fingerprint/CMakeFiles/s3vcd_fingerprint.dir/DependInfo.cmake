
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fingerprint/descriptor.cc" "src/fingerprint/CMakeFiles/s3vcd_fingerprint.dir/descriptor.cc.o" "gcc" "src/fingerprint/CMakeFiles/s3vcd_fingerprint.dir/descriptor.cc.o.d"
  "/root/repo/src/fingerprint/distortion.cc" "src/fingerprint/CMakeFiles/s3vcd_fingerprint.dir/distortion.cc.o" "gcc" "src/fingerprint/CMakeFiles/s3vcd_fingerprint.dir/distortion.cc.o.d"
  "/root/repo/src/fingerprint/extractor.cc" "src/fingerprint/CMakeFiles/s3vcd_fingerprint.dir/extractor.cc.o" "gcc" "src/fingerprint/CMakeFiles/s3vcd_fingerprint.dir/extractor.cc.o.d"
  "/root/repo/src/fingerprint/fingerprint.cc" "src/fingerprint/CMakeFiles/s3vcd_fingerprint.dir/fingerprint.cc.o" "gcc" "src/fingerprint/CMakeFiles/s3vcd_fingerprint.dir/fingerprint.cc.o.d"
  "/root/repo/src/fingerprint/harris.cc" "src/fingerprint/CMakeFiles/s3vcd_fingerprint.dir/harris.cc.o" "gcc" "src/fingerprint/CMakeFiles/s3vcd_fingerprint.dir/harris.cc.o.d"
  "/root/repo/src/fingerprint/keyframe.cc" "src/fingerprint/CMakeFiles/s3vcd_fingerprint.dir/keyframe.cc.o" "gcc" "src/fingerprint/CMakeFiles/s3vcd_fingerprint.dir/keyframe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/media/CMakeFiles/s3vcd_media.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/s3vcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
