# Empty dependencies file for s3vcd_fingerprint.
# This may be replaced when dependencies are built.
