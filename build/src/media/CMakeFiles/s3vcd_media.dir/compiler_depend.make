# Empty compiler generated dependencies file for s3vcd_media.
# This may be replaced when dependencies are built.
