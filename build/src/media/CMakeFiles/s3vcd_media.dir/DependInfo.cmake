
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/filters.cc" "src/media/CMakeFiles/s3vcd_media.dir/filters.cc.o" "gcc" "src/media/CMakeFiles/s3vcd_media.dir/filters.cc.o.d"
  "/root/repo/src/media/frame.cc" "src/media/CMakeFiles/s3vcd_media.dir/frame.cc.o" "gcc" "src/media/CMakeFiles/s3vcd_media.dir/frame.cc.o.d"
  "/root/repo/src/media/sampling.cc" "src/media/CMakeFiles/s3vcd_media.dir/sampling.cc.o" "gcc" "src/media/CMakeFiles/s3vcd_media.dir/sampling.cc.o.d"
  "/root/repo/src/media/synthetic.cc" "src/media/CMakeFiles/s3vcd_media.dir/synthetic.cc.o" "gcc" "src/media/CMakeFiles/s3vcd_media.dir/synthetic.cc.o.d"
  "/root/repo/src/media/transforms.cc" "src/media/CMakeFiles/s3vcd_media.dir/transforms.cc.o" "gcc" "src/media/CMakeFiles/s3vcd_media.dir/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/s3vcd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
