file(REMOVE_RECURSE
  "CMakeFiles/s3vcd_media.dir/filters.cc.o"
  "CMakeFiles/s3vcd_media.dir/filters.cc.o.d"
  "CMakeFiles/s3vcd_media.dir/frame.cc.o"
  "CMakeFiles/s3vcd_media.dir/frame.cc.o.d"
  "CMakeFiles/s3vcd_media.dir/sampling.cc.o"
  "CMakeFiles/s3vcd_media.dir/sampling.cc.o.d"
  "CMakeFiles/s3vcd_media.dir/synthetic.cc.o"
  "CMakeFiles/s3vcd_media.dir/synthetic.cc.o.d"
  "CMakeFiles/s3vcd_media.dir/transforms.cc.o"
  "CMakeFiles/s3vcd_media.dir/transforms.cc.o.d"
  "libs3vcd_media.a"
  "libs3vcd_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3vcd_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
