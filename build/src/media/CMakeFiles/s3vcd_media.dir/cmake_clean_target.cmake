file(REMOVE_RECURSE
  "libs3vcd_media.a"
)
