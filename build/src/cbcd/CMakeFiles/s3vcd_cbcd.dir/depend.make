# Empty dependencies file for s3vcd_cbcd.
# This may be replaced when dependencies are built.
