file(REMOVE_RECURSE
  "CMakeFiles/s3vcd_cbcd.dir/detector.cc.o"
  "CMakeFiles/s3vcd_cbcd.dir/detector.cc.o.d"
  "CMakeFiles/s3vcd_cbcd.dir/tukey.cc.o"
  "CMakeFiles/s3vcd_cbcd.dir/tukey.cc.o.d"
  "CMakeFiles/s3vcd_cbcd.dir/voting.cc.o"
  "CMakeFiles/s3vcd_cbcd.dir/voting.cc.o.d"
  "libs3vcd_cbcd.a"
  "libs3vcd_cbcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3vcd_cbcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
