file(REMOVE_RECURSE
  "libs3vcd_cbcd.a"
)
