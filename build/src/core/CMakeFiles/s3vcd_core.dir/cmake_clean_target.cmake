file(REMOVE_RECURSE
  "libs3vcd_core.a"
)
