
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/database.cc" "src/core/CMakeFiles/s3vcd_core.dir/database.cc.o" "gcc" "src/core/CMakeFiles/s3vcd_core.dir/database.cc.o.d"
  "/root/repo/src/core/distortion_model.cc" "src/core/CMakeFiles/s3vcd_core.dir/distortion_model.cc.o" "gcc" "src/core/CMakeFiles/s3vcd_core.dir/distortion_model.cc.o.d"
  "/root/repo/src/core/dynamic_index.cc" "src/core/CMakeFiles/s3vcd_core.dir/dynamic_index.cc.o" "gcc" "src/core/CMakeFiles/s3vcd_core.dir/dynamic_index.cc.o.d"
  "/root/repo/src/core/external_builder.cc" "src/core/CMakeFiles/s3vcd_core.dir/external_builder.cc.o" "gcc" "src/core/CMakeFiles/s3vcd_core.dir/external_builder.cc.o.d"
  "/root/repo/src/core/filter.cc" "src/core/CMakeFiles/s3vcd_core.dir/filter.cc.o" "gcc" "src/core/CMakeFiles/s3vcd_core.dir/filter.cc.o.d"
  "/root/repo/src/core/index.cc" "src/core/CMakeFiles/s3vcd_core.dir/index.cc.o" "gcc" "src/core/CMakeFiles/s3vcd_core.dir/index.cc.o.d"
  "/root/repo/src/core/knn.cc" "src/core/CMakeFiles/s3vcd_core.dir/knn.cc.o" "gcc" "src/core/CMakeFiles/s3vcd_core.dir/knn.cc.o.d"
  "/root/repo/src/core/lsh.cc" "src/core/CMakeFiles/s3vcd_core.dir/lsh.cc.o" "gcc" "src/core/CMakeFiles/s3vcd_core.dir/lsh.cc.o.d"
  "/root/repo/src/core/parallel.cc" "src/core/CMakeFiles/s3vcd_core.dir/parallel.cc.o" "gcc" "src/core/CMakeFiles/s3vcd_core.dir/parallel.cc.o.d"
  "/root/repo/src/core/pseudo_disk.cc" "src/core/CMakeFiles/s3vcd_core.dir/pseudo_disk.cc.o" "gcc" "src/core/CMakeFiles/s3vcd_core.dir/pseudo_disk.cc.o.d"
  "/root/repo/src/core/synthetic_db.cc" "src/core/CMakeFiles/s3vcd_core.dir/synthetic_db.cc.o" "gcc" "src/core/CMakeFiles/s3vcd_core.dir/synthetic_db.cc.o.d"
  "/root/repo/src/core/tuner.cc" "src/core/CMakeFiles/s3vcd_core.dir/tuner.cc.o" "gcc" "src/core/CMakeFiles/s3vcd_core.dir/tuner.cc.o.d"
  "/root/repo/src/core/vafile.cc" "src/core/CMakeFiles/s3vcd_core.dir/vafile.cc.o" "gcc" "src/core/CMakeFiles/s3vcd_core.dir/vafile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fingerprint/CMakeFiles/s3vcd_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/hilbert/CMakeFiles/s3vcd_hilbert.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/s3vcd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/s3vcd_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
