file(REMOVE_RECURSE
  "CMakeFiles/s3vcd_core.dir/database.cc.o"
  "CMakeFiles/s3vcd_core.dir/database.cc.o.d"
  "CMakeFiles/s3vcd_core.dir/distortion_model.cc.o"
  "CMakeFiles/s3vcd_core.dir/distortion_model.cc.o.d"
  "CMakeFiles/s3vcd_core.dir/dynamic_index.cc.o"
  "CMakeFiles/s3vcd_core.dir/dynamic_index.cc.o.d"
  "CMakeFiles/s3vcd_core.dir/external_builder.cc.o"
  "CMakeFiles/s3vcd_core.dir/external_builder.cc.o.d"
  "CMakeFiles/s3vcd_core.dir/filter.cc.o"
  "CMakeFiles/s3vcd_core.dir/filter.cc.o.d"
  "CMakeFiles/s3vcd_core.dir/index.cc.o"
  "CMakeFiles/s3vcd_core.dir/index.cc.o.d"
  "CMakeFiles/s3vcd_core.dir/knn.cc.o"
  "CMakeFiles/s3vcd_core.dir/knn.cc.o.d"
  "CMakeFiles/s3vcd_core.dir/lsh.cc.o"
  "CMakeFiles/s3vcd_core.dir/lsh.cc.o.d"
  "CMakeFiles/s3vcd_core.dir/parallel.cc.o"
  "CMakeFiles/s3vcd_core.dir/parallel.cc.o.d"
  "CMakeFiles/s3vcd_core.dir/pseudo_disk.cc.o"
  "CMakeFiles/s3vcd_core.dir/pseudo_disk.cc.o.d"
  "CMakeFiles/s3vcd_core.dir/synthetic_db.cc.o"
  "CMakeFiles/s3vcd_core.dir/synthetic_db.cc.o.d"
  "CMakeFiles/s3vcd_core.dir/tuner.cc.o"
  "CMakeFiles/s3vcd_core.dir/tuner.cc.o.d"
  "CMakeFiles/s3vcd_core.dir/vafile.cc.o"
  "CMakeFiles/s3vcd_core.dir/vafile.cc.o.d"
  "libs3vcd_core.a"
  "libs3vcd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3vcd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
