# Empty dependencies file for s3vcd_core.
# This may be replaced when dependencies are built.
