#!/usr/bin/env bash
# Builds the concurrency-sensitive tests under ThreadSanitizer and runs
# them. The obs metrics/trace layer, the thread pool and the sharded query
# service (admission queue, worker fan-out, selection cache) are the code
# most exposed to data races; this is the gate described in
# docs/observability.md. The descriptor-codec and scan-kernel tests ride
# along so the quantized decode kernels run under the gate too.
#
# A second leg rebuilds the kernel/codec/store tests under
# UndefinedBehaviorSanitizer (-DS3VCD_SANITIZE=undefined): the fused
# decode kernels lean on unsigned wraparound and per-function ISA targets,
# exactly the code UBSan is good at auditing. The service tests join this
# leg too — the hedging/cancellation machinery (first-wins claims, token
# buckets, quantile arithmetic) runs under both sanitizers — as does the
# backend parity suite, whose vamana legs drive the gather kernels and the
# graph blob reader (bounds arithmetic on untrusted header fields) under
# both sanitizers. Skip it with S3VCD_SKIP_UBSAN=1.
#
# Usage: tools/run_tsan_tests.sh [tsan-build-dir [ubsan-build-dir]]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"
ubsan_dir="${2:-${repo_root}/build-ubsan}"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DS3VCD_SANITIZE=thread
cmake --build "${build_dir}" --target obs_test parallel_test service_test \
  backend_parity_test scan_kernel_test filter_table_test store_test \
  segment_parity_test descriptor_codec_test -j"$(nproc)"

(
  cd "${build_dir}"
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --output-on-failure \
    -R '^(obs_test|parallel_test|service_test|backend_parity_test|scan_kernel_test|scan_kernel_test_nosimd|scan_kernel_test_forced_scalar|filter_table_test|store_test|segment_parity_test|descriptor_codec_test)$'
)
echo "TSan run passed."

if [[ -n "${S3VCD_SKIP_UBSAN:-}" ]]; then
  echo "Skipping UBSan leg (S3VCD_SKIP_UBSAN set)."
  exit 0
fi

cmake -S "${repo_root}" -B "${ubsan_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DS3VCD_SANITIZE=undefined
cmake --build "${ubsan_dir}" --target scan_kernel_test store_test \
  segment_parity_test descriptor_codec_test service_test \
  backend_parity_test -j"$(nproc)"

(
  cd "${ubsan_dir}"
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --output-on-failure \
    -R '^(scan_kernel_test|scan_kernel_test_nosimd|scan_kernel_test_forced_scalar|store_test|segment_parity_test|descriptor_codec_test|service_test|backend_parity_test)$'
)
echo "UBSan run passed."
