#!/usr/bin/env bash
# Builds the concurrency-sensitive tests under ThreadSanitizer and runs
# them. The obs metrics/trace layer, the thread pool and the sharded query
# service (admission queue, worker fan-out, selection cache) are the code
# most exposed to data races; this is the gate described in
# docs/observability.md.
#
# Usage: tools/run_tsan_tests.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DS3VCD_SANITIZE=thread
cmake --build "${build_dir}" --target obs_test parallel_test service_test \
  backend_parity_test scan_kernel_test filter_table_test store_test \
  segment_parity_test -j"$(nproc)"

cd "${build_dir}"
TSAN_OPTIONS="halt_on_error=1" \
  ctest --output-on-failure \
  -R '^(obs_test|parallel_test|service_test|backend_parity_test|scan_kernel_test|scan_kernel_test_nosimd|filter_table_test|store_test|segment_parity_test)$'
echo "TSan run passed."
