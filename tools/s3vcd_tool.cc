// s3vcd_tool — operational command line for the S3VCD system.
//
//   s3vcd_tool build       --output DB [--videos N] [--frames F]
//                          [--distractors M] [--seed S] [--order K]
//                          [--memory-records N] [--external]
//   s3vcd_tool inspect     --db DB
//   s3vcd_tool verify      --db DB
//   s3vcd_tool query       --db DB [--backend NAME] [--alpha A] [--sigma S]
//                          [--depth P] [--count N] [--seed S]
//                          [--pseudo-disk R] [--store-dir DIR]
//                          [--codec exact|lvq4|lvq8]
//                          [--metrics-out FILE] [--trace-out FILE]
//   s3vcd_tool compact     --store-dir DIR [--codec exact|lvq4|lvq8]
//   s3vcd_tool monitor     --db DB [--backend NAME] [--stream-frames F]
//                          [--alpha A] [--sigma S] [--threshold T] [--seed S]
//                          [--metrics-out FILE] [--trace-out FILE]
//   s3vcd_tool serve-batch --db DB [--backend NAME] [--shards K]
//                          [--policy range|hash]
//                          [--workers W] [--threads T] [--queue-depth Q]
//                          [--batch N] [--batches B] [--alpha A]
//                          [--sigma S] [--depth P] [--deadline-ms D]
//                          [--cache-capacity C] [--seed S]
//                          [--stats-interval-ms I] [--slow-log-out FILE]
//                          [--slow-threshold-ms T]
//                          [--metrics-out FILE] [--trace-out FILE]
//   s3vcd_tool loadgen     --db DB [--mode open|closed]
//                          [--arrival poisson|uniform] [--base-qps Q]
//                          [--clients K] [--think-ms T] [--ramp CSV]
//                          [--phase-s S] [--calibrate-s S] [--batch N]
//                          [--mix-stat W] [--mix-range W] [--mix-batch W]
//                          [--epsilon E] [--deadline-ms D] [--seed S]
//                          [--query-pool N] [--backend NAME] [--shards K]
//                          [--policy range|hash] [--workers W]
//                          [--threads T] [--queue-depth Q]
//                          [--cache-capacity C] [--alpha A] [--sigma S]
//                          [--depth P] [--report-interval-ms I]
//                          [--report-format text|jsonl] [--json-out FILE]
//                          [--slow-log-out FILE] [--slow-threshold-ms T]
//                          [--smoke 1]
//                          [--metrics-out FILE] [--trace-out FILE]
//
// `build` synthesizes a reference corpus (the library normally ingests real
// video; the tool uses the synthetic generator so it is runnable anywhere),
// `query` replays distorted self-queries with timing, `monitor` embeds a
// copy of one reference video in a synthetic stream and watches it,
// `serve-batch` drives the sharded batch query service (ShardedSearcher +
// QueryService) under producer pressure, exercising admission control and
// the selection cache, and `loadgen` drives the same service through a
// closed- or open-loop load ramp and reports goodput, reject rate and
// latency percentiles per phase (docs/query_service.md has the saturation
// methodology). See docs/query_service.md.
//
// Flags accept both `--flag value` and `--flag=value`; unknown flags are
// rejected with the command's flag table (run a command with no flags, or
// see README.md, for the full table). `--backend NAME` selects the search
// structure from the SearcherRegistry ("s3", "dynamic", "vafile", "lsh",
// "seqscan", "segment"); an unknown name is rejected with the registered
// list before any database is loaded. The "segment" backend serves from a
// persistent on-disk segment store: `query --backend segment --store-dir D`
// ingests the database into D on first use and reopens D from its manifest
// on every later run (the .s3db is then only the query-sampling corpus);
// `compact --store-dir D` runs the store's tiered compaction to a steady
// state. See docs/segment_format.md. On query/monitor/serve-batch,
// `--metrics-out FILE` dumps a JSON snapshot of the global metrics registry
// covering the run and `--trace-out FILE` records Chrome trace-event JSON
// (load it in chrome://tracing). `--pseudo-disk R` additionally replays the
// query batch through the file-based PseudoDiskSearcher with 2^R curve
// sections, so the emitted metrics and trace cover the pseudo-disk I/O
// path too. See docs/observability.md.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "cbcd/detector.h"
#include "core/database.h"
#include "core/descriptor_codec.h"
#include "core/distortion_model.h"
#include "core/external_builder.h"
#include "core/index.h"
#include "core/pseudo_disk.h"
#include "core/searcher.h"
#include "core/synthetic_db.h"
#include "core/tuner.h"
#include "fingerprint/extractor.h"
#include "media/synthetic.h"
#include "obs/interval_reporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/loadgen.h"
#include "service/query_service.h"
#include "service/replicated_searcher.h"
#include "service/sharded_searcher.h"
#include "store/segment_searcher.h"
#include "store/segment_store.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace s3vcd::tool {
namespace {

// Minimal flag parser; flags may appear in any order and accept both
// `--flag value` and `--flag=value` spellings.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        bad_ = argv[i];
        return;
      }
      const char* body = argv[i] + 2;
      if (const char* eq = std::strchr(body, '=')) {
        values_[std::string(body, static_cast<size_t>(eq - body))] = eq + 1;
        continue;
      }
      if (i + 1 >= argc) {
        bad_ = argv[i];
        return;
      }
      values_[body] = argv[++i];
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  const char* bad() const { return bad_; }
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
  const char* bad_ = nullptr;
  int consumed_ = 0;
};

// The flag table of one command; the single source of truth for usage
// output and unknown-flag rejection (mirrored in README.md).
struct FlagSpec {
  const char* name;
  const char* help;
};

struct CommandSpec {
  const char* name;
  const char* summary;
  std::vector<FlagSpec> flags;
};

const std::vector<CommandSpec>& Commands() {
  static const std::vector<CommandSpec>* commands = new std::vector<
      CommandSpec>{
      {"build",
       "synthesize a reference corpus and write a .s3db database",
       {{"output", "output database path (required)"},
        {"videos", "number of reference videos (default 4)"},
        {"frames", "frames per reference video (default 200)"},
        {"distractors", "padding fingerprints (default 100000)"},
        {"seed", "deterministic seed (default 1)"},
        {"order", "Hilbert curve order, bits/component (default 8)"},
        {"memory-records", "external build memory bound (default 1048576)"},
        {"external", "trailing switch: bounded-memory external build"}}},
      {"inspect",
       "print sizes, ids and curve-section occupancy of a database",
       {{"db", "database path (required)"}}},
      {"verify",
       "check the database checksum and Hilbert ordering",
       {{"db", "database path (required)"}}},
      {"query",
       "replay distorted self-queries with timing and metrics",
       {{"db", "database path (required)"},
        {"backend", "registry searcher backend (default s3)"},
        {"alpha", "statistical expectation (default 0.8)"},
        {"sigma", "distortion model sigma (default 15)"},
        {"depth", "partition depth p; 0 = auto-tune (default 0)"},
        {"count", "number of queries (default 100)"},
        {"seed", "deterministic seed (default 99)"},
        {"pseudo-disk", "also replay via pseudo-disk with 2^R sections"},
        {"store-dir", "segment backend: persistent store directory"},
        {"codec", "segment/vamana backends: descriptor codec "
                  "(exact, lvq4, lvq8; default exact)"},
        {"graph-degree", "vamana backend: graph out-degree bound R "
                         "(default 32)"},
        {"beam-width", "vamana backend: query beam width L (default 64)"},
        {"metrics-out", "write a metrics JSON snapshot to FILE"},
        {"trace-out", "write Chrome trace-event JSON to FILE"}}},
      {"compact",
       "compact a persistent segment store to a steady state",
       {{"store-dir", "segment store directory (required)"},
        {"codec", "re-encode compaction output with this descriptor codec "
                  "(exact, lvq4, lvq8; default exact)"}}},
      {"monitor",
       "watch a synthetic stream with an embedded copy",
       {{"db", "database path (required)"},
        {"backend", "registry searcher backend (default s3)"},
        {"alpha", "statistical expectation (default 0.8)"},
        {"sigma", "distortion model sigma (default 12)"},
        {"stream-frames", "filler frames before/after the copy (default 150)"},
        {"threshold", "nsim detection threshold (default 8)"},
        {"seed", "seed of the embedded reference video (default 1)"},
        {"metrics-out", "write a metrics JSON snapshot to FILE"},
        {"trace-out", "write Chrome trace-event JSON to FILE"}}},
      {"serve-batch",
       "drive the sharded batch query service under producer pressure",
       {{"db", "database path (required)"},
        {"backend", "per-shard registry backend (default dynamic)"},
        {"graph-degree", "vamana backend: graph out-degree bound R "
                         "(default 32)"},
        {"beam-width", "vamana backend: query beam width L (default 64)"},
        {"shards", "number of index shards K (default 4)"},
        {"policy", "sharding policy: range | hash (default range)"},
        {"workers", "service worker threads per replica (default 2)"},
        {"threads", "fan-out threads per batch (default 2)"},
        {"queue-depth", "admission queue bound, in batches (default 8)"},
        {"replicas", "identical shard-group replicas R (default 1)"},
        {"hedge-ms", "fixed hedge delay, ms; 0 = off (default 0)"},
        {"hedge-quantile", "adaptive hedge at this e2e quantile; 0 = off"},
        {"quota-qps", "per-client token-bucket rate; 0 = off (default 0)"},
        {"quota-burst", "token-bucket burst; 0 = rate (default 0)"},
        {"batch", "queries per batch (default 32)"},
        {"batches", "batches to submit (default 64)"},
        {"alpha", "statistical expectation (default 0.8)"},
        {"sigma", "distortion model sigma (default 15)"},
        {"depth", "partition depth p (default 12)"},
        {"deadline-ms", "per-batch deadline; 0 = none (default 0)"},
        {"cache-capacity", "selection cache entries; 0 = off (default 4096)"},
        {"seed", "deterministic seed (default 99)"},
        {"stats-interval-ms", "live interval reporter period; 0 = off"},
        {"slow-log-out", "write slow-batch Chrome trace to FILE"},
        {"slow-threshold-ms", "slow-batch trigger; 0 = rolling p99"},
        {"metrics-out", "write a metrics JSON snapshot to FILE"},
        {"trace-out", "write Chrome trace-event JSON to FILE"}}},
      {"loadgen",
       "drive the query service through a load ramp and report latency",
       {{"db", "database path (required)"},
        {"mode", "load mode: open | closed (default open)"},
        {"arrival", "open-loop jitter: poisson | uniform (default poisson)"},
        {"base-qps", "open-loop 1x rate, batches/s; 0 = calibrate"},
        {"clients", "closed-loop 1x concurrent clients (default 4)"},
        {"think-ms", "closed-loop per-client think time (default 0)"},
        {"ramp", "phase multipliers, csv (default 0.5,1,2,4)"},
        {"phase-s", "seconds per ramp phase (default 5)"},
        {"calibrate-s", "calibration run length (default 2)"},
        {"batch", "queries per stat-batch request (default 8)"},
        {"mix-stat", "weight of 1-query stat batches (default 0.6)"},
        {"mix-range", "weight of 1-query range batches (default 0.2)"},
        {"mix-batch", "weight of multi-query stat batches (default 0.2)"},
        {"epsilon", "range radius; 0 = equal-expectation (default 0)"},
        {"deadline-ms", "per-batch deadline; 0 = none (default 0)"},
        {"seed", "deterministic seed (default 42)"},
        {"query-pool", "distinct query fingerprints (default 512)"},
        {"backend", "per-shard registry backend (default dynamic)"},
        {"graph-degree", "vamana backend: graph out-degree bound R "
                         "(default 32)"},
        {"beam-width", "vamana backend: query beam width L (default 64)"},
        {"shards", "number of index shards K (default 4)"},
        {"policy", "sharding policy: range | hash (default range)"},
        {"workers", "service worker threads per replica (default 2)"},
        {"threads", "fan-out threads per batch (default 1)"},
        {"queue-depth", "admission queue bound, in batches (default 32)"},
        {"replicas", "identical shard-group replicas R (default 1)"},
        {"hedge-ms", "fixed hedge delay, ms; 0 = off (default 0)"},
        {"hedge-quantile", "adaptive hedge at this e2e quantile; 0 = off"},
        {"bulk-fraction", "share of requests on the bulk lane (default 0)"},
        {"quota-qps", "per-client token-bucket rate; 0 = off (default 0)"},
        {"quota-burst", "token-bucket burst; 0 = rate (default 0)"},
        {"quota-clients", "round-robin client tags; 0 = untagged"},
        {"stall-every", "inject a stall every N popped batches; 0 = off"},
        {"stall-ms", "injected replica stall duration, ms (default 0)"},
        {"cache-capacity", "selection cache entries; 0 = off (default 4096)"},
        {"alpha", "statistical expectation (default 0.8)"},
        {"sigma", "distortion model sigma (default 15)"},
        {"depth", "partition depth p (default 12)"},
        {"report-interval-ms", "live interval reporter period; 0 = off"},
        {"report-format", "interval report format: text | jsonl"},
        {"json-out", "write the machine-readable report to FILE"},
        {"slow-log-out", "write slow-batch Chrome trace to FILE"},
        {"slow-threshold-ms", "slow-batch trigger; 0 = rolling p99"},
        {"smoke", "1 = tiny sub-second-phase ramp preset for CI smoke"},
        {"metrics-out", "write a metrics JSON snapshot to FILE"},
        {"trace-out", "write Chrome trace-event JSON to FILE"}}},
  };
  return *commands;
}

const CommandSpec* FindCommand(const std::string& name) {
  for (const CommandSpec& command : Commands()) {
    if (name == command.name) {
      return &command;
    }
  }
  return nullptr;
}

void PrintCommandUsage(const CommandSpec& command) {
  std::fprintf(stderr, "usage: s3vcd_tool %s [--flag value | --flag=value]...\n",
               command.name);
  std::fprintf(stderr, "  %s\n", command.summary);
  for (const FlagSpec& flag : command.flags) {
    std::fprintf(stderr, "  --%-15s %s\n", flag.name, flag.help);
  }
}

// Rejects flags the command does not declare: a typo like --sigm silently
// falling back to the default is exactly the failure mode an operational
// tool must not have.
bool RejectUnknownFlags(const CommandSpec& command, const Flags& flags) {
  bool ok = true;
  for (const auto& kv : flags.values()) {
    bool known = false;
    for (const FlagSpec& flag : command.flags) {
      known |= kv.first == flag.name;
    }
    if (!known) {
      std::fprintf(stderr, "unknown flag --%s for command %s\n",
                   kv.first.c_str(), command.name);
      ok = false;
    }
  }
  if (!ok) {
    PrintCommandUsage(command);
  }
  return ok;
}

// Validates a --backend value against the SearcherRegistry before any
// expensive work (a typo must not cost a database load); the rejection
// lists the registered names so the fix is obvious.
bool ValidateBackend(const std::string& command, const std::string& backend) {
  if (core::SearcherRegistry::Global().Contains(backend)) {
    return true;
  }
  std::fprintf(stderr, "%s: unknown backend '%s'; registered backends: %s\n",
               command.c_str(), backend.c_str(),
               core::SearcherRegistry::Global().NamesCsv().c_str());
  return false;
}

// Maps the vamana graph knobs (--graph-degree, --beam-width) into a
// SearcherConfig; other backends ignore the fields.
void ApplyVamanaFlags(const Flags& flags, core::SearcherConfig* config) {
  config->vamana_graph_degree =
      static_cast<int>(flags.GetInt("graph-degree", 32));
  config->vamana_beam_width =
      static_cast<int>(flags.GetInt("beam-width", 64));
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return (std::fclose(f) == 0) && ok;
}

// --metrics-out / --trace-out plumbing shared by query and monitor.
// Begin() brackets the measured region: it zeroes the registry (so the
// snapshot covers exactly the command's work, not e.g. depth tuning) and
// turns tracing on when a trace file was requested. Finish() writes the
// requested files.
class ObsOutputs {
 public:
  explicit ObsOutputs(const Flags& flags)
      : metrics_path_(flags.Get("metrics-out", "")),
        trace_path_(flags.Get("trace-out", "")) {}

  void Begin() {
    obs::MetricsRegistry::Global().Reset();
    if (!trace_path_.empty()) {
      obs::TraceRecorder::Global().Clear();
      obs::TraceRecorder::Global().Enable();
    }
  }

  // Returns 0 on success, 1 if a requested file could not be written.
  int Finish() {
    int rc = 0;
    if (!metrics_path_.empty()) {
      const std::string json =
          obs::MetricsRegistry::Global().Snapshot().ToJson();
      if (WriteTextFile(metrics_path_, json)) {
        std::printf("wrote metrics JSON to %s\n", metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "failed to write metrics to %s\n",
                     metrics_path_.c_str());
        rc = 1;
      }
    }
    if (!trace_path_.empty()) {
      obs::TraceRecorder::Global().Disable();
      if (obs::TraceRecorder::Global().WriteChromeJsonFile(trace_path_)) {
        std::printf("wrote Chrome trace to %s (open in chrome://tracing)\n",
                    trace_path_.c_str());
      } else {
        std::fprintf(stderr, "failed to write trace to %s\n",
                     trace_path_.c_str());
        rc = 1;
      }
    }
    return rc;
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

media::VideoSequence Clip(uint64_t seed, int frames) {
  media::SyntheticVideoConfig config;
  config.width = 96;
  config.height = 80;
  config.num_frames = frames;
  config.seed = seed;
  return media::GenerateSyntheticVideo(config);
}

int CmdBuild(const Flags& flags, bool external) {
  const std::string output = flags.Get("output", "");
  if (output.empty()) {
    std::fprintf(stderr, "build: --output is required\n");
    return 2;
  }
  const int videos = static_cast<int>(flags.GetInt("videos", 4));
  const int frames = static_cast<int>(flags.GetInt("frames", 200));
  const uint64_t distractors =
      static_cast<uint64_t>(flags.GetInt("distractors", 100000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int order = static_cast<int>(flags.GetInt("order", 8));

  Stopwatch watch;
  const fp::FingerprintExtractor extractor;
  std::vector<fp::Fingerprint> pool;
  Rng rng(seed);

  Status status = Status::OK();
  uint64_t total = 0;
  auto ingest = [&](auto& builder) -> Status {
    for (int v = 0; v < videos; ++v) {
      const auto fps = extractor.Extract(Clip(seed + v, frames));
      std::printf("video %d: %zu fingerprints\n", v, fps.size());
      for (const auto& lf : fps) {
        pool.push_back(lf.descriptor);
      }
      S3VCD_RETURN_IF_ERROR(
          builder.AddVideo(static_cast<uint32_t>(v), fps));
    }
    core::DistractorOptions options;
    for (uint64_t i = 0; i < distractors; ++i) {
      const fp::Fingerprint base =
          pool[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(pool.size()) - 1))];
      const fp::Fingerprint d =
          core::DistortFingerprint(base, options.jitter_sigma, &rng);
      S3VCD_RETURN_IF_ERROR(builder.Add(
          d,
          options.first_id +
              static_cast<uint32_t>(i / options.fingerprints_per_video),
          static_cast<uint32_t>(rng.UniformInt(0, options.max_time_code)),
          0, 0));
    }
    return Status::OK();
  };

  if (external) {
    core::ExternalBuilderOptions options;
    options.order = order;
    options.max_records_in_memory = static_cast<size_t>(
        flags.GetInt("memory-records", 1 << 20));
    core::ExternalDatabaseBuilder builder(output, options);
    status = ingest(builder);
    if (status.ok()) {
      status = builder.Finish();
    }
    total = builder.total_records();
  } else {
    // In-memory build wrapped to present the same Status-based interface.
    struct Wrapper {
      core::DatabaseBuilder builder;
      Status AddVideo(uint32_t id,
                      const std::vector<fp::LocalFingerprint>& fps) {
        builder.AddVideo(id, fps);
        return Status::OK();
      }
      Status Add(const fp::Fingerprint& f, uint32_t id, uint32_t tc, float x,
                 float y) {
        builder.Add(f, id, tc, x, y);
        return Status::OK();
      }
    };
    Wrapper wrapper{core::DatabaseBuilder(order)};
    status = ingest(wrapper);
    if (status.ok()) {
      total = wrapper.builder.size();
      status = wrapper.builder.Build().SaveToFile(output);
    }
  }
  if (!status.ok()) {
    std::fprintf(stderr, "build failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %llu records to %s in %.1f s (%s build)\n",
              static_cast<unsigned long long>(total), output.c_str(),
              watch.ElapsedSeconds(), external ? "external" : "in-memory");
  return 0;
}

int CmdVerify(const Flags& flags) {
  const std::string path = flags.Get("db", "");
  auto db = core::FingerprintDatabase::LoadFromFile(path);
  if (!db.ok()) {
    std::fprintf(stderr, "verify FAILED: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  std::printf("verify OK: %zu records, order %d, checksum valid, "
              "curve-ordered\n",
              db->size(), db->order());
  return 0;
}

int CmdInspect(const Flags& flags) {
  const std::string path = flags.Get("db", "");
  auto db = core::FingerprintDatabase::LoadFromFile(path);
  if (!db.ok()) {
    std::fprintf(stderr, "inspect failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  std::printf("records:      %zu\n", db->size());
  std::printf("curve order:  %d (key bits %d)\n", db->order(),
              db->curve().key_bits());
  std::printf("memory:       %.1f MiB\n",
              db->MemoryBytes() / 1048576.0);
  std::map<uint32_t, uint64_t> per_id;
  for (size_t i = 0; i < db->size(); ++i) {
    ++per_id[db->record(i).id];
  }
  std::printf("distinct ids: %zu\n", per_id.size());
  // Occupancy of the 16 top-level curve sections.
  if (!db->empty()) {
    const int shift = db->curve().key_bits() - 4;
    uint64_t counts[16] = {};
    for (size_t i = 0; i < db->size(); ++i) {
      ++counts[(db->key(i) >> shift).low64() & 15];
    }
    std::printf("top-level section occupancy:");
    for (uint64_t c : counts) {
      std::printf(" %.1f%%", 100.0 * c / db->size());
    }
    std::printf("\n");
  }
  return 0;
}

int CmdQuery(const Flags& flags) {
  const std::string backend = flags.Get("backend", "s3");
  if (!ValidateBackend("query", backend)) {
    return 2;
  }
  const std::string path = flags.Get("db", "");
  auto db = core::FingerprintDatabase::LoadFromFile(path);
  if (!db.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  const double alpha = flags.GetDouble("alpha", 0.8);
  const double sigma = flags.GetDouble("sigma", 15.0);
  const int count = static_cast<int>(flags.GetInt("count", 100));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 99)));

  // Sample everything drawn from the records — tuning queries, then the
  // (target, distorted self-query) pairs — before the registry consumes
  // the database.
  const size_t db_size = db->size();
  std::vector<fp::Fingerprint> tune;
  int depth = static_cast<int>(flags.GetInt("depth", 0));
  if (depth == 0) {
    for (int i = 0; i < 16; ++i) {
      tune.push_back(core::DistortFingerprint(
          db->record(static_cast<size_t>(rng.UniformInt(
                         0, static_cast<int64_t>(db_size) - 1)))
              .descriptor,
          sigma, &rng));
    }
  }
  std::vector<fp::Fingerprint> targets;
  std::vector<fp::Fingerprint> queries;
  targets.reserve(static_cast<size_t>(count));
  queries.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    targets.push_back(db->record(static_cast<size_t>(rng.UniformInt(
                                     0, static_cast<int64_t>(db_size) - 1)))
                          .descriptor);
    queries.push_back(
        core::DistortFingerprint(targets.back(), sigma, &rng));
  }

  // The segment backend persists across runs: when --store-dir already
  // holds a manifest the store is authoritative, so hand the factory an
  // empty database (the loaded .s3db keeps serving as the query-sampling
  // corpus above). A fresh --store-dir ingests the database once.
  core::SearcherConfig config;
  config.segment_store_dir = flags.Get("store-dir", "");
  config.segment_codec = flags.Get("codec", "exact");
  config.vamana_codec = config.segment_codec;
  ApplyVamanaFlags(flags, &config);
  if (backend == "vamana") {
    // Persist the built graph next to the database so repeat runs load it
    // instead of rebuilding (invalidated automatically when the records
    // or the build options change — see core/vamana.h).
    config.vamana_graph_path = path + ".vamana";
  }
  {
    core::DescriptorCodecKind parsed;
    if (!core::DescriptorCodecFromName(config.segment_codec, &parsed)) {
      std::fprintf(stderr, "query: unknown --codec '%s' (expected %s)\n",
                   config.segment_codec.c_str(),
                   core::DescriptorCodecNamesCsv().c_str());
      return 2;
    }
  }
  core::FingerprintDatabase backend_db = std::move(*db);
  if (!config.segment_store_dir.empty() &&
      std::filesystem::exists(config.segment_store_dir + "/CURRENT")) {
    std::printf("segment store %s already holds records; serving from its "
                "manifest\n",
                config.segment_store_dir.c_str());
    backend_db = core::DatabaseBuilder(backend_db.order()).Build();
  }
  auto searcher = core::SearcherRegistry::Global().Create(
      backend, std::move(backend_db), config);
  if (!searcher.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 searcher.status().ToString().c_str());
    return 1;
  }
  const core::Searcher& index = **searcher;
  const core::GaussianDistortionModel model(sigma);
  if (depth == 0) {
    // Depth auto-tuning walks the block-tree ladder of the S3 structure;
    // other backends ignore the depth parameter.
    const auto* s3 = dynamic_cast<const core::S3Index*>(searcher->get());
    if (s3 != nullptr) {
      depth = core::TuneDepth(*s3, model, tune, alpha,
                              core::DefaultDepthCandidates(db_size, 160))
                  .best_depth;
      std::printf("tuned depth p = %d\n", depth);
    } else {
      depth = 12;
      std::printf("backend %s has no tunable depth; using p = %d\n",
                  backend.c_str(), depth);
    }
  }
  core::QueryOptions options;
  options.filter.alpha = alpha;
  options.filter.depth = depth;
  ObsOutputs obs_out(flags);
  obs_out.Begin();
  // Retrieval check: the target's match distance must show up (nearly)
  // exactly. Quantized backends report distances computed on decoded
  // descriptors, which sit within codec_max_error of the exact ones, so
  // the tolerance widens by that bound.
  const double hit_tolerance = 1e-3 + index.Stats().codec_max_error;
  int hits = 0;
  uint64_t matches = 0;
  core::QueryStats totals;
  Stopwatch watch;
  for (int i = 0; i < count; ++i) {
    const fp::Fingerprint& q = queries[static_cast<size_t>(i)];
    const auto result = index.StatQuery(q, model, options);
    matches += result.matches.size();
    totals.blocks_selected += result.stats.blocks_selected;
    totals.nodes_visited += result.stats.nodes_visited;
    totals.ranges_scanned += result.stats.ranges_scanned;
    totals.records_scanned += result.stats.records_scanned;
    totals.selection_ns += result.stats.selection_ns;
    totals.refine_ns += result.stats.refine_ns;
    const double target_dist =
        fp::Distance(q, targets[static_cast<size_t>(i)]);
    for (const auto& m : result.matches) {
      if (std::abs(m.distance - target_dist) < hit_tolerance) {
        ++hits;
        break;
      }
    }
  }
  std::printf(
      "%d self-queries (backend=%s alpha=%.2f sigma=%.1f p=%d "
      "scan_kernel=%s codec=%s): retrieval %.1f%%, avg %.3f ms, avg %.0f "
      "results\n",
      count, backend.c_str(), alpha, sigma, depth,
      core::ActiveScanKernelName(), index.Stats().codec.c_str(),
      100.0 * hits / count, watch.ElapsedMillis() / count,
      static_cast<double>(matches) / count);
  std::printf(
      "selection/refine split: selection %.1f us/query, refine %.1f "
      "us/query\n",
      static_cast<double>(totals.selection_ns) * 1e-3 / count,
      static_cast<double>(totals.refine_ns) * 1e-3 / count);

  // Per-query QueryStats and the global registry count the same events;
  // print both so a metrics consumer can cross-check (they must agree).
  {
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::Global().Snapshot();
    std::printf(
        "metrics cross-check: records_scanned stats=%llu counter=%llu, "
        "blocks_selected stats=%llu counter=%llu (%s)\n",
        static_cast<unsigned long long>(totals.records_scanned),
        static_cast<unsigned long long>(
            snap.CounterOr0("index.records_scanned")),
        static_cast<unsigned long long>(totals.blocks_selected),
        static_cast<unsigned long long>(
            snap.CounterOr0("index.blocks_selected")),
        totals.records_scanned == snap.CounterOr0("index.records_scanned") &&
                totals.blocks_selected ==
                    snap.CounterOr0("index.blocks_selected")
            ? "match"
            : "MISMATCH");
  }

  // Optional pseudo-disk replay of the same batch, so the emitted metrics
  // and trace also cover the file-backed I/O path.
  const int section_depth = static_cast<int>(flags.GetInt("pseudo-disk", -1));
  if (section_depth >= 0) {
    core::PseudoDiskOptions pd_options;
    pd_options.section_depth = section_depth;
    pd_options.query_depth = std::max(depth, section_depth);
    pd_options.alpha = alpha;
    auto searcher = core::PseudoDiskSearcher::Open(path, pd_options);
    if (!searcher.ok()) {
      std::fprintf(stderr, "pseudo-disk open failed: %s\n",
                   searcher.status().ToString().c_str());
      return 1;
    }
    std::vector<std::vector<core::Match>> pd_results;
    core::PseudoDiskBatchStats pd_stats;
    const Status status =
        searcher->SearchBatch(queries, model, &pd_results, &pd_stats);
    if (!status.ok()) {
      std::fprintf(stderr, "pseudo-disk batch failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf(
        "pseudo-disk replay (r=%d): %llu sections loaded, %llu records "
        "loaded, %llu scanned, %.1f ms load + %.1f ms refine\n",
        section_depth,
        static_cast<unsigned long long>(pd_stats.sections_loaded),
        static_cast<unsigned long long>(pd_stats.records_loaded),
        static_cast<unsigned long long>(pd_stats.records_scanned),
        pd_stats.load_seconds * 1e3, pd_stats.refine_seconds * 1e3);
  }
  return obs_out.Finish();
}

// Opens a persistent segment store and runs its size-tiered compaction to
// a steady state, reporting the generation and segment population before
// and after — the offline maintenance entry point of the segment backend
// (the online path compacts through Searcher::Compact).
int CmdCompact(const Flags& flags) {
  const std::string store_dir = flags.Get("store-dir", "");
  if (store_dir.empty()) {
    std::fprintf(stderr, "compact: --store-dir is required\n");
    return 2;
  }
  // Compaction re-encodes merged runs, so --codec migrates a store to a
  // new descriptor codec (segments not touched by a merge keep theirs).
  store::SegmentStoreOptions store_options;
  const std::string codec_name = flags.Get("codec", "exact");
  if (!core::DescriptorCodecFromName(codec_name, &store_options.codec)) {
    std::fprintf(stderr, "compact: unknown --codec '%s' (expected %s)\n",
                 codec_name.c_str(), core::DescriptorCodecNamesCsv().c_str());
    return 2;
  }
  auto store = store::SegmentStore::Open(store_dir, 0, store_options);
  if (!store.ok()) {
    std::fprintf(stderr, "compact failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  std::printf("before: generation %" PRIu64 ", %zu segments, %" PRIu64
              " records, %.1f MiB on disk\n",
              (*store)->generation(), (*store)->num_segments(),
              (*store)->total_records(), (*store)->DiskBytes() / 1048576.0);
  Stopwatch watch;
  const Status status = (*store)->CompactAll();
  if (!status.ok()) {
    std::fprintf(stderr, "compact failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("after:  generation %" PRIu64 ", %zu segments, %" PRIu64
              " records, %.1f MiB on disk (%.2f s)\n",
              (*store)->generation(), (*store)->num_segments(),
              (*store)->total_records(), (*store)->DiskBytes() / 1048576.0,
              watch.ElapsedSeconds());
  return 0;
}

int CmdMonitor(const Flags& flags) {
  const std::string backend = flags.Get("backend", "s3");
  if (!ValidateBackend("monitor", backend)) {
    return 2;
  }
  const std::string path = flags.Get("db", "");
  auto db = core::FingerprintDatabase::LoadFromFile(path);
  if (!db.ok()) {
    std::fprintf(stderr, "monitor failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  auto searcher =
      core::SearcherRegistry::Global().Create(backend, std::move(*db));
  if (!searcher.ok()) {
    std::fprintf(stderr, "monitor failed: %s\n",
                 searcher.status().ToString().c_str());
    return 1;
  }
  const double alpha = flags.GetDouble("alpha", 0.8);
  const double sigma = flags.GetDouble("sigma", 12.0);
  const int stream_frames =
      static_cast<int>(flags.GetInt("stream-frames", 150));
  const uint64_t copy_seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int threshold = static_cast<int>(flags.GetInt("threshold", 8));

  // Stream: filler + a rerun of reference video 0 (seed convention of
  // CmdBuild) + filler.
  media::VideoSequence stream = Clip(987654, stream_frames);
  const media::VideoSequence copy = Clip(copy_seed, 200);
  const int copy_start = stream.num_frames();
  stream.frames.insert(stream.frames.end(), copy.frames.begin(),
                       copy.frames.end());
  const media::VideoSequence tail = Clip(876543, stream_frames);
  stream.frames.insert(stream.frames.end(), tail.frames.begin(),
                       tail.frames.end());

  const core::GaussianDistortionModel model(sigma);
  cbcd::DetectorOptions options;
  options.query.filter.alpha = alpha;
  options.query.filter.depth = 14;
  options.vote.use_spatial_coherence = true;
  options.nsim_threshold = threshold;
  const cbcd::CopyDetector detector(searcher->get(), &model, options);
  cbcd::StreamMonitor monitor(&detector, cbcd::StreamMonitor::Options{});

  const fp::FingerprintExtractor extractor;
  const auto fps = extractor.Extract(stream);
  ObsOutputs obs_out(flags);
  obs_out.Begin();
  Stopwatch watch;
  int reports = 0;
  size_t i = 0;
  while (i < fps.size()) {
    std::vector<fp::LocalFingerprint> keyframe;
    const uint32_t tc = fps[i].time_code;
    while (i < fps.size() && fps[i].time_code == tc) {
      keyframe.push_back(fps[i]);
      ++i;
    }
    for (const auto& d : monitor.PushKeyFrame(keyframe)) {
      std::printf("detection: id %u at stream frame %+.0f (nsim %d)\n",
                  d.id, d.offset, d.nsim);
      ++reports;
    }
  }
  for (const auto& d : monitor.Flush()) {
    std::printf("detection: id %u at stream frame %+.0f (nsim %d)\n", d.id,
                d.offset, d.nsim);
    ++reports;
  }
  std::printf(
      "monitored %.1f s of stream in %.1f s; %d detections "
      "(embedded copy starts at frame %d)\n",
      stream.num_frames() / 25.0, watch.ElapsedSeconds(), reports,
      copy_start);
  if (obs_out.Finish() != 0) {
    return 1;
  }
  return reports > 0 ? 0 : 1;
}

// Drives the sharded batch query service: loads the DB, builds a
// ShardedSearcher with K shards, starts a QueryService, and submits B
// batches of N distorted self-queries as fast as the admission queue
// accepts them. Rejected submissions are retried after waiting for the
// oldest outstanding batch — the backpressure contract of
// docs/query_service.md — and counted so an overloaded configuration is
// visible in the output and in service.admission_rejects.
int CmdServeBatch(const Flags& flags) {
  const std::string backend = flags.Get("backend", "dynamic");
  if (!ValidateBackend("serve-batch", backend)) {
    return 2;
  }
  const std::string path = flags.Get("db", "");
  auto db = core::FingerprintDatabase::LoadFromFile(path);
  if (!db.ok()) {
    std::fprintf(stderr, "serve-batch failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  const std::string policy_name = flags.Get("policy", "range");
  service::ShardedSearcherOptions sharding;
  sharding.num_shards = static_cast<int>(flags.GetInt("shards", 4));
  sharding.backend = backend;
  ApplyVamanaFlags(flags, &sharding.config);
  if (policy_name == "range") {
    sharding.policy = service::ShardingPolicy::kHilbertRange;
  } else if (policy_name == "hash") {
    sharding.policy = service::ShardingPolicy::kRefIdHash;
  } else {
    std::fprintf(stderr, "serve-batch: --policy must be range or hash\n");
    return 2;
  }

  const double alpha = flags.GetDouble("alpha", 0.8);
  const double sigma = flags.GetDouble("sigma", 15.0);
  const core::GaussianDistortionModel model(sigma);

  // Sample the self-query batches before the sharded searcher consumes the
  // database (backends do not expose their records). Distorted copies of
  // referenced content keep the workload realistic without loading the DB
  // twice.
  const size_t db_size = db->size();
  const size_t batch_size = static_cast<size_t>(flags.GetInt("batch", 32));
  const size_t num_batches = static_cast<size_t>(flags.GetInt("batches", 64));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 99)));
  std::vector<std::vector<fp::Fingerprint>> batches(num_batches);
  for (auto& batch : batches) {
    batch.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      const auto& record = db->record(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(db_size) - 1)));
      batch.push_back(
          core::DistortFingerprint(record.descriptor, sigma, &rng));
    }
  }

  const int replicas = static_cast<int>(flags.GetInt("replicas", 1));
  auto replicated =
      service::ReplicatedSearcher::Build(std::move(*db), sharding, replicas);
  if (!replicated.ok()) {
    std::fprintf(stderr, "serve-batch failed: %s\n",
                 replicated.status().ToString().c_str());
    return 1;
  }
  service::QueryServiceOptions options;
  options.num_workers = static_cast<int>(flags.GetInt("workers", 2));
  options.threads_per_batch = static_cast<int>(flags.GetInt("threads", 2));
  options.max_queue_depth =
      static_cast<size_t>(flags.GetInt("queue-depth", 8));
  options.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache-capacity", 4096));
  options.query.filter.alpha = alpha;
  options.query.filter.depth = static_cast<int>(flags.GetInt("depth", 12));
  options.slow_batch_threshold_ms = flags.GetDouble("slow-threshold-ms", 0);
  options.hedge_delay_ms = flags.GetDouble("hedge-ms", 0);
  options.hedge_quantile = flags.GetDouble("hedge-quantile", 0);
  options.quota_batches_per_s = flags.GetDouble("quota-qps", 0);
  options.quota_burst = flags.GetDouble("quota-burst", 0);
  service::BatchOptions batch_options;
  batch_options.deadline_ms = flags.GetDouble("deadline-ms", 0);

  std::printf("serve-batch: %zu records, %d shards (%s, backend=%s) x %d "
              "replicas, %d workers x %d threads, queue depth %zu, "
              "cache %zu\n",
              db_size, replicated->replica(0).num_shards(),
              policy_name.c_str(), backend.c_str(),
              replicated->num_replicas(), options.num_workers,
              options.threads_per_batch, options.max_queue_depth,
              options.cache_capacity);

  ObsOutputs obs_out(flags);
  obs_out.Begin();
  service::QueryService query_service(&*replicated, &model, options);
  std::unique_ptr<obs::IntervalReporter> reporter;
  const int stats_interval_ms =
      static_cast<int>(flags.GetInt("stats-interval-ms", 0));
  if (stats_interval_ms > 0) {
    obs::IntervalReporter::Options reporter_options;
    reporter_options.interval_ms = stats_interval_ms;
    reporter_options.prefix_filter = "service.";
    reporter_options.format = obs::IntervalReporter::Format::kText;
    reporter = std::make_unique<obs::IntervalReporter>(reporter_options);
    reporter->Start();
  }
  std::deque<service::BatchTicket> outstanding;
  uint64_t rejects = 0;
  uint64_t queries_done = 0;
  uint64_t deadline_failures = 0;
  double total_queue_wait_ms = 0;
  double total_execute_ms = 0;
  size_t completed = 0;
  const auto absorb = [&](const service::BatchTicket& ticket) {
    const service::BatchResult& result = ticket->Wait();
    ++completed;
    queries_done += result.queries_executed;
    total_queue_wait_ms += result.queue_wait_ms;
    total_execute_ms += result.execute_ms;
    if (result.status.code() == StatusCode::kDeadlineExceeded) {
      ++deadline_failures;
    }
  };

  Stopwatch watch;
  for (auto& batch : batches) {
    for (;;) {
      auto ticket = query_service.Submit(batch, batch_options);
      if (ticket.ok()) {
        outstanding.push_back(*ticket);
        break;
      }
      // Backpressure: drain the oldest outstanding batch, then retry.
      ++rejects;
      if (outstanding.empty()) {
        std::fprintf(stderr, "serve-batch: rejected with empty queue: %s\n",
                     ticket.status().ToString().c_str());
        return 1;
      }
      absorb(outstanding.front());
      outstanding.pop_front();
    }
  }
  for (auto& ticket : outstanding) {
    absorb(ticket);
  }
  const double elapsed = watch.ElapsedSeconds();
  if (reporter != nullptr) {
    reporter->Stop();
  }
  query_service.Shutdown();

  const std::string slow_log_path = flags.Get("slow-log-out", "");
  if (!slow_log_path.empty()) {
    const service::SlowBatchLog* slow_log = query_service.slow_log();
    if (slow_log == nullptr ||
        !slow_log->WriteChromeJsonFile(slow_log_path)) {
      std::fprintf(stderr, "failed to write slow-batch log to %s\n",
                   slow_log_path.c_str());
      return 1;
    }
    std::printf("wrote slow-batch log to %s (%" PRIu64 " captured)\n",
                slow_log_path.c_str(), slow_log->captured());
  }

  std::printf("submitted %zu batches of %zu queries: %" PRIu64
              " backpressure rejects (retried)\n",
              num_batches, batch_size, rejects);
  std::printf("completed %zu batches (%" PRIu64 " queries) in %.2f s -> "
              "%.0f queries/s\n",
              completed, queries_done, elapsed,
              elapsed > 0 ? queries_done / elapsed : 0.0);
  const service::SelectionCache* cache = query_service.cache();
  std::printf("deadline failures: %" PRIu64 "; cache hit rate %.1f%% "
              "(%" PRIu64 " hits / %" PRIu64 " misses)\n",
              deadline_failures, cache ? cache->HitRate() * 100 : 0.0,
              cache ? cache->hits() : 0, cache ? cache->misses() : 0);
  if (completed > 0) {
    std::printf("avg queue wait %.2f ms, avg execute %.2f ms per batch\n",
                total_queue_wait_ms / completed,
                total_execute_ms / completed);
  }
  if (query_service.num_replicas() > 1) {
    const service::QueryService::HedgeStats hedge =
        query_service.hedge_stats();
    std::printf("hedging: %" PRIu64 " armed, %" PRIu64 " fired, %" PRIu64
                " hedge wins, %" PRIu64 " cancelled queries\n",
                hedge.armed, hedge.fired, hedge.wins,
                hedge.cancelled_queries);
  }
  return obs_out.Finish();
}

// Drives the query service through a calibrated load ramp: builds the
// sharded service like serve-batch, then hands it to service::RunLoadGen
// (closed- or open-loop, mixed stat/range/batch workload) and prints one
// row per ramp phase — offered vs goodput, reject and deadline-miss
// rates, exact e2e percentiles and the mean per-stage breakdown. The
// machine-readable report (--json-out) is what tools/run_benchmarks.sh
// publishes as BENCH_service.json.
int CmdLoadgen(const Flags& flags) {
  const std::string backend = flags.Get("backend", "dynamic");
  if (!ValidateBackend("loadgen", backend)) {
    return 2;
  }
  const std::string mode_name = flags.Get("mode", "open");
  service::LoadGenOptions load;
  if (mode_name == "open") {
    load.mode = service::LoadMode::kOpenLoop;
  } else if (mode_name == "closed") {
    load.mode = service::LoadMode::kClosedLoop;
  } else {
    std::fprintf(stderr, "loadgen: --mode must be open or closed\n");
    return 2;
  }
  const std::string arrival_name = flags.Get("arrival", "poisson");
  if (arrival_name == "poisson") {
    load.jitter = service::ArrivalJitter::kPoisson;
  } else if (arrival_name == "uniform") {
    load.jitter = service::ArrivalJitter::kUniform;
  } else {
    std::fprintf(stderr, "loadgen: --arrival must be poisson or uniform\n");
    return 2;
  }
  const std::string policy_name = flags.Get("policy", "range");
  service::ShardedSearcherOptions sharding;
  sharding.num_shards = static_cast<int>(flags.GetInt("shards", 4));
  sharding.backend = backend;
  ApplyVamanaFlags(flags, &sharding.config);
  if (policy_name == "range") {
    sharding.policy = service::ShardingPolicy::kHilbertRange;
  } else if (policy_name == "hash") {
    sharding.policy = service::ShardingPolicy::kRefIdHash;
  } else {
    std::fprintf(stderr, "loadgen: --policy must be range or hash\n");
    return 2;
  }

  // The smoke preset shrinks every timing knob so the whole ramp fits in
  // a ctest budget; explicit flags still override it.
  const bool smoke = flags.GetInt("smoke", 0) != 0;
  load.base_qps = flags.GetDouble("base-qps", 0);
  load.base_clients =
      static_cast<int>(flags.GetInt("clients", smoke ? 2 : 4));
  load.think_ms = flags.GetDouble("think-ms", 0);
  load.phase_seconds = flags.GetDouble("phase-s", smoke ? 0.5 : 5.0);
  load.calibrate_seconds =
      flags.GetDouble("calibrate-s", smoke ? 0.5 : 2.0);
  load.batch_size = static_cast<size_t>(flags.GetInt("batch", 8));
  load.mix.stat_single = flags.GetDouble("mix-stat", 0.6);
  load.mix.range_single = flags.GetDouble("mix-range", 0.2);
  load.mix.stat_batch = flags.GetDouble("mix-batch", 0.2);
  load.epsilon = flags.GetDouble("epsilon", 0);
  load.deadline_ms = flags.GetDouble("deadline-ms", 0);
  load.bulk_fraction = flags.GetDouble("bulk-fraction", 0);
  load.quota_clients = static_cast<int>(flags.GetInt("quota-clients", 0));
  load.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string ramp_csv =
      flags.Get("ramp", smoke ? "0.5,2" : "0.5,1,2,4");
  load.ramp.clear();
  for (size_t pos = 0; pos < ramp_csv.size();) {
    const size_t comma = ramp_csv.find(',', pos);
    const std::string token = ramp_csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!token.empty()) {
      load.ramp.push_back(std::atof(token.c_str()));
    }
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  if (load.ramp.empty()) {
    std::fprintf(stderr, "loadgen: --ramp needs at least one multiplier\n");
    return 2;
  }

  const std::string path = flags.Get("db", "");
  auto db = core::FingerprintDatabase::LoadFromFile(path);
  if (!db.ok()) {
    std::fprintf(stderr, "loadgen failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  const double alpha = flags.GetDouble("alpha", 0.8);
  const double sigma = flags.GetDouble("sigma", 15.0);
  const core::GaussianDistortionModel model(sigma);

  // Sample the query pool (distorted self-queries) before the sharded
  // searcher consumes the database.
  const size_t db_size = db->size();
  const size_t pool_size = std::max<int64_t>(
      1, flags.GetInt("query-pool", smoke ? 64 : 512));
  Rng rng(load.seed);
  std::vector<fp::Fingerprint> query_pool;
  query_pool.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    const auto& record = db->record(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(db_size) - 1)));
    query_pool.push_back(
        core::DistortFingerprint(record.descriptor, sigma, &rng));
  }

  const int replicas = static_cast<int>(flags.GetInt("replicas", 1));
  auto replicated =
      service::ReplicatedSearcher::Build(std::move(*db), sharding, replicas);
  if (!replicated.ok()) {
    std::fprintf(stderr, "loadgen failed: %s\n",
                 replicated.status().ToString().c_str());
    return 1;
  }
  service::QueryServiceOptions options;
  options.num_workers = static_cast<int>(flags.GetInt("workers", 2));
  options.threads_per_batch = static_cast<int>(flags.GetInt("threads", 1));
  options.max_queue_depth =
      static_cast<size_t>(flags.GetInt("queue-depth", 32));
  options.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache-capacity", 4096));
  options.query.filter.alpha = alpha;
  options.query.filter.depth = static_cast<int>(flags.GetInt("depth", 12));
  options.slow_batch_threshold_ms = flags.GetDouble("slow-threshold-ms", 0);
  options.hedge_delay_ms = flags.GetDouble("hedge-ms", 0);
  options.hedge_quantile = flags.GetDouble("hedge-quantile", 0);
  options.quota_batches_per_s = flags.GetDouble("quota-qps", 0);
  options.quota_burst = flags.GetDouble("quota-burst", 0);
  options.stall_every_n = static_cast<int>(flags.GetInt("stall-every", 0));
  options.stall_ms = flags.GetDouble("stall-ms", 0);

  std::printf("loadgen: %zu records, %d shards (%s, backend=%s) x %d "
              "replicas, %d workers x %d threads, queue depth %zu, "
              "mode=%s\n",
              db_size, replicated->replica(0).num_shards(),
              policy_name.c_str(), backend.c_str(),
              replicated->num_replicas(), options.num_workers,
              options.threads_per_batch, options.max_queue_depth,
              mode_name.c_str());

  ObsOutputs obs_out(flags);
  obs_out.Begin();
  service::QueryService query_service(&*replicated, &model, options);

  std::unique_ptr<obs::IntervalReporter> reporter;
  const int report_interval_ms =
      static_cast<int>(flags.GetInt("report-interval-ms", 0));
  if (report_interval_ms > 0) {
    obs::IntervalReporter::Options reporter_options;
    reporter_options.interval_ms = report_interval_ms;
    reporter_options.prefix_filter = "service.";
    reporter_options.format =
        flags.Get("report-format", "text") == "jsonl"
            ? obs::IntervalReporter::Format::kJsonl
            : obs::IntervalReporter::Format::kText;
    reporter = std::make_unique<obs::IntervalReporter>(reporter_options);
    reporter->Start();
  }

  const service::LoadGenReport report =
      service::RunLoadGen(query_service, query_pool, model, load);

  if (reporter != nullptr) {
    reporter->Stop();
  }
  query_service.Shutdown();

  Table table({"phase", "mult", "offered/s", "goodput/s", "reject%",
               "miss%", "p50 ms", "p95 ms", "p99 ms", "p99.9 ms",
               "max ms"});
  for (size_t i = 0; i < report.phases.size(); ++i) {
    const service::PhaseReport& p = report.phases[i];
    table.AddRow()
        .Add(p.calibration ? "cal" : std::to_string(i).c_str())
        .Add(p.multiplier, 3)
        .Add(p.offered_qps, 4)
        .Add(p.goodput_qps, 4)
        .Add(100 * p.reject_rate, 3)
        .Add(100 * p.deadline_miss_rate, 3)
        .Add(p.e2e.p50_ms, 4)
        .Add(p.e2e.p95_ms, 4)
        .Add(p.e2e.p99_ms, 4)
        .Add(p.e2e.p999_ms, 4)
        .Add(p.e2e.max_ms, 4);
  }
  std::fputs(table.ToText().c_str(), stdout);

  uint64_t completed = 0;
  for (const service::PhaseReport& p : report.phases) {
    completed += p.completed_ok;
  }
  const service::SelectionCache* cache = query_service.cache();
  std::printf("loadgen completed %zu phases (%" PRIu64 " batches OK, "
              "base %.1f qps); cache hit rate %.1f%%\n",
              report.phases.size(), completed, report.base_qps,
              cache != nullptr ? cache->HitRate() * 100 : 0.0);
  if (query_service.num_replicas() > 1) {
    const service::QueryService::HedgeStats hedge =
        query_service.hedge_stats();
    std::printf("hedging: %" PRIu64 " armed, %" PRIu64 " fired, %" PRIu64
                " hedge wins, %" PRIu64 " cancelled queries\n",
                hedge.armed, hedge.fired, hedge.wins,
                hedge.cancelled_queries);
  }

  int rc = 0;
  const std::string json_path = flags.Get("json-out", "");
  if (!json_path.empty()) {
    if (WriteTextFile(json_path, report.ToJson())) {
      std::printf("wrote loadgen report to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write loadgen report to %s\n",
                   json_path.c_str());
      rc = 1;
    }
  }
  const std::string slow_log_path = flags.Get("slow-log-out", "");
  if (!slow_log_path.empty()) {
    const service::SlowBatchLog* slow_log = query_service.slow_log();
    if (slow_log == nullptr ||
        !slow_log->WriteChromeJsonFile(slow_log_path)) {
      std::fprintf(stderr, "failed to write slow-batch log to %s\n",
                   slow_log_path.c_str());
      rc = 1;
    } else {
      std::printf("wrote slow-batch log to %s (%" PRIu64 " captured)\n",
                  slow_log_path.c_str(), slow_log->captured());
    }
  }
  const int obs_rc = obs_out.Finish();
  return rc != 0 ? rc : obs_rc;
}

int Usage() {
  std::fprintf(stderr, "usage: s3vcd_tool <command> [--flag value]...\n\n");
  for (const CommandSpec& command : Commands()) {
    std::fprintf(stderr, "  %-12s %s\n", command.name, command.summary);
  }
  std::fprintf(stderr,
               "\nrun `s3vcd_tool <command> --help 1` or pass an unknown "
               "flag to see a command's flag table (also in README.md)\n");
  return 2;
}

int Main(int argc, char** argv) {
  // Static archives drop unreferenced registrars, so the segment backend
  // registers explicitly before any --backend validation runs.
  store::EnsureSegmentBackendRegistered();
  if (argc < 2) {
    return Usage();
  }
  const std::string command_name = argv[1];
  const CommandSpec* command = FindCommand(command_name);
  if (command == nullptr) {
    return Usage();
  }
  // Strip a trailing --external switch (the only valueless flag).
  bool external = false;
  int effective_argc = argc;
  if (argc >= 3 && std::strcmp(argv[argc - 1], "--external") == 0) {
    external = true;
    effective_argc = argc - 1;
  }
  if (external && command_name != "build") {
    std::fprintf(stderr, "unknown flag --external for command %s\n",
                 command_name.c_str());
    PrintCommandUsage(*command);
    return 2;
  }
  const Flags flags(effective_argc, argv, 2);
  if (flags.bad() != nullptr) {
    std::fprintf(stderr, "bad argument: %s\n", flags.bad());
    PrintCommandUsage(*command);
    return 2;
  }
  if (flags.values().count("help") > 0) {
    PrintCommandUsage(*command);
    return 2;
  }
  if (!RejectUnknownFlags(*command, flags)) {
    return 2;
  }
  if (command_name == "build") {
    return CmdBuild(flags, external);
  }
  if (command_name == "inspect") {
    return CmdInspect(flags);
  }
  if (command_name == "verify") {
    return CmdVerify(flags);
  }
  if (command_name == "query") {
    return CmdQuery(flags);
  }
  if (command_name == "compact") {
    return CmdCompact(flags);
  }
  if (command_name == "monitor") {
    return CmdMonitor(flags);
  }
  if (command_name == "loadgen") {
    return CmdLoadgen(flags);
  }
  return CmdServeBatch(flags);
}

}  // namespace
}  // namespace s3vcd::tool

int main(int argc, char** argv) { return s3vcd::tool::Main(argc, argv); }
