#!/usr/bin/env bash
# Fails when a relative markdown link in docs/*.md or README.md points at a
# file that does not exist. External links (http/https/mailto) and pure
# anchors (#...) are skipped; anchors on relative links are stripped before
# the existence check. Part of the verify recipe (.claude/skills/verify).
#
# Usage: tools/check_docs_links.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
failures=0
checked=0

check_file() {
  local md="$1"
  local dir
  dir="$(dirname "${md}")"
  # Pull every "](target)" out of the file, one target per line.
  local targets
  targets="$(grep -oE '\]\([^)]+\)' "${md}" | sed -E 's/^\]\(//; s/\)$//')" \
    || return 0
  while IFS= read -r target; do
    [[ -z "${target}" ]] && continue
    case "${target}" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    local path="${target%%#*}"           # strip anchor
    path="${path%% *}"                   # strip optional '... "title"'
    [[ -z "${path}" ]] && continue
    checked=$((checked + 1))
    if [[ ! -e "${dir}/${path}" ]]; then
      echo "DEAD LINK: ${md}: (${target})"
      failures=$((failures + 1))
    fi
  done <<< "${targets}"
}

for md in "${repo_root}"/README.md "${repo_root}"/docs/*.md; do
  [[ -f "${md}" ]] && check_file "${md}"
done

if [[ "${failures}" -gt 0 ]]; then
  echo "check_docs_links: ${failures} dead link(s) (checked ${checked})."
  exit 1
fi
echo "check_docs_links: all ${checked} relative links resolve."
