#!/usr/bin/env bash
# Runs the refine-kernel micro benchmark (BM_RefineScan: a full seqscan
# sweep of the shared 200k-record corpus per iteration) and distills the
# result into a machine-readable BENCH_scan.json: records/sec per scan
# kernel (scalar / sse2 / avx2) plus the SIMD-over-scalar speedup. The
# scalar leg is a genuinely scalar loop (its TU is built with
# auto-vectorization off), so the speedup is kernel work, not compiler
# luck.
#
# Usage: tools/run_benchmarks.sh [build-dir [output-json]]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_scan.json}"

if [[ ! -x "${build_dir}/bench/micro_benchmarks" ]]; then
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" --target micro_benchmarks -j"$(nproc)"
fi

raw_json="$(mktemp)"
trap 'rm -f "${raw_json}"' EXIT

"${build_dir}/bench/micro_benchmarks" \
  --benchmark_filter='^BM_RefineScan' \
  --benchmark_format=json \
  --benchmark_out="${raw_json}" \
  --benchmark_out_format=json >&2

python3 - "${raw_json}" "${out_json}" <<'PY'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

kernels = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") != "iteration" or "error_occurred" in b:
        continue
    label = b.get("label", "")
    if not label:
        continue
    kernels[label] = {
        "records_per_second": b.get("items_per_second", 0.0),
        "ns_per_sweep": b.get("real_time", 0.0),
    }

scalar = kernels.get("scalar", {}).get("records_per_second", 0.0)
best_simd_name = None
best_simd = 0.0
for name, entry in kernels.items():
    if name != "scalar" and entry["records_per_second"] > best_simd:
        best_simd = entry["records_per_second"]
        best_simd_name = name

result = {
    "benchmark": "BM_RefineScan",
    "description": ("seqscan refine sweep over 200000 records, "
                    "kRadiusFilter mode, records/sec per scan kernel"),
    "backend": "seqscan",
    "sweep_records": 200000,
    "kernels": kernels,
    "best_simd_kernel": best_simd_name,
    "simd_speedup_over_scalar":
        (best_simd / scalar) if scalar > 0 else None,
    "context": raw.get("context", {}),
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(json.dumps(result["kernels"], indent=2))
speedup = result["simd_speedup_over_scalar"]
if speedup is not None:
    print(f"SIMD speedup over scalar: {speedup:.2f}x ({best_simd_name})")
PY

echo "Wrote ${out_json}"
